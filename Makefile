# Convenience targets for the q-MAX reproduction.

PYTEST ?= python -m pytest
REPRO ?= PYTHONPATH=src python -m repro.cli

# The CI regression-gate subset: three scripts sharing one session
# fixture (fast) plus the shard-scaling bench whose metric names line
# up with the imported PR-2 baseline.  See docs/BENCHMARKS.md.
BENCH_SUBSET = benchmarks/bench_fig04_gamma.py \
               benchmarks/bench_fig05_vs_q.py \
               benchmarks/bench_tab01_speedups.py \
               benchmarks/bench_abl_shard_scaling.py \
               benchmarks/bench_shard_wallclock.py \
               benchmarks/bench_abl_kernel.py \
               benchmarks/bench_fleet_scale.py

# Synthetic SHAs for the local/CI instrumentation-overhead gate: the
# all-a row is measured with metrics off, the all-b row with
# REPRO_METRICS=1.  See docs/OBSERVABILITY.md.
OBS_STORE = /tmp/repro-obs-store
OBS_BASE = aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa
OBS_CAND = bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb
OBS_SUBSET = benchmarks/bench_fig04_gamma.py \
             benchmarks/bench_fig05_vs_q.py \
             benchmarks/bench_tab01_speedups.py

.PHONY: test bench bench-fast bench-subset bench-report bench-gate \
        bench-overhead bench-wallclock build-native examples serve-demo \
        fleet-demo lint all outputs

test:
	$(PYTEST) tests/

build-native:  ## compile the optional C maintenance kernel in-tree
	python setup.py build_ext --inplace

bench:
	$(PYTEST) benchmarks/ --benchmark-only -s

bench-fast:  ## benchmarks at a tenth of the default workload sizes
	REPRO_SCALE=0.1 $(PYTEST) benchmarks/ --benchmark-only -s

bench-subset:  ## the fast gate subset; records trajectory rows
	REPRO_SCALE=0.1 $(PYTEST) $(BENCH_SUBSET) --benchmark-disable -s

bench-report:  ## render the recorded MPPS-over-commits trajectory
	$(REPRO) bench report

bench-gate:  ## fail on recorded regressions vs the BASELINE commit
	$(REPRO) bench gate --max-regress 10%

bench-wallclock:  ## record the end-to-end worker-engine wall-clock row
	REPRO_SCALE=0.1 $(PYTEST) benchmarks/bench_shard_wallclock.py \
	  --benchmark-disable -s
	$(REPRO) bench gate --max-regress 10%

bench-overhead:  ## gate repro.obs instrumentation overhead at <=3%
	rm -rf $(OBS_STORE)
	REPRO_SCALE=0.1 REPRO_TRAJECTORY_DIR=$(OBS_STORE) \
	REPRO_GIT_SHA=$(OBS_BASE) \
	$(PYTEST) $(OBS_SUBSET) --benchmark-disable -q
	REPRO_SCALE=0.1 REPRO_TRAJECTORY_DIR=$(OBS_STORE) \
	REPRO_METRICS=1 REPRO_GIT_SHA=$(OBS_CAND) \
	$(PYTEST) $(OBS_SUBSET) --benchmark-disable -q
	$(REPRO) bench gate --store $(OBS_STORE) \
	  --baseline $(OBS_BASE) --candidate $(OBS_CAND) \
	  --max-regress 3% --require-baseline

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		python $$script > /dev/null || exit 1; \
	done; echo "all examples ran"

serve-demo:  ## start a daemon, replay a synthetic trace at it, query it
	PYTHONPATH=src python examples/serve_demo.py

fleet-demo:  ## coordinator + three daemons: epochs, global top-q, a kill
	PYTHONPATH=src python examples/fleet_demo.py

outputs:  ## the deliverable transcripts
	$(PYTEST) tests/ 2>&1 | tee test_output.txt
	$(PYTEST) benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

all: test bench
