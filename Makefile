# Convenience targets for the q-MAX reproduction.

PYTEST ?= python -m pytest

.PHONY: test bench bench-fast examples serve-demo lint all outputs

test:
	$(PYTEST) tests/

bench:
	$(PYTEST) benchmarks/ --benchmark-only -s

bench-fast:  ## benchmarks at a tenth of the default workload sizes
	REPRO_SCALE=0.1 $(PYTEST) benchmarks/ --benchmark-only -s

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		python $$script > /dev/null || exit 1; \
	done; echo "all examples ran"

serve-demo:  ## start a daemon, replay a synthetic trace at it, query it
	PYTHONPATH=src python examples/serve_demo.py

outputs:  ## the deliverable transcripts
	$(PYTEST) tests/ 2>&1 | tee test_output.txt
	$(PYTEST) benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

all: test bench
