"""Figure 6: throughput along the trace (γ = 0.1, varying q).

Paper shape: all structures accelerate as the trace progresses (the
admission threshold rises, so ever more items are filtered in O(1));
q-MAX stays above the alternatives; larger q is slower.
"""

from __future__ import annotations

import time

from bench_common import emit_series
from conftest import batch_size, repeats, scaled

from repro.baselines.heap import HeapQMax
from repro.baselines.skiplist import SkipListQMax
from repro.bench.workloads import value_stream
from repro.core.qmax import QMax

CHECKPOINTS = 5


def _segment_rates(factory, stream):
    """MPPS of each of CHECKPOINTS consecutive trace segments.

    Honours ``--batch-size``: in batch mode each segment is pre-split
    into bursts (outside the timed region) and driven via add_many().
    """
    seg = len(stream) // CHECKPOINTS
    bs = batch_size()
    segments = []
    for c in range(CHECKPOINTS):
        chunk = stream[c * seg:(c + 1) * seg]
        if bs > 1:
            chunk = [
                ([i for i, _ in chunk[s:s + bs]],
                 [v for _, v in chunk[s:s + bs]])
                for s in range(0, len(chunk), bs)
            ]
        segments.append(chunk)
    best = [float("inf")] * CHECKPOINTS
    for _ in range(repeats()):
        s = factory()
        if bs > 1:
            add_many = s.add_many
            for c in range(CHECKPOINTS):
                start = time.perf_counter()
                for ids, vals in segments[c]:
                    add_many(ids, vals)
                best[c] = min(best[c], time.perf_counter() - start)
        else:
            add = s.add
            for c in range(CHECKPOINTS):
                start = time.perf_counter()
                for item_id, val in segments[c]:
                    add(item_id, val)
                best[c] = min(best[c], time.perf_counter() - start)
    return [seg / t / 1e6 for t in best]


def test_fig06_throughput_along_trace(benchmark):
    stream = value_stream(scaled(200_000, minimum=50_000))
    qs = (scaled(500, minimum=64), scaled(5_000, minimum=512))
    series = {}
    for q in qs:
        series[f"qmax q={q}"] = _segment_rates(
            lambda: QMax(q, 0.1), stream
        )
        series[f"heap q={q}"] = _segment_rates(
            lambda: HeapQMax(q), stream
        )
        series[f"skiplist q={q}"] = _segment_rates(
            lambda: SkipListQMax(q), stream
        )
    xs = [
        (c + 1) * (len(stream) // CHECKPOINTS) for c in range(CHECKPOINTS)
    ]
    emit_series(
        "Figure 6: MPPS vs trace position (gamma=0.1)",
        "items",
        xs,
        series,
        config={"gamma": 0.1, "qs": qs, "stream": len(stream),
                "checkpoints": CHECKPOINTS},
    )

    # Shape: every structure speeds up from the first to the last
    # segment (admission filtering), and q-MAX >= skiplist throughout.
    for q in qs:
        assert series[f"qmax q={q}"][-1] > series[f"qmax q={q}"][0]
        assert series[f"heap q={q}"][-1] > series[f"heap q={q}"][0]
        assert (
            series[f"qmax q={q}"][-1] > series[f"skiplist q={q}"][-1]
        )

    q = qs[0]

    def run():
        s = QMax(q, 0.1)
        add = s.add
        for item_id, val in stream:
            add(item_id, val)

    benchmark(run)
