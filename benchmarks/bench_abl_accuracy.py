"""Ablation: estimation accuracy as a function of the reservoir size q.

The paper's evaluation is about throughput; the reason large q matters
at all is accuracy — "Increasing the reservoir size reduces the
variance of the method" (§2.3).  This ablation quantifies that axis for
three estimators built on the reservoirs, giving downstream users the
q-vs-error curve they need to pick q:

* Priority Sampling subset sums (relative error ~ 1/sqrt(k)),
* KMV distinct counting (relative error ~ 1/sqrt(q-2)),
* network-wide heavy-hitter frequency estimates.
"""

from __future__ import annotations

import statistics

from bench_common import emit_table
from conftest import scaled

from repro.apps.count_distinct import CountDistinct
from repro.apps.priority_sampling import PrioritySampler
from repro.bench.workloads import trace_streams
from repro.netwide.nmp import MeasurementPoint
from repro.netwide.controller import Controller
from repro.traffic.packet import Packet

QS = (64, 256, 1024)
SEEDS = range(5)


def _ps_error(stream, q, seed) -> float:
    ps = PrioritySampler(q, seed=seed)
    truth = 0.0
    for i, (_key, weight) in enumerate(stream):
        ps.update(i, weight)
        if i % 2 == 0:
            truth += weight
    est = ps.estimate_subset_sum(
        lambda key: isinstance(key, int) and key % 2 == 0
    )
    return abs(est - truth) / truth


def _kmv_error(stream, q, seed) -> float:
    cd = CountDistinct(q, seed=seed)
    distinct = set()
    for key, _w in stream:
        cd.update(key)
        distinct.add(key)
    return abs(cd.estimate() - len(distinct)) / len(distinct)


def _nwhh_error(stream, q, seed) -> float:
    nmp = MeasurementPoint(q, seed=seed)
    counts = {}
    for i, (key, weight) in enumerate(stream):
        nmp.observe(Packet(key, 0, 0, 0, 6, weight, packet_id=i))
        counts[key] = counts.get(key, 0) + 1
    top_flow, top_count = max(counts.items(), key=lambda p: p[1])
    estimates = Controller(q).flow_estimates([nmp])
    est = estimates.get(top_flow, 0.0)
    return abs(est - top_count) / top_count


def test_ablation_accuracy_vs_q(benchmark):
    stream = list(trace_streams(scaled(30_000, minimum=8_000))["caida16"])

    rows = []
    mean_err = {}
    for estimator, fn in (
        ("priority-sampling subset sum", _ps_error),
        ("kmv distinct count", _kmv_error),
        ("nwhh top-flow frequency", _nwhh_error),
    ):
        for q in QS:
            errors = [fn(stream, q, seed) for seed in SEEDS]
            mean_err[(estimator, q)] = statistics.mean(errors)
            rows.append(
                [estimator, q, statistics.mean(errors), max(errors)]
            )
    emit_table(
        "Ablation: relative estimation error vs reservoir size q",
        ["estimator", "q", "mean rel. error", "max rel. error"],
        rows,
        value_columns={"mean rel. error": "rel_error",
                       "max rel. error": "rel_error"},
        config={"qs": QS, "seeds": len(SEEDS), "trace": "caida16"},
    )

    # Shape: error shrinks with q for every estimator (~1/sqrt(q):
    # 16x more space should buy roughly 4x less error; require 2x).
    for estimator in ("priority-sampling subset sum",
                      "kmv distinct count",
                      "nwhh top-flow frequency"):
        big = mean_err[(estimator, QS[-1])]
        small = mean_err[(estimator, QS[0])]
        assert big < max(0.75 * small, 0.02), (estimator, small, big)

    benchmark(lambda: _kmv_error(stream, QS[0], 0))
