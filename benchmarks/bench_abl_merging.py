"""Ablation: the duplicate-merging q-MAX's cost drivers (§5.1).

MergingQMax pays for (i) the merge function per duplicate pair and
(ii) the refcount map.  This ablation compares merge functions (max vs
log-sum-exp) and duplicate rates, explaining the LRFU throughput gap
between Figure 4 (plain) and Figure 9 (merging) workloads.
"""

from __future__ import annotations

import math

from bench_common import emit_table
from conftest import repeats, scaled

from repro.bench.runner import measure_throughput
from repro.bench.workloads import value_stream
from repro.core.merging import MergingQMax
from repro.core.qmax import QMax


def _lse(w1: float, w2: float) -> float:
    if w1 < w2:
        w1, w2 = w2, w1
    return w1 + math.log1p(math.exp(w2 - w1))


def test_ablation_merging_cost(benchmark):
    n = scaled(80_000, minimum=20_000)
    q = scaled(1_000, minimum=128)
    base = list(value_stream(n))

    # Duplicate rates: every key unique / 10 repeats / 100 repeats.
    streams = {
        "unique keys": base,
        "x10 duplicates": [(i // 10, v) for (i, v) in base],
        "x100 duplicates": [(i // 100, v) for (i, v) in base],
    }

    rows = []
    results = {}
    for dup_label, stream in streams.items():
        for merge_label, merge in (("max", max), ("log-sum-exp", _lse)):
            m = measure_throughput(
                f"{dup_label}/{merge_label}",
                lambda merge=merge: MergingQMax(
                    q, 0.25, merge=merge
                ).add,
                stream,
                repeats=repeats(),
            )
            results[(dup_label, merge_label)] = m.mpps
            rows.append([dup_label, merge_label, m.mpps])
    plain = measure_throughput(
        "plain qmax", lambda: QMax(q, 0.25).add, base, repeats=repeats()
    )
    rows.append(["unique keys", "plain qmax (no merging)", plain.mpps])
    emit_table(
        f"Ablation: MergingQMax cost (q={q}, gamma=0.25)",
        ["duplicate rate", "merge fn", "MPPS"],
        rows,
        config={"q": q, "gamma": 0.25, "items": n},
    )

    # Shape: the plain structure (with its admission filter) is faster
    # than the merging one, and max-merge is at least as fast as LSE.
    assert plain.mpps > results[("unique keys", "max")]
    assert (
        results[("x100 duplicates", "max")]
        >= 0.8 * results[("x100 duplicates", "log-sum-exp")]
    )

    stream = streams["x10 duplicates"]

    def run():
        m = MergingQMax(q, 0.25, merge=_lse)
        add = m.add
        for item_id, val in stream:
            add(item_id, val)

    benchmark(run)
