"""Shared fixtures and helpers for the paper-reproduction benchmarks.

Every file under ``benchmarks/`` regenerates one table or figure of the
paper's evaluation (§6), printing the same rows/series the paper
reports.  Absolute numbers are Python-scale (DESIGN.md §2); the shapes
— who wins, by what factor, where the crossovers sit — are the
reproduction targets recorded in EXPERIMENTS.md.

Sizes honour ``REPRO_SCALE`` (default 1.0, laptop-scale).  Run with
``pytest benchmarks/ --benchmark-only -s`` to see the tables.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path
from typing import Callable, Dict, Sequence, Tuple

import pytest

# Make `benchmarks.*`-local imports and the tests helpers available.
sys.path.insert(0, str(Path(__file__).parent))

from repro.baselines.heap import HeapQMax
from repro.baselines.skiplist import SkipListQMax
from repro.bench.runner import (
    Measurement,
    measure_throughput,
    measure_throughput_batched,
)
from repro.bench.workloads import scaled, value_stream
from repro.core.amortized import AmortizedQMax
from repro.core.qmax import QMax

#: Batch size for the update path: 0/1 drives backends through add()
#: per item (the default); >= 2 drives them through add_many() in
#: batches of this size.  Settable via ``--batch-size`` or the
#: ``REPRO_BATCH`` environment variable.
_BATCH_SIZE = int(os.environ.get("REPRO_BATCH", "0"))

#: Shard count for the scaling benchmark's widest point: settable via
#: ``--shards`` or the ``REPRO_SHARDS`` environment variable.
_SHARDS = int(os.environ.get("REPRO_SHARDS", "4"))


def pytest_addoption(parser):
    parser.addoption(
        "--batch-size",
        action="store",
        type=int,
        default=None,
        dest="batch_size",
        help="Drive backends through add_many() in batches of this "
        "size instead of per-item add() (also via REPRO_BATCH).",
    )
    parser.addoption(
        "--shards",
        action="store",
        type=int,
        default=None,
        dest="shards",
        help="Maximum shard count for the shard-scaling benchmark "
        "(also via REPRO_SHARDS; default 4).",
    )


def pytest_configure(config):
    global _BATCH_SIZE, _SHARDS
    opt = config.getoption("batch_size", default=None)
    if opt is not None:
        _BATCH_SIZE = opt
    opt = config.getoption("shards", default=None)
    if opt is not None:
        _SHARDS = opt


def batch_size() -> int:
    """The active --batch-size / REPRO_BATCH (0/1 = per-item mode)."""
    return _BATCH_SIZE


def max_shards() -> int:
    """The active --shards / REPRO_SHARDS ceiling (>= 1)."""
    return max(1, _SHARDS)

#: The γ grid of Figure 4 / Table 1.
GAMMA_GRID = (0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0)

#: γ values measured for the amortized variant (ablation columns).
AMORT_GAMMAS = (0.05, 0.25, 1.0)

#: Scaled-down version of the paper's q grid (1e4..1e7 → /100).
Q_GRID = (100, 1_000, 10_000)

#: Default stream length (paper: 150M → laptop default 150k).
def stream_length() -> int:
    return scaled(150_000, minimum=20_000)


def bench_stream(seed: int = 0):
    """The shared "randomly generated stream of numbers"."""
    return value_stream(stream_length(), seed)


def repeats() -> int:
    """Paper runs each point 10 times; we default to 3 (scale up via
    REPRO_SCALE if desired)."""
    return 3


def measure_backend(
    label: str,
    factory: Callable[[], object],
    stream,
    n_repeats: int = None,
) -> Measurement:
    """Measure a q-MAX-interface backend's update throughput.

    Honours :func:`batch_size`: in batch mode the backend is driven
    through ``add_many()`` over pre-split bursts, otherwise through
    per-item ``add()`` — so every figure can be re-run in both modes.
    """
    bs = batch_size()
    if bs > 1:
        return measure_throughput_batched(
            label,
            lambda: factory().add_many,
            stream,
            bs,
            repeats=n_repeats or repeats(),
        )
    return measure_throughput(
        label,
        lambda: factory().add,
        stream,
        repeats=n_repeats or repeats(),
    )


@pytest.fixture(scope="session")
def gamma_q_sweep():
    """The (γ, q) throughput sweep shared by Fig 4, Fig 5 and Table 1.

    Returns ``(qmax_mpps, heap_mpps, skiplist_mpps)`` where the first
    maps ``(gamma, q) -> MPPS`` and the others map ``q -> MPPS``.
    """
    stream = bench_stream()
    qmax_mpps: Dict[Tuple[float, int], float] = {}
    for q in Q_GRID:
        for gamma in GAMMA_GRID:
            m = measure_backend(
                f"qmax(g={gamma},q={q})", lambda: QMax(q, gamma), stream
            )
            qmax_mpps[(gamma, q)] = m.mpps
    heap_mpps = {
        q: measure_backend(f"heap(q={q})", lambda: HeapQMax(q), stream).mpps
        for q in Q_GRID
    }
    skip_mpps = {
        q: measure_backend(
            f"skiplist(q={q})", lambda: SkipListQMax(q), stream
        ).mpps
        for q in Q_GRID
    }
    amort_mpps = {
        (gamma, q): measure_backend(
            f"qmax-amortized(g={gamma},q={q})",
            lambda: AmortizedQMax(q, gamma),
            stream,
        ).mpps
        for q in Q_GRID
        for gamma in AMORT_GAMMAS
    }
    return qmax_mpps, heap_mpps, skip_mpps, amort_mpps
