"""Shared harness for the Open-vSwitch-style experiments (Figs 12–17).

The paper attaches each monitoring structure to a DPDK OVS and measures
the achieved throughput on a 10G/40G link.  Our substitute (DESIGN.md
§2) runs the same trace through the simulated datapath with each
monitor attached and *normalizes* to the vanilla (no-measurement)
datapath: the normalized rate times the link speed gives the "achieved
Gbps" a switch whose vanilla datapath exactly saturates the link would
reach.  This preserves the figures' shapes — which monitor degrades the
switch, and at which q each falls off line rate.
"""

from __future__ import annotations

import time
from typing import Dict, Sequence

from conftest import repeats, scaled

from repro.bench.workloads import packet_trace
from repro.switch.datapath import Datapath
from repro.switch.linerate import LinkModel
from repro.switch.monitor import make_monitor
from repro.traffic.packet import Packet


def min_size_trace(n: int):
    """The 10G stress test: minimal-size packets (64B)."""
    pkts = packet_trace(n)
    return tuple(
        Packet(p.src_ip, p.dst_ip, p.src_port, p.dst_port, p.proto,
               64, p.timestamp, p.packet_id)
        for p in pkts
    )


def real_size_trace(n: int):
    """The 40G experiments: realistic (UNIV1-average) packet sizes."""
    return packet_trace(n, profile="univ1")


def datapath_pps(monitor_kind: str, q: int, backend: str, gamma: float,
                 pkts: Sequence[Packet]) -> float:
    """Best-of-repeats packet rate of the datapath with a monitor."""
    best = float("inf")
    for _ in range(repeats()):
        dp = Datapath(
            monitor=make_monitor(monitor_kind, q, backend, gamma)
        )
        start = time.perf_counter()
        dp.run(pkts)
        best = min(best, time.perf_counter() - start)
    return len(pkts) / best


def achieved_gbps(
    pps: float, vanilla_pps: float, link: LinkModel, frame_bytes: int
) -> float:
    """Normalized throughput mapped onto the link (see module doc)."""
    line_pps = link.line_rate_pps(frame_bytes)
    achieved = line_pps * min(1.0, pps / vanilla_pps)
    return link.gbps_at(achieved, frame_bytes)


def ovs_sweep(
    monitor_kind: str,
    qs: Sequence[int],
    backends: Sequence[str],
    link: LinkModel,
    pkts,
    frame_bytes: int,
    gamma: float = 0.25,
) -> Dict:
    """Gbps for each (backend, q), plus the vanilla reference."""
    vanilla = datapath_pps("none", 1, "qmax", gamma, pkts)
    results = {"vanilla": link.gbps_at(
        link.line_rate_pps(frame_bytes), frame_bytes
    )}
    for backend in backends:
        for q in qs:
            pps = datapath_pps(monitor_kind, q, backend, gamma, pkts)
            results[(backend, q)] = achieved_gbps(
                pps, vanilla, link, frame_bytes
            )
    results["_vanilla_pps"] = vanilla
    return results
