"""Table 2: hit ratio of q-MAX-based LRFU vs exact LRFU caches.

Paper shape (q = 1e4, c = 0.75, P1-ARC): for each γ the q-MAX cache's
hit ratio lies between the q-sized and the q(1+γ)-sized exact LRFU,
and grows with γ.
"""

from __future__ import annotations

from bench_common import emit_table
from conftest import scaled

from repro.apps.lrfu import ClassicLRFU, QMaxLRFU
from repro.apps.lrfu_deamortized import DeamortizedLRFU
from repro.bench.workloads import cache_stream

GAMMAS = (0.1, 0.5, 1.0)
DECAY = 0.75


def _hit_ratio(cache, trace) -> float:
    access = cache.access
    for key in trace:
        access(key)
    return cache.hit_ratio


def test_tab02_lrfu_hit_ratio(benchmark):
    trace = list(cache_stream(scaled(80_000, minimum=20_000)))
    q = scaled(1_000, minimum=128)

    base = _hit_ratio(ClassicLRFU(q, DECAY), trace)
    rows = [["-", "q-sized LRFU", f"{base:.1%}"]]
    measured = {}
    for gamma in GAMMAS:
        qmax_ratio = _hit_ratio(QMaxLRFU(q, DECAY, gamma=gamma), trace)
        deam_ratio = _hit_ratio(
            DeamortizedLRFU(q, DECAY, gamma=gamma), trace
        )
        big_ratio = _hit_ratio(
            ClassicLRFU(int(q * (1 + gamma)), DECAY), trace
        )
        measured[gamma] = (qmax_ratio, big_ratio)
        rows.append([f"{gamma:.0%}", "q-MAX based LRFU",
                     f"{qmax_ratio:.1%}"])
        rows.append([f"{gamma:.0%}", "q-MAX LRFU (deamortized)",
                     f"{deam_ratio:.1%}"])
        rows.append([f"{gamma:.0%}", "q(1+gamma)-sized LRFU",
                     f"{big_ratio:.1%}"])
    emit_table(
        f"Table 2: LRFU hit ratios (q={q}, c={DECAY})",
        ["gamma", "algorithm", "hit ratio"],
        rows,
        config={"q": q, "decay": DECAY, "gammas": GAMMAS,
                "trace_len": len(trace)},
        metrics=(
            [{"name": "q-sized LRFU", "value": base, "unit": "ratio"}]
            + [
                {"name": f"g={gamma}/{label}", "value": value,
                 "unit": "ratio"}
                for gamma, (qmax_ratio, big_ratio) in measured.items()
                for label, value in (("qmax-lrfu", qmax_ratio),
                                     ("exact-q(1+g)-lrfu", big_ratio))
            ]
        ),
    )

    # Shape: base <= qmax <= q(1+gamma) (small tolerance for the
    # floating population), and the qmax ratio is non-decreasing in
    # gamma.
    ratios = []
    for gamma in GAMMAS:
        qmax_ratio, big_ratio = measured[gamma]
        assert qmax_ratio >= base - 0.015, (gamma, qmax_ratio, base)
        assert qmax_ratio <= big_ratio + 0.015, (gamma, qmax_ratio,
                                                 big_ratio)
        ratios.append(qmax_ratio)
    assert ratios[-1] >= ratios[0] - 0.01

    benchmark(lambda: _hit_ratio(QMaxLRFU(q, DECAY, gamma=0.5), trace))
