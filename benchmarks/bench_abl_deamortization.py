"""Ablation: deamortized vs amortized vs NumPy-vectorised q-MAX.

DESIGN.md calls out the deamortization as the paper's key design move:
it converts a bursty O(q) maintenance into a per-update constant.  This
ablation quantifies what each variant costs in CPython:

* ``QMax`` (Algorithm 1, deamortized): constant worst case, generator
  dispatch overhead per micro-batch.
* ``AmortizedQMax``: identical amortized cost, O(q) bursts, lowest
  constants in CPython.
* ``VectorQMax`` with batched ingestion: the same algorithmic idea with
  C-speed filtering and selection.

Also reports the realized worst-case per-update maintenance ops of the
deamortized variant (the bound behind Theorem 1) next to the amortized
variant's burst size.
"""

from __future__ import annotations

import numpy as np

from bench_common import emit_table
from conftest import bench_stream, measure_backend, repeats, scaled

from repro.bench.runner import measure_callable
from repro.core.amortized import AmortizedQMax, VectorQMax
from repro.core.qmax import QMax

GAMMA = 0.25


def test_ablation_deamortization(benchmark):
    stream = list(bench_stream())
    q = scaled(2_000, minimum=256)

    rows = []
    deamortized = measure_backend(
        "deamortized", lambda: QMax(q, GAMMA), stream
    )
    amortized = measure_backend(
        "amortized", lambda: AmortizedQMax(q, GAMMA), stream
    )
    rows.append(["qmax (deamortized)", deamortized.mpps])
    rows.append(["qmax (amortized)", amortized.mpps])

    ids = np.arange(len(stream))
    vals = np.array([v for _, v in stream])

    def batched_run():
        s = VectorQMax(q, GAMMA)
        for start in range(0, len(stream), 4096):
            s.add_batch(ids[start:start + 4096],
                        vals[start:start + 4096])
        return len(stream)

    vector = measure_callable("numpy-batched", lambda: batched_run,
                              repeats=repeats())
    rows.append(["qmax (numpy, 4096-batches)", vector.mpps])
    emit_table(
        f"Ablation: q-MAX maintenance strategies (q={q}, gamma={GAMMA})",
        ["variant", "MPPS"],
        rows,
        config={"q": q, "gamma": GAMMA, "items": len(stream)},
    )

    # Worst-case maintenance burst comparison.
    inst = QMax(q, GAMMA, instrument=True)
    for item_id, val in stream:
        inst.add(item_id, val)
    burst_rows = [
        ["deamortized max ops per update", inst.max_step_ops],
        ["amortized burst (one compaction)", int(q * (1 + GAMMA)) * 3],
    ]
    emit_table(
        "Ablation: worst-case maintenance burst (ops)",
        ["quantity", "ops"],
        burst_rows,
        benchmark="abl_deamortization/burst",
        value_columns={"ops": "ops"},
        config={"q": q, "gamma": GAMMA},
    )

    # The deamortized worst case must be far below one full compaction.
    assert inst.max_step_ops < q
    # Vectorised ingestion dominates everything in CPython.
    assert vector.mpps > amortized.mpps

    benchmark(batched_run)
