"""Figure 15: OVS 40G throughput for q-MAX as a function of γ.

Paper shape (40G, real-size packets): q-MAX meets line rate at
q ≤ 1e5 for any γ; at q = 1e6 a small γ costs a few percent; at
q = 1e7 doubling the space (γ = 1) recovers to within ~8% of vanilla.
"""

from __future__ import annotations

from bench_common import emit_series
from conftest import scaled
from ovs_common import datapath_pps, real_size_trace

from repro.switch.linerate import FORTY_GBPS

QS = (1_000, 10_000)
GAMMAS = (0.1, 0.25, 1.0)
FRAME = 1070  # UNIV1-style mean frame size


def test_fig15_ovs_40g_gamma(benchmark):
    pkts = real_size_trace(scaled(30_000, minimum=8_000))
    vanilla_pps = datapath_pps("none", 1, "qmax", 0.25, pkts)
    line = FORTY_GBPS.gbps_at(FORTY_GBPS.line_rate_pps(FRAME), FRAME)
    series = {"vanilla": [line] * len(GAMMAS)}
    results = {}
    for q in QS:
        row = []
        for gamma in GAMMAS:
            pps = datapath_pps("reservoir", q, "qmax", gamma, pkts)
            gbps = line * min(1.0, pps / vanilla_pps)
            results[(q, gamma)] = gbps
            row.append(gbps)
        series[f"qmax q={q}"] = row
    emit_series(
        "Figure 15: OVS 40G throughput (Gbps) for q-MAX vs gamma, "
        "real-size packets",
        "gamma",
        list(GAMMAS),
        series,
        unit="gbps",
        config={"qs": QS, "gammas": GAMMAS, "frame_bytes": FRAME,
                "link": "40G"},
    )

    # Shape: larger gamma does not hurt; the large-q configuration
    # benefits from more gamma.
    big_q = QS[-1]
    assert results[(big_q, GAMMAS[-1])] >= 0.9 * results[
        (big_q, GAMMAS[0])
    ]

    benchmark(
        lambda: datapath_pps("reservoir", QS[0], "qmax", 0.25, pkts)
    )
