"""Fleet coordination overhead: epoch cycle vs. coordinator merge.

Runs the real distributed stack in-process — a
:class:`~repro.fleet.CoordinatorThread` plus three
:class:`~repro.service.daemon.DaemonThread` members on ephemeral
ports — partitions a synthetic stream across the daemons (records
injected through the feeder, the same entry the socket sources use),
then drives one full measurement epoch: ``begin``, ``collect``, and a
global ``top`` answered from the collected reports.

The row recorded is the coordination cost a deployment would see:
fleet-wide ingest MPPS, the end-to-end epoch wall clock (RPC fan-out
to every daemon, per-daemon report extraction, transport, storage),
and the coordinator's own merge time within it.  The acceptance gate
is that the global merge stays a small fraction of the epoch — the
coordinator must be bottlenecked by pulling reports, not by combining
them, or it cannot scale past a handful of daemons.
"""

from __future__ import annotations

import time

from bench_common import emit_table
from conftest import scaled

from repro.fleet import CoordinatorThread, FleetConfig
from repro.parallel.merge import merge_top_items
from repro.service.config import ServiceConfig
from repro.service.daemon import DaemonThread
from repro.service.rpc import rpc_call
from repro.service.snapshot import decode_id
from repro.traffic.synthetic import PROFILES, generate_packets

Q = 512
N_DAEMONS = 3
BURST = 2048

#: The acceptance gate: coordinator merge time must stay under this
#: fraction of the end-to-end epoch (begin + collect + global top).
MERGE_OVERHEAD_GATE = 0.10


def _stream(n: int, seed: int = 7):
    packets = generate_packets(
        PROFILES["caida16"], n, seed=seed, n_flows=max(256, n // 20)
    )
    ids = [p.src_ip for p in packets]
    vals = [float(p.size) for p in packets]
    return ids, vals


def _partition(ids, vals, n_parts):
    parts = [([], []) for _ in range(n_parts)]
    for item_id, val in zip(ids, vals):
        part = parts[hash(item_id) % n_parts]
        part[0].append(item_id)
        part[1].append(val)
    return parts


def _wait_alive(coord, n, deadline_s=30.0):
    deadline = time.time() + deadline_s
    while time.time() < deadline:
        status = rpc_call(coord.host, coord.port, "status")
        if status["daemons"]["alive"] == n:
            return
        time.sleep(0.02)
    raise AssertionError(f"fleet did not reach {n} daemons")


def _metric_sum(coord, name):
    snapshot = rpc_call(coord.host, coord.port, "metrics")
    for metric in snapshot["metrics"]:
        if metric["name"] == name:
            return metric["sum"]
    return 0.0


def test_fleet_scale(benchmark):
    n = scaled(150_000, minimum=30_000)
    ids, vals = _stream(n)
    parts = _partition(ids, vals, N_DAEMONS)

    fleet_config = FleetConfig(
        port=0, q=Q, heartbeat_interval=0.2, heartbeat_timeout=2.0,
    )
    with CoordinatorThread(fleet_config) as coord:
        daemons = [
            DaemonThread(ServiceConfig(
                udp_port=0, tcp_port=0, rpc_port=0, q=Q,
                fleet=coord.address, daemon_id=f"bench-d{i}",
                heartbeat_interval=0.2, flush_interval=0.01,
            ))
            for i in range(N_DAEMONS)
        ]
        try:
            _wait_alive(coord, N_DAEMONS)

            ingest_start = time.perf_counter()
            for daemon, (pids, pvals) in zip(daemons, parts):
                for lo in range(0, len(pids), BURST):
                    daemon.feed(
                        pids[lo:lo + BURST], pvals[lo:lo + BURST]
                    )
            ingest_s = time.perf_counter() - ingest_start
            ingest_mpps = n / ingest_s / 1e6

            # One full epoch, timed end to end from the client side.
            epoch_start = time.perf_counter()
            rpc_call(coord.host, coord.port, "epoch", action="begin",
                     timeout=30.0)
            collected = rpc_call(coord.host, coord.port, "epoch",
                                 action="collect", timeout=30.0)
            answer = rpc_call(coord.host, coord.port, "top", q=Q,
                              source="epoch", timeout=30.0)
            epoch_s = time.perf_counter() - epoch_start

            merge_s = _metric_sum(coord, "repro_fleet_merge_seconds")
            merge_pct = merge_s / epoch_s
            coverage = answer["coverage"]
            observed = collected["observed"]
            # The reports the global answer came from, for the
            # pytest-benchmark merge-only loop below.
            report_items = [
                [(decode_id(i), v) for i, v in
                 rpc_call(d.host, d.rpc_port, "top", q=Q)]
                for d in daemons
            ]
        finally:
            for daemon in daemons:
                daemon.stop()

    assert observed == n, (
        f"fleet ingested {observed} of {n} records before collect"
    )
    assert coverage == 1.0
    # Per-daemon reports dedup repeated flow records, so the global
    # answer holds at most Q distinct flows — possibly fewer.
    assert 0 < len(answer["items"]) <= Q

    emit_table(
        f"Fleet epoch cost: {N_DAEMONS} daemons + coordinator "
        f"(q={Q}, n={n})",
        ["stage", "seconds", "note"],
        [
            ["ingest (fleet-wide)", round(ingest_s, 4),
             f"{ingest_mpps:.3f} MPPS"],
            ["epoch begin+collect+top", round(epoch_s, 4),
             f"collect pull {collected['seconds']:.4f}s"],
            ["coordinator merge", round(merge_s, 4),
             f"{merge_pct:.1%} of epoch"],
        ],
        metrics=[
            {"name": "fleet/ingest", "value": round(ingest_mpps, 4),
             "unit": "mpps"},
            {"name": "fleet/epoch_seconds", "value": round(epoch_s, 5),
             "unit": "seconds"},
            {"name": "fleet/merge_seconds", "value": round(merge_s, 5),
             "unit": "seconds"},
            {"name": "fleet/merge_overhead_pct",
             "value": round(100 * merge_pct, 3), "unit": "percent"},
        ],
        config={
            "q": Q,
            "daemons": N_DAEMONS,
            "items": n,
            "burst": BURST,
            "coverage": coverage,
            "trace": "caida16-profile flow ids / packet sizes",
            "metric_note": (
                "epoch_seconds is client-observed wall clock for "
                "begin + collect + global top over RPC; "
                "merge_seconds is the coordinator's "
                "repro_fleet_merge span total within it."
            ),
        },
    )

    # The acceptance gate: merging must not be what the epoch pays for.
    assert merge_pct < MERGE_OVERHEAD_GATE, (
        f"coordinator merge took {merge_pct:.1%} of the epoch "
        f"(gate: <{MERGE_OVERHEAD_GATE:.0%}) — merge_s={merge_s:.4f} "
        f"epoch_s={epoch_s:.4f}"
    )

    def run():
        merge_top_items(report_items, Q, merge=max)

    benchmark(run)
