"""Ablation: quickselect vs BFPRT vs sampled-pivot Select inside QMax.

Theorem 1 presumes a deterministic linear-time Select; the default
implementation uses quickselect (expected-linear, lower constants).
This ablation measures the price of determinism on a random stream and
on a quickselect-adversarial (ascending) stream, where the BFPRT
variant's bounded schedule is the point — plus the SQUID-style
sampled-pivot variant (``pivot_sample``), which aims each pivot at the
target's quantile from a strided k-sample instead of a median-of-three.
"""

from __future__ import annotations

from bench_common import emit_table
from conftest import bench_stream, measure_backend, scaled

from repro.core.qmax import QMax

GAMMA = 0.5


def test_ablation_select_strategy(benchmark):
    q = scaled(2_000, minimum=256)
    random_stream = list(bench_stream())
    ascending = [(i, float(i)) for i in range(len(random_stream))]

    variants = (
        ("quickselect", {}),
        ("bfprt", {"deterministic_select": True}),
        ("sampled-pivot", {"pivot_sample": 9}),
    )

    rows = []
    results = {}
    for stream_name, stream in (("random", random_stream),
                                ("ascending-adversary", ascending)):
        for label, kwargs in variants:
            m = measure_backend(
                f"{label}/{stream_name}",
                lambda kwargs=kwargs: QMax(q, GAMMA, **kwargs),
                stream,
            )
            results[(stream_name, label)] = m.mpps
            rows.append([stream_name, label, m.mpps])

    # Worst-case per-update burst on the adversary.
    worst_ops = {}
    for label, kwargs in variants:
        inst = QMax(q, GAMMA, instrument=True, **kwargs)
        for item_id, val in ascending:
            inst.add(item_id, val)
        worst_ops[label] = inst.max_step_ops
        rows.append(
            [f"adversary worst ops/update", label, inst.max_step_ops]
        )
    emit_table(
        f"Ablation: Select strategy in QMax (q={q}, gamma={GAMMA})",
        ["workload", "select", "MPPS / ops"],
        rows,
        config={"q": q, "gamma": GAMMA},
        metrics=(
            [{"name": f"{stream_name}/{label}", "value": value,
              "unit": "mpps"}
             for (stream_name, label), value in results.items()]
            + [{"name": f"adversary-worst-ops/{label}",
                "value": float(ops), "unit": "ops"}
               for label, ops in worst_ops.items()]
        ),
    )

    # Shape: quickselect is faster on random data; BFPRT stays within
    # a small factor even on its own worst-enemy workload; the sampled
    # pivot tracks quickselect closely on both streams (it pays a
    # 9-element sample per round but needs fewer rounds).
    assert results[("random", "quickselect")] > results[
        ("random", "bfprt")
    ]
    assert results[("ascending-adversary", "bfprt")] > 0.05 * results[
        ("ascending-adversary", "quickselect")
    ]
    assert results[("random", "sampled-pivot")] > 0.3 * results[
        ("random", "quickselect")
    ]

    def run():
        s = QMax(q, GAMMA, deterministic_select=True)
        add = s.add
        for item_id, val in random_stream:
            add(item_id, val)

    benchmark(run)
