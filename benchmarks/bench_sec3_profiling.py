"""§3: quantifying the potential speedup — fraction of application time
spent updating the top-q data structure.

Paper numbers (150M trace): Priority Sampling spends 50-58% of its time
in the structure at q=1e4, network-wide HH 22-28%, PBA 18-19%, growing
to 96% at q=1e7.  We measure the same fraction by timing each
application twice: once complete, once with the reservoir update
replaced by a no-op (everything else — hashing, priority computation —
identical).
"""

from __future__ import annotations

import time

from bench_common import emit_table
from conftest import repeats, scaled

from repro.apps.pba import PriorityBasedAggregation
from repro.apps.priority_sampling import PrioritySampler
from repro.bench.workloads import trace_streams
from repro.netwide.nmp import MeasurementPoint
from repro.traffic.packet import Packet


class _NoopReservoir:
    """Absorbs add/set_value calls without any work."""

    def add(self, item_id, val):
        return None

    def set_value(self, key, val):
        return None

    def take_evicted_keys(self):
        return []


def _time(fn, stream) -> float:
    best = float("inf")
    for _ in range(repeats()):
        start = time.perf_counter()
        fn(stream)
        best = min(best, time.perf_counter() - start)
    return best


def _ps_run(q, backend, noop):
    def run(stream):
        ps = PrioritySampler(q, backend=backend, seed=1)
        if noop:
            ps._reservoir = _NoopReservoir()
        update = ps.update
        for i, (key, w) in enumerate(stream):
            update(i, w)  # distinct keys

    return run


def _pba_run(q, backend, noop):
    def run(stream):
        pba = PriorityBasedAggregation(q, backend=backend, seed=1)
        if noop:
            pba._reservoir = _NoopReservoir()
        update = pba.update
        for key, w in stream:
            update(key, w)

    return run


def _nwhh_run(q, backend, noop):
    def run(stream):
        nmp = MeasurementPoint(q, backend=backend, seed=1)
        if noop:
            nmp._reservoir = _NoopReservoir()
        observe = nmp.observe
        for i, (key, w) in enumerate(stream):
            observe(Packet(key, 0, 0, 0, 6, w, packet_id=i))

    return run


def test_sec3_time_in_data_structure(benchmark):
    n = scaled(60_000, minimum=10_000)
    stream = trace_streams(n)["caida16"]
    q = scaled(1_000, minimum=100)

    rows = []
    fractions = {}
    for app, make_run in (
        ("priority-sampling", _ps_run),
        ("network-wide-hh", _nwhh_run),
        ("pba", _pba_run),
    ):
        for backend in ("heap", "skiplist"):
            if app == "pba" and backend == "skiplist":
                backend = "skiplist"  # updatable flavour
            full = _time(make_run(q, backend, noop=False), stream)
            without = _time(make_run(q, backend, noop=True), stream)
            frac = max(0.0, 1.0 - without / full)
            fractions[(app, backend)] = frac
            rows.append([app, backend, f"{frac:.0%}"])
    emit_table(
        "Section 3: fraction of app time spent in the top-q structure",
        ["application", "structure", "time in structure"],
        rows,
        config={"q": q, "items": n, "trace": "caida16"},
        metrics=[
            {"name": f"{app}/{backend}", "value": frac, "unit": "ratio"}
            for (app, backend), frac in fractions.items()
        ],
    )

    # Shape: the structure update is a substantial fraction for at
    # least the sampling applications (paper: 18%-58% at q=1e4).
    assert fractions[("priority-sampling", "heap")] > 0.10
    assert fractions[("priority-sampling", "skiplist")] > 0.15

    benchmark(lambda: _ps_run(q, "heap", noop=False)(stream))


def test_sec3_qmax_phase_breakdown(benchmark):
    """Where q-MAX itself spends its time, from the live tracing spans.

    The §3 argument says the structure update dominates; ``repro.obs``
    lets us go one level deeper with ``trace=True``: the maintenance
    histograms split structure time into Select, pivot partition, and
    iteration-boundary work, and whatever remains of wall time is the
    per-item admission filter — the O(1) path the paper's amortization
    argument makes cheap.  The breakdown runs once per available
    maintenance kernel: the deamortized ``stepwise`` schedule and the
    one-shot ``numpy``/``native`` kernels, whose select/pivot spans
    come from the kernels' own phase callbacks, so the attribution
    stays honest in every mode (a drive that finishes the Select and
    runs into the pivot splits its span at the transition instead of
    charging everything to one phase).
    """
    from repro.core.kernels import kernel_available
    from repro.core.qmax import QMax
    from repro.obs import MetricsRegistry

    n = scaled(120_000, minimum=20_000)
    stream = trace_streams(n)["caida16"]
    ids = list(range(len(stream)))
    vals = [float(w) for _key, w in stream]
    q = scaled(1_000, minimum=100)

    kernels = ["stepwise"]
    kernels += [k for k in ("numpy", "native") if kernel_available(k)]

    def run(kernel):
        reg = MetricsRegistry()
        kw = {} if kernel == "stepwise" else {"kernel": kernel}
        qm = QMax(q, 0.25, metrics=reg, trace=True, **kw)
        start = time.perf_counter()
        qm.add_many(ids, vals)
        total = time.perf_counter() - start
        return reg, total

    rows = []
    metrics = []
    per_kernel = {}
    for kernel in kernels:
        best_total = float("inf")
        best_reg = None
        for _ in range(repeats()):
            reg, total = run(kernel)
            if total < best_total:
                best_total, best_reg = total, reg

        phase_seconds = {}
        for sample in best_reg.snapshot()["metrics"]:
            if sample["name"] == "repro_qmax_maintenance_seconds":
                assert sample["labels"]["kernel"] == kernel
                phase_seconds[sample["labels"]["phase"]] = sample["sum"]
        maintenance = sum(phase_seconds.values())
        admission = max(0.0, best_total - maintenance)
        per_kernel[kernel] = (phase_seconds, maintenance, best_total)

        for phase, sec in sorted(phase_seconds.items()):
            rows.append([
                kernel, phase, f"{sec * 1e3:.2f}",
                f"{sec / best_total:.0%}",
            ])
            metrics.append({
                "name": f"phase/{kernel}/{phase}",
                "value": sec / best_total, "unit": "ratio",
            })
        rows.append([
            kernel, "admission (rest)", f"{admission * 1e3:.2f}",
            f"{admission / best_total:.0%}",
        ])
        metrics.append({
            "name": f"phase/{kernel}/admission",
            "value": admission / best_total, "unit": "ratio",
        })

    emit_table(
        "Section 3: q-MAX time breakdown from repro.obs spans, by kernel",
        ["kernel", "phase", "ms", "fraction of wall time"],
        rows,
        benchmark="sec3_qmax_phases",
        config={"q": q, "items": n, "trace": "caida16",
                "kernels": kernels},
        metrics=metrics,
    )

    # Shape: every traced phase was actually exercised in every mode,
    # and the accounting is sane (maintenance fits inside wall time).
    for kernel, (phase_seconds, maintenance, total) in per_kernel.items():
        assert set(phase_seconds) == {"select", "pivot", "boundary"}, kernel
        assert maintenance <= total, kernel
        for phase, sec in phase_seconds.items():
            assert sec > 0.0, (kernel, phase)

    benchmark(lambda: run(kernels[-1])[1])
