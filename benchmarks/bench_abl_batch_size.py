"""Ablation: the batch-first update path (``add_many`` burst size).

The paper's throughput argument rests on the common case being one
O(1) comparison (``val <= Ψ`` → discard); in CPython a per-item
``add()`` call pays interpreter dispatch on top, which dominates (see
``bench_sec3_profiling.py``).  ``add_many`` amortizes that dispatch
over a burst — one Python call, one C-level max() for the all-discard
case, a hoisted-locals loop otherwise — without changing the retained
set (``tests/test_fuzz.py`` proves the equivalence).

This ablation sweeps the burst size over the skewed trace workload and
reports the pure-Python and (when installed) NumPy paths separately:
the NumPy path pays an array round-trip per burst, so it only wins at
large bursts, while the pure path already wins at DPDK-like bursts of
32-64.
"""

from __future__ import annotations

from bench_common import emit_table
from conftest import measure_backend, repeats, scaled

from repro._compat import HAVE_NUMPY
from repro.bench.runner import measure_throughput, measure_throughput_batched
from repro.bench.workloads import trace_streams
from repro.core.qmax import QMax

BATCHES = (1, 8, 64, 512)
GAMMA = 0.25
TRACE = "caida16"


def test_ablation_batch_size(benchmark):
    n = scaled(150_000, minimum=20_000)
    stream = [(k, float(w)) for k, w in trace_streams(n)[TRACE]]
    q = scaled(500, minimum=128)

    base = measure_throughput(
        "per-item add()",
        lambda: QMax(q, GAMMA, use_numpy=False).add,
        stream,
        repeats=repeats(),
    ).mpps

    rows = [["add()", "-", base, 1.0]]
    speedup = {}
    for batch in BATCHES:
        m = measure_throughput_batched(
            f"add_many pure bs={batch}",
            lambda: QMax(q, GAMMA, use_numpy=False).add_many,
            stream,
            batch,
            repeats=repeats(),
        )
        speedup[batch] = m.mpps / base
        rows.append(["add_many/pure", batch, m.mpps, speedup[batch]])
    numpy_speedup = {}
    if HAVE_NUMPY:
        for batch in BATCHES:
            m = measure_throughput_batched(
                f"add_many numpy bs={batch}",
                lambda: QMax(q, GAMMA, use_numpy=True).add_many,
                stream,
                batch,
                repeats=repeats(),
            )
            numpy_speedup[batch] = m.mpps / base
            rows.append(
                ["add_many/numpy", batch, m.mpps, numpy_speedup[batch]]
            )
    emit_table(
        f"Ablation: add_many burst size (q={q}, gamma={GAMMA}, "
        f"trace={TRACE})",
        ["path", "batch", "MPPS", "vs per-item"],
        rows,
        value_columns={"MPPS": "mpps", "vs per-item": "ratio"},
        config={"q": q, "gamma": GAMMA, "trace": TRACE, "items": n,
                "batches": BATCHES},
    )

    # Shape: batch=1 through the batch API costs extra dispatch (the
    # honest overhead); DPDK-like bursts (>= 64) amortize it to >= 2x
    # per-item throughput on the pure path, and bigger bursts never
    # hurt.  The NumPy path is reported above but not gated: its array
    # round-trip only pays off at large bursts.
    assert speedup[1] < 1.0
    assert speedup[64] >= 2.0, speedup
    assert speedup[512] >= 2.0, speedup
    assert speedup[512] >= 0.9 * speedup[64], speedup

    def run():
        qmax = QMax(q, GAMMA, use_numpy=False)
        add_many = qmax.add_many
        bs = 64
        for start in range(0, len(stream), bs):
            chunk = stream[start:start + bs]
            add_many([i for i, _ in chunk], [v for _, v in chunk])

    benchmark(run)
