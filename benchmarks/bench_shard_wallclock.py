"""Multi-core wall-clock throughput of the zero-copy worker engine.

Unlike ``bench_abl_shard_scaling`` — whose per-shard-core rows model a
one-core-per-shard deployment by timing shards independently — this
benchmark times the *real thing*: producer feeding worker processes
through the zero-copy shared-memory rings, barrier included, against a
single-process ``QMax`` fed the identical bursts.  The row recorded is
end-to-end MPPS on this host, so it captures everything the deployment
would: packing, ring hand-off, the ring-side Ψ̂ prefilter, and actual
core-level parallelism.

The admission-heavy regime (recency-growing priorities) is used
because its maintenance work is linear in items — the regime where
sharding pays and where the paper's multi-core claim lives.

The >1.5× @ 4-shards acceptance gate only makes sense where 4 worker
processes can actually run in parallel, so it is armed on hosts with
>= 4 CPUs and the NumPy stack; elsewhere the rows are still recorded
(the machine fingerprint stored with each row carries the CPU count so
readers can interpret them).
"""

from __future__ import annotations

import os
import time

from bench_common import emit_table
from conftest import max_shards, repeats, scaled

from repro._compat import HAVE_NUMPY
from repro.core.qmax import QMax
from repro.parallel.engine import ShardedQMaxEngine
from repro.traffic.synthetic import PROFILES, generate_packets

Q = 512
GAMMA = 0.25
BURST = 512

#: The wall-clock gate: 4 sharded worker processes must beat one
#: single-process structure by this factor, where the host can run
#: them concurrently at all.
GATE_SHARDS = 4
GATE_SPEEDUP = 1.5


def _admission_heavy_stream(n: int, seed: int = 7):
    packets = generate_packets(
        PROFILES["caida16"], n, seed=seed, n_flows=max(64, n // 20)
    )
    ids = [p.src_ip for p in packets]
    rnd = __import__("random").Random(11)
    # Strictly advancing priorities defeat the admission filter
    # (PBA/LRFU shape): every record is real work for the backend.
    vals = [i + rnd.random() for i in range(n)]
    return ids, vals


def _chunks(ids, vals, burst):
    return [
        (ids[lo : lo + burst], vals[lo : lo + burst])
        for lo in range(0, len(ids), burst)
    ]


def _time_baseline(batches, n_repeats):
    best = float("inf")
    for _ in range(n_repeats):
        backend = QMax(Q, GAMMA)
        start = time.perf_counter()
        for bids, bvals in batches:
            backend.add_many(bids, bvals)
        best = min(best, time.perf_counter() - start)
    return best


def _time_engine(batches, s, n_repeats):
    best = float("inf")
    mode = "?"
    zero_copy = False
    for _ in range(n_repeats):
        engine = ShardedQMaxEngine(
            Q, n_shards=s, gamma=GAMMA, mode="auto", burst=BURST
        )
        try:
            start = time.perf_counter()
            for bids, bvals in batches:
                engine.add_many(bids, bvals)
            engine.sync()
            best = min(best, time.perf_counter() - start)
            mode = engine.mode
            zero_copy = engine.mode == "process" and (
                engine._rings[0].dtype is not None
            )
        finally:
            engine.close()
    return best, mode, zero_copy


def test_shard_wallclock(benchmark):
    n = scaled(120_000, minimum=30_000)
    shard_counts = sorted({1, 2, GATE_SHARDS, max_shards()})
    n_repeats = max(1, repeats() - 1)
    cpus = os.cpu_count() or 1

    ids, vals = _admission_heavy_stream(n)
    batches = _chunks(ids, vals, BURST)

    base_s = _time_baseline(batches, n_repeats)
    base_mpps = n / base_s / 1e6
    rows = [["single-process", "-", round(base_mpps, 3), "1.00x"]]
    metrics = [{"name": "wallclock/baseline", "value": round(base_mpps, 4),
                "unit": "mpps"}]

    speedups = {}
    modes = {}
    for s in shard_counts:
        secs, mode, zero_copy = _time_engine(batches, s, n_repeats)
        mpps = n / secs / 1e6
        speedups[s] = mpps / base_mpps
        modes[s] = mode
        label = f"engine/{mode}" + ("/zero-copy" if zero_copy else "")
        rows.append([label, s, round(mpps, 3), f"{speedups[s]:.2f}x"])
        metrics.append({
            "name": f"wallclock/{mode}/shards={s}",
            "value": round(mpps, 4),
            "unit": "mpps",
        })

    emit_table(
        f"Wall-clock: worker engine vs single process (q={Q}, "
        f"gamma={GAMMA}, n={n}, burst={BURST}, cpus={cpus})",
        ["path", "shards", "MPPS", "speedup vs 1-process"],
        rows,
        metrics=metrics,
        config={
            "q": Q,
            "gamma": GAMMA,
            "burst": BURST,
            "items": n,
            "shard_counts": shard_counts,
            "repeats": n_repeats,
            "cpus": cpus,
            "regime": "admission-heavy",
            "trace": "caida16-profile flow ids",
            "metric_note": (
                "end-to-end wall clock: producer feed + ring hand-off "
                "+ worker processing + final barrier, vs a single "
                "QMax fed the identical bursts.  Multi-core speedup "
                "requires >= shards physical CPUs; see config.cpus."
            ),
        },
    )

    # The multi-core acceptance gate, where the host can express it.
    if (
        HAVE_NUMPY
        and cpus >= GATE_SHARDS
        and modes.get(GATE_SHARDS) == "process"
    ):
        assert speedups[GATE_SHARDS] > GATE_SPEEDUP, (
            f"zero-copy engine at {GATE_SHARDS} shards reached only "
            f"{speedups[GATE_SHARDS]:.2f}x over single-process "
            f"(gate: >{GATE_SPEEDUP}x on a {cpus}-CPU host)"
        )

    def run():
        backend = QMax(Q, GAMMA)
        for bids, bvals in batches:
            backend.add_many(bids, bvals)

    benchmark(run)
