"""Figure 10: interval vs sliding-window q-MAX along the trace.

Paper shape: the interval q-MAX accelerates as the trace progresses
(rising admission threshold); the sliding q-MAX's throughput is flat —
its blocks reset, so the filter never tightens beyond one window.
"""

from __future__ import annotations

import time

from bench_common import emit_series
from conftest import repeats, scaled

from repro.bench.workloads import value_stream
from repro.core.qmax import QMax
from repro.core.sliding import SlidingQMax

CHECKPOINTS = 5


def _segment_rates(factory, stream):
    seg = len(stream) // CHECKPOINTS
    best = [float("inf")] * CHECKPOINTS
    for _ in range(repeats()):
        s = factory()
        add = s.add
        for c in range(CHECKPOINTS):
            chunk = stream[c * seg:(c + 1) * seg]
            start = time.perf_counter()
            for item_id, val in chunk:
                add(item_id, val)
            best[c] = min(best[c], time.perf_counter() - start)
    return [seg / t / 1e6 for t in best]


def test_fig10_interval_vs_sliding(benchmark):
    stream = value_stream(scaled(200_000, minimum=50_000))
    window = len(stream) // 10
    qs = (scaled(500, minimum=64), scaled(2_000, minimum=256))
    series = {}
    for q in qs:
        series[f"interval q={q}"] = _segment_rates(
            lambda: QMax(q, 0.1), stream
        )
        series[f"sliding q={q}"] = _segment_rates(
            lambda: SlidingQMax(q, window, tau=1.0), stream
        )
    xs = [
        (c + 1) * (len(stream) // CHECKPOINTS) for c in range(CHECKPOINTS)
    ]
    emit_series(
        "Figure 10: interval vs sliding q-MAX MPPS along the trace "
        f"(gamma=0.1, tau=1, W={window})",
        "items",
        xs,
        series,
        config={"gamma": 0.1, "tau": 1.0, "window": window, "qs": qs},
    )

    # Shape: interval accelerates substantially; sliding stays flat
    # (its last-segment rate is within a modest factor of its first).
    for q in qs:
        interval = series[f"interval q={q}"]
        sliding = series[f"sliding q={q}"]
        assert interval[-1] > 1.3 * interval[0], (q, interval)
        assert sliding[-1] < 2.0 * sliding[0], (q, sliding)

    q = qs[0]

    def run():
        s = SlidingQMax(q, window, tau=1.0)
        add = s.add
        for item_id, val in stream:
            add(item_id, val)

    benchmark(run)
