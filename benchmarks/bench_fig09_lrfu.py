"""Figure 9: LRFU cache throughput (c = 0.75) on the P1-style trace.

Paper shape: q-MAX LRFU is up to ×4.13 faster than the alternatives;
the std-heap baseline pays O(q) per hit, the skip list O(log q) with
high constants; small caches need a larger γ to win.
"""

from __future__ import annotations

import time

from bench_common import emit_series
from conftest import repeats, scaled

from repro.apps.lrfu import make_lrfu
from repro.bench.workloads import cache_stream

GAMMAS = (0.05, 0.25, 1.0)
DECAY = 0.75


def _mrps(make_cache, trace) -> float:
    best = float("inf")
    for _ in range(repeats()):
        cache = make_cache()
        access = cache.access
        start = time.perf_counter()
        for key in trace:
            access(key)
        best = min(best, time.perf_counter() - start)
    return len(trace) / best / 1e6


def test_fig09_lrfu_throughput(benchmark):
    trace = list(cache_stream(scaled(60_000, minimum=15_000)))
    qs = (scaled(500, minimum=64), scaled(5_000, minimum=512))
    series = {}
    for q in qs:
        series[f"qmax q={q}"] = [
            _mrps(lambda: make_lrfu("qmax", q, DECAY, gamma=g), trace)
            for g in GAMMAS
        ]
        series[f"qmax-deamortized q={q}"] = [
            _mrps(
                lambda: make_lrfu("qmax-deamortized", q, DECAY, gamma=g),
                trace,
            )
            for g in GAMMAS
        ]
        for backend in ("heap", "skiplist", "indexedheap"):
            rate = _mrps(lambda: make_lrfu(backend, q, DECAY), trace)
            series[f"{backend} q={q} (ref)"] = [rate] * len(GAMMAS)
    emit_series(
        f"Figure 9: LRFU throughput in MRPS (c={DECAY}, P1-style trace)",
        "gamma",
        list(GAMMAS),
        series,
        unit="mrps",
        config={"decay": DECAY, "qs": qs, "gammas": GAMMAS,
                "trace_len": len(trace)},
    )

    # Shape: q-MAX LRFU beats the std-heap (O(q)) and skip-list
    # baselines at reasonable gamma for the larger cache.
    q = qs[-1]
    ours = max(series[f"qmax q={q}"])
    assert ours > series[f"heap q={q} (ref)"][0]
    assert ours > series[f"skiplist q={q} (ref)"][0]

    def run():
        cache = make_lrfu("qmax", qs[0], DECAY, gamma=0.25)
        access = cache.access
        for key in trace:
            access(key)

    benchmark(run)
