"""Figure 12: OVS throughput with monitoring, 10G link, 64B packets.

Paper shape: at q = 1e4 the heap and q-MAX keep up with vanilla OVS
(skip list already degrades); as q grows the heap falls off while
q-MAX stays near line rate until q = 1e7.
"""

from __future__ import annotations

from bench_common import emit_series
from conftest import scaled
from ovs_common import datapath_pps, min_size_trace, ovs_sweep

from repro.switch.linerate import TEN_GBPS

QS = (100, 1_000, 10_000)
BACKENDS = ("qmax", "heap", "skiplist")


def test_fig12_ovs_10g(benchmark):
    pkts = min_size_trace(scaled(40_000, minimum=10_000))
    results = ovs_sweep("reservoir", QS, BACKENDS, TEN_GBPS, pkts, 64,
                        gamma=1.0)
    series = {"vanilla": [results["vanilla"]] * len(QS)}
    for backend in BACKENDS:
        series[backend] = [results[(backend, q)] for q in QS]
    emit_series(
        "Figure 12: OVS 10G throughput (Gbps) vs q, 64B packets "
        "(normalized to vanilla datapath)",
        "q",
        list(QS),
        series,
        unit="gbps",
        config={"qs": QS, "gamma": 1.0, "frame_bytes": 64,
                "link": "10G", "backends": BACKENDS},
    )

    # Shape: q-MAX sustains more of the line rate than the skip list at
    # every q, and more than the heap at the largest q.
    for q in QS:
        assert results[("qmax", q)] >= results[("skiplist", q)], q
    q_big = QS[-1]
    assert results[("qmax", q_big)] >= 0.9 * results[("heap", q_big)]

    benchmark(
        lambda: datapath_pps("reservoir", QS[0], "qmax", 1.0, pkts)
    )
