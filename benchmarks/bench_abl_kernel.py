"""Ablation: maintenance kernels (stepwise vs numpy vs native).

The kernel registry (``repro.core.kernels``) lets ``QMax`` execute its
per-iteration maintenance — Select the q-th largest of the merged
region, then partition — either deamortized (the resumable generators,
``stepwise``) or as one opaque fast call per iteration boundary
(``numpy``: one ``np.argpartition`` + two fancy-index copies;
``native``: compiled quickselect + Dutch-national-flag partition).
This ablation measures the kernel × q × γ throughput grid on two
workloads:

* ``random`` — uniform values; Ψ converges and the admission filter
  rejects most items, so maintenance is a modest share of wall time.
* ``ascending`` — every item is admitted (the paper's worst case), so
  maintenance dominates and the kernel choice is the whole story.

Metric names carry the *nominal* q tag (``1k``/``10k``), not the
REPRO_SCALE-dependent value, so trajectory rows stay comparable across
scales.  Kernels unavailable on this host are skipped (the registry
would silently fall back, which would record a mislabelled number).
"""

from __future__ import annotations

from bench_common import emit_table
from conftest import repeats, scaled

from repro._compat import HAVE_NUMPY
from repro.bench.runner import measure_throughput_batched
from repro.bench.workloads import value_stream
from repro.core.kernels import kernel_available
from repro.core.qmax import QMax

#: Burst size of the batched driver (matches the shard-worker drain
#: burst, so the numbers transfer to the engine hot path).
BURST = 512

GAMMAS = (0.25, 1.0)

#: (metric tag, nominal q) — tags keep metric names scale-stable.
Q_POINTS = (("1k", 1_000), ("10k", 10_000))


def _kernels():
    names = ["stepwise"]
    names += [k for k in ("numpy", "native") if kernel_available(k)]
    return names


def _streams(n):
    return (
        ("random", list(value_stream(n, seed=3))),
        ("ascending", [(i, float(i)) for i in range(n)]),
    )


def test_ablation_kernel(benchmark):
    n = scaled(150_000, minimum=30_000)
    kernels = _kernels()

    rows = []
    metrics = []
    mpps = {}
    for wname, stream in _streams(n):
        for qtag, qnom in Q_POINTS:
            q = scaled(qnom, minimum=128)
            for gamma in GAMMAS:
                for kname in kernels:
                    kernel = None if kname == "stepwise" else kname
                    m = measure_throughput_batched(
                        f"{wname}/q{qtag}/g{gamma:g}/{kname}",
                        lambda k=kernel: QMax(q, gamma, kernel=k).add_many,
                        stream,
                        BURST,
                        repeats=repeats(),
                    )
                    mpps[(wname, qtag, gamma, kname)] = m.mpps
                    rows.append([wname, qtag, gamma, kname, m.mpps])
                    metrics.append({
                        "name": f"{wname}/q{qtag}/g{gamma:g}/{kname}",
                        "value": m.mpps,
                        "unit": "mpps",
                    })

    emit_table(
        f"Ablation: maintenance kernel (items={n}, burst={BURST})",
        ["workload", "q", "gamma", "kernel", "MPPS"],
        rows,
        benchmark="abl_kernel",
        config={"items": n, "burst": BURST, "gammas": GAMMAS,
                "q_points": [t for t, _ in Q_POINTS],
                "kernels": kernels},
        metrics=metrics,
    )

    # Shape: on the admission-heavy workload at the paper's q=1e4
    # point the one-shot numpy kernel must clear 2x the deamortized
    # schedule (measured ~6x on one idle core; the slack absorbs noisy
    # shared-CPU runners), and the native kernel must not lose to
    # numpy beyond noise.
    if HAVE_NUMPY:
        key = ("ascending", "10k", 1.0)
        assert mpps[key + ("numpy",)] >= 2.0 * mpps[key + ("stepwise",)], (
            mpps[key + ("numpy",)], mpps[key + ("stepwise",)],
        )
        if kernel_available("native"):
            assert mpps[key + ("native",)] >= 0.9 * mpps[key + ("numpy",)], (
                mpps[key + ("native",)], mpps[key + ("numpy",)],
            )

    best = kernels[-1]
    q = scaled(10_000, minimum=128)
    stream = dict(_streams(n))["ascending"]
    kernel = None if best == "stepwise" else best

    def run():
        qm = QMax(q, 1.0, kernel=kernel)
        add_many = qm.add_many
        ids = [i for i, _ in stream]
        vals = [v for _, v in stream]
        for i in range(0, len(ids), BURST):
            add_many(ids[i : i + BURST], vals[i : i + BURST])

    benchmark(run)
