"""Ablation: UnivMon (§2.4) and DBM (§2.5) update throughput by backend.

The paper claims both applications gain from replacing their heap with
q-MAX (UnivMon's per-level heavy-hitter tracker; DBM's minimum-cost
pair lookup).  Neither appears in the paper's evaluation figures, so
this is an extension bench rather than a figure reproduction.
"""

from __future__ import annotations

import time

from bench_common import emit_table
from conftest import repeats, scaled

from repro.apps.dbm import DynamicBucketMerge
from repro.apps.univmon import UnivMon
from repro.bench.workloads import trace_streams


def _univmon_rate(backend, stream, q) -> float:
    best = float("inf")
    for _ in range(repeats()):
        um = UnivMon(levels=6, q=q, width=512, depth=4,
                     backend=backend, seed=1)
        update = um.update
        start = time.perf_counter()
        for key, _w in stream:
            update(key)
        best = min(best, time.perf_counter() - start)
    return len(stream) / best / 1e6


def _dbm_rate(backend, stream, m) -> float:
    best = float("inf")
    for _ in range(repeats()):
        dbm = DynamicBucketMerge(m, bucket_seconds=0.001,
                                 backend=backend)
        add = dbm.add
        start = time.perf_counter()
        t = 0.0
        for _key, weight in stream:
            t += 1e-4
            add(t, float(weight))
        best = min(best, time.perf_counter() - start)
    return len(stream) / best / 1e6


def test_ablation_univmon_dbm(benchmark):
    stream = list(trace_streams(scaled(20_000, minimum=5_000))["caida16"])
    q = scaled(256, minimum=32)

    rows = []
    univ = {}
    for backend in ("qmax", "heap", "skiplist"):
        univ[backend] = _univmon_rate(backend, stream, q)
        rows.append(["univmon", backend, univ[backend]])
    dbm = {}
    for backend in ("qmax", "heap"):
        dbm[backend] = _dbm_rate(backend, stream, scaled(64, minimum=16))
        rows.append(["dbm", backend, dbm[backend]])
    emit_table(
        f"Ablation: UnivMon / DBM update MPPS by tracker backend (q={q})",
        ["application", "backend", "MPPS"],
        rows,
        config={"q": q, "items": len(stream)},
    )

    # Shape: q-MAX tracker at least matches the O(q)-update heap
    # tracker in UnivMon; DBM's lazy tracker is within range of the
    # indexed heap (both are far from the bottleneck there: the sketch
    # updates dominate UnivMon, bucket management dominates DBM).
    assert univ["qmax"] > 0.8 * univ["heap"]
    assert dbm["qmax"] > 0.4 * dbm["heap"]

    def run():
        um = UnivMon(levels=6, q=q, width=512, depth=4, backend="qmax",
                     seed=1)
        update = um.update
        for key, _w in stream:
            update(key)

    benchmark(run)
