"""Figure 13: OVS 10G throughput for q-MAX at small γ values.

Paper shape: q-MAX keeps up with vanilla OVS even for small γ; only at
the largest q do small-γ configurations leave a visible gap.
"""

from __future__ import annotations

from bench_common import emit_series
from conftest import scaled
from ovs_common import datapath_pps, min_size_trace, ovs_sweep

from repro.switch.linerate import TEN_GBPS

QS = (100, 1_000, 10_000)
GAMMAS = (0.05, 0.25, 1.0)


def test_fig13_ovs_10g_gamma(benchmark):
    pkts = min_size_trace(scaled(40_000, minimum=10_000))
    vanilla_pps = datapath_pps("none", 1, "qmax", 0.25, pkts)
    line = TEN_GBPS.gbps_at(TEN_GBPS.line_rate_pps(64), 64)
    series = {"vanilla": [line] * len(QS)}
    results = {}
    for gamma in GAMMAS:
        row = []
        for q in QS:
            pps = datapath_pps("reservoir", q, "qmax", gamma, pkts)
            gbps = line * min(1.0, pps / vanilla_pps)
            results[(gamma, q)] = gbps
            row.append(gbps)
        series[f"qmax g={gamma}"] = row
    emit_series(
        "Figure 13: OVS 10G throughput (Gbps) for q-MAX, varying gamma",
        "q",
        list(QS),
        series,
        unit="gbps",
        config={"qs": QS, "gammas": GAMMAS, "frame_bytes": 64,
                "link": "10G"},
    )

    # Shape: at small q the gamma choice is immaterial (all within a
    # factor of ~1.5 of each other), and larger gamma never hurts at
    # the largest q.  (The paper additionally shows q-MAX ≈ vanilla;
    # our simulated pipeline is far cheaper relative to one Python
    # hash+add than real OVS is, which exaggerates every monitor's
    # overhead — see EXPERIMENTS.md.)
    small_q = [results[(g, QS[0])] for g in GAMMAS]
    assert max(small_q) < 1.6 * min(small_q), small_q
    assert results[(GAMMAS[-1], QS[-1])] >= 0.8 * results[
        (GAMMAS[0], QS[-1])
    ]

    benchmark(
        lambda: datapath_pps("reservoir", QS[0], "qmax", 0.25, pkts)
    )
