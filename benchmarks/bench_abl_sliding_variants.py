"""Ablation: Algorithm 3 vs Algorithm 4 vs Theorem 7 (sliding variants).

The paper's progression trades update time against query time:

* Algorithm 3 — O(1) update, O(q·τ⁻¹) query;
* Algorithm 4 (c levels) — O(c) update, O(q·c·τ^(−1/c)) query;
* Theorem 7 (buffered) — O(1) amortized update, fast queries.

This ablation measures both axes for a small τ where they diverge.
"""

from __future__ import annotations

import time

from bench_common import emit_table
from conftest import repeats, scaled

from repro.bench.runner import measure_throughput
from repro.bench.workloads import value_stream
from repro.core.hierarchical import (
    BufferedSlidingQMax,
    HierarchicalSlidingQMax,
)
from repro.core.sliding import SlidingQMax

TAU = 0.02


def _query_rate(structure, n_queries: int = 20) -> float:
    start = time.perf_counter()
    for _ in range(n_queries):
        structure.query()
    return n_queries / (time.perf_counter() - start)


def test_ablation_sliding_variants(benchmark):
    stream = list(value_stream(scaled(60_000, minimum=20_000)))
    q = scaled(200, minimum=32)
    window = len(stream) // 3

    variants = {
        "basic (Alg 3)": lambda: SlidingQMax(q, window, TAU),
        "hierarchical c=2 (Alg 4)": lambda: HierarchicalSlidingQMax(
            q, window, TAU, levels=2
        ),
        "hierarchical c=3 (Alg 4)": lambda: HierarchicalSlidingQMax(
            q, window, TAU, levels=3
        ),
        "buffered (Thm 7)": lambda: BufferedSlidingQMax(
            q, window, TAU, levels=2
        ),
    }

    rows = []
    update_mpps = {}
    query_qps = {}
    for name, factory in variants.items():
        m = measure_throughput(
            name, lambda f=factory: f().add, stream, repeats=repeats()
        )
        filled = factory()
        for item_id, val in stream:
            filled.add(item_id, val)
        qps = _query_rate(filled)
        update_mpps[name] = m.mpps
        query_qps[name] = qps
        rows.append([name, m.mpps, qps])
    emit_table(
        f"Ablation: sliding variants (q={q}, W={window}, tau={TAU})",
        ["variant", "update MPPS", "queries/sec"],
        rows,
        value_columns={"update MPPS": "mpps", "queries/sec": "qps"},
        config={"q": q, "window": window, "tau": TAU,
                "items": len(stream)},
    )

    # Shape: hierarchical queries beat the basic variant's; the
    # buffered variant's updates beat the multi-level hierarchical's.
    assert query_qps["hierarchical c=2 (Alg 4)"] > query_qps[
        "basic (Alg 3)"
    ]
    assert update_mpps["buffered (Thm 7)"] > update_mpps[
        "hierarchical c=3 (Alg 4)"
    ]

    def run():
        s = SlidingQMax(q, window, TAU)
        add = s.add
        for item_id, val in stream:
            add(item_id, val)

    benchmark(run)
