"""Figure 16: OVS 40G throughput for all structures as a function of q.

Paper shape: every structure meets 40G line rate for q ≤ 1e5; at
q = 1e6 the heap loses ~15% and the skip list ~41% while q-MAX loses
under 3%; at q = 1e7 heap and skip list collapse below 10G while
q-MAX (γ = 1) still reaches 36G.
"""

from __future__ import annotations

from bench_common import emit_series
from conftest import scaled
from ovs_common import datapath_pps, ovs_sweep, real_size_trace

from repro.switch.linerate import FORTY_GBPS

QS = (100, 1_000, 5_000)
BACKENDS = ("qmax", "heap", "skiplist")
FRAME = 1070


def test_fig16_ovs_40g(benchmark):
    # Keep the trace an order of magnitude longer than the largest q —
    # the paper's regime (150M items vs q <= 1e7); shorter traces never
    # leave reservoir warm-up, where every structure pays insert cost.
    pkts = real_size_trace(scaled(60_000, minimum=50_000))
    results = ovs_sweep("reservoir", QS, BACKENDS, FORTY_GBPS, pkts,
                        FRAME, gamma=1.0)
    series = {"vanilla": [results["vanilla"]] * len(QS)}
    for backend in BACKENDS:
        series[backend] = [results[(backend, q)] for q in QS]
    emit_series(
        "Figure 16: OVS 40G throughput (Gbps) vs q, real-size packets",
        "q",
        list(QS),
        series,
        unit="gbps",
        config={"qs": QS, "gamma": 1.0, "frame_bytes": FRAME,
                "link": "40G", "backends": BACKENDS},
    )

    # Shape: q-MAX >= skiplist at every q and >= heap at the largest q.
    for q in QS:
        assert results[("qmax", q)] >= results[("skiplist", q)], q
    q_big = QS[-1]
    assert results[("qmax", q_big)] >= 0.9 * results[("heap", q_big)]

    benchmark(
        lambda: datapath_pps("reservoir", QS[0], "qmax", 1.0, pkts)
    )
