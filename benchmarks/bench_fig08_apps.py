"""Figure 8: application throughput on the three traces.

Subfigures (a,b) Priority Sampling, (c,d) network-wide heavy hitters,
(e,f) Priority-Based Aggregation — each with q-MAX / Heap / SkipList
backends on CAIDA'16-, CAIDA'18- and UNIV1-style traces.

Paper shape: q-MAX (γ = 5%) is the fastest backend for every
application on every trace; PBA shows the starkest gap because the
heap baseline pays O(q) per value update.
"""

from __future__ import annotations

from bench_common import emit_table
from conftest import batch_size, repeats, scaled

from repro.apps.pba import PriorityBasedAggregation
from repro.apps.priority_sampling import PrioritySampler
from repro.bench.runner import measure_throughput, measure_throughput_batched
from repro.bench.workloads import trace_streams
from repro.netwide.nmp import MeasurementPoint
from repro.traffic.packet import Packet

GAMMA = 0.25
TRACES = ("caida16", "caida18", "univ1")


def _ps_consumer(q, backend):
    def make():
        ps = PrioritySampler(q, backend=backend, seed=1)
        update = ps.update
        counter = iter(range(1 << 60))

        def consume(key, weight):
            update(next(counter), weight)  # distinct keys

        return consume

    return make


def _ps_consumer_batched(q, backend):
    def make():
        ps = PrioritySampler(q, backend=backend, seed=1)
        update_many = ps.update_many
        next_key = [0]

        def consume(keys, weights):
            base = next_key[0]
            next_key[0] = base + len(keys)
            update_many(range(base, next_key[0]), weights)  # distinct

        return consume

    return make


def _pba_consumer(q, backend):
    def make():
        pba = PriorityBasedAggregation(q, backend=backend, seed=1)
        return pba.update

    return make


def _pba_consumer_batched(q, backend):
    # PBA aggregates per key, so there is no batch update; the burst
    # falls back to a per-item loop (the apples-to-apples cost of a
    # batch-unaware application behind a batched datapath).
    def make():
        pba = PriorityBasedAggregation(q, backend=backend, seed=1)
        update = pba.update

        def consume(keys, weights):
            for key, weight in zip(keys, weights):
                update(key, weight)

        return consume

    return make


def _nwhh_consumer(q, backend):
    def make():
        nmp = MeasurementPoint(q, backend=backend, seed=1)
        observe = nmp.observe
        counter = iter(range(1 << 60))

        def consume(key, weight):
            observe(Packet(key, 0, 0, 0, 6, weight,
                           packet_id=next(counter)))

        return consume

    return make


def _nwhh_consumer_batched(q, backend):
    def make():
        nmp = MeasurementPoint(q, backend=backend, seed=1)
        observe_many = nmp.observe_many
        next_pid = [0]

        def consume(keys, weights):
            base = next_pid[0]
            next_pid[0] = base + len(keys)
            observe_many([
                Packet(key, 0, 0, 0, 6, weight, packet_id=base + j)
                for j, (key, weight) in enumerate(zip(keys, weights))
            ])

        return consume

    return make


APPS = {
    "priority-sampling": (
        _ps_consumer, _ps_consumer_batched, ("qmax", "heap", "skiplist")
    ),
    "network-wide-hh": (
        _nwhh_consumer, _nwhh_consumer_batched,
        ("qmax", "heap", "skiplist"),
    ),
    "pba": (
        _pba_consumer, _pba_consumer_batched, ("qmax", "heap", "skiplist")
    ),
}


def test_fig08_application_throughput(benchmark):
    n = scaled(50_000, minimum=10_000)
    streams = trace_streams(n)
    q = scaled(2_000, minimum=128)

    bs = batch_size()
    rows = []
    results = {}
    for app, (consumer, batched_consumer, backends) in APPS.items():
        for trace in TRACES:
            stream = list(streams[trace])
            for backend in backends:
                if bs > 1:
                    m = measure_throughput_batched(
                        f"{app}/{trace}/{backend}",
                        batched_consumer(q, backend),
                        stream,
                        bs,
                        repeats=repeats(),
                    )
                else:
                    m = measure_throughput(
                        f"{app}/{trace}/{backend}",
                        consumer(q, backend),
                        stream,
                        repeats=repeats(),
                    )
                results[(app, trace, backend)] = m.mpps
                rows.append([app, trace, backend, m.mpps])
    emit_table(
        f"Figure 8: application MPPS on three traces (q={q}, "
        f"gamma={GAMMA})",
        ["application", "trace", "backend", "MPPS"],
        rows,
        config={"q": q, "gamma": GAMMA, "items": n, "traces": TRACES},
    )

    # Shape: q-MAX at least matches the skip list for every app and
    # trace (PS/NWHH per-packet cost is dominated by hashing, so the
    # backend gap there sits inside ~15% machine noise), and beats the
    # heap decisively for PBA (O(q) heap updates).
    for app in APPS:
        for trace in TRACES:
            assert (
                results[(app, trace, "qmax")]
                > 0.85 * results[(app, trace, "skiplist")]
            ), (app, trace)
    for trace in TRACES:
        assert (
            results[("pba", trace, "qmax")]
            > results[("pba", trace, "skiplist")]
        ), trace
        assert (
            results[("pba", trace, "qmax")]
            > 1.5 * results[("pba", trace, "heap")]
        ), trace

    stream = list(streams["caida16"])

    def run():
        consume = _ps_consumer(q, "qmax")()
        for key, weight in stream:
            consume(key, weight)

    benchmark(run)
