"""Figure 8: application throughput on the three traces.

Subfigures (a,b) Priority Sampling, (c,d) network-wide heavy hitters,
(e,f) Priority-Based Aggregation — each with q-MAX / Heap / SkipList
backends on CAIDA'16-, CAIDA'18- and UNIV1-style traces.

Paper shape: q-MAX (γ = 5%) is the fastest backend for every
application on every trace; PBA shows the starkest gap because the
heap baseline pays O(q) per value update.
"""

from __future__ import annotations

from conftest import repeats, scaled

from repro.apps.pba import PriorityBasedAggregation
from repro.apps.priority_sampling import PrioritySampler
from repro.bench.reporting import print_table
from repro.bench.runner import measure_throughput
from repro.bench.workloads import trace_streams
from repro.netwide.nmp import MeasurementPoint
from repro.traffic.packet import Packet

GAMMA = 0.25
TRACES = ("caida16", "caida18", "univ1")


def _ps_consumer(q, backend):
    def make():
        ps = PrioritySampler(q, backend=backend, seed=1)
        update = ps.update
        counter = iter(range(1 << 60))

        def consume(key, weight):
            update(next(counter), weight)  # distinct keys

        return consume

    return make


def _pba_consumer(q, backend):
    def make():
        pba = PriorityBasedAggregation(q, backend=backend, seed=1)
        return pba.update

    return make


def _nwhh_consumer(q, backend):
    def make():
        nmp = MeasurementPoint(q, backend=backend, seed=1)
        observe = nmp.observe
        counter = iter(range(1 << 60))

        def consume(key, weight):
            observe(Packet(key, 0, 0, 0, 6, weight,
                           packet_id=next(counter)))

        return consume

    return make


APPS = {
    "priority-sampling": (_ps_consumer, ("qmax", "heap", "skiplist")),
    "network-wide-hh": (_nwhh_consumer, ("qmax", "heap", "skiplist")),
    "pba": (_pba_consumer, ("qmax", "heap", "skiplist")),
}


def test_fig08_application_throughput(benchmark):
    n = scaled(50_000, minimum=10_000)
    streams = trace_streams(n)
    q = scaled(2_000, minimum=128)

    rows = []
    results = {}
    for app, (consumer, backends) in APPS.items():
        for trace in TRACES:
            stream = list(streams[trace])
            for backend in backends:
                m = measure_throughput(
                    f"{app}/{trace}/{backend}",
                    consumer(q, backend),
                    stream,
                    repeats=repeats(),
                )
                results[(app, trace, backend)] = m.mpps
                rows.append([app, trace, backend, m.mpps])
    print_table(
        f"Figure 8: application MPPS on three traces (q={q}, "
        f"gamma={GAMMA})",
        ["application", "trace", "backend", "MPPS"],
        rows,
    )

    # Shape: q-MAX at least matches the skip list for every app and
    # trace (PS/NWHH per-packet cost is dominated by hashing, so the
    # backend gap there sits inside ~15% machine noise), and beats the
    # heap decisively for PBA (O(q) heap updates).
    for app in APPS:
        for trace in TRACES:
            assert (
                results[(app, trace, "qmax")]
                > 0.85 * results[(app, trace, "skiplist")]
            ), (app, trace)
    for trace in TRACES:
        assert (
            results[("pba", trace, "qmax")]
            > results[("pba", trace, "skiplist")]
        ), trace
        assert (
            results[("pba", trace, "qmax")]
            > 1.5 * results[("pba", trace, "heap")]
        ), trace

    stream = list(streams["caida16"])

    def run():
        consume = _ps_consumer(q, "qmax")()
        for key, weight in stream:
            consume(key, weight)

    benchmark(run)
