"""Figure 17: measurement applications inside 40G OVS.

Paper shape: q-MAX enables line-rate measurement at q = 1e6 and is the
only backend with acceptable throughput at q = 1e7, for both Priority
Sampling and network-wide heavy hitters.
"""

from __future__ import annotations

from bench_common import emit_table
from conftest import scaled
from ovs_common import datapath_pps, ovs_sweep, real_size_trace

from repro.switch.linerate import FORTY_GBPS

QS = (1_000, 10_000)
BACKENDS = ("qmax", "heap", "skiplist")
FRAME = 1070


def test_fig17_ovs_40g_applications(benchmark):
    pkts = real_size_trace(scaled(25_000, minimum=8_000))
    rows = []
    results = {}
    for kind in ("priority-sampling", "network-wide-hh"):
        sweep = ovs_sweep(kind, QS, BACKENDS, FORTY_GBPS, pkts, FRAME,
                          gamma=0.25)
        for backend in BACKENDS:
            for q in QS:
                gbps = sweep[(backend, q)]
                results[(kind, backend, q)] = gbps
                rows.append([kind, backend, q, gbps])
        rows.append([kind, "vanilla", "-", sweep["vanilla"]])
    emit_table(
        "Figure 17: OVS 40G throughput (Gbps) with measurement apps",
        ["application", "backend", "q", "Gbps"],
        rows,
        value_columns={"Gbps": "gbps"},
        config={"qs": QS, "gamma": 0.25, "frame_bytes": FRAME,
                "link": "40G", "backends": BACKENDS},
    )

    for kind in ("priority-sampling", "network-wide-hh"):
        for q in QS:
            assert (
                results[(kind, "qmax", q)]
                >= 0.95 * results[(kind, "skiplist", q)]
            ), (kind, q)

    benchmark(
        lambda: datapath_pps(
            "network-wide-hh", QS[0], "qmax", 0.25, pkts
        )
    )
