"""Figure 17: measurement applications inside 40G OVS.

Paper shape: q-MAX enables line-rate measurement at q = 1e6 and is the
only backend with acceptable throughput at q = 1e7, for both Priority
Sampling and network-wide heavy hitters.
"""

from __future__ import annotations

from conftest import scaled
from ovs_common import datapath_pps, ovs_sweep, real_size_trace

from repro.bench.reporting import print_table
from repro.switch.linerate import FORTY_GBPS

QS = (1_000, 10_000)
BACKENDS = ("qmax", "heap", "skiplist")
FRAME = 1070


def test_fig17_ovs_40g_applications(benchmark):
    pkts = real_size_trace(scaled(25_000, minimum=8_000))
    rows = []
    results = {}
    for kind in ("priority-sampling", "network-wide-hh"):
        sweep = ovs_sweep(kind, QS, BACKENDS, FORTY_GBPS, pkts, FRAME,
                          gamma=0.25)
        for backend in BACKENDS:
            for q in QS:
                gbps = sweep[(backend, q)]
                results[(kind, backend, q)] = gbps
                rows.append([kind, backend, q, gbps])
        rows.append([kind, "vanilla", "-", sweep["vanilla"]])
    print_table(
        "Figure 17: OVS 40G throughput (Gbps) with measurement apps",
        ["application", "backend", "q", "Gbps"],
        rows,
    )

    for kind in ("priority-sampling", "network-wide-hh"):
        for q in QS:
            assert (
                results[(kind, "qmax", q)]
                >= 0.95 * results[(kind, "skiplist", q)]
            ), (kind, q)

    benchmark(
        lambda: datapath_pps(
            "network-wide-hh", QS[0], "qmax", 0.25, pkts
        )
    )
