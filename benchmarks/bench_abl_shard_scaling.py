"""Ablation: shard-count scaling of the sharded q-MAX engine.

The paper's deployment runs one measurement instance per PMD core, with
NIC RSS sharding flows in hardware.  This benchmark reproduces that
cores-vs-throughput curve for :class:`repro.parallel.engine.
ShardedQMaxEngine`: the stream is hash-partitioned into per-shard
sub-streams *outside* the timed region (RSS dispatch — same convention
as ``measure_throughput_batched``'s pre-split bursts), each shard's
service time is measured independently, and the aggregate throughput of
an ``s``-core deployment is ``N / max_s(t_s)`` — every core runs its
shard concurrently, so the slowest shard gates the aggregate.

Two value regimes, because q-MAX's per-item work is admission-driven:

* **admission-heavy** (recency-growing priorities, the PBA/LRFU shape):
  every item beats Ψ, so maintenance work is linear in items and
  sharding divides it — near-linear scaling.  This is the regime the
  ≥2×@4-shards acceptance gate runs on.
* **iid-uniform**: a single structure admits only ~(q+g)·ln(n) items;
  splitting into ``s`` shards multiplies total admissions by ~s (each
  shard re-pays the convergence of its own Ψ), so per-shard-core
  scaling is sublinear — reported, not gated, with the admission counts
  that explain it.

Wall-clock rows for the actual worker-process engine are also recorded
(producer-side push rate with a final barrier).  On a single-core host
those cannot beat inline — the machine fingerprint stored with each row
notes the host's CPU count so readers can interpret them.

Results land in the ``bench_trajectory/`` store (metric names match the
rows imported from the frozen PR-2 artifact ``BENCH_shard_scaling.json``,
which stays in the repo root as a compatibility stub for old doc links).
"""

from __future__ import annotations

import time

from bench_common import emit_table
from conftest import max_shards, repeats, scaled

from repro._compat import HAVE_NUMPY
from repro.core.qmax import QMax
from repro.parallel.engine import ShardedQMaxEngine, partition_stream
from repro.parallel.worker import build_backend
from repro.traffic.synthetic import PROFILES, generate_packets

Q = 512
GAMMA = 0.25
BURST = 512


def _skewed_ids(n: int, seed: int = 7):
    """Flow ids from the skewed CAIDA'16-style profile (heavy flows
    dominate, like real traces — stresses shard balance)."""
    packets = generate_packets(
        PROFILES["caida16"], n, seed=seed, n_flows=max(64, n // 20)
    )
    return [p.src_ip for p in packets]


def _streams(n: int):
    ids = _skewed_ids(n)
    rnd = __import__("random").Random(11)
    return {
        # Recency-growing priorities: strictly advancing values defeat
        # the admission filter (PBA/LRFU-style), work ∝ items.
        "admission-heavy": (ids, [i + rnd.random() for i in range(n)]),
        # iid values: admissions collapse to ~(q+g)·ln(n) per shard.
        "iid-uniform": (ids, [rnd.random() * 1e6 for _ in range(n)]),
    }


def _chunks(ids, vals, burst):
    return [
        (ids[lo : lo + burst], vals[lo : lo + burst])
        for lo in range(0, len(ids), burst)
    ]


def _shard_service_seconds(parts, spec, n_repeats):
    """Per-shard best-of service time: one fresh backend per shard fed
    its pre-partitioned sub-stream in BURST-sized batches."""
    per_shard = []
    admitted = 0
    for part_ids, part_vals in parts:
        batches = _chunks(part_ids, part_vals, BURST)
        best = float("inf")
        for _ in range(n_repeats):
            backend = build_backend(spec)
            start = time.perf_counter()
            for bids, bvals in batches:
                backend.add_many(bids, bvals)
            best = min(best, time.perf_counter() - start)
        admitted += getattr(backend, "admitted", 0)
        per_shard.append(best)
    return per_shard, admitted


def test_ablation_shard_scaling(benchmark):
    n = scaled(120_000, minimum=30_000)
    shard_counts = sorted({1, 2, 4, max_shards()})
    spec = {"backend": "qmax", "q": Q, "gamma": GAMMA, "kwargs": {}}
    n_repeats = repeats()

    rows = []
    results = []
    aggregate = {}
    for regime, (ids, vals) in _streams(n).items():
        for s in shard_counts:
            parts = partition_stream(ids, vals, s)
            per_shard, admitted = _shard_service_seconds(
                parts, spec, n_repeats
            )
            bottleneck = max(per_shard)
            mpps = n / bottleneck / 1e6
            aggregate[(regime, s)] = mpps
            speedup = mpps / aggregate[(regime, 1)]
            rows.append([regime, s, round(mpps, 3), f"{speedup:.2f}x",
                         admitted])
            results.append({
                "regime": regime,
                "shards": s,
                "mode": "per-shard-core",
                "items": n,
                "per_shard_seconds": [round(t, 6) for t in per_shard],
                "bottleneck_seconds": round(bottleneck, 6),
                "aggregate_mpps": round(mpps, 4),
                "speedup_vs_1": round(speedup, 4),
                "total_admitted": admitted,
            })

    # Honest wall-clock rows: the real worker-process engine on this
    # host (producer push rate, barrier included).  Bounded by the
    # host's core count — see "machine" in the JSON.
    wall_ids, wall_vals = _streams(n)["admission-heavy"]
    wall_batches = _chunks(wall_ids, wall_vals, BURST)
    for s in shard_counts:
        best = float("inf")
        mode = "inline"
        for _ in range(max(1, n_repeats - 1)):
            engine = ShardedQMaxEngine(
                Q, n_shards=s, gamma=GAMMA, mode="auto", burst=BURST
            )
            try:
                start = time.perf_counter()
                for bids, bvals in wall_batches:
                    engine.add_many(bids, bvals)
                engine.sync()
                best = min(best, time.perf_counter() - start)
                mode = engine.mode
            finally:
                engine.close()
        mpps = n / best / 1e6
        rows.append([f"wall-clock/{mode}", s, round(mpps, 3), "-", "-"])
        results.append({
            "regime": "admission-heavy",
            "shards": s,
            "mode": f"wall-clock/{mode}",
            "items": n,
            "bottleneck_seconds": round(best, 6),
            "aggregate_mpps": round(mpps, 4),
        })

    emit_table(
        f"Ablation: shard scaling (q={Q}, gamma={GAMMA}, n={n}, "
        f"burst={BURST})",
        ["regime", "shards", "aggregate MPPS", "speedup", "admitted"],
        rows,
        # Metric names mirror import_legacy_bench_json so the PR-2
        # baseline and fresh runs line up in `repro bench report`.
        metrics=[
            {"name": f"{r['regime']}/{r['mode']}/shards={r['shards']}",
             "value": r["aggregate_mpps"], "unit": "mpps"}
            for r in results
        ],
        config={
            "q": Q,
            "gamma": GAMMA,
            "burst": BURST,
            "items": n,
            "shard_counts": shard_counts,
            "repeats": n_repeats,
            "trace": "caida16-profile flow ids",
            "metric_note": (
                "per-shard-core rows: streams pre-partitioned outside "
                "the timed region (NIC-RSS analogue); aggregate = items "
                "/ max(per-shard service time), the throughput of one "
                "core per shard.  wall-clock rows: the worker-process "
                "engine end-to-end on this host."
            ),
        },
    )

    # Gate (numpy stack): on the admission-heavy skewed trace the
    # 4-shard per-core aggregate must be >= 2x the single-shard one.
    if HAVE_NUMPY and 4 in shard_counts:
        assert aggregate[("admission-heavy", 4)] >= 2.0 * aggregate[
            ("admission-heavy", 1)
        ], aggregate
    # The iid regime documents admission inflation; no scaling gate.

    def run():
        ids, vals = _streams(n)["admission-heavy"]
        parts = partition_stream(ids, vals, max(shard_counts))
        for part_ids, part_vals in parts:
            backend = QMax(Q, GAMMA)
            for bids, bvals in _chunks(part_ids, part_vals, BURST):
                backend.add_many(bids, bvals)

    benchmark(run)
