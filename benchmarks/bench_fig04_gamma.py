"""Figure 4: q-MAX throughput as a function of γ, for several q.

Paper shape: throughput grows steeply with γ up to roughly γ ≈ 0.25,
then flattens; larger q is uniformly slower; the break-even against
Heap/SkipList sits around γ ≈ 0.025.
"""

from __future__ import annotations

from bench_common import emit_series
from conftest import GAMMA_GRID, Q_GRID, bench_stream, measure_backend

from repro.core.qmax import QMax


def test_fig04_gamma_sweep(benchmark, gamma_q_sweep):
    qmax_mpps, heap_mpps, skip_mpps, _amort = gamma_q_sweep
    series = {
        f"q={q}": [qmax_mpps[(g, q)] for g in GAMMA_GRID] for q in Q_GRID
    }
    series.update(
        {f"heap q={q} (ref)": [heap_mpps[q]] * len(GAMMA_GRID)
         for q in Q_GRID}
    )
    emit_series(
        "Figure 4: q-MAX MPPS vs gamma (random stream)",
        "gamma",
        list(GAMMA_GRID),
        series,
        config={"q_grid": Q_GRID, "gamma_grid": GAMMA_GRID},
    )

    # Shape assertions: more gamma never hurts much; the flat region is
    # far faster than the tiny-gamma region.
    for q in Q_GRID:
        low = qmax_mpps[(GAMMA_GRID[0], q)]
        high = max(qmax_mpps[(g, q)] for g in GAMMA_GRID[3:])
        assert high > low, (q, low, high)

    # Representative headline cell for pytest-benchmark.
    stream = bench_stream()
    q = Q_GRID[1]

    def run():
        qmax = QMax(q, 0.25)
        add = qmax.add
        for item_id, val in stream:
            add(item_id, val)
        return qmax

    benchmark(run)
