"""Figure 7: Exponential-Decay q-MAX throughput vs γ (c = 0.75).

Paper shape: throughput grows with γ as in Figure 4, but the break-even
needs larger γ than plain q-MAX because every arrival pays the decay
transformation (a log) before hitting the admission filter.
"""

from __future__ import annotations

from bench_common import emit_series
from conftest import bench_stream, measure_backend, scaled

from repro.baselines.heap import HeapQMax
from repro.baselines.skiplist import SkipListQMax
from repro.core.exponential_decay import ExponentialDecayQMax
from repro.core.qmax import QMax

GAMMAS = (0.05, 0.1, 0.25, 0.5, 1.0, 2.0)
DECAY = 0.75


def _ed_factory(q, gamma=None, backend=None):
    if gamma is not None:
        return ExponentialDecayQMax(
            q, DECAY, backend=lambda n: QMax(n, gamma)
        )
    return ExponentialDecayQMax(q, DECAY, backend=backend)


def test_fig07_ed_gamma_sweep(benchmark):
    # The ED stream must carry positive weights; reuse packet sizes.
    n = scaled(100_000, minimum=20_000)
    stream = [(i, 1.0 + (v * 1499.0)) for i, v in bench_stream()][:n]
    qs = (scaled(500, minimum=64), scaled(5_000, minimum=512))
    series = {}
    for q in qs:
        series[f"ed-qmax q={q}"] = [
            measure_backend(
                f"ed(g={g},q={q})",
                lambda: _ed_factory(q, gamma=g),
                stream,
            ).mpps
            for g in GAMMAS
        ]
        for name, backend in (("heap", HeapQMax),
                              ("skiplist", SkipListQMax)):
            ref = measure_backend(
                f"ed-{name}(q={q})",
                lambda: _ed_factory(q, backend=backend),
                stream,
            ).mpps
            series[f"ed-{name} q={q} (ref)"] = [ref] * len(GAMMAS)
    emit_series(
        f"Figure 7: Exponential-Decay q-MAX MPPS vs gamma (c={DECAY})",
        "gamma",
        list(GAMMAS),
        series,
        config={"decay": DECAY, "qs": qs, "gammas": GAMMAS, "items": n},
    )

    # Shape: throughput grows with gamma; large gamma beats skiplist.
    for q in qs:
        ours = series[f"ed-qmax q={q}"]
        assert max(ours[-2:]) > ours[0]
        assert max(ours) > series[f"ed-skiplist q={q} (ref)"][0]

    q = qs[0]

    def run():
        ed = _ed_factory(q, gamma=0.5)
        add = ed.add
        for item_id, val in stream:
            add(item_id, val)

    benchmark(run)
