"""Figure 14: measurement applications inside 10G OVS.

Subfigures (a,b): Priority Sampling; (c,d): network-wide heavy hitters
— each at two q values, with q-MAX / Heap / SkipList backends on real
traffic.

Paper shape: q-MAX attains the highest OVS throughput everywhere; the
gap widens with q (paper: ×2.5 for PS, ×2.41 for NWHH at q = 1e7; the
q-MAX overhead vs vanilla stays within ~6%).
"""

from __future__ import annotations

from bench_common import emit_table
from conftest import scaled
from ovs_common import datapath_pps, ovs_sweep

from repro.bench.workloads import packet_trace
from repro.switch.linerate import TEN_GBPS

QS = (1_000, 10_000)
BACKENDS = ("qmax", "heap", "skiplist")
FRAME = 300  # mean real-traffic frame for normalization


def test_fig14_ovs_applications(benchmark):
    pkts = packet_trace(scaled(30_000, minimum=8_000))
    rows = []
    results = {}
    for kind in ("priority-sampling", "network-wide-hh"):
        sweep = ovs_sweep(kind, QS, BACKENDS, TEN_GBPS, pkts, FRAME,
                          gamma=0.25)
        for backend in BACKENDS:
            for q in QS:
                gbps = sweep[(backend, q)]
                results[(kind, backend, q)] = gbps
                rows.append([kind, backend, q, gbps])
        rows.append([kind, "vanilla", "-", sweep["vanilla"]])
    emit_table(
        "Figure 14: OVS 10G throughput (Gbps) with measurement apps",
        ["application", "backend", "q", "Gbps"],
        rows,
        value_columns={"Gbps": "gbps"},
        config={"qs": QS, "gamma": 0.25, "frame_bytes": FRAME,
                "link": "10G", "backends": BACKENDS},
    )

    # Shape: q-MAX sustains at least as much throughput as the skip
    # list for both applications at both q values.
    for kind in ("priority-sampling", "network-wide-hh"):
        for q in QS:
            assert (
                results[(kind, "qmax", q)]
                >= 0.95 * results[(kind, "skiplist", q)]
            ), (kind, q)

    benchmark(
        lambda: datapath_pps(
            "priority-sampling", QS[0], "qmax", 0.25, pkts
        )
    )
