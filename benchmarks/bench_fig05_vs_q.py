"""Figure 5: q-MAX vs Heap vs SkipList throughput as a function of q.

Paper shape: for every q, q-MAX with γ ≥ 0.025 is at least as fast as
both baselines, and with γ = 0.05–0.25 it is several times faster;
all structures slow down as q grows (cache effects in the paper,
constant-factor effects here).
"""

from __future__ import annotations

from bench_common import emit_series
from conftest import Q_GRID, bench_stream, measure_backend

from repro.baselines.skiplist import SkipListQMax

SHOW_GAMMAS = (0.025, 0.05, 0.25, 1.0)


def test_fig05_backends_vs_q(benchmark, gamma_q_sweep):
    qmax_mpps, heap_mpps, skip_mpps, amort_mpps = gamma_q_sweep
    series = {
        f"qmax g={g}": [qmax_mpps[(g, q)] for q in Q_GRID]
        for g in SHOW_GAMMAS
    }
    series["qmax-amort g=0.25"] = [
        amort_mpps[(0.25, q)] for q in Q_GRID
    ]
    series["heap"] = [heap_mpps[q] for q in Q_GRID]
    series["skiplist"] = [skip_mpps[q] for q in Q_GRID]
    emit_series(
        "Figure 5: MPPS vs q (random stream)", "q", list(Q_GRID), series,
        config={"q_grid": Q_GRID, "gammas": SHOW_GAMMAS},
    )

    # Shape: with a healthy gamma, q-MAX beats the skip list at every q
    # (paper: everywhere from gamma=0.025; CPython's per-op costs shift
    # the heap crossover to larger gamma — see EXPERIMENTS.md).  At the
    # smallest q the amortized variant and the heap are neck-and-neck
    # and run-to-run noise on shared machines reaches ~20%, so the
    # heap claim is asserted where the gap is structural: the largest q.
    for q in Q_GRID:
        assert qmax_mpps[(0.25, q)] > skip_mpps[q], q
    q_big = Q_GRID[-1]
    assert amort_mpps[(0.25, q_big)] > heap_mpps[q_big]

    stream = bench_stream()

    def run():
        s = SkipListQMax(Q_GRID[1])
        add = s.add
        for item_id, val in stream:
            add(item_id, val)
        return s

    benchmark(run)
