"""Ablation: the deamortization micro-batch knob (``step_batch``).

``QMax`` drives its resumable maintenance once every ``step_batch``
admitted items (see the class docstring): batch 1 is the paper's exact
schedule; larger batches amortize CPython's generator dispatch at the
cost of a proportionally larger worst-case per-update burst.  This
ablation quantifies both axes, justifying the default of 8.
"""

from __future__ import annotations

from bench_common import emit_table
from conftest import bench_stream, measure_backend, scaled

from repro.core.qmax import QMax

BATCHES = (1, 2, 4, 8, 16, 64)
GAMMA = 0.25


def test_ablation_step_batch(benchmark):
    stream = list(bench_stream())
    q = scaled(2_000, minimum=256)

    rows = []
    mpps_of = {}
    worst_of = {}
    for batch in BATCHES:
        m = measure_backend(
            f"batch={batch}",
            lambda: QMax(q, GAMMA, step_batch=batch),
            stream,
        )
        inst = QMax(q, GAMMA, step_batch=batch, instrument=True)
        for item_id, val in stream:
            inst.add(item_id, val)
        mpps_of[batch] = m.mpps
        worst_of[batch] = inst.max_step_ops
        rows.append([batch, m.mpps, inst.max_step_ops])
    emit_table(
        f"Ablation: QMax step_batch (q={q}, gamma={GAMMA})",
        ["step_batch", "MPPS", "worst-case ops/update"],
        rows,
        value_columns={"MPPS": "mpps", "worst-case ops/update": "ops"},
        config={"q": q, "gamma": GAMMA, "batches": BATCHES},
    )

    # Shape: batching never hurts meaningfully (it buys 3-18% at high
    # gamma, less here); the worst-case burst grows roughly linearly
    # with the batch but stays far below the amortized O(q·(1+γ))
    # burst even at 64.
    assert mpps_of[8] > 0.93 * mpps_of[1]
    assert worst_of[1] <= worst_of[64]
    assert worst_of[1] < q // 8
    assert worst_of[64] < 4 * q

    def run():
        qmax = QMax(q, GAMMA, step_batch=8)
        add = qmax.add
        for item_id, val in stream:
            add(item_id, val)

    benchmark(run)
