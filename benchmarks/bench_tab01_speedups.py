"""Table 1: min/max speedups of q-MAX vs Heap and SkipList per γ.

Paper shape: min speedup crosses 1.0 between γ = 2.5% and 5% and
saturates near ×1.9 (heap) / ×2.5 (skiplist); max speedup keeps growing
with γ (paper: up to ×23 / ×86 at γ = 200%).
"""

from __future__ import annotations

from bench_common import emit_table
from conftest import GAMMA_GRID, Q_GRID, bench_stream

from repro.core.qmax import QMax


def test_tab01_speedups(benchmark, gamma_q_sweep):
    qmax_mpps, heap_mpps, skip_mpps, _amort = gamma_q_sweep
    rows = []
    speedups = {}
    for gamma in GAMMA_GRID:
        vs_heap = [qmax_mpps[(gamma, q)] / heap_mpps[q] for q in Q_GRID]
        vs_skip = [qmax_mpps[(gamma, q)] / skip_mpps[q] for q in Q_GRID]
        speedups[gamma] = (vs_heap, vs_skip)
        rows.append(
            [
                f"{gamma:.1%}",
                f"x{min(vs_heap):.2f}",
                f"x{max(vs_heap):.2f}",
                f"x{min(vs_skip):.2f}",
                f"x{max(vs_skip):.2f}",
            ]
        )
    emit_table(
        "Table 1: q-MAX speedup vs Heap and SkipList per gamma",
        ["gamma", "min vs heap", "max vs heap", "min vs skiplist",
         "max vs skiplist"],
        rows,
        config={"q_grid": Q_GRID, "gamma_grid": GAMMA_GRID},
        metrics=[
            {"name": f"g={gamma}/{extreme} vs {rival}",
             "value": fn(values), "unit": "ratio"}
            for gamma, (vs_heap, vs_skip) in speedups.items()
            for rival, values in (("heap", vs_heap),
                                  ("skiplist", vs_skip))
            for extreme, fn in (("min", min), ("max", max))
        ],
    )

    # Shape: speedups grow with gamma; healthy gammas beat the skip
    # list everywhere.
    big_gamma = GAMMA_GRID[-1]
    mid_gamma = 0.25
    assert min(speedups[mid_gamma][1]) > 1.0  # vs skiplist
    assert max(speedups[big_gamma][1]) >= max(speedups[0.05][1]) * 0.9

    stream = bench_stream()

    def run():
        qmax = QMax(Q_GRID[-1], 2.0)
        add = qmax.add
        for item_id, val in stream:
            add(item_id, val)
        return qmax

    benchmark(run)
