"""Figure 11: sliding-window q-MAX throughput vs the slack τ.

Paper shape (q = 1e6, random stream): (i) larger γ is faster,
(ii) larger τ is faster (fewer, larger blocks and lower memory),
(iii) larger W is faster (an item is compared against a per-block
reservoir that fills more slowly).
"""

from __future__ import annotations

from bench_common import emit_series
from conftest import repeats, scaled

from repro.bench.runner import measure_throughput
from repro.bench.workloads import value_stream
from repro.core.amortized import AmortizedQMax
from repro.core.sliding import SlidingQMax

TAUS = (0.1, 0.25, 0.5, 1.0)


def test_fig11_sliding_tau_sweep(benchmark):
    stream = list(value_stream(scaled(100_000, minimum=30_000)))
    # Keep every block much larger than the per-block reservoir, the
    # paper's regime (W·τ >> q(1+γ)); otherwise small τ makes blocks so
    # small they never compact, inverting the trend.
    q = scaled(500, minimum=64)
    windows = (len(stream) // 5, len(stream) // 2)
    gammas = (0.1, 0.25)

    series = {}
    for window in windows:
        for gamma in gammas:
            label = f"W={window} g={gamma}"
            series[label] = [
                measure_throughput(
                    label,
                    lambda: SlidingQMax(
                        q,
                        window,
                        tau,
                        block_factory=lambda n: AmortizedQMax(n, gamma),
                    ).add,
                    stream,
                    repeats=repeats(),
                ).mpps
                for tau in TAUS
            ]
    emit_series(
        f"Figure 11: sliding q-MAX MPPS vs tau (q={q})",
        "tau",
        list(TAUS),
        series,
        config={"q": q, "taus": TAUS, "windows": windows,
                "gammas": gammas},
    )

    # Shape: for each configuration, large tau is at least as fast as
    # the smallest tau; the larger window is not slower.
    for window in windows:
        for gamma in gammas:
            s = series[f"W={window} g={gamma}"]
            assert max(s[-2:]) >= 0.9 * s[0], (window, gamma, s)

    window = windows[-1]

    def run():
        s = SlidingQMax(q, window, 0.25)
        add = s.add
        for item_id, val in stream:
            add(item_id, val)

    benchmark(run)
