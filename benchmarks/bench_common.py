"""The one output helper every benchmark script uses.

``emit_table`` / ``emit_series`` wrap :func:`repro.bench.reporting.emit`
with the two things every ``bench_*.py`` file used to repeat by hand:

* the **benchmark id** — derived from the calling file's name
  (``bench_fig04_gamma.py`` -> ``fig04_gamma``), overridable for
  scripts that emit more than one table;
* the **shared run configuration** — the active ``REPRO_SCALE``,
  repeat count, and batch size from ``conftest.py``, merged under any
  script-specific config (q, gamma, trace, ...).

Printed output is unchanged from the old direct ``print_table`` /
``print_series`` calls; in addition every call appends a schema-valid
``TrajectoryRow`` to the append-only ``bench_trajectory/`` store keyed
by the measured git SHA (disable with ``REPRO_TRAJECTORY=0``; redirect
with ``REPRO_TRAJECTORY_DIR``).  A new benchmark is therefore ~20
lines: build rows, call one emit helper, assert the paper's shape.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Dict, Mapping, Optional, Sequence

from conftest import batch_size, repeats

from repro.bench.reporting import emit, emit_series as _emit_series
from repro.bench.trajectory import TrajectoryRow, machine_fingerprint
from repro.bench.workloads import scale


def _caller_benchmark_id(depth: int = 2) -> str:
    """Benchmark id from the calling script's filename."""
    frame = sys._getframe(depth)
    stem = Path(frame.f_globals.get("__file__", "bench_unknown")).stem
    return stem[len("bench_"):] if stem.startswith("bench_") else stem


def _machine() -> Dict[str, object]:
    """The host fingerprint, including the workload scale.

    ``REPRO_SCALE`` changes what is measured (a 0.1-scale CI run is not
    comparable with a full-scale run on the same host), so it is part
    of the fingerprint id the gate matches on — exactly like the
    NumPy/SciPy stack flags.
    """
    return machine_fingerprint(extra={"repro_scale": scale()})


def shared_config(extra: Optional[Mapping[str, object]] = None
                  ) -> Dict[str, object]:
    """The harness knobs every row records, under script-specific keys."""
    config: Dict[str, object] = {
        "scale": scale(),
        "repeats": repeats(),
        "batch_size": batch_size(),
    }
    if extra:
        config.update(extra)
    return config


def emit_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    benchmark: Optional[str] = None,
    config: Optional[Mapping[str, object]] = None,
    **kwargs,
) -> TrajectoryRow:
    """Print a paper-style table and record it in the trajectory store."""
    return emit(
        benchmark or _caller_benchmark_id(),
        title,
        columns,
        rows,
        config=shared_config(config),
        machine=_machine(),
        **kwargs,
    )


def emit_series(
    title: str,
    x_label: str,
    xs: Sequence,
    series: Dict[str, Sequence],
    *,
    benchmark: Optional[str] = None,
    config: Optional[Mapping[str, object]] = None,
    **kwargs,
) -> TrajectoryRow:
    """Print a figure-style series table and record it in the store."""
    return _emit_series(
        benchmark or _caller_benchmark_id(),
        title,
        x_label,
        xs,
        series,
        config=shared_config(config),
        machine=_machine(),
        **kwargs,
    )
