"""End-to-end sliding-window network-wide measurement (Theorem 8).

Completes the Theorem-8 pipeline over a simulated topology: packets are
routed across switches (as in
:class:`~repro.netwide.simulation.NetworkSimulation`) but every switch
runs a *time-windowed* NMP, and the controller answers heavy-hitter
queries about the recent window only.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.netwide.sliding import SlidingController, SlidingMeasurementPoint
from repro.netwide.topology import NetworkTopology
from repro.traffic.packet import Packet


class SlidingNetworkSimulation:
    """A topology whose switches run windowed NMPs."""

    def __init__(
        self,
        topology: NetworkTopology,
        q: int,
        window_seconds: float,
        tau: float = 0.1,
        epsilon: float = 0.05,
        backend: str = "qmax-amortized",
        levels: int = 1,
        seed: int = 0,
    ) -> None:
        self.topology = topology
        self.window_seconds = window_seconds
        self.controller = SlidingController(q, epsilon=epsilon)
        self.nmps: Dict[str, SlidingMeasurementPoint] = {
            switch: SlidingMeasurementPoint(
                q,
                window_seconds,
                tau,
                backend=backend,
                seed=seed,
                name=switch,
                levels=levels,
            )
            for switch in topology.switches
        }
        if not self.nmps:
            raise ConfigurationError("topology has no switches")
        self.packets_routed = 0
        self._last_ts = 0.0

    def inject(self, pkt: Packet) -> int:
        """Route one packet through its NMPs; returns hops observed."""
        src_host = self.topology.host_of_ip(pkt.src_ip)
        dst_host = self.topology.host_of_ip(pkt.dst_ip)
        route = self.topology.route(src_host, dst_host)
        for switch in route:
            self.nmps[switch].observe(pkt)
        self.packets_routed += 1
        self._last_ts = max(self._last_ts, pkt.timestamp)
        return len(route)

    def run(self, packets: Iterable[Packet]) -> None:
        for pkt in packets:
            self.inject(pkt)

    def heavy_hitters(
        self, theta: float, now: float = None
    ) -> List[Tuple[int, float]]:
        """Windowed network-wide heavy hitters as of ``now``."""
        when = self._last_ts if now is None else now
        return self.controller.heavy_hitters(
            self.nmps.values(), when, theta
        )

    def true_windowed_heavy_hitters(
        self,
        packets: Sequence[Packet],
        theta: float,
        now: float = None,
    ) -> List[Tuple[int, int]]:
        """Ground truth over the exact window [now − W, now]."""
        when = self._last_ts if now is None else now
        start = when - self.window_seconds
        in_window = [
            p for p in packets if start <= p.timestamp <= when
        ]
        counts = Counter(p.src_ip for p in in_window)
        total = len(in_window)
        return sorted(
            (
                (flow, count)
                for flow, count in counts.items()
                if count >= theta * total
            ),
            key=lambda p: p[1],
            reverse=True,
        )
