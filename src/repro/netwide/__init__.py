"""Network-wide, routing-oblivious heavy hitters (§2.6, §4.3.4).

Reimplementation of the scheme of Ben Basat, Einziger, Moraney & Raz
(ANCS 2018): every packet carries a hashed identifier; each Network
Measurement Point (NMP) keeps the ``q`` packets with the *minimal* hash
values it has seen; a central controller merges the NMP reports into
the globally minimal ``q`` packets — a uniform packet sample with no
double counting even when packets traverse several NMPs — and derives
the heavy hitter flows from it.

The package also provides the Theorem-8 sliding-window variant (built
on the slack-window q-MAX) and a topology simulation (networkx) that
routes packets across NMPs to exercise the de-duplication property.
"""

from repro.netwide.nmp import MeasurementPoint
from repro.netwide.controller import (
    Controller,
    estimate_total_from_sample,
    flow_estimates_from_reports,
    heavy_hitters_from_reports,
    merge_reports_from_entries,
)
from repro.netwide.topology import NetworkTopology
from repro.netwide.simulation import NetworkSimulation
from repro.netwide.sliding import SlidingMeasurementPoint, SlidingController
from repro.netwide.sliding_simulation import SlidingNetworkSimulation

__all__ = [
    "MeasurementPoint",
    "Controller",
    "merge_reports_from_entries",
    "estimate_total_from_sample",
    "flow_estimates_from_reports",
    "heavy_hitters_from_reports",
    "NetworkTopology",
    "NetworkSimulation",
    "SlidingMeasurementPoint",
    "SlidingController",
    "SlidingNetworkSimulation",
]
