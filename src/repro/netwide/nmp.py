"""The Network Measurement Point (NMP).

An NMP observes a substream of the network's packets.  For every packet
it computes a hash of the *packet identifier* (not the flow!) and feeds
``(packet record, hash)`` into a q-MIN reservoir.  Because the hash is
a deterministic function of the packet id, two NMPs observing the same
packet store the same value — dedup happens for free when reports are
merged, making the scheme oblivious to routing and topology.

The reservoir is the application's entire per-packet state, so its
update time *is* the NMP's packet-processing cost; the paper swaps the
original heap for q-MAX here.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.apps.reservoirs import make_reservoir
from repro.core.qmin import QMin
from repro.errors import ConfigurationError
from repro.hashing.uniform import UniformHasher
from repro.traffic.packet import Packet


class MeasurementPoint:
    """One NMP: a q-MIN of packet-id hashes.

    Parameters
    ----------
    q:
        Sample size kept locally (the paper's ``k``).
    backend / gamma:
        Reservoir backend selection.
    seed:
        Hash seed — all NMPs and the controller must share it.
    name:
        Label for reports/debugging.
    """

    def __init__(
        self,
        q: int,
        backend: str = "qmax",
        gamma: float = 0.25,
        seed: int = 0,
        name: str = "nmp",
    ) -> None:
        if q < 1:
            raise ConfigurationError(f"q must be >= 1, got {q}")
        self.q = q
        self.name = name
        self._uniform = UniformHasher(seed)
        self._reservoir = QMin(
            q, backend=lambda n: make_reservoir(backend, n, gamma)
        )
        self.observed = 0

    def observe(self, pkt: Packet) -> None:
        """Process one packet (the hot path)."""
        value = self._uniform.unit_open(pkt.packet_id)
        # The record stored is (flow key, packet id): the controller
        # needs the flow for HH counting and the id for deduplication.
        self._reservoir.add((pkt.src_ip, pkt.packet_id), value)
        self.observed += 1

    def observe_many(self, pkts: Sequence[Packet]) -> None:
        """Process a burst of packets with one batched reservoir call."""
        unit_open = self._uniform.unit_open
        self._reservoir.add_many(
            [(pkt.src_ip, pkt.packet_id) for pkt in pkts],
            [unit_open(pkt.packet_id) for pkt in pkts],
        )
        self.observed += len(pkts)

    def report(self) -> List[Tuple[Tuple[int, int], float]]:
        """The q minimal (record, hash) pairs, ascending by hash."""
        return self._reservoir.query()

    def reset(self) -> None:
        self._reservoir.reset()
        self.observed = 0

    @property
    def backend_name(self) -> str:
        return self._reservoir.inner.name
