"""Theorem 8: sliding-window network-wide heavy hitters.

Exact-window q-MAX needs Ω(W) space, but heavy hitters tolerate an
additive error, part of which can be spent on window slack: monitor a
``(W, τ = ε/2)``-slack window per NMP with the slack q-MIN (Algorithm 3
layout over *time-based* blocks, since a distributed window is defined
in time units), estimate with margin ``ε/2``, and report every flow
whose estimate clears ``θ − ε`` — no false negatives with high
probability, as in §4.3.4.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Tuple

from repro.apps.reservoirs import make_reservoir
from repro.core.time_hierarchical import TimeHierarchicalSlidingQMax
from repro.core.time_sliding import TimeSlidingQMax
from repro.errors import ConfigurationError
from repro.hashing.uniform import UniformHasher
from repro.traffic.packet import Packet


class SlidingMeasurementPoint:
    """An NMP whose sample covers a time-based slack window.

    Parameters
    ----------
    q:
        Local sample size.
    window_seconds:
        The window length ``W`` in seconds.
    tau:
        Slack fraction; blocks span ``W·τ`` seconds each.
    levels:
        ``1`` uses the Algorithm-3 layout (O(q·τ⁻¹) report time);
        ``>= 2`` the Algorithm-4 hierarchy — the fast-query composition
        Theorem 8 allows.
    """

    def __init__(
        self,
        q: int,
        window_seconds: float,
        tau: float,
        backend: str = "qmax-amortized",
        gamma: float = 0.25,
        seed: int = 0,
        name: str = "nmp",
        levels: int = 1,
    ) -> None:
        if q < 1:
            raise ConfigurationError(f"q must be >= 1, got {q}")
        self.q = q
        self.window_seconds = window_seconds
        self.tau = tau
        self.name = name
        # Negated-value trick: the q *minimal* hashes are the q maximal
        # negated hashes, so the core time-window structures apply.
        block_factory = lambda n: make_reservoir(backend, n, gamma)
        if levels <= 1:
            self._window = TimeSlidingQMax(
                q, window_seconds, tau, block_factory=block_factory
            )
        else:
            self._window = TimeHierarchicalSlidingQMax(
                q, window_seconds, tau, levels=levels,
                block_factory=block_factory,
            )
        self._uniform = UniformHasher(seed)
        self.observed = 0

    def observe(self, pkt: Packet) -> None:
        """Process one timestamped packet (the hot path)."""
        value = self._uniform.unit_open(pkt.packet_id)
        self._window.add_at(
            pkt.timestamp, (pkt.src_ip, pkt.packet_id), -value
        )
        self.observed += 1

    def report(self, now: float) -> List[Tuple[Tuple[int, int], float]]:
        """Minimal-hash sample over the slack window ending at ``now``."""
        best: Dict[Tuple[int, int], float] = {}
        for record, neg_value in self._window.query_at(now):
            best[record] = -neg_value
        merged = sorted(best.items(), key=lambda p: p[1])
        return merged[: self.q]


class SlidingController:
    """Merges sliding NMP reports into windowed heavy hitters."""

    def __init__(self, q: int, epsilon: float = 0.05) -> None:
        if q < 2:
            raise ConfigurationError(f"q must be >= 2, got {q}")
        if not 0.0 < epsilon < 1.0:
            raise ConfigurationError("epsilon must be in (0, 1)")
        self.q = q
        self.epsilon = epsilon

    def merged_sample(
        self, nmps: Iterable[SlidingMeasurementPoint], now: float
    ) -> List[Tuple[Tuple[int, int], float]]:
        best: Dict[Tuple[int, int], float] = {}
        for nmp in nmps:
            for record, value in nmp.report(now):
                best[record] = value
        return sorted(best.items(), key=lambda p: p[1])[: self.q]

    def heavy_hitters(
        self,
        nmps: Iterable[SlidingMeasurementPoint],
        now: float,
        theta: float,
    ) -> List[Tuple[int, float]]:
        """Flows whose windowed estimate clears ``θ − ε``."""
        if not 0.0 < theta <= 1.0:
            raise ConfigurationError(f"theta must be in (0, 1], got {theta}")
        sample = self.merged_sample(nmps, now)
        if not sample:
            return []
        if len(sample) < self.q:
            total = float(len(sample))
        else:
            total = (self.q - 1) / sample[-1][1]
        counts = Counter(flow for (flow, _pkt), _v in sample)
        scale = total / len(sample)
        cutoff = (theta - self.epsilon) * total
        heavy = [
            (flow, count * scale)
            for flow, count in counts.items()
            if count * scale >= cutoff
        ]
        heavy.sort(key=lambda p: p[1], reverse=True)
        return heavy
