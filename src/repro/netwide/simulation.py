"""End-to-end network-wide measurement simulation.

Drives a packet trace across a topology: each packet follows the
shortest path between the hosts its src/dst addresses are pinned to,
and every switch on the path runs an NMP that observes it.  This is the
substitute for the paper's multi-NMP deployments — it produces exactly
the duplicate-observation pattern (one packet, many NMPs) that the
hash-based sampling must neutralise.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.netwide.controller import Controller
from repro.netwide.nmp import MeasurementPoint
from repro.netwide.topology import NetworkTopology
from repro.traffic.packet import Packet


class NetworkSimulation:
    """A topology with one NMP per switch and a central controller."""

    def __init__(
        self,
        topology: NetworkTopology,
        q: int,
        backend: str = "qmax",
        gamma: float = 0.25,
        seed: int = 0,
        ecmp: bool = False,
    ) -> None:
        self.topology = topology
        self.ecmp = ecmp
        self.controller = Controller(q)
        self.nmps: Dict[str, MeasurementPoint] = {
            switch: MeasurementPoint(
                q, backend=backend, gamma=gamma, seed=seed, name=switch
            )
            for switch in topology.switches
        }
        if not self.nmps:
            raise ConfigurationError("topology has no switches")
        self.packets_routed = 0
        self.observations = 0

    def inject(self, pkt: Packet) -> int:
        """Route one packet; returns the number of NMPs that saw it."""
        src_host = self.topology.host_of_ip(pkt.src_ip)
        dst_host = self.topology.host_of_ip(pkt.dst_ip)
        if self.ecmp:
            # Flow-sticky ECMP: hash the five-tuple across the
            # equal-cost shortest paths.
            route = self.topology.ecmp_route(
                src_host, dst_host, hash(pkt.five_tuple)
            )
        else:
            route = self.topology.route(src_host, dst_host)
        for switch in route:
            self.nmps[switch].observe(pkt)
        self.packets_routed += 1
        self.observations += len(route)
        return len(route)

    def run(self, packets: Iterable[Packet]) -> None:
        """Inject an entire trace."""
        for pkt in packets:
            self.inject(pkt)

    def heavy_hitters(
        self, theta: float, epsilon: float = 0.0
    ) -> List[Tuple[int, float]]:
        """Network-wide heavy hitter flows (no double counting)."""
        return self.controller.heavy_hitters(
            self.nmps.values(), theta, epsilon
        )

    def true_heavy_hitters(
        self, packets: Sequence[Packet], theta: float
    ) -> List[Tuple[int, int]]:
        """Ground truth on the injected trace (by distinct packets)."""
        counts = Counter(pkt.src_ip for pkt in packets)
        total = len(packets)
        return sorted(
            (
                (flow, count)
                for flow, count in counts.items()
                if count >= theta * total
            ),
            key=lambda p: p[1],
            reverse=True,
        )

    @property
    def mean_path_length(self) -> float:
        """Average NMPs per packet — the duplication factor."""
        if self.packets_routed == 0:
            return 0.0
        return self.observations / self.packets_routed
