"""Wire formats for NMP → controller reports.

In the paper's deployment, NMPs run on switches and periodically ship
their q-MIN samples to a central controller.  This module provides two
interchangeable encodings of a report:

* **JSON** — debuggable, schema-documented, for control channels where
  readability matters.
* **Binary** — a compact fixed-record format (`struct`-packed) for the
  data channel: magic + version + NMP name + record count, then one
  ``(flow: u32, packet_id: u64, hash: f64)`` record per sample.

Both round-trip exactly (hash values are IEEE doubles end to end, so
merged results are bit-identical to in-process merging) and validate
their input defensively — a controller must survive malformed reports
from a misbehaving switch.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ConfigurationError, WireFormatError

#: Sample record: ((flow, packet_id), hash_value) — matches
#: MeasurementPoint.report() entries.
ReportEntry = Tuple[Tuple[int, int], float]

_MAGIC = b"QMRP"
_VERSION = 1
_HEADER = struct.Struct("!4sBH")  # magic, version, name length
_COUNT = struct.Struct("!I")
_RECORD = struct.Struct("!IQd")


@dataclass(frozen=True)
class Report:
    """One NMP report: who sent it, how many packets it saw, and the
    minimal-hash sample."""

    nmp_name: str
    observed: int
    entries: Tuple[ReportEntry, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.observed, int) or self.observed < 0:
            raise ConfigurationError("observed must be an int >= 0")
        try:
            values = [value for _record, value in self.entries]
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"entries must be ((flow, packet_id), hash) pairs: {exc}"
            ) from exc
        try:
            is_sorted = values == sorted(values)
        except TypeError as exc:
            raise ConfigurationError(
                f"entry hash values must be mutually comparable: {exc}"
            ) from exc
        if not is_sorted:
            raise ConfigurationError(
                "report entries must be sorted by ascending hash"
            )


def from_measurement_point(nmp) -> Report:
    """Snapshot a :class:`~repro.netwide.nmp.MeasurementPoint`."""
    return Report(
        nmp_name=nmp.name,
        observed=nmp.observed,
        entries=tuple(nmp.report()),
    )


# ----------------------------------------------------------------------
# JSON encoding.
# ----------------------------------------------------------------------

def to_json(report: Report) -> str:
    """Encode a report as a JSON document."""
    return json.dumps(
        {
            "format": "qmax-report",
            "version": _VERSION,
            "nmp": report.nmp_name,
            "observed": report.observed,
            "samples": [
                {"flow": flow, "packet_id": pid, "hash": value}
                for (flow, pid), value in report.entries
            ],
        }
    )


def from_json(text: str) -> Report:
    """Decode and validate a JSON report.

    Malformed input raises :class:`WireFormatError`.
    """
    try:
        doc = json.loads(text)
    except (json.JSONDecodeError, TypeError) as exc:
        raise WireFormatError(f"malformed JSON report: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("format") != "qmax-report":
        raise WireFormatError("not a qmax-report document")
    if doc.get("version") != _VERSION:
        raise WireFormatError(
            f"unsupported report version {doc.get('version')!r}"
        )
    try:
        entries = tuple(
            ((int(s["flow"]), int(s["packet_id"])), float(s["hash"]))
            for s in doc["samples"]
        )
        return Report(
            nmp_name=str(doc["nmp"]),
            observed=int(doc["observed"]),
            entries=entries,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WireFormatError(f"malformed report fields: {exc}") from exc


# ----------------------------------------------------------------------
# Binary encoding.
# ----------------------------------------------------------------------

def to_bytes(report: Report) -> bytes:
    """Encode a report in the compact binary format."""
    name = report.nmp_name.encode("utf-8")
    if len(name) > 0xFFFF:
        raise ConfigurationError("NMP name too long")
    parts = [
        _HEADER.pack(_MAGIC, _VERSION, len(name)),
        name,
        struct.pack("!Q", report.observed),
        _COUNT.pack(len(report.entries)),
    ]
    for (flow, pid), value in report.entries:
        if not isinstance(flow, int) or not isinstance(pid, int):
            raise ConfigurationError(
                f"record ids must be ints: flow={flow!r}, "
                f"packet_id={pid!r}"
            )
        if not 0 <= flow < 2**32 or not 0 <= pid < 2**64:
            raise ConfigurationError(
                f"record out of range: flow={flow}, packet_id={pid}"
            )
        try:
            parts.append(_RECORD.pack(flow, pid, value))
        except struct.error as exc:
            raise ConfigurationError(
                f"unencodable record value {value!r}: {exc}"
            ) from exc
    return b"".join(parts)


def from_bytes(data: bytes) -> Report:
    """Decode and validate a binary report.

    Malformed input — bad magic, adversarial length prefixes, records
    that stop mid-stream, an undecodable name — raises
    :class:`WireFormatError`; decoding never reads past ``len(data)``
    and never allocates proportionally to an unvalidated length field.
    """
    if len(data) < _HEADER.size:
        raise WireFormatError("truncated report header")
    magic, version, name_len = _HEADER.unpack_from(data)
    if magic != _MAGIC:
        raise WireFormatError(f"bad report magic {magic!r}")
    if version != _VERSION:
        raise WireFormatError(f"unsupported report version {version}")
    offset = _HEADER.size
    if offset + name_len + 8 + _COUNT.size > len(data):
        raise WireFormatError("truncated report body")
    try:
        name = data[offset:offset + name_len].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise WireFormatError(f"undecodable NMP name: {exc}") from exc
    offset += name_len
    (observed,) = struct.unpack_from("!Q", data, offset)
    offset += 8
    (count,) = _COUNT.unpack_from(data, offset)
    offset += _COUNT.size
    if offset + count * _RECORD.size > len(data):
        raise WireFormatError("truncated report records")
    entries: List[ReportEntry] = []
    for _ in range(count):
        flow, pid, value = _RECORD.unpack_from(data, offset)
        offset += _RECORD.size
        entries.append(((flow, pid), value))
    try:
        return Report(nmp_name=name, observed=observed,
                      entries=tuple(entries))
    except ConfigurationError as exc:
        # Bit-flipped records can decode into an invalid Report (e.g.
        # hashes out of ascending order); that's still wire garbage.
        raise WireFormatError(f"invalid decoded report: {exc}") from exc


# ----------------------------------------------------------------------
# Controller-side merging of decoded reports.
# ----------------------------------------------------------------------

def merge_reports(reports: List[Report], q: int) -> List[ReportEntry]:
    """Merge decoded reports into the globally minimal q samples.

    Functionally identical to
    :meth:`repro.netwide.controller.Controller.merge_reports`, but
    operating on wire-decoded reports — the distributed deployment's
    code path.
    """
    if q < 1:
        raise ConfigurationError(f"q must be >= 1, got {q}")
    best = {}
    for report in reports:
        for record, value in report.entries:
            best[record] = value
    merged = sorted(best.items(), key=lambda p: p[1])
    return merged[:q]
