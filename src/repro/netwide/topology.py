"""Network topologies with routing for the network-wide experiments.

The routing-oblivious property of the heavy-hitter scheme is only
interesting when packets actually traverse *multiple* measurement
points; this module builds topologies (fat-tree-ish data-center pods or
random Waxman-style WANs via networkx), computes shortest-path routes,
and places NMPs on switches so the simulation can replay a trace along
realistic multi-hop paths.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

import networkx as nx

from repro.errors import ConfigurationError


class NetworkTopology:
    """A switch-level topology with hosts attached at the edge.

    Attributes
    ----------
    graph:
        The networkx graph; switch nodes are strings ``"s<i>"`` and host
        nodes ``"h<i>"``.
    """

    def __init__(self, graph: nx.Graph, hosts: Sequence[str]) -> None:
        if not hosts:
            raise ConfigurationError("topology needs at least one host")
        self.graph = graph
        self.hosts = list(hosts)
        self._route_cache: Dict[Tuple[str, str], List[str]] = {}

    # ------------------------------------------------------------------
    # Construction helpers.
    # ------------------------------------------------------------------

    @classmethod
    def linear(cls, n_switches: int, hosts_per_switch: int = 1) -> "NetworkTopology":
        """A chain of switches — every cross-chain packet crosses many
        NMPs, maximally stressing deduplication."""
        if n_switches < 1:
            raise ConfigurationError("need at least one switch")
        graph = nx.Graph()
        hosts: List[str] = []
        for i in range(n_switches):
            graph.add_node(f"s{i}", kind="switch")
            if i > 0:
                graph.add_edge(f"s{i - 1}", f"s{i}")
            for j in range(hosts_per_switch):
                host = f"h{i}_{j}"
                graph.add_node(host, kind="host")
                graph.add_edge(host, f"s{i}")
                hosts.append(host)
        return cls(graph, hosts)

    @classmethod
    def fat_tree_pod(cls, edge_switches: int = 4, hosts_per_edge: int = 4
                     ) -> "NetworkTopology":
        """One data-center pod: edge switches under two aggregators."""
        graph = nx.Graph()
        aggs = ["s_agg0", "s_agg1"]
        for agg in aggs:
            graph.add_node(agg, kind="switch")
        graph.add_edge(*aggs)
        hosts: List[str] = []
        for e in range(edge_switches):
            edge = f"s_edge{e}"
            graph.add_node(edge, kind="switch")
            for agg in aggs:
                graph.add_edge(edge, agg)
            for j in range(hosts_per_edge):
                host = f"h{e}_{j}"
                graph.add_node(host, kind="host")
                graph.add_edge(host, edge)
                hosts.append(host)
        return cls(graph, hosts)

    @classmethod
    def random_wan(
        cls, n_switches: int = 12, degree: int = 3, seed: int = 0
    ) -> "NetworkTopology":
        """A random regular-ish WAN with one host per switch."""
        if n_switches < 4:
            raise ConfigurationError("need at least 4 switches")
        rng = random.Random(seed)
        graph = nx.connected_watts_strogatz_graph(
            n_switches, k=max(2, degree), p=0.3, seed=rng.randint(0, 2**31)
        )
        graph = nx.relabel_nodes(graph, {i: f"s{i}" for i in range(n_switches)})
        hosts = []
        for i in range(n_switches):
            nx.set_node_attributes(graph, {f"s{i}": "switch"}, "kind")
            host = f"h{i}"
            graph.add_node(host, kind="host")
            graph.add_edge(host, f"s{i}")
            hosts.append(host)
        return cls(graph, hosts)

    # ------------------------------------------------------------------
    # Routing.
    # ------------------------------------------------------------------

    @property
    def switches(self) -> List[str]:
        return [
            n
            for n, data in self.graph.nodes(data=True)
            if data.get("kind") == "switch"
        ]

    def route(self, src_host: str, dst_host: str) -> List[str]:
        """Switches on the shortest path between two hosts (cached)."""
        key = (src_host, dst_host)
        cached = self._route_cache.get(key)
        if cached is None:
            if src_host == dst_host:
                # Intra-host traffic still hairpins through the access
                # switch, so every packet is observed at least once.
                cached = [
                    n
                    for n in self.graph.neighbors(src_host)
                    if n.startswith("s")
                ][:1]
            else:
                path = nx.shortest_path(self.graph, src_host, dst_host)
                cached = [n for n in path if n.startswith("s")]
            self._route_cache[key] = cached
        return cached

    def ecmp_routes(self, src_host: str, dst_host: str) -> List[List[str]]:
        """All equal-cost shortest paths between two hosts (cached).

        Real networks hash flows across equal-cost paths; different
        flows between the same endpoints may then cross *different*
        NMPs — exactly the routing variability the paper's scheme is
        oblivious to.
        """
        key = ("ecmp", src_host, dst_host)
        cached = self._route_cache.get(key)
        if cached is None:
            if src_host == dst_host:
                cached = [self.route(src_host, dst_host)]
            else:
                cached = [
                    [n for n in path if n.startswith("s")]
                    for path in nx.all_shortest_paths(
                        self.graph, src_host, dst_host
                    )
                ]
            self._route_cache[key] = cached
        return cached

    def ecmp_route(
        self, src_host: str, dst_host: str, flow_hash: int
    ) -> List[str]:
        """The ECMP path a flow with ``flow_hash`` takes (flow-sticky)."""
        routes = self.ecmp_routes(src_host, dst_host)
        return routes[flow_hash % len(routes)]

    def host_of_ip(self, ip: int) -> str:
        """Deterministically pin an IP address to a host."""
        return self.hosts[ip % len(self.hosts)]
