"""The central controller for network-wide heavy hitters.

Merges per-NMP reports into the globally minimal ``q`` packet samples.
Duplicate observations of one packet (it traversed several NMPs) carry
identical (record, hash) pairs and collapse during the merge, so the
result is a uniform ``q``-sample of the *distinct* packets that crossed
the network.  Flow frequencies are then estimated from the sample:

    N̂ = (q − 1) / h_q                 (total distinct packets, KMV)
    f̂(flow) = (#sample packets of flow / q) · N̂

Heavy hitters are flows with ``f̂ ≥ (θ − ε)·N̂`` — the ε margin makes
false negatives unlikely, as in the original paper.

The merge math is exposed twice: :class:`Controller` wraps live
:class:`~repro.netwide.nmp.MeasurementPoint` objects (the offline
simulation path), while the module-level ``*_from_reports`` functions
take raw report entry lists — ``((flow, packet_id), hash)`` pairs —
which is what arrives over the wire in a real deployment.  The fleet
coordinator (:mod:`repro.fleet`) runs the same functions against
reports pulled from live daemons, so the offline simulation and the
distributed system share one implementation of the §6 network-wide
scheme.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.netwide.nmp import MeasurementPoint

#: One report entry: ((flow, packet_id), hash value).
Entry = Tuple[Tuple[int, int], float]


# ----------------------------------------------------------------------
# The merge math over raw report entry lists (the wire shape).
# ----------------------------------------------------------------------

def merge_reports_from_entries(
    reports: Iterable[Sequence[Entry]], q: int
) -> List[Entry]:
    """Globally minimal ``q`` samples across raw reports, deduplicated
    by record identity (identical duplicates overwrite)."""
    best: Dict[Tuple[int, int], float] = {}
    for entries in reports:
        for record, value in entries:
            best[record] = value
    merged = sorted(best.items(), key=lambda p: p[1])
    return merged[:q]


def estimate_total_from_sample(sample: List[Entry], q: int) -> float:
    """KMV estimate of the number of distinct packets network-wide."""
    if len(sample) < q:
        return float(len(sample))
    return (q - 1) / sample[-1][1]


def flow_estimates_from_reports(
    reports: Iterable[Sequence[Entry]], q: int
) -> Dict[int, float]:
    """Per-flow packet-count estimates from the merged sample."""
    sample = merge_reports_from_entries(reports, q)
    if not sample:
        return {}
    total = estimate_total_from_sample(sample, q)
    counts = Counter(flow for (flow, _pkt), _v in sample)
    scale = total / len(sample)
    return {flow: count * scale for flow, count in counts.items()}


def heavy_hitters_from_reports(
    reports: Iterable[Sequence[Entry]],
    q: int,
    theta: float,
    epsilon: float = 0.0,
) -> List[Tuple[int, float]]:
    """Flows estimated to exceed ``(θ − ε)`` of the total traffic,
    computed directly from raw report entry lists.

    Returns (flow, estimated packet count), heaviest first.
    """
    if not 0.0 < theta <= 1.0:
        raise ConfigurationError(f"theta must be in (0, 1], got {theta}")
    reports = [list(entries) for entries in reports]
    sample = merge_reports_from_entries(reports, q)
    if not sample:
        return []
    total = estimate_total_from_sample(sample, q)
    estimates = flow_estimates_from_reports(reports, q)
    cutoff = (theta - epsilon) * total
    heavy = [
        (flow, est) for flow, est in estimates.items() if est >= cutoff
    ]
    heavy.sort(key=lambda p: p[1], reverse=True)
    return heavy


# ----------------------------------------------------------------------
# The NMP-object wrapper (simulation path).
# ----------------------------------------------------------------------

class Controller:
    """Aggregates NMP reports and answers heavy-hitter queries."""

    def __init__(self, q: int) -> None:
        if q < 2:
            raise ConfigurationError(f"q must be >= 2, got {q}")
        self.q = q

    def merge_reports(
        self, nmps: Iterable[MeasurementPoint]
    ) -> List[Entry]:
        """Globally minimal q samples across all NMPs (deduplicated)."""
        return merge_reports_from_entries(
            (nmp.report() for nmp in nmps), self.q
        )

    def estimate_total(self, sample: List[Entry]) -> float:
        """KMV estimate of the number of distinct packets network-wide."""
        return estimate_total_from_sample(sample, self.q)

    def flow_estimates(
        self, nmps: Iterable[MeasurementPoint]
    ) -> Dict[int, float]:
        """Per-flow packet-count estimates from the merged sample."""
        return flow_estimates_from_reports(
            [nmp.report() for nmp in nmps], self.q
        )

    def heavy_hitters(
        self,
        nmps: Iterable[MeasurementPoint],
        theta: float,
        epsilon: float = 0.0,
    ) -> List[Tuple[int, float]]:
        """Flows estimated to exceed ``(θ − ε)`` of the total traffic.

        Returns (flow, estimated packet count), heaviest first.
        """
        return heavy_hitters_from_reports(
            [nmp.report() for nmp in nmps], self.q, theta, epsilon
        )
