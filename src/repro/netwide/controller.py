"""The central controller for network-wide heavy hitters.

Merges per-NMP reports into the globally minimal ``q`` packet samples.
Duplicate observations of one packet (it traversed several NMPs) carry
identical (record, hash) pairs and collapse during the merge, so the
result is a uniform ``q``-sample of the *distinct* packets that crossed
the network.  Flow frequencies are then estimated from the sample:

    N̂ = (q − 1) / h_q                 (total distinct packets, KMV)
    f̂(flow) = (#sample packets of flow / q) · N̂

Heavy hitters are flows with ``f̂ ≥ (θ − ε)·N̂`` — the ε margin makes
false negatives unlikely, as in the original paper.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Tuple

from repro.errors import ConfigurationError
from repro.netwide.nmp import MeasurementPoint


class Controller:
    """Aggregates NMP reports and answers heavy-hitter queries."""

    def __init__(self, q: int) -> None:
        if q < 2:
            raise ConfigurationError(f"q must be >= 2, got {q}")
        self.q = q

    def merge_reports(
        self, nmps: Iterable[MeasurementPoint]
    ) -> List[Tuple[Tuple[int, int], float]]:
        """Globally minimal q samples across all NMPs (deduplicated)."""
        best: Dict[Tuple[int, int], float] = {}
        for nmp in nmps:
            for record, value in nmp.report():
                best[record] = value  # identical duplicates overwrite
        merged = sorted(best.items(), key=lambda p: p[1])
        return merged[: self.q]

    def estimate_total(
        self, sample: List[Tuple[Tuple[int, int], float]]
    ) -> float:
        """KMV estimate of the number of distinct packets network-wide."""
        if len(sample) < self.q:
            return float(len(sample))
        return (self.q - 1) / sample[-1][1]

    def flow_estimates(
        self, nmps: Iterable[MeasurementPoint]
    ) -> Dict[int, float]:
        """Per-flow packet-count estimates from the merged sample."""
        sample = self.merge_reports(nmps)
        if not sample:
            return {}
        total = self.estimate_total(sample)
        counts = Counter(flow for (flow, _pkt), _v in sample)
        scale = total / len(sample)
        return {flow: count * scale for flow, count in counts.items()}

    def heavy_hitters(
        self,
        nmps: Iterable[MeasurementPoint],
        theta: float,
        epsilon: float = 0.0,
    ) -> List[Tuple[int, float]]:
        """Flows estimated to exceed ``(θ − ε)`` of the total traffic.

        Returns (flow, estimated packet count), heaviest first.
        """
        if not 0.0 < theta <= 1.0:
            raise ConfigurationError(f"theta must be in (0, 1], got {theta}")
        nmps = list(nmps)
        sample = self.merge_reports(nmps)
        if not sample:
            return []
        total = self.estimate_total(sample)
        estimates = self.flow_estimates(nmps)
        cutoff = (theta - epsilon) * total
        heavy = [
            (flow, est) for flow, est in estimates.items() if est >= cutoff
        ]
        heavy.sort(key=lambda p: p[1], reverse=True)
        return heavy
