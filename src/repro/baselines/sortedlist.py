"""Sorted-array baseline (the balanced-search-tree stand-in).

The paper groups balanced search trees with heaps and skip lists as the
"standard data structures" q-MAX replaces.  In Python the closest
honest comparator is a bisect-maintained sorted array: O(log q) search
plus O(q) shifting per insert (``list.insert`` memmove) — the same
asymptotic family, with very low constants for small q.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Iterator, List, Sequence, Tuple

from repro.core.interface import QMaxBase
from repro.errors import ConfigurationError, InvariantError
from repro.types import Item, ItemId, Value


class SortedListQMax(QMaxBase):
    """q-MAX via a sorted array of ``(value, seq, id)`` triples.

    The ``seq`` tiebreaker guarantees tuple comparison never reaches the
    (possibly unorderable) id.
    """

    __slots__ = ("q", "_entries", "_seq", "_track_evictions", "_evicted")

    def __init__(self, q: int, track_evictions: bool = False) -> None:
        if q < 1:
            raise ConfigurationError(f"q must be >= 1, got {q}")
        self.q = q
        self._track_evictions = track_evictions
        self.reset()

    def reset(self) -> None:
        self._entries: List[Tuple[Value, int, ItemId]] = []
        self._seq = 0
        self._evicted: List[Item] = []

    def add(self, item_id: ItemId, val: Value) -> None:
        entries = self._entries
        if len(entries) >= self.q:
            if val <= entries[0][0]:
                if self._track_evictions:
                    self._evicted.append((item_id, val))
                return
            dropped = entries.pop(0)
            if self._track_evictions:
                self._evicted.append((dropped[2], dropped[0]))
        self._seq += 1
        insort(entries, (val, self._seq, item_id))

    def add_many(self, ids: Sequence[ItemId], vals: Sequence[Value]) -> None:
        """Batch update: ``add`` semantics with lookups hoisted; the
        common case is one comparison against the current minimum."""
        n = len(ids)
        if n != len(vals):
            raise ConfigurationError(
                f"batch length mismatch: {n} ids vs {len(vals)} vals"
            )
        entries = self._entries
        q = self.q
        track = self._track_evictions
        evicted = self._evicted
        seq = self._seq
        for i in range(n):
            val = vals[i]
            if len(entries) >= q:
                if val <= entries[0][0]:
                    if track:
                        evicted.append((ids[i], val))
                    continue
                dropped = entries.pop(0)
                if track:
                    evicted.append((dropped[2], dropped[0]))
            seq += 1
            insort(entries, (val, seq, ids[i]))
        self._seq = seq

    def items(self) -> Iterator[Item]:
        for val, _, item_id in self._entries:
            yield item_id, val

    def take_evicted(self) -> List[Item]:
        evicted, self._evicted = self._evicted, []
        return evicted

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def name(self) -> str:
        return "sortedlist"

    def check_invariants(self) -> None:
        entries = self._entries
        for i in range(1, len(entries)):
            if entries[i - 1] > entries[i]:
                raise InvariantError("sorted order violated")
        if len(entries) > self.q:
            raise InvariantError("sorted list grew beyond q")
