"""Skip list baseline (the paper's SkipList comparator).

A from-scratch probabilistic skip list ordered ascending by value, with
a deterministic seeded level generator so runs are reproducible.  The
q-MAX adapter keeps at most ``q`` nodes: an arriving item either beats
the current minimum (head successor) and is inserted in O(log q), or is
discarded in O(1).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from repro.core.interface import QMaxBase
from repro.errors import ConfigurationError, EmptyStructureError, InvariantError
from repro.hashing.mix import mix64
from repro.types import Item, ItemId, Value

_MAX_LEVEL = 32


class _Node:
    __slots__ = ("val", "item_id", "forward")

    def __init__(self, val: Value, item_id: ItemId, level: int) -> None:
        self.val = val
        self.item_id = item_id
        self.forward: List[Optional[_Node]] = [None] * level


class SkipList:
    """Ascending-by-value skip list with duplicate values allowed."""

    __slots__ = ("_head", "_level", "_size", "_rng_state")

    def __init__(self, seed: int = 0x5EED) -> None:
        self._head = _Node(float("-inf"), None, _MAX_LEVEL)
        self._level = 1
        self._size = 0
        self._rng_state = mix64(seed) | 1

    def __len__(self) -> int:
        return self._size

    def _random_level(self) -> int:
        """Geometric(1/2) level from a 64-bit xorshift stream."""
        x = self._rng_state
        x ^= (x << 13) & 0xFFFFFFFFFFFFFFFF
        x ^= x >> 7
        x ^= (x << 17) & 0xFFFFFFFFFFFFFFFF
        self._rng_state = x
        level = 1
        while x & 1 and level < _MAX_LEVEL:
            level += 1
            x >>= 1
        return level

    def insert(self, val: Value, item_id: ItemId) -> None:
        """O(log n) expected insertion."""
        update = [self._head] * _MAX_LEVEL
        node = self._head
        for lvl in range(self._level - 1, -1, -1):
            nxt = node.forward[lvl]
            while nxt is not None and nxt.val < val:
                node = nxt
                nxt = node.forward[lvl]
            update[lvl] = node
        level = self._random_level()
        if level > self._level:
            self._level = level
        new = _Node(val, item_id, level)
        for lvl in range(level):
            new.forward[lvl] = update[lvl].forward[lvl]
            update[lvl].forward[lvl] = new
        self._size += 1

    def min_value(self) -> Value:
        """Smallest value in O(1)."""
        first = self._head.forward[0]
        if first is None:
            raise EmptyStructureError("min of empty skip list")
        return first.val

    def pop_min(self) -> Item:
        """Remove and return the (id, value) with the smallest value."""
        first = self._head.forward[0]
        if first is None:
            raise EmptyStructureError("pop from empty skip list")
        for lvl in range(len(first.forward)):
            self._head.forward[lvl] = first.forward[lvl]
        while self._level > 1 and self._head.forward[self._level - 1] is None:
            self._level -= 1
        self._size -= 1
        return first.item_id, first.val

    def remove(self, val: Value, item_id: ItemId) -> bool:
        """Remove one node with exactly this (value, id); O(log n).

        Returns False when no such node exists.  Needed by applications
        that update a key's value (PBA, LRFU): the skip-list baseline
        removes the old entry and reinserts the new one.
        """
        update = [self._head] * _MAX_LEVEL
        node = self._head
        for lvl in range(self._level - 1, -1, -1):
            nxt = node.forward[lvl]
            while nxt is not None and nxt.val < val:
                node = nxt
                nxt = node.forward[lvl]
            update[lvl] = node
        # Walk equal-valued nodes at level 0 to match the id.
        target = update[0].forward[0]
        while target is not None and target.val == val:
            if target.item_id == item_id:
                break
            target = target.forward[0]
        else:
            return False
        if target is None:
            return False
        # Re-walk each level's predecessor up to the exact target node.
        for lvl in range(len(target.forward)):
            node = update[lvl]
            while node.forward[lvl] is not target:
                node = node.forward[lvl]
                if node is None:  # pragma: no cover - defensive
                    return False
            node.forward[lvl] = target.forward[lvl]
        while self._level > 1 and self._head.forward[self._level - 1] is None:
            self._level -= 1
        self._size -= 1
        return True

    def __iter__(self) -> Iterator[Item]:
        node = self._head.forward[0]
        while node is not None:
            yield node.item_id, node.val
            node = node.forward[0]

    def check_invariants(self) -> None:
        count = 0
        prev_val = float("-inf")
        node = self._head.forward[0]
        while node is not None:
            if node.val < prev_val:
                raise InvariantError("skip list order violated")
            prev_val = node.val
            count += 1
            node = node.forward[0]
        if count != self._size:
            raise InvariantError(
                f"size counter {self._size} != actual {count}"
            )
        # Every higher-level chain must be a subsequence of level 0.
        for lvl in range(1, self._level):
            node = self._head.forward[lvl]
            prev = float("-inf")
            while node is not None:
                if node.val < prev:
                    raise InvariantError(f"order violated at level {lvl}")
                prev = node.val
                node = node.forward[lvl]


class SkipListQMax(QMaxBase):
    """q-MAX via a size-bounded skip list (the paper's baseline)."""

    __slots__ = ("q", "_list", "_seed", "_track_evictions", "_evicted")

    def __init__(
        self, q: int, seed: int = 0x5EED, track_evictions: bool = False
    ) -> None:
        if q < 1:
            raise ConfigurationError(f"q must be >= 1, got {q}")
        self.q = q
        self._seed = seed
        self._track_evictions = track_evictions
        self.reset()

    def reset(self) -> None:
        self._list = SkipList(self._seed)
        self._evicted: List[Item] = []

    def add(self, item_id: ItemId, val: Value) -> None:
        lst = self._list
        if len(lst) >= self.q:
            if val <= lst.min_value():
                if self._track_evictions:
                    self._evicted.append((item_id, val))
                return
            dropped = lst.pop_min()
            if self._track_evictions:
                self._evicted.append(dropped)
        lst.insert(val, item_id)

    def add_many(self, ids: Sequence[ItemId], vals: Sequence[Value]) -> None:
        """Batch update: ``add`` semantics with lookups hoisted; the
        common case is one O(1) comparison against the list minimum."""
        n = len(ids)
        if n != len(vals):
            raise ConfigurationError(
                f"batch length mismatch: {n} ids vs {len(vals)} vals"
            )
        lst = self._list
        q = self.q
        track = self._track_evictions
        evicted = self._evicted
        min_value = lst.min_value
        pop_min = lst.pop_min
        insert = lst.insert
        for i in range(n):
            val = vals[i]
            if len(lst) >= q:
                if val <= min_value():
                    if track:
                        evicted.append((ids[i], val))
                    continue
                dropped = pop_min()
                if track:
                    evicted.append(dropped)
            insert(val, ids[i])

    def items(self) -> Iterator[Item]:
        return iter(self._list)

    def take_evicted(self) -> List[Item]:
        evicted, self._evicted = self._evicted, []
        return evicted

    def __len__(self) -> int:
        return len(self._list)

    @property
    def name(self) -> str:
        return "skiplist"

    def check_invariants(self) -> None:
        self._list.check_invariants()
        if len(self._list) > self.q:
            raise InvariantError("skip list grew beyond q")
