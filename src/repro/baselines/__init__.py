"""Baseline implementations of the q-MAX interface.

These are the structures the paper measures against: a size-q binary
min-heap (the "standard C++ algorithm library" baseline), a skip list,
and a sorted array standing in for balanced search trees.  All are
written from scratch so the comparison exercises the same language
runtime as the q-MAX implementations.
"""

from repro.baselines.heap import HeapQMax, IndexedHeap
from repro.baselines.skiplist import SkipList, SkipListQMax
from repro.baselines.sortedlist import SortedListQMax

__all__ = [
    "HeapQMax",
    "IndexedHeap",
    "SkipList",
    "SkipListQMax",
    "SortedListQMax",
]
