"""Heap baselines.

:class:`HeapQMax` is the paper's Heap baseline: a binary *min*-heap of
at most ``q`` items keyed by value.  An arriving item beats the root or
is discarded; beating it costs one sift-down, i.e. O(log q) — the
logarithmic update the paper's q-MAX removes.

:class:`IndexedHeap` is a general addressable binary heap (push /
pop-min / update-key / remove) used by the classic LRFU implementation
(§2.7, scores change on every access) and by the DBM application
(§2.5, merging buckets changes neighbouring pair errors).  It is the
"priority queue that supports sifts" whose absence from ``std::`` the
paper notes makes the naive C++ Heap baseline O(q) for those
applications.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from repro.core.interface import QMaxBase
from repro.errors import ConfigurationError, EmptyStructureError, InvariantError
from repro.types import Item, ItemId, Value


class HeapQMax(QMaxBase):
    """Size-q binary min-heap maintaining the q largest stream values."""

    __slots__ = ("q", "_vals", "_ids", "_track_evictions", "_evicted")

    def __init__(self, q: int, track_evictions: bool = False) -> None:
        if q < 1:
            raise ConfigurationError(f"q must be >= 1, got {q}")
        self.q = q
        self._track_evictions = track_evictions
        self.reset()

    def reset(self) -> None:
        self._vals: List[Value] = []
        self._ids: List[ItemId] = []
        self._evicted: List[Item] = []

    def add(self, item_id: ItemId, val: Value) -> None:
        """O(log q): insert if the heap is short or ``val`` beats the min."""
        vals = self._vals
        if len(vals) < self.q:
            vals.append(val)
            self._ids.append(item_id)
            self._sift_up(len(vals) - 1)
            return
        if val <= vals[0]:
            if self._track_evictions:
                self._evicted.append((item_id, val))
            return
        if self._track_evictions:
            self._evicted.append((self._ids[0], vals[0]))
        vals[0] = val
        self._ids[0] = item_id
        self._sift_down(0)

    def add_many(self, ids: Sequence[ItemId], vals: Sequence[Value]) -> None:
        """Batch update: same logic as ``add`` with lookups hoisted.

        Once the heap is warm, the common case is one comparison against
        the root per item — no method dispatch.
        """
        n = len(ids)
        if n != len(vals):
            raise ConfigurationError(
                f"batch length mismatch: {n} ids vs {len(vals)} vals"
            )
        heap_vals = self._vals
        heap_ids = self._ids
        q = self.q
        track = self._track_evictions
        evicted = self._evicted
        sift_up = self._sift_up
        sift_down = self._sift_down
        i = 0
        if len(heap_vals) < q:
            while i < n and len(heap_vals) < q:
                heap_vals.append(vals[i])
                heap_ids.append(ids[i])
                sift_up(len(heap_vals) - 1)
                i += 1
        while i < n:
            val = vals[i]
            if val <= heap_vals[0]:
                if track:
                    evicted.append((ids[i], val))
                i += 1
                continue
            if track:
                evicted.append((heap_ids[0], heap_vals[0]))
            heap_vals[0] = val
            heap_ids[0] = ids[i]
            sift_down(0)
            i += 1

    def _sift_up(self, i: int) -> None:
        vals, ids = self._vals, self._ids
        v, d = vals[i], ids[i]
        while i > 0:
            parent = (i - 1) >> 1
            if vals[parent] <= v:
                break
            vals[i] = vals[parent]
            ids[i] = ids[parent]
            i = parent
        vals[i] = v
        ids[i] = d

    def _sift_down(self, i: int) -> None:
        vals, ids = self._vals, self._ids
        n = len(vals)
        v, d = vals[i], ids[i]
        while True:
            child = 2 * i + 1
            if child >= n:
                break
            right = child + 1
            if right < n and vals[right] < vals[child]:
                child = right
            if vals[child] >= v:
                break
            vals[i] = vals[child]
            ids[i] = ids[child]
            i = child
        vals[i] = v
        ids[i] = d

    def items(self) -> Iterator[Item]:
        return iter(zip(self._ids, self._vals))

    def take_evicted(self) -> List[Item]:
        evicted, self._evicted = self._evicted, []
        return evicted

    def __len__(self) -> int:
        return len(self._vals)

    @property
    def name(self) -> str:
        return "heap"

    def check_invariants(self) -> None:
        vals = self._vals
        for i in range(1, len(vals)):
            if vals[(i - 1) >> 1] > vals[i]:
                raise InvariantError(f"heap order violated at index {i}")
        if len(vals) > self.q:
            raise InvariantError("heap grew beyond q")


class IndexedHeap:
    """Addressable binary min-heap: update-key and remove in O(log n).

    Keys are hashable ids; priorities are totally ordered values.  Used
    by classic LRFU (decrease/increase-key on every cache hit) and by
    the DBM bucket-merge monitor.
    """

    __slots__ = ("_vals", "_ids", "_pos")

    def __init__(self) -> None:
        self._vals: List[Value] = []
        self._ids: List[ItemId] = []
        self._pos: Dict[ItemId, int] = {}

    def __len__(self) -> int:
        return len(self._vals)

    def __contains__(self, item_id: ItemId) -> bool:
        return item_id in self._pos

    def push(self, item_id: ItemId, val: Value) -> None:
        """Insert a new id (must not be present)."""
        if item_id in self._pos:
            raise ConfigurationError(f"id {item_id!r} already in heap")
        self._vals.append(val)
        self._ids.append(item_id)
        self._pos[item_id] = len(self._vals) - 1
        self._sift_up(len(self._vals) - 1)

    def peek_min(self) -> Item:
        """The (id, value) with the minimal value, without removing it."""
        if not self._vals:
            raise EmptyStructureError("peek on empty IndexedHeap")
        return self._ids[0], self._vals[0]

    def pop_min(self) -> Item:
        """Remove and return the (id, value) with the minimal value."""
        if not self._vals:
            raise EmptyStructureError("pop on empty IndexedHeap")
        result = (self._ids[0], self._vals[0])
        self._remove_at(0)
        return result

    def value_of(self, item_id: ItemId) -> Value:
        """Current priority of ``item_id``."""
        return self._vals[self._pos[item_id]]

    def update(self, item_id: ItemId, val: Value) -> None:
        """Change the priority of an existing id (any direction)."""
        i = self._pos[item_id]
        old = self._vals[i]
        self._vals[i] = val
        if val < old:
            self._sift_up(i)
        elif val > old:
            self._sift_down(i)

    def remove(self, item_id: ItemId) -> Value:
        """Remove an id, returning its priority."""
        i = self._pos[item_id]
        val = self._vals[i]
        self._remove_at(i)
        return val

    def items(self) -> Iterator[Item]:
        return iter(zip(self._ids, self._vals))

    def _remove_at(self, i: int) -> None:
        vals, ids, pos = self._vals, self._ids, self._pos
        del pos[ids[i]]
        last_val, last_id = vals.pop(), ids.pop()
        if i < len(vals):
            old = vals[i]
            vals[i] = last_val
            ids[i] = last_id
            pos[last_id] = i
            if last_val < old:
                self._sift_up(i)
            else:
                self._sift_down(i)

    def _sift_up(self, i: int) -> None:
        vals, ids, pos = self._vals, self._ids, self._pos
        v, d = vals[i], ids[i]
        while i > 0:
            parent = (i - 1) >> 1
            if vals[parent] <= v:
                break
            vals[i] = vals[parent]
            ids[i] = ids[parent]
            pos[ids[i]] = i
            i = parent
        vals[i] = v
        ids[i] = d
        pos[d] = i

    def _sift_down(self, i: int) -> None:
        vals, ids, pos = self._vals, self._ids, self._pos
        n = len(vals)
        v, d = vals[i], ids[i]
        while True:
            child = 2 * i + 1
            if child >= n:
                break
            right = child + 1
            if right < n and vals[right] < vals[child]:
                child = right
            if vals[child] >= v:
                break
            vals[i] = vals[child]
            ids[i] = ids[child]
            pos[ids[i]] = i
            i = child
        vals[i] = v
        ids[i] = d
        pos[d] = i

    def check_invariants(self) -> None:
        vals, ids, pos = self._vals, self._ids, self._pos
        for i in range(1, len(vals)):
            if vals[(i - 1) >> 1] > vals[i]:
                raise InvariantError(f"heap order violated at index {i}")
        if len(pos) != len(vals):
            raise InvariantError("position map size mismatch")
        for item_id, i in pos.items():
            if ids[i] != item_id:
                raise InvariantError(f"position map stale for {item_id!r}")
