"""Daemon configuration and the pluggable measurement backend.

:class:`ServiceConfig` is a plain dataclass so it can be built from CLI
flags, test fixtures, or embedding code alike; validation happens at
construction (:class:`~repro.errors.ConfigurationError`) so a daemon
never comes up half-configured.  :meth:`ServiceConfig.build_engine`
is the backend plug: the daemon only ever talks to the
:class:`~repro.core.interface.QMaxBase` surface (``add_many`` /
``items`` / ``query`` / ``reset`` and, where present, ``close`` /
``take_evicted``), so anything implementing it slots in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.interface import QMaxBase
from repro.errors import ConfigurationError

#: Backends the daemon knows how to build.
BACKENDS = ("qmax", "sliding")

#: Port 0 means "let the kernel pick" — how the tests get ephemeral
#: ports; the bound port is reported by the daemon after startup.
EPHEMERAL = 0


@dataclass
class ServiceConfig:
    """Everything the daemon needs, with production-shaped defaults.

    Parameters
    ----------
    q, gamma:
        The engine's top-q target and the q-MAX slack parameter.
    backend:
        ``"qmax"`` (interval top-q) or ``"sliding"`` (count-based
        slack window over the last ``window`` records, slack ``tau``).
    shards:
        ``<= 1`` builds a single in-process backend; ``> 1`` builds a
        :class:`~repro.parallel.engine.ShardedQMaxEngine` with that
        many shards (``shard_mode`` as in the parallel subsystem).
        Sharding currently requires the ``qmax`` backend.
    host, udp_port, tcp_port, rpc_port:
        Listen addresses: NetFlow v5 datagrams (UDP), length-prefixed
        wire report frames (TCP), and the JSON query RPC (TCP).  Use
        port 0 for an ephemeral port.
    batch_max, flush_interval:
        Ingested records are coalesced until ``batch_max`` records are
        pending or ``flush_interval`` seconds have passed, then fed to
        the engine via one ``add_many`` call.
    queue_capacity:
        Pending-record bound.  At capacity, ingest *stalls* (UDP stops
        reading, datagrams queue in the kernel buffer; TCP stops
        reading, peers block on flow control) — records are never
        dropped for backpressure, matching the parallel subsystem's
        ring semantics.  Only malformed input is dropped, counted.
    snapshot_dir, snapshot_interval, recover:
        When ``snapshot_dir`` is set, retained + evicted state is
        checkpointed there every ``snapshot_interval`` seconds (and on
        graceful shutdown) with an atomic rename; ``recover=True``
        replays the latest snapshot at startup.
    track_evictions:
        Build the engine with eviction tracking so snapshots carry the
        eviction log (capped at ``evicted_cap`` entries, oldest first).
    metrics:
        Keep a per-daemon :class:`~repro.obs.MetricsRegistry` and serve
        the ``metrics`` RPC op from it (core, ingest, RPC, and snapshot
        instrumentation).  ``False`` wires the no-op registry
        everywhere — the zero-overhead configuration.
    fleet, daemon_id, heartbeat_interval:
        When ``fleet`` is set to a coordinator address (``host:port``),
        the daemon runs a fleet agent: it registers with the
        :class:`~repro.fleet.coordinator.FleetCoordinator` at startup
        (announcing ``daemon_id`` and its live listen ports), then
        heartbeats every ``heartbeat_interval`` seconds.  A lost
        coordinator is retried with exponential backoff and the daemon
        re-registers when it returns — the rejoin path.  ``daemon_id``
        defaults to ``host:rpc_port`` resolved after bind; give stable
        ids to daemons that must survive restarts (snapshot + rejoin).
    """

    q: int = 1000
    gamma: float = 0.25
    backend: str = "qmax"
    window: int = 100_000
    tau: float = 0.25
    shards: int = 1
    shard_mode: str = "auto"
    host: str = "127.0.0.1"
    udp_port: int = 9995
    tcp_port: int = 9996
    rpc_port: int = 9997
    batch_max: int = 512
    flush_interval: float = 0.05
    queue_capacity: int = 1 << 16
    snapshot_dir: Optional[str] = None
    snapshot_interval: float = 30.0
    recover: bool = True
    track_evictions: bool = False
    evicted_cap: int = 1 << 17
    metrics: bool = True
    fleet: Optional[str] = None
    daemon_id: Optional[str] = None
    heartbeat_interval: float = 1.0

    def __post_init__(self) -> None:
        if self.q < 1:
            raise ConfigurationError(f"q must be >= 1, got {self.q}")
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; expected one of "
                f"{BACKENDS}"
            )
        if self.shards < 0:
            raise ConfigurationError(
                f"shards must be >= 0, got {self.shards}"
            )
        if self.shards > 1 and self.backend != "qmax":
            raise ConfigurationError(
                "sharding requires the 'qmax' backend "
                f"(got {self.backend!r})"
            )
        if self.batch_max < 1:
            raise ConfigurationError(
                f"batch_max must be >= 1, got {self.batch_max}"
            )
        if self.flush_interval <= 0:
            raise ConfigurationError(
                f"flush_interval must be > 0, got {self.flush_interval}"
            )
        if self.queue_capacity < self.batch_max:
            raise ConfigurationError(
                f"queue_capacity ({self.queue_capacity}) must be >= "
                f"batch_max ({self.batch_max})"
            )
        if self.snapshot_interval <= 0:
            raise ConfigurationError(
                f"snapshot_interval must be > 0, got "
                f"{self.snapshot_interval}"
            )
        if self.evicted_cap < 0:
            raise ConfigurationError(
                f"evicted_cap must be >= 0, got {self.evicted_cap}"
            )
        for name in ("udp_port", "tcp_port", "rpc_port"):
            port = getattr(self, name)
            if not 0 <= port < 65536:
                raise ConfigurationError(
                    f"{name} must be in [0, 65536), got {port}"
                )
        if self.heartbeat_interval <= 0:
            raise ConfigurationError(
                f"heartbeat_interval must be > 0, got "
                f"{self.heartbeat_interval}"
            )
        if self.fleet is not None:
            self.fleet_address()  # validate eagerly

    def fleet_address(self) -> Optional[tuple]:
        """The coordinator ``(host, port)``, or ``None`` when not in a
        fleet.  Raises :class:`ConfigurationError` on a malformed
        ``fleet`` string."""
        if self.fleet is None:
            return None
        host, sep, port = self.fleet.rpartition(":")
        if not sep or not host:
            raise ConfigurationError(
                f"fleet must be 'host:port', got {self.fleet!r}"
            )
        try:
            port_no = int(port)
        except ValueError:
            raise ConfigurationError(
                f"fleet port must be an int, got {port!r}"
            ) from None
        if not 0 < port_no < 65536:
            raise ConfigurationError(
                f"fleet port must be in (0, 65536), got {port_no}"
            )
        return host, port_no

    def build_engine(self, metrics=False) -> QMaxBase:
        """Build the measurement backend this config describes.

        ``metrics`` follows the :func:`repro.obs.resolve_registry`
        convention; the daemon passes its own registry so engine and
        service instrumentation land in one place.  Backends that take
        no ``metrics`` parameter (``sliding``) are built as-is.
        """
        if self.shards > 1:
            from repro.parallel.engine import ShardedQMaxEngine

            return ShardedQMaxEngine(
                self.q,
                n_shards=self.shards,
                gamma=self.gamma,
                mode=self.shard_mode,
                track_evictions=self.track_evictions,
                metrics=metrics,
            )
        if self.backend == "sliding":
            from repro.core.sliding import SlidingQMax

            return SlidingQMax(self.q, window=self.window, tau=self.tau)
        from repro.core.qmax import QMax

        return QMax(
            self.q, self.gamma, track_evictions=self.track_evictions,
            metrics=metrics,
        )
