"""The measurement daemon: ingest, query, checkpoint, recover.

:class:`MeasurementDaemon` owns one engine (built from
:class:`~repro.service.config.ServiceConfig`), the ingest sources, the
RPC server, and the snapshot schedule, all on one asyncio event loop.
The engine is only ever touched from that loop — ingest batches, RPC
handlers, and snapshots are serialized by construction, which is what
lets the daemon sit on top of *any* ``QMaxBase`` backend, including
the sharded engine whose barriers must not interleave.

Lifecycle::

    daemon = MeasurementDaemon(config)
    await daemon.start()         # recover, bind, listen
    ...                          # traffic flows, RPC answers
    await daemon.stop()          # stall ingest, drain, snapshot,
                                 # engine.close()

``stop`` is what SIGTERM triggers via :func:`serve`: sources stop
reading, the feeder drains pending records through ``add_many``, a
final snapshot is written, and a closeable engine (the sharded one) is
drained via ``close()`` so nothing in flight is silently dropped.
:meth:`MeasurementDaemon.kill` is the crash path — no drain, no final
snapshot — used by fault-injection tests to prove recovery works.

:class:`DaemonThread` runs the whole daemon on a private loop in a
background thread: the harness for tests, the demo, and embedding in
synchronous programs.
"""

from __future__ import annotations

import asyncio
import contextlib
import logging
import os
import signal
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import ServiceError
from repro.obs import MetricsRegistry, NULL_REGISTRY, render_prometheus
from repro.parallel.merge import merge_top_items
from repro.service import snapshot as snap
from repro.service.config import ServiceConfig
from repro.service.ingest import (
    BatchFeeder,
    NetFlowUdpSource,
    ReportTcpSource,
)
from repro.service.rpc import OPS, RpcServer, rpc_call_async
from repro.types import Item

_LOG = logging.getLogger("repro.service.daemon")


class MeasurementDaemon:
    """One live measurement process: see the module docstring."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        # Per-daemon registry (not the process default): two daemons in
        # one process — the test harness does this — must not share
        # counters.
        self.registry = (
            MetricsRegistry() if config.metrics else NULL_REGISTRY
        )
        self._rpc_hists: Dict[str, Any] = {}
        self.engine = None  # type: ignore[assignment]
        self.feeder: BatchFeeder = None  # type: ignore[assignment]
        self.udp: NetFlowUdpSource = None  # type: ignore[assignment]
        self.tcp: ReportTcpSource = None  # type: ignore[assignment]
        self.rpc: RpcServer = None  # type: ignore[assignment]
        self.started_at: Optional[float] = None
        self.recovered = False
        self.snapshot_seq = 0
        self.snapshots_written = 0
        self.snapshot_errors = 0
        self._evicted_log: List[Item] = []
        self._evicted_dropped = 0
        self._snapshot_task: Optional[asyncio.Task] = None
        self._stop_requested: asyncio.Event = None  # type: ignore
        self._stopped = False
        # Fleet membership (docs/FLEET.md): identity, current epoch,
        # and the background register/heartbeat agent.
        self.daemon_id: Optional[str] = config.daemon_id
        self.epoch = 0
        self.registered = False
        self.fleet_registrations = 0
        self.fleet_heartbeats = 0
        self.fleet_errors = 0
        self._fleet_task: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Recover (if configured), bind every listener, go live."""
        cfg = self.config
        self._stop_requested = asyncio.Event()
        self.engine = cfg.build_engine(metrics=self.registry)
        if cfg.snapshot_dir and cfg.recover:
            self._recover()
        self.feeder = BatchFeeder(
            self.engine,
            batch_max=cfg.batch_max,
            flush_interval=cfg.flush_interval,
            capacity=cfg.queue_capacity,
            metrics=self.registry,
        )
        self.feeder.start()
        self.udp = NetFlowUdpSource(cfg.host, cfg.udp_port, self.feeder)
        self.udp.open()
        self.udp.start()
        self.tcp = ReportTcpSource(cfg.host, cfg.tcp_port, self.feeder)
        await self.tcp.start()
        self.rpc = RpcServer(self.handle_rpc, cfg.host, cfg.rpc_port)
        await self.rpc.start()
        if cfg.snapshot_dir:
            self._snapshot_task = asyncio.get_running_loop().create_task(
                self._snapshot_loop(), name="repro-snapshot"
            )
        self.started_at = time.time()
        if self.daemon_id is None:
            self.daemon_id = f"{cfg.host}:{self.rpc.port}"
        if cfg.fleet is not None:
            self._fleet_task = asyncio.get_running_loop().create_task(
                self._fleet_agent(), name="repro-fleet-agent"
            )
        self._register_gauges()
        _LOG.info(
            "daemon up: backend=%s udp=%d tcp=%d rpc=%d recovered=%s",
            self.engine.name, self.udp.port, self.tcp.port,
            self.rpc.port, self.recovered,
        )

    def _register_gauges(self) -> None:
        """Expose existing source/server counters as callback gauges —
        evaluated only when a snapshot is taken, never on ingest."""
        reg = self.registry
        if not reg.enabled:
            return
        for src, prefix in ((self.udp, "udp"), (self.tcp, "tcp")):
            for attr, help_text in (
                ("records", "decoded records"),
                ("malformed", "malformed inputs dropped"),
            ):
                reg.callback_gauge(
                    f"repro_ingest_{prefix}_{attr}",
                    (lambda s=src, a=attr: float(getattr(s, a))),
                    f"{prefix}: {help_text}", agg="sum",
                )
        reg.callback_gauge(
            "repro_ingest_udp_datagrams",
            lambda: float(self.udp.datagrams),
            "NetFlow datagrams received", agg="sum",
        )
        reg.callback_gauge(
            "repro_ingest_tcp_frames",
            lambda: float(self.tcp.frames),
            "report frames received", agg="sum",
        )
        reg.callback_gauge(
            "repro_rpc_requests", lambda: float(self.rpc.requests),
            "RPC requests served", agg="sum",
        )
        reg.callback_gauge(
            "repro_rpc_errors", lambda: float(self.rpc.errors),
            "RPC error responses", agg="sum",
        )
        reg.callback_gauge(
            "repro_snapshot_written", lambda: float(self.snapshots_written),
            "snapshots successfully written", agg="sum",
        )
        reg.callback_gauge(
            "repro_snapshot_errors", lambda: float(self.snapshot_errors),
            "snapshot write failures", agg="sum",
        )
        if self.config.fleet is not None:
            for attr, help_text in (
                ("fleet_registrations", "fleet register handshakes"),
                ("fleet_heartbeats", "fleet heartbeats delivered"),
                ("fleet_errors", "fleet coordinator call failures"),
            ):
                reg.callback_gauge(
                    f"repro_{attr}",
                    (lambda a=attr: float(getattr(self, a))),
                    help_text, agg="sum",
                )
        reg.callback_gauge(
            "repro_service_uptime_seconds",
            lambda: (
                time.time() - self.started_at if self.started_at else 0.0
            ),
            "seconds since the daemon went live", agg="max",
        )

    def _recover(self) -> None:
        with self.registry.span(
            "repro_snapshot_replay", "snapshot recovery replay time"
        ):
            doc = snap.load_snapshot(self.config.snapshot_dir)
            if doc is None:
                return
            retained, evicted, dropped, seq = snap.restore_items(doc)
            if retained:
                ids = [item_id for item_id, _val in retained]
                vals = [val for _item_id, val in retained]
                self.engine.add_many(ids, vals)
            self._evicted_log = evicted
            self._evicted_dropped = dropped
            self.snapshot_seq = seq
            self.recovered = True
        _LOG.info(
            "recovered snapshot seq=%d: %d retained, %d evicted",
            seq, len(retained), len(evicted),
        )

    async def _snapshot_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.snapshot_interval)
            try:
                self.write_snapshot()
            except OSError:
                self.snapshot_errors += 1

    # ------------------------------------------------------------------
    # Fleet agent: register with the coordinator, then heartbeat.
    # ------------------------------------------------------------------

    def fleet_announcement(self) -> Dict[str, Any]:
        """What the daemon tells the coordinator about itself."""
        return {
            "daemon_id": self.daemon_id,
            "host": self.config.host,
            "rpc_port": self.rpc.port,
            "udp_port": self.udp.port,
            "tcp_port": self.tcp.port,
            "pid": os.getpid(),
            "started_at": self.started_at,
            "recovered": self.recovered,
            "backend": self.engine.name,
            "q": self.engine.q,
        }

    async def _fleet_agent(self) -> None:
        """Register, heartbeat, re-register on any failure.

        The agent is the daemon half of the rejoin story: a daemon that
        crashed and restarted recovers its snapshot in :meth:`start`
        *before* this task runs, so by the time the coordinator sees
        the registration the replayed state is already live.  A
        coordinator outage degrades to retry-with-backoff; the daemon
        keeps ingesting and serving its local RPC throughout.
        """
        host, port = self.config.fleet_address()
        interval = self.config.heartbeat_interval
        backoff = min(0.2, interval)
        while True:
            try:
                if not self.registered:
                    ack = await rpc_call_async(
                        host, port, "register",
                        timeout=5.0, **self.fleet_announcement(),
                    )
                    self.registered = True
                    self.fleet_registrations += 1
                    backoff = min(0.2, interval)
                    if isinstance(ack, dict):
                        self.epoch = int(ack.get("epoch", self.epoch))
                    _LOG.info(
                        "registered with fleet %s:%d as %s (epoch %d)",
                        host, port, self.daemon_id, self.epoch,
                    )
                await asyncio.sleep(interval)
                await rpc_call_async(
                    host, port, "heartbeat",
                    timeout=5.0, daemon_id=self.daemon_id,
                )
                self.fleet_heartbeats += 1
            except asyncio.CancelledError:
                raise
            except ServiceError as exc:
                # Coordinator down or restarting: back off, then go
                # through the full register handshake again.
                self.fleet_errors += 1
                if self.registered:
                    _LOG.warning(
                        "fleet %s:%d unreachable (%s); will re-register",
                        host, port, exc,
                    )
                self.registered = False
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, 10.0)

    async def _fleet_goodbye(self) -> None:
        """Best-effort deregistration on graceful shutdown."""
        if self._fleet_task is None:
            return
        self._fleet_task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await self._fleet_task
        self._fleet_task = None
        if not self.registered:
            return
        host, port = self.config.fleet_address()
        with contextlib.suppress(ServiceError):
            await rpc_call_async(
                host, port, "deregister",
                timeout=2.0, daemon_id=self.daemon_id,
            )
        self.registered = False

    def request_stop(self) -> None:
        """Signal-handler-safe: ask the daemon to shut down."""
        self._stop_requested.set()

    async def wait_for_stop_request(self) -> None:
        await self._stop_requested.wait()

    async def stop(self, final_snapshot: bool = True) -> None:
        """Graceful shutdown: stall ingest, drain, checkpoint, close."""
        if self._stopped:
            return
        self._stopped = True
        _LOG.info("stopping: stalling ingest and draining feeder")
        await self._fleet_goodbye()
        if self._snapshot_task is not None:
            self._snapshot_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._snapshot_task
        self.udp.close()
        await self.tcp.close()
        await self.feeder.stop()
        if final_snapshot and self.config.snapshot_dir:
            try:
                self.write_snapshot()
            except OSError:
                self.snapshot_errors += 1
        close = getattr(self.engine, "close", None)
        if close is not None:
            close()
        await self.rpc.close()
        _LOG.info(
            "stopped: %d records ingested, %d snapshots written",
            self.feeder.records_out, self.snapshots_written,
        )

    def kill(self) -> None:
        """Crash simulation: tear everything down with NO drain and NO
        final snapshot.  What recovery then restores is exactly what
        the last periodic/explicit snapshot captured."""
        if self._stopped:
            return
        self._stopped = True
        _LOG.warning("kill: tearing down with no drain and no snapshot")
        if self._fleet_task is not None:
            self._fleet_task.cancel()  # no goodbye: the crash path
        if self._snapshot_task is not None:
            self._snapshot_task.cancel()
        if self.udp is not None:
            self.udp.close()
        if self.tcp is not None and self.tcp._server is not None:
            self.tcp._server.close()
        if self.rpc is not None and self.rpc._server is not None:
            self.rpc._server.close()
        if self.feeder is not None:
            self.feeder.abort()
        # Still reap worker processes / shared memory: the crash being
        # simulated is the daemon's, not the host kernel's.
        close = getattr(self.engine, "close", None)
        if close is not None:
            with contextlib.suppress(Exception):
                close()

    # ------------------------------------------------------------------
    # Snapshots.
    # ------------------------------------------------------------------

    def _drain_evictions(self) -> None:
        take = getattr(self.engine, "take_evicted", None)
        if take is None:
            return
        self._evicted_log.extend(take())
        cap = self.config.evicted_cap
        if len(self._evicted_log) > cap:
            overflow = len(self._evicted_log) - cap
            del self._evicted_log[:overflow]
            self._evicted_dropped += overflow

    def write_snapshot(self) -> Dict[str, Any]:
        """Checkpoint retained + evicted state; returns a summary."""
        if not self.config.snapshot_dir:
            raise ServiceError("no snapshot_dir configured")
        with self.registry.span(
            "repro_snapshot_write", "checkpoint write time"
        ):
            self.feeder.flush_now()
            self._drain_evictions()
            retained = list(self.engine.items())
            self.snapshot_seq += 1
            state = snap.build_state(
                backend_name=self.engine.name,
                q=self.engine.q,
                seq=self.snapshot_seq,
                retained=retained,
                evicted=self._evicted_log,
                evicted_dropped=self._evicted_dropped,
                counters=self.stats(),
            )
            path = snap.write_snapshot(self.config.snapshot_dir, state)
            self.snapshots_written += 1
        _LOG.debug(
            "snapshot seq=%d written: %d retained, %d evicted",
            self.snapshot_seq, len(retained), len(self._evicted_log),
        )
        return {
            "path": path,
            "seq": self.snapshot_seq,
            "retained": len(retained),
            "evicted": len(self._evicted_log),
        }

    # ------------------------------------------------------------------
    # RPC operations.
    # ------------------------------------------------------------------

    def handle_rpc(self, op: str, request: Dict[str, Any]) -> Any:
        # Unknown ops are not timed: a labelled series per arbitrary
        # client-supplied string would be unbounded cardinality.
        if not self.registry.enabled or op not in OPS:
            return self._dispatch_rpc(op, request)
        hist = self._rpc_hists.get(op)
        if hist is None:
            hist = self._rpc_hists[op] = self.registry.histogram(
                "repro_rpc_seconds", "RPC handler latency by op", op=op,
            )
        start = time.perf_counter()
        try:
            return self._dispatch_rpc(op, request)
        finally:
            hist.observe(time.perf_counter() - start)

    def _dispatch_rpc(self, op: str, request: Dict[str, Any]) -> Any:
        if op == "top":
            return self._rpc_top(request)
        if op == "stats":
            self.feeder.flush_now()
            return self.stats()
        if op == "snapshot":
            return self.write_snapshot()
        if op == "reset":
            return self._rpc_reset()
        if op == "health":
            return self._rpc_health()
        if op == "metrics":
            return self._rpc_metrics(request)
        if op == "epoch":
            return self._rpc_epoch(request)
        raise ServiceError(f"unknown op {op!r}")

    def _rpc_epoch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """The fleet epoch ops (docs/FLEET.md):

        ``{"op":"epoch","action":"begin","epoch":E}``
            Flush pending ingest and enter epoch ``E``.
        ``{"op":"epoch","action":"collect","q":k}``
            Flush, then return this daemon's NMP-style report: its
            top-k items plus the ingest counters the coordinator's
            coverage/volume accounting needs.  Idempotent — collecting
            twice returns the same report (modulo new ingest), which
            is what makes duplicate delivery at the coordinator safe.
        ``{"op":"epoch","action":"advance","epoch":E,"reset":bool}``
            Optionally reset the engine (interval semantics), then
            enter epoch ``E``.
        """
        action = request.get("action")
        if action not in ("begin", "collect", "advance"):
            raise ServiceError(
                f"epoch action must be begin/collect/advance, "
                f"got {action!r}"
            )
        if action == "collect":
            return self.epoch_report(request.get("q"))
        epoch = request.get("epoch")
        if not isinstance(epoch, int) or epoch < 0:
            raise ServiceError(
                f"epoch must be an int >= 0, got {epoch!r}"
            )
        self.feeder.flush_now()
        if action == "advance" and request.get("reset", False):
            self.engine.reset()
            self._evicted_log = []
            self._evicted_dropped = 0
        self.epoch = epoch
        return {
            "daemon_id": self.daemon_id,
            "epoch": self.epoch,
            "records_in": self.feeder.records_in,
        }

    def epoch_report(self, k: Optional[int] = None) -> Dict[str, Any]:
        """This daemon's per-epoch report — the live analogue of a
        :meth:`~repro.netwide.nmp.MeasurementPoint.report`."""
        if k is None:
            k = self.engine.q
        if not isinstance(k, int) or k < 1:
            raise ServiceError(f"q must be a positive int, got {k!r}")
        self.feeder.flush_now()
        top = merge_top_items([self.engine.query()], k)
        return {
            "daemon_id": self.daemon_id,
            "epoch": self.epoch,
            "q": self.engine.q,
            "top": [[snap.encode_id(i), v] for i, v in top],
            "observed": self.feeder.records_in,
            "volume": self.feeder.value_sum,
        }

    def _rpc_top(self, request: Dict[str, Any]) -> List[List[Any]]:
        k = request.get("q", self.engine.q)
        if not isinstance(k, int) or k < 1:
            raise ServiceError(f"q must be a positive int, got {k!r}")
        # Query-time barrier so the answer covers everything ingested.
        self.feeder.flush_now()
        top = merge_top_items([self.engine.query()], k)
        return [[snap.encode_id(item_id), val] for item_id, val in top]

    def _rpc_reset(self) -> Dict[str, Any]:
        # Flush first so pending records don't leak into the new epoch.
        self.feeder.flush_now()
        self.engine.reset()
        self._evicted_log = []
        self._evicted_dropped = 0
        return {"reset": True}

    def _rpc_health(self) -> Dict[str, Any]:
        return {
            "status": "ok",
            "backend": self.engine.name,
            "q": self.engine.q,
            "uptime_s": (
                time.time() - self.started_at if self.started_at else 0.0
            ),
            "recovered": self.recovered,
        }

    def metrics_snapshot(self) -> Dict[str, Any]:
        """The daemon's full metrics view, merged across processes.

        A sharded engine shares the daemon registry, so its
        :meth:`~repro.parallel.engine.ShardedQMaxEngine.
        metrics_snapshot` — local registry plus worker snapshots — *is*
        the daemon view.  For plain backends the local registry is
        everything.
        """
        engine_snap = getattr(self.engine, "metrics_snapshot", None)
        if callable(engine_snap):
            return engine_snap()
        return self.registry.snapshot()

    def _rpc_metrics(self, request: Dict[str, Any]) -> Any:
        """The ``metrics`` op: JSON snapshot or Prometheus text.

        ``{"op": "metrics"}``                          → snapshot dict
        ``{"op": "metrics", "format": "prometheus"}``  → exposition text
        """
        fmt = request.get("format", "json")
        # Barrier first so counters reflect everything ingested.
        self.feeder.flush_now()
        snapshot = self.metrics_snapshot()
        if fmt == "json":
            return snapshot
        if fmt == "prometheus":
            return render_prometheus(snapshot)
        raise ServiceError(
            f"metrics format must be 'json' or 'prometheus', got {fmt!r}"
        )

    def stats(self) -> Dict[str, Any]:
        engine_stats = getattr(self.engine, "stats", None)
        if callable(engine_stats):
            engine_info = engine_stats()
        else:
            # Backends without a stats() (plain QMax, SlidingQMax)
            # still get a useful summary instead of a silent {}.
            engine_info = {
                "backend": type(self.engine).__name__,
                "q": self.engine.q,
                "size": sum(1 for _ in self.engine.items()),
            }
        dropped = self.udp.malformed + self.tcp.malformed
        cfg = self.config
        snapshot_path = (
            os.path.join(cfg.snapshot_dir, snap.SNAPSHOT_FILE)
            if cfg.snapshot_dir else None
        )
        return {
            "backend": self.engine.name,
            "q": self.engine.q,
            "uptime_s": (
                time.time() - self.started_at if self.started_at else 0.0
            ),
            # Identity: everything a fleet status page needs in the
            # one op it already pulls — who this daemon is, where it
            # listens, and where its checkpoint lives.
            "identity": {
                "daemon_id": self.daemon_id,
                "host": cfg.host,
                "listen": {
                    "udp": self.udp.port,
                    "tcp": self.tcp.port,
                    "rpc": self.rpc.port,
                },
                "pid": os.getpid(),
                "started_at": self.started_at,
                "snapshot_path": snapshot_path,
                "fleet": cfg.fleet,
                "epoch": self.epoch,
            },
            "udp": self.udp.stats(),
            "tcp": self.tcp.stats(),
            "feeder": self.feeder.stats(),
            "dropped_malformed": dropped,
            "engine": engine_info,
            "snapshot": {
                "dir": self.config.snapshot_dir,
                "seq": self.snapshot_seq,
                "written": self.snapshots_written,
                "errors": self.snapshot_errors,
                "evicted_logged": len(self._evicted_log),
                "evicted_dropped": self._evicted_dropped,
            },
            "recovered": self.recovered,
        }


# ----------------------------------------------------------------------
# Entry points.
# ----------------------------------------------------------------------

async def serve(
    config: ServiceConfig,
    ready: Optional[Callable[["MeasurementDaemon"], None]] = None,
) -> None:
    """Run a daemon until SIGTERM/SIGINT, then drain cleanly.

    ``ready`` (if given) is called with the live daemon right after
    startup — the CLI uses it to print the bound ports.
    """
    daemon = MeasurementDaemon(config)
    await daemon.start()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, daemon.request_stop)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # non-POSIX loops: Ctrl-C still raises KeyboardInterrupt
    if ready is not None:
        ready(daemon)
    try:
        await daemon.wait_for_stop_request()
    finally:
        await daemon.stop()


class DaemonThread:
    """A daemon on a private event loop in a background thread.

    The constructor blocks until the daemon is listening (so the
    resolved ephemeral ports are immediately available) and raises
    :class:`~repro.errors.ServiceError` if it fails to come up.  Use
    as a context manager for a guaranteed graceful stop, or call
    :meth:`abort` to simulate a crash (no drain, no final snapshot).
    """

    def __init__(
        self, config: ServiceConfig, start_timeout: float = 15.0
    ) -> None:
        self.config = config
        self.daemon: MeasurementDaemon = None  # type: ignore[assignment]
        self._loop: asyncio.AbstractEventLoop = None  # type: ignore
        self._ready = threading.Event()
        self._finish: asyncio.Event = None  # type: ignore[assignment]
        self._mode = "stop"
        self._startup_error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-daemon", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(start_timeout):
            raise ServiceError(
                f"daemon did not start within {start_timeout:g}s"
            )
        if self._startup_error is not None:
            raise ServiceError(
                f"daemon failed to start: {self._startup_error!r}"
            ) from self._startup_error

    def _thread_main(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._finish = asyncio.Event()
        self.daemon = MeasurementDaemon(self.config)
        try:
            await self.daemon.start()
        except BaseException as exc:  # startup failures surface in ctor
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        await self._finish.wait()
        if self._mode == "stop":
            await self.daemon.stop()
        else:
            self.daemon.kill()

    # ------------------------------------------------------------------
    # Cross-thread controls.
    # ------------------------------------------------------------------

    def _shutdown(self, mode: str, timeout: float) -> None:
        if not self._thread.is_alive():
            return
        def _trigger() -> None:
            self._mode = mode
            self._finish.set()
        self._loop.call_soon_threadsafe(_trigger)
        self._thread.join(timeout)
        if self._thread.is_alive():  # pragma: no cover - watchdog path
            raise ServiceError(f"daemon did not {mode} within {timeout:g}s")

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful shutdown: drain, final snapshot, engine close."""
        self._shutdown("stop", timeout)

    def abort(self, timeout: float = 30.0) -> None:
        """Simulated crash: everything not yet snapshotted is lost."""
        self._shutdown("abort", timeout)

    def feed(
        self,
        ids: Sequence[Any],
        vals: Sequence[float],
        timeout: float = 60.0,
    ) -> None:
        """Inject decoded records from the calling thread.

        Runs the feeder's ``put_async`` on the daemon loop — the same
        entry the socket sources use, backpressure included — so
        embedders (the fleet bench, the demo) can drive a daemon at
        memory speed without a UDP encode/decode round trip.  Blocks
        until the records are accepted (not necessarily flushed; RPC
        query ops barrier on flush themselves).
        """
        future = asyncio.run_coroutine_threadsafe(
            self.daemon.feeder.put_async(list(ids), list(vals)),
            self._loop,
        )
        future.result(timeout)

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    @property
    def host(self) -> str:
        return self.config.host

    @property
    def udp_port(self) -> int:
        return self.daemon.udp.port

    @property
    def tcp_port(self) -> int:
        return self.daemon.tcp.port

    @property
    def rpc_port(self) -> int:
        return self.daemon.rpc.port

    def __enter__(self) -> "DaemonThread":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
