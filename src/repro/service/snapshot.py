"""Checkpointing retained + evicted state to disk, atomically.

Format: one JSON document per directory (``snapshot.json``), written
to a temp file, fsync'd, and moved into place with ``os.replace`` — a
reader (or a recovering daemon) sees either the previous snapshot or
the new one, never a torn write.  JSON keeps snapshots debuggable
(``jq .seq snapshot.json``); ids that JSON cannot represent natively
(strings are fine; tuples like the wire-report ``(flow, packet_id)``
identity are not) ride a small tagged encoding, see :func:`encode_id`.

Recovery replays the retained set through ``add_many`` into a fresh
engine: the replayed structure retains the top-q of the snapshot's
retained set, which contains the stream's top-q as of snapshot time —
so no item that was in the answer before the crash is lost.  The
eviction log (when tracked) is carried forward verbatim, capped by
configuration; the cap drops oldest-first and is recorded in the
``evicted_dropped`` counter rather than silently.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ServiceError
from repro.types import Item, ItemId

SNAPSHOT_FORMAT = "qmax-service-snapshot"
SNAPSHOT_VERSION = 1
SNAPSHOT_FILE = "snapshot.json"


# ----------------------------------------------------------------------
# Id codec: JSON-safe, round-trip-exact for the id types the engines
# accept (ints, strings, floats, and nested tuples thereof).
# ----------------------------------------------------------------------

def encode_id(item_id: ItemId) -> Any:
    """Encode one item id into a JSON-representable value."""
    if type(item_id) is int:
        return item_id
    if type(item_id) is str:
        return {"s": item_id}
    if type(item_id) is float:
        return {"f": item_id}
    if type(item_id) is bool:
        return {"b": item_id}
    if type(item_id) is tuple:
        return {"t": [encode_id(part) for part in item_id]}
    raise ServiceError(
        f"cannot snapshot id of type {type(item_id).__name__}: "
        f"{item_id!r}"
    )


def decode_id(obj: Any) -> ItemId:
    """Inverse of :func:`encode_id`."""
    if isinstance(obj, int) and not isinstance(obj, bool):
        return obj
    if isinstance(obj, dict) and len(obj) == 1:
        ((tag, value),) = obj.items()
        if tag == "s" and isinstance(value, str):
            return value
        if tag == "f" and isinstance(value, (int, float)):
            return float(value)
        if tag == "b" and isinstance(value, bool):
            return value
        if tag == "t" and isinstance(value, list):
            return tuple(decode_id(part) for part in value)
    raise ServiceError(f"undecodable snapshot id {obj!r}")


def _encode_items(items: List[Item]) -> List[List[Any]]:
    return [[encode_id(item_id), float(val)] for item_id, val in items]


def _decode_items(rows: Any) -> List[Item]:
    if not isinstance(rows, list):
        raise ServiceError("snapshot item list is not a list")
    out: List[Item] = []
    for row in rows:
        if not isinstance(row, list) or len(row) != 2:
            raise ServiceError(f"malformed snapshot item {row!r}")
        out.append((decode_id(row[0]), float(row[1])))
    return out


# ----------------------------------------------------------------------
# Write / load.
# ----------------------------------------------------------------------

def build_state(
    backend_name: str,
    q: int,
    seq: int,
    retained: List[Item],
    evicted: List[Item],
    evicted_dropped: int,
    counters: Dict[str, Any],
) -> Dict[str, Any]:
    """Assemble the snapshot document."""
    return {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "seq": seq,
        "wall_time": time.time(),
        "backend": backend_name,
        "q": q,
        "retained": _encode_items(retained),
        "evicted": _encode_items(evicted),
        "evicted_dropped": evicted_dropped,
        "counters": counters,
    }


def write_snapshot(directory: str, state: Dict[str, Any]) -> str:
    """Write a snapshot document atomically; returns the final path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, SNAPSHOT_FILE)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(state, fh, separators=(",", ":"))
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return path


def load_snapshot(directory: str) -> Optional[Dict[str, Any]]:
    """Load and validate the directory's snapshot.

    Returns ``None`` when no snapshot exists (a fresh start); raises
    :class:`~repro.errors.ServiceError` when one exists but cannot be
    trusted — recovery must not silently proceed from corrupt state.
    """
    path = os.path.join(directory, SNAPSHOT_FILE)
    if not os.path.exists(path):
        return None
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        raise ServiceError(f"corrupt snapshot {path}: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("format") != SNAPSHOT_FORMAT:
        raise ServiceError(f"{path} is not a {SNAPSHOT_FORMAT} document")
    if doc.get("version") != SNAPSHOT_VERSION:
        raise ServiceError(
            f"unsupported snapshot version {doc.get('version')!r} "
            f"in {path}"
        )
    return doc


def restore_items(
    doc: Dict[str, Any],
) -> Tuple[List[Item], List[Item], int, int]:
    """Extract (retained, evicted, evicted_dropped, seq) from a
    validated snapshot document."""
    retained = _decode_items(doc.get("retained", []))
    evicted = _decode_items(doc.get("evicted", []))
    dropped = doc.get("evicted_dropped", 0)
    seq = doc.get("seq", 0)
    if not isinstance(dropped, int) or not isinstance(seq, int):
        raise ServiceError("malformed snapshot counters")
    return retained, evicted, dropped, seq
