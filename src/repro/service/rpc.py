"""The query RPC: newline-delimited JSON over TCP.

One request per line, one response per line, several requests per
connection.  Requests are objects with an ``"op"`` field plus
op-specific parameters; responses are ``{"ok": true, "result": ...}``
or ``{"ok": false, "error": "..."}``.  The protocol is deliberately
curl-able::

    printf '{"op": "top", "q": 5}\n' | nc 127.0.0.1 9997

Handlers run on the daemon's event loop, which is also the only place
the engine is touched — the RPC layer is what keeps engine access
single-threaded while clients connect from anywhere.  A handler may
return a coroutine, which the server awaits before responding: the
fleet coordinator's query ops fan out to daemons and need the loop
while they wait.

Two clients share the codec:

* :func:`rpc_call` — blocking, stdlib-only; used by ``repro query``,
  the tests, and the demo.  Takes a per-call ``timeout`` and optional
  connect ``retries`` with exponential backoff (only the *connect* is
  retried — a request that reached the server is never re-sent, so
  non-idempotent ops like ``snapshot`` cannot run twice).
* :func:`rpc_call_async` — the asyncio twin, used by the coordinator
  to pull daemon reports and by the daemon's fleet agent to register.
"""

from __future__ import annotations

import asyncio
import inspect
import json
import socket
import time
from typing import Any, Callable, Dict, Tuple

from repro.errors import ReproError, ServiceError

#: Operations the daemon serves (documented in docs/SERVICE.md).
OPS = ("top", "stats", "snapshot", "reset", "health", "metrics", "epoch")

#: Longest accepted request line, bytes.
MAX_REQUEST_BYTES = 1 << 20

#: A handler takes (op, request-dict) and returns a JSON-safe result —
#: or a coroutine producing one, which the server awaits.
Handler = Callable[[str, Dict[str, Any]], Any]


class RpcServer:
    """Serve the JSON RPC on a TCP port."""

    def __init__(self, handler: Handler, host: str, port: int) -> None:
        self._handler = handler
        self._host = host
        self._requested_port = port
        self._server: asyncio.AbstractServer = None  # type: ignore
        self.port = port
        self.requests = 0
        self.errors = 0

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle,
            self._host,
            self._requested_port,
            limit=MAX_REQUEST_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    self._respond(writer, error="request line too long")
                    break
                if not line:
                    break
                self.requests += 1
                try:
                    request = json.loads(line)
                except ValueError:
                    self._respond(writer, error="malformed JSON request")
                    break
                op = (
                    request.get("op")
                    if isinstance(request, dict)
                    else None
                )
                if not isinstance(op, str):
                    self._respond(
                        writer, error="request must be {'op': ..., ...}"
                    )
                    break
                try:
                    result = self._handler(op, request)
                    if inspect.isawaitable(result):
                        result = await result
                except ReproError as exc:
                    self._respond(writer, error=str(exc))
                    continue
                self._respond(writer, result=result)
                await writer.drain()
        except ConnectionError:  # pragma: no cover - peer vanished
            pass
        except asyncio.CancelledError:
            pass  # daemon shutting down: drop the connection quietly
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    def _respond(
        self,
        writer: asyncio.StreamWriter,
        result: Any = None,
        error: str = None,
    ) -> None:
        if error is not None:
            self.errors += 1
            doc: Dict[str, Any] = {"ok": False, "error": error}
        else:
            doc = {"ok": True, "result": result}
        writer.write(json.dumps(doc).encode("utf-8") + b"\n")

    async def close(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None  # type: ignore[assignment]


# ----------------------------------------------------------------------
# The shared client codec.
# ----------------------------------------------------------------------

def encode_request(op: str, params: Dict[str, Any]) -> bytes:
    """One request line, newline-terminated."""
    request = dict(params)
    request["op"] = op
    return json.dumps(request).encode("utf-8") + b"\n"


def decode_response(raw: bytes, where: str) -> Any:
    """Decode one response line; raise :class:`ServiceError` on any
    malformed or error response."""
    if not raw:
        raise ServiceError(f"RPC to {where}: empty response")
    try:
        doc = json.loads(raw)
    except ValueError as exc:
        raise ServiceError(
            f"RPC to {where}: malformed response: {exc}"
        ) from exc
    if not isinstance(doc, dict) or "ok" not in doc:
        raise ServiceError(
            f"RPC to {where}: unexpected response {doc!r}"
        )
    if not doc["ok"]:
        raise ServiceError(doc.get("error", "unknown RPC error"))
    return doc.get("result")


def retry_delays(retries: int, backoff: float) -> Tuple[float, ...]:
    """The exponential backoff schedule: ``backoff * 2**attempt`` for
    each retry.  Exposed so tests and docs can state the schedule."""
    return tuple(backoff * (2 ** i) for i in range(max(0, retries)))


def rpc_call(
    host: str,
    port: int,
    op: str,
    /,
    timeout: float = 10.0,
    retries: int = 0,
    retry_backoff: float = 0.25,
    **params: Any,
) -> Any:
    """Blocking client: send one request, return the decoded result.

    ``timeout`` bounds every socket operation of one attempt.  When
    ``retries > 0``, a *connect* failure (daemon not up yet, listen
    backlog full) is retried up to that many additional times with
    exponential backoff (``retry_backoff``, doubling per attempt).
    Failures after the connection is established are never retried:
    the request may have been acted on, and re-sending a ``snapshot``
    or ``reset`` would not be idempotent.

    Raises :class:`~repro.errors.ServiceError` on an error response,
    a malformed response, or a connection/timeout failure.
    """
    payload = encode_request(op, params)
    delays = retry_delays(retries, retry_backoff)
    attempt = 0
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as exc:
            if attempt < len(delays):
                time.sleep(delays[attempt])
                attempt += 1
                continue
            raise ServiceError(
                f"RPC to {host}:{port} failed after {attempt + 1} "
                f"connect attempt(s): {exc}"
            ) from exc
        break
    try:
        with sock:
            sock.sendall(payload)
            chunks = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
                if chunk.endswith(b"\n"):
                    break
    except OSError as exc:
        raise ServiceError(
            f"RPC to {host}:{port} failed: {exc}"
        ) from exc
    return decode_response(b"".join(chunks), f"{host}:{port}")


async def rpc_call_async(
    host: str,
    port: int,
    op: str,
    /,
    timeout: float = 10.0,
    **params: Any,
) -> Any:
    """The asyncio client: one request/response over a fresh
    connection, bounded end-to-end by ``timeout``.

    Used wherever an event loop must not block on a peer — the fleet
    coordinator pulling daemon reports, the daemon's fleet agent
    registering with the coordinator.  Raises
    :class:`~repro.errors.ServiceError` exactly like :func:`rpc_call`.
    """
    where = f"{host}:{port}"

    async def _roundtrip() -> Any:
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_REQUEST_BYTES
        )
        try:
            writer.write(encode_request(op, params))
            await writer.drain()
            raw = await reader.readline()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        return decode_response(raw, where)

    try:
        return await asyncio.wait_for(_roundtrip(), timeout=timeout)
    except asyncio.TimeoutError as exc:
        raise ServiceError(
            f"RPC to {where} timed out after {timeout:g}s"
        ) from exc
    except OSError as exc:
        raise ServiceError(f"RPC to {where} failed: {exc}") from exc
