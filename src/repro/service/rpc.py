"""The query RPC: newline-delimited JSON over TCP.

One request per line, one response per line, several requests per
connection.  Requests are objects with an ``"op"`` field plus
op-specific parameters; responses are ``{"ok": true, "result": ...}``
or ``{"ok": false, "error": "..."}``.  The protocol is deliberately
curl-able::

    printf '{"op": "top", "q": 5}\n' | nc 127.0.0.1 9997

Handlers run on the daemon's event loop, which is also the only place
the engine is touched — the RPC layer is what keeps engine access
single-threaded while clients connect from anywhere.

:func:`rpc_call` is the blocking client used by ``repro query``, the
tests, and the demo; it needs nothing beyond the standard library.
"""

from __future__ import annotations

import asyncio
import json
import socket
from typing import Any, Callable, Dict

from repro.errors import ReproError, ServiceError

#: Operations the daemon serves (documented in docs/SERVICE.md).
OPS = ("top", "stats", "snapshot", "reset", "health", "metrics")

#: Longest accepted request line, bytes.
MAX_REQUEST_BYTES = 1 << 20

#: A handler takes (op, request-dict) and returns a JSON-safe result.
Handler = Callable[[str, Dict[str, Any]], Any]


class RpcServer:
    """Serve the JSON RPC on a TCP port."""

    def __init__(self, handler: Handler, host: str, port: int) -> None:
        self._handler = handler
        self._host = host
        self._requested_port = port
        self._server: asyncio.AbstractServer = None  # type: ignore
        self.port = port
        self.requests = 0
        self.errors = 0

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle,
            self._host,
            self._requested_port,
            limit=MAX_REQUEST_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    self._respond(writer, error="request line too long")
                    break
                if not line:
                    break
                self.requests += 1
                try:
                    request = json.loads(line)
                except ValueError:
                    self._respond(writer, error="malformed JSON request")
                    break
                op = (
                    request.get("op")
                    if isinstance(request, dict)
                    else None
                )
                if not isinstance(op, str):
                    self._respond(
                        writer, error="request must be {'op': ..., ...}"
                    )
                    break
                try:
                    result = self._handler(op, request)
                except ReproError as exc:
                    self._respond(writer, error=str(exc))
                    continue
                self._respond(writer, result=result)
                await writer.drain()
        except ConnectionError:  # pragma: no cover - peer vanished
            pass
        except asyncio.CancelledError:
            pass  # daemon shutting down: drop the connection quietly
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    def _respond(
        self,
        writer: asyncio.StreamWriter,
        result: Any = None,
        error: str = None,
    ) -> None:
        if error is not None:
            self.errors += 1
            doc: Dict[str, Any] = {"ok": False, "error": error}
        else:
            doc = {"ok": True, "result": result}
        writer.write(json.dumps(doc).encode("utf-8") + b"\n")

    async def close(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None  # type: ignore[assignment]


def rpc_call(
    host: str,
    port: int,
    op: str,
    timeout: float = 10.0,
    **params: Any,
) -> Any:
    """Blocking client: send one request, return the decoded result.

    Raises :class:`~repro.errors.ServiceError` on an error response,
    a malformed response, or a connection/timeout failure.
    """
    request = dict(params)
    request["op"] = op
    payload = json.dumps(request).encode("utf-8") + b"\n"
    try:
        with socket.create_connection((host, port), timeout=timeout) as sock:
            sock.sendall(payload)
            chunks = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
                if chunk.endswith(b"\n"):
                    break
    except OSError as exc:
        raise ServiceError(
            f"RPC to {host}:{port} failed: {exc}"
        ) from exc
    raw = b"".join(chunks)
    if not raw:
        raise ServiceError(f"RPC to {host}:{port}: empty response")
    try:
        doc = json.loads(raw)
    except ValueError as exc:
        raise ServiceError(
            f"RPC to {host}:{port}: malformed response: {exc}"
        ) from exc
    if not isinstance(doc, dict) or "ok" not in doc:
        raise ServiceError(
            f"RPC to {host}:{port}: unexpected response {doc!r}"
        )
    if not doc["ok"]:
        raise ServiceError(doc.get("error", "unknown RPC error"))
    return doc.get("result")
