"""Asynchronous ingest: datagrams and frames → ``add_many`` batches.

Three pieces, all living on the daemon's event loop:

* :class:`BatchFeeder` — the single pending buffer between the network
  and the engine.  Sources append decoded ``(id, value)`` records; a
  flush task feeds the engine via one ``add_many`` per batch (the
  batch-first hot path from PR 1).  The buffer is bounded by
  ``capacity``: when it fills, sources are told to *stall*, and are
  resumed by the flush that drains the buffer.  Nothing is ever
  dropped for backpressure — mirroring the parallel subsystem's
  stall-not-drop ring semantics — and the only drops anywhere in
  ingest are malformed inputs, each one counted.
* :class:`NetFlowUdpSource` — NetFlow v5 datagrams.  Reads via
  ``loop.add_reader`` on a plain socket so that stalling is literal:
  the reader is removed, datagrams queue in the kernel receive buffer
  (sized generously) exactly as they would in a NIC ring, and reading
  resumes when the feeder drains.
* :class:`ReportTcpSource` — length-prefixed binary
  :mod:`repro.netwide.wire` report frames.  Stalling is TCP flow
  control: the coroutine simply stops reading until there is room.
"""

from __future__ import annotations

import asyncio
import logging
import socket
import struct
from typing import Callable, List, Sequence, Tuple

from repro.core.interface import QMaxBase
from repro.errors import NetFlowDecodeError, WireFormatError
from repro.netwide.wire import Report, from_bytes
from repro.obs import SIZE_BUCKETS, resolve_registry
from repro.traffic.netflow import FlowRecord, decode_packet
from repro.types import ItemId, Value

_LOG = logging.getLogger("repro.service.ingest")

#: TCP report framing: a u32 byte length, then one wire.to_bytes blob.
FRAME_HEADER = struct.Struct("!I")

#: Frames larger than this are malformed by definition (a real report
#: of 2^24 bytes would hold ~800k samples); reject before allocating.
MAX_FRAME_BYTES = 1 << 24

#: Kernel receive buffer requested for the UDP socket — the "NIC ring"
#: that absorbs bursts while the feeder stalls.
UDP_RECV_BUFFER = 1 << 22

#: Datagrams drained per reader wake-up, so one chatty socket cannot
#: starve the event loop.
_DRAIN_PER_WAKE = 256

_MAX_DATAGRAM = 65535


def items_from_flow_records(
    records: Sequence[FlowRecord],
) -> Tuple[List[ItemId], List[Value]]:
    """NetFlow records → (ids, vals): flows keyed by source IP, valued
    by octet count (the byte-volume top-q convention of ``top-flows``)."""
    ids: List[ItemId] = []
    vals: List[Value] = []
    for r in records:
        ids.append(r.src_ip)
        vals.append(float(r.octets))
    return ids, vals


def items_from_report(
    report: Report,
) -> Tuple[List[ItemId], List[Value]]:
    """Wire report → (ids, vals): each sample keyed by its
    ``(flow, packet_id)`` record identity, valued by its hash."""
    ids: List[ItemId] = []
    vals: List[Value] = []
    for (flow, pid), value in report.entries:
        ids.append((flow, pid))
        vals.append(float(value))
    return ids, vals


class BatchFeeder:
    """Coalesce ingested records and drive ``engine.add_many``.

    Single-threaded by design: every method runs on the daemon's event
    loop, so no locking is needed.  ``put`` is the synchronous producer
    API (UDP reader callbacks); ``put_async`` awaits room first (TCP
    coroutines).  ``flush_now`` is the query-time barrier: RPC handlers
    call it so answers reflect everything ingested so far.
    """

    def __init__(
        self,
        engine: QMaxBase,
        batch_max: int = 512,
        flush_interval: float = 0.05,
        capacity: int = 1 << 16,
        metrics=False,
    ) -> None:
        self._engine = engine
        self.batch_max = batch_max
        self.flush_interval = flush_interval
        self.capacity = capacity
        self._ids: List[ItemId] = []
        self._vals: List[Value] = []
        self.records_in = 0
        self.records_out = 0
        self.value_sum = 0.0
        self.batches = 0
        self.stalls = 0
        self._wake = asyncio.Event()
        self._room = asyncio.Event()
        self._room.set()
        self._resume_callbacks: List[Callable[[], None]] = []
        self._task: asyncio.Task = None  # type: ignore[assignment]
        self._stopping = False
        registry = resolve_registry(metrics)
        if registry.enabled:
            # Coalescing quality: records per add_many call.  The
            # cumulative counters stay plain attributes; callback
            # gauges read them at snapshot time only.
            self._obs_batch = registry.histogram(
                "repro_feeder_batch_records",
                "records coalesced into one engine add_many call",
                buckets=SIZE_BUCKETS,
            )
            for attr, name, help_text in (
                ("records_in", "repro_feeder_records_in",
                 "records accepted from ingest sources"),
                ("records_out", "repro_feeder_records_out",
                 "records fed to the engine"),
                ("pending", "repro_feeder_pending",
                 "records buffered awaiting a flush"),
                ("stalls", "repro_feeder_stalls",
                 "times the buffer hit capacity and stalled sources"),
            ):
                registry.callback_gauge(
                    name, (lambda a=attr: float(getattr(self, a))),
                    help_text, agg="sum",
                )
        else:
            self._obs_batch = None

    # ------------------------------------------------------------------
    # Producer side.
    # ------------------------------------------------------------------

    @property
    def pending(self) -> int:
        return len(self._ids)

    def put(self, ids: Sequence[ItemId], vals: Sequence[Value]) -> bool:
        """Append records.  Returns False when the buffer just reached
        capacity — the caller must pause and wait for its resume
        callback (registered via :meth:`on_room`)."""
        self._ids.extend(ids)
        self._vals.extend(vals)
        self.records_in += len(ids)
        if len(self._ids) >= self.batch_max:
            self._wake.set()
        if len(self._ids) >= self.capacity:
            if self._room.is_set():
                self._room.clear()
                self.stalls += 1
                _LOG.debug(
                    "feeder at capacity (%d records); stalling sources",
                    len(self._ids),
                )
            return False
        return True

    async def put_async(
        self, ids: Sequence[ItemId], vals: Sequence[Value]
    ) -> None:
        """Append records, stalling (not dropping) while over capacity."""
        while not self._room.is_set():
            await self._room.wait()
        self.put(ids, vals)

    def on_room(self, callback: Callable[[], None]) -> None:
        """Register a callback fired when a flush frees capacity."""
        self._resume_callbacks.append(callback)

    # ------------------------------------------------------------------
    # Consumer side.
    # ------------------------------------------------------------------

    def start(self) -> None:
        self._task = asyncio.get_running_loop().create_task(
            self._run(), name="repro-feeder"
        )

    def flush_now(self) -> None:
        """Synchronously feed everything pending into the engine."""
        if not self._ids:
            return
        ids, vals = self._ids, self._vals
        self._ids, self._vals = [], []
        self._engine.add_many(ids, vals)
        self.records_out += len(ids)
        # Total ingested value volume: what the fleet's share-of-total
        # heavy-hitter threshold is measured against.
        self.value_sum += sum(vals)
        self.batches += 1
        if self._obs_batch is not None:
            self._obs_batch.observe(len(ids))
        if not self._room.is_set():
            self._room.set()
            for callback in self._resume_callbacks:
                callback()

    async def _run(self) -> None:
        while True:
            if self._stopping and not self._ids:
                return
            try:
                await asyncio.wait_for(
                    self._wake.wait(), timeout=self.flush_interval
                )
            except asyncio.TimeoutError:
                pass
            self._wake.clear()
            self.flush_now()

    async def stop(self) -> None:
        """Drain everything pending, then stop the flush task."""
        self._stopping = True
        self._wake.set()
        if self._task is not None:
            await self._task
        self.flush_now()

    def abort(self) -> None:
        """Crash-path teardown: cancel the flush task, keep (and lose)
        whatever was pending — the daemon's kill simulation."""
        self._stopping = True
        if self._task is not None:
            self._task.cancel()

    def stats(self) -> dict:
        return {
            "records_in": self.records_in,
            "records_out": self.records_out,
            "pending": self.pending,
            "batches": self.batches,
            "stalls": self.stalls,
            "value_sum": self.value_sum,
        }


class NetFlowUdpSource:
    """NetFlow v5 over UDP with kernel-buffer-backed backpressure."""

    def __init__(self, host: str, port: int, feeder: BatchFeeder) -> None:
        self._host = host
        self._requested_port = port
        self._feeder = feeder
        self._sock: socket.socket = None  # type: ignore[assignment]
        self._loop: asyncio.AbstractEventLoop = None  # type: ignore
        self._reading = False
        self.port = port
        self.datagrams = 0
        self.records = 0
        self.malformed = 0

    def open(self) -> None:
        """Bind the socket (resolving an ephemeral port request)."""
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        try:
            sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_RCVBUF, UDP_RECV_BUFFER
            )
        except OSError:  # pragma: no cover - platform-dependent cap
            pass
        sock.bind((self._host, self._requested_port))
        sock.setblocking(False)
        self._sock = sock
        self.port = sock.getsockname()[1]

    def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._feeder.on_room(self._resume)
        self._loop.add_reader(self._sock.fileno(), self._on_readable)
        self._reading = True

    @property
    def paused(self) -> bool:
        return self._sock is not None and not self._reading

    def _on_readable(self) -> None:
        for _ in range(_DRAIN_PER_WAKE):
            try:
                data, _addr = self._sock.recvfrom(_MAX_DATAGRAM)
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return
            self.datagrams += 1
            try:
                records = decode_packet(data)
            except NetFlowDecodeError:
                # The one legitimate drop: garbage input, counted.
                self.malformed += 1
                continue
            if not records:
                continue
            ids, vals = items_from_flow_records(records)
            self.records += len(ids)
            if not self._feeder.put(ids, vals):
                self._pause()
                return

    def _pause(self) -> None:
        if self._reading:
            self._loop.remove_reader(self._sock.fileno())
            self._reading = False

    def _resume(self) -> None:
        if self._sock is not None and not self._reading:
            self._loop.add_reader(self._sock.fileno(), self._on_readable)
            self._reading = True

    def close(self) -> None:
        if self._sock is None:
            return
        self._pause()
        self._sock.close()
        self._sock = None  # type: ignore[assignment]

    def stats(self) -> dict:
        return {
            "datagrams": self.datagrams,
            "records": self.records,
            "malformed": self.malformed,
            "paused": self.paused,
        }


class ReportTcpSource:
    """Length-prefixed binary report frames over TCP.

    Each frame is ``!I`` byte length + one :func:`repro.netwide.wire.
    to_bytes` blob.  A malformed frame (oversized prefix, truncated
    payload, undecodable report) is counted and the connection is
    closed — once framing desynchronizes, nothing after it can be
    trusted.  Well-formed frames are never dropped: over-capacity
    ingest stalls the reader, which stalls the peer via TCP.
    """

    def __init__(self, host: str, port: int, feeder: BatchFeeder) -> None:
        self._host = host
        self._requested_port = port
        self._feeder = feeder
        self._server: asyncio.AbstractServer = None  # type: ignore
        self.port = port
        self.connections = 0
        self.frames = 0
        self.records = 0
        self.malformed = 0

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self._host, self._requested_port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections += 1
        try:
            while True:
                try:
                    header = await reader.readexactly(FRAME_HEADER.size)
                except asyncio.IncompleteReadError as exc:
                    if exc.partial:
                        self.malformed += 1
                    return
                (length,) = FRAME_HEADER.unpack(header)
                if length > MAX_FRAME_BYTES:
                    self.malformed += 1
                    return
                try:
                    payload = await reader.readexactly(length)
                except asyncio.IncompleteReadError:
                    self.malformed += 1
                    return
                try:
                    report = from_bytes(payload)
                except WireFormatError:
                    self.malformed += 1
                    return
                self.frames += 1
                ids, vals = items_from_report(report)
                self.records += len(ids)
                if ids:
                    await self._feeder.put_async(ids, vals)
        except ConnectionError:  # pragma: no cover - peer vanished
            pass
        except asyncio.CancelledError:
            pass  # daemon shutting down: drop the connection quietly
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def close(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None  # type: ignore[assignment]

    def stats(self) -> dict:
        return {
            "connections": self.connections,
            "frames": self.frames,
            "records": self.records,
            "malformed": self.malformed,
        }
