"""repro.service — a live measurement daemon on top of q-MAX.

Everything else in this package turns the batch-driven library into a
process you can run, feed, and query:

* :mod:`repro.service.config` — :class:`ServiceConfig` and the backend
  factory (plain q-MAX, sliding window, or the sharded engine).
* :mod:`repro.service.ingest` — asynchronous ingest: NetFlow v5 over
  UDP, length-prefixed :mod:`repro.netwide.wire` report frames over
  TCP, coalesced into ``add_many`` batches with stall-not-drop
  backpressure.
* :mod:`repro.service.rpc` — the JSON-over-TCP query RPC (``top``,
  ``stats``, ``snapshot``, ``reset``, ``health``) and its client.
* :mod:`repro.service.snapshot` — atomic-rename checkpoints of
  retained + evicted state and recovery at restart.
* :mod:`repro.service.daemon` — :class:`MeasurementDaemon`, wiring it
  all together; :func:`serve` for the CLI and :class:`DaemonThread`
  for tests, demos, and embedding.

Quickstart::

    python -m repro.cli serve --q 1000 --udp-port 9995 --rpc-port 9997
    python -m repro.cli query top --port 9997 -q 10

See docs/SERVICE.md for the architecture and wire protocols.
"""

from repro.service.config import ServiceConfig
from repro.service.daemon import DaemonThread, MeasurementDaemon, serve
from repro.service.rpc import rpc_call

__all__ = [
    "ServiceConfig",
    "MeasurementDaemon",
    "DaemonThread",
    "serve",
    "rpc_call",
]
