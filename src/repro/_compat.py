"""Optional-dependency shims.

NumPy is an *optional* accelerator (``pip install .[fast]``): every
algorithm in this package has a pure-Python implementation that is
semantically identical, and the vectorized paths are only engaged when
``HAVE_NUMPY`` is true.  Import ``np`` from here instead of importing
numpy directly so a missing install degrades to the pure path instead
of raising at import time.
"""

from __future__ import annotations

try:  # pragma: no cover - exercised via the no-numpy CI leg
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

try:  # pragma: no cover - exercised via the no-numpy CI leg
    from scipy import stats as scipy_stats

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover
    scipy_stats = None  # type: ignore[assignment]
    HAVE_SCIPY = False

__all__ = ["np", "HAVE_NUMPY", "scipy_stats", "HAVE_SCIPY"]
