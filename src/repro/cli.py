"""Command-line interface: ``python -m repro.cli <command>``.

Sub-commands wire the library's pieces into end-to-end workflows a
network operator would actually run:

* ``gen-trace``   — synthesize a trace (CAIDA/UNIV1-style) into a pcap.
* ``top-flows``   — top-q flows of a pcap by byte volume (q-MAX).
* ``heavy-hitters`` — network-wide heavy hitters from one or more pcaps
  (each file acts as one NMP; reports are merged without double
  counting by packet id).
* ``distinct``    — KMV estimate of distinct sources in a pcap.
* ``cache-sim``   — LRFU hit-ratio simulation on a synthetic trace.
* ``bench``       — a quick q-MAX vs heap vs skip-list sweep, plus the
  trajectory tooling: ``bench report`` renders the per-commit perf
  history from the append-only ``bench_trajectory/`` store,
  ``bench gate`` fails on throughput regressions vs a recorded
  baseline, and ``bench import-legacy`` migrates pre-trajectory
  ``BENCH_*.json`` artifacts (see docs/BENCHMARKS.md).
* ``serve``       — run the live measurement daemon (UDP NetFlow +
  TCP report ingest, JSON query RPC, snapshots); see docs/SERVICE.md.
  ``--fleet host:port`` makes it register with a fleet coordinator.
* ``query``       — query a running daemon over its RPC port.
* ``fleet``       — the distributed fleet (docs/FLEET.md):
  ``fleet serve`` runs the coordinator, ``fleet query`` asks it for
  global answers (top/hh/epoch/...), ``fleet status`` summarises
  membership and coverage.

Every command prints a small table to stdout and exits 0 on success;
argument errors exit 2 (argparse) and data errors exit 1 with a message
on stderr.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro import __version__
from repro.errors import ReproError


def _cmd_gen_trace(args: argparse.Namespace) -> int:
    from repro.traffic import PROFILES, generate_packets, write_pcap

    profile = PROFILES[args.profile]
    packets = generate_packets(
        profile, args.packets, seed=args.seed,
        n_flows=args.flows or None,
    )
    count = write_pcap(args.output, packets)
    print(f"wrote {count} {profile.name}-style packets to {args.output}")
    return 0


def _cmd_top_flows(args: argparse.Namespace) -> int:
    from repro.apps.pba import PriorityBasedAggregation
    from repro.traffic import read_pcap
    from repro.traffic.packet import ip_to_str

    packets = read_pcap(args.pcap)
    pba = PriorityBasedAggregation(args.q, backend=args.backend,
                                   seed=args.seed)
    for pkt in packets:
        pba.update(pkt.src_ip, pkt.size)
    print(f"{'source':>16} {'bytes (sampled est.)':>22}")
    for src, _w, estimate in pba.sample()[: args.q]:
        print(f"{ip_to_str(src):>16} {estimate:>22,.0f}")
    return 0


def _cmd_heavy_hitters(args: argparse.Namespace) -> int:
    from repro.netwide import Controller, MeasurementPoint
    from repro.traffic import read_pcap
    from repro.traffic.packet import ip_to_str

    nmps = []
    for path in args.pcaps:
        nmp = MeasurementPoint(args.q, backend=args.backend,
                               seed=args.seed, name=path)
        for pkt in read_pcap(path):
            nmp.observe(pkt)
        nmps.append(nmp)
    controller = Controller(args.q)
    heavy = controller.heavy_hitters(nmps, theta=args.theta,
                                     epsilon=args.epsilon)
    print(
        f"network-wide heavy hitters over {len(nmps)} NMP(s), "
        f"theta={args.theta:g}, epsilon={args.epsilon:g}:"
    )
    print(f"{'flow (src ip)':>16} {'est. packets':>13}")
    for flow, estimate in heavy:
        print(f"{ip_to_str(flow):>16} {estimate:>13.0f}")
    return 0


def _cmd_distinct(args: argparse.Namespace) -> int:
    from repro.apps.count_distinct import CountDistinct
    from repro.traffic import read_pcap

    counter = CountDistinct(args.q, backend=args.backend, seed=args.seed)
    packets = read_pcap(args.pcap)
    for pkt in packets:
        counter.update(pkt.src_ip)
    print(
        f"{len(packets)} packets, ~{counter.estimate():.0f} distinct "
        f"sources (KMV, q={args.q})"
    )
    return 0


def _cmd_cache_sim(args: argparse.Namespace) -> int:
    from repro.apps.lrfu import make_lrfu
    from repro.traffic import generate_cache_trace

    trace = generate_cache_trace(args.requests, n_keys=args.keys,
                                 seed=args.seed)
    print(f"{'backend':>18} {'hit ratio':>10}")
    for backend in args.backends:
        cache = make_lrfu(backend, args.capacity, decay=args.decay,
                          gamma=args.gamma)
        for key in trace:
            cache.access(key)
        print(f"{backend:>18} {cache.hit_ratio:>10.1%}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.traffic import read_pcap
    from repro.traffic.stats import compute_stats, size_histogram

    packets = read_pcap(args.pcap)
    stats = compute_stats(packets)
    for label, value in stats.as_rows():
        print(f"{label:>20}: {value}")
    print(f"{'size histogram':>20}:")
    for bucket, fraction in size_histogram(packets).items():
        print(f"{bucket:>20}  {fraction:.1%}")
    return 0


def _cmd_scan_detect(args: argparse.Namespace) -> int:
    from repro.apps.superspreader import SuperSpreaderDetector
    from repro.traffic import read_pcap
    from repro.traffic.packet import ip_to_str

    detector = SuperSpreaderDetector(
        args.q, kmv_size=args.kmv, backend=args.backend, seed=args.seed
    )
    for pkt in read_pcap(args.pcap):
        detector.update(pkt.src_ip, (pkt.dst_ip, pkt.dst_port))
    alarms = detector.scanners(args.threshold)
    if not alarms:
        print(f"no sources above fanout {args.threshold:g}")
        return 0
    print(f"{'source':>16} {'~distinct destinations':>23}")
    for source, fanout in alarms:
        print(f"{ip_to_str(source):>16} {fanout:>23.0f}")
    return 0


def _cmd_export_netflow(args: argparse.Namespace) -> int:
    from repro.apps.pba import PriorityBasedAggregation
    from repro.traffic import read_pcap
    from repro.traffic.netflow import encode_packets, records_from_sample

    pba = PriorityBasedAggregation(args.q, backend=args.backend,
                                   seed=args.seed)
    for pkt in read_pcap(args.pcap):
        pba.update(pkt.src_ip, pkt.size)
    packets = encode_packets(records_from_sample(pba.sample()))
    with open(args.output, "wb") as fh:
        for blob in packets:
            fh.write(blob)
    print(
        f"exported {min(args.q, len(pba.sample()))} flow records in "
        f"{len(packets)} NetFlow v5 packet(s) to {args.output}"
    )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.baselines.heap import HeapQMax
    from repro.baselines.skiplist import SkipListQMax
    from repro.bench.reporting import emit
    from repro.bench.runner import (
        measure_throughput,
        measure_throughput_batched,
    )
    from repro.core.qmax import QMax
    from repro.traffic import generate_value_stream

    stream = generate_value_stream(args.items, seed=args.seed)
    kernel = getattr(args, "kernel", None)

    def make_qmax():
        return QMax(args.q, args.gamma, kernel=kernel)

    # Label with the *resolved* kernel (make_qmax's probe), so a table
    # produced on a box without the native extension says so.
    qmax_label = (
        f"qmax(g={args.gamma:g},k={make_qmax().kernel})"
        if kernel else f"qmax(g={args.gamma:g})"
    )
    rows = []
    metrics = []
    for label, factory in (
        (qmax_label, make_qmax),
        ("heap", lambda: HeapQMax(args.q)),
        ("skiplist", lambda: SkipListQMax(args.q)),
    ):
        m = measure_throughput(label, lambda f=factory: f().add,
                               stream, repeats=args.repeats)
        mean, half = m.mpps_ci
        rows.append([label, mean])
        metrics.append({"name": label, "value": mean, "unit": "mpps",
                        "ci_halfwidth": half})
    if args.shards > 1:
        from repro.parallel.engine import ShardedQMaxEngine

        engines = []

        def make_sharded():
            engine = ShardedQMaxEngine(
                args.q, n_shards=args.shards, gamma=args.gamma,
                mode=args.shard_mode, kernel=kernel,
            )
            engines.append(engine)
            return engine.add_many

        m = measure_throughput_batched(
            f"sharded-{args.shards}x", make_sharded, stream,
            batch_size=512, repeats=args.repeats,
        )
        label = f"sharded-{args.shards}x/{engines[-1].mode}"
        for engine in engines:
            engine.close()
        mean, half = m.mpps_ci
        rows.append([label, mean])
        metrics.append({"name": label, "value": mean, "unit": "mpps",
                        "ci_halfwidth": half})
    emit(
        "cli_sweep",
        f"quick sweep (q={args.q}, items={args.items})",
        ["structure", "MPPS"],
        rows,
        config={"q": args.q, "gamma": args.gamma, "items": args.items,
                "repeats": args.repeats, "seed": args.seed,
                "shards": args.shards, "kernel": kernel},
        metrics=metrics,
        record=getattr(args, "record", False),
    )
    return 0


def _bench_store(args: argparse.Namespace):
    from repro.bench.trajectory import TrajectoryStore

    return TrajectoryStore(getattr(args, "store", None))


def _cmd_bench_report(args: argparse.Namespace) -> int:
    from repro.bench.report import render_report

    render_report(
        _bench_store(args),
        benchmark=args.benchmark,
        last=args.last,
    )
    return 0


def _cmd_bench_gate(args: argparse.Namespace) -> int:
    from repro.bench.gate import parse_percent, render_gate_report, run_gate
    from repro.errors import TrajectoryError

    store = _bench_store(args)
    baseline = args.baseline or store.baseline_sha()
    if baseline is None:
        print("error: no --baseline given and the store has no "
              "BASELINE file", file=sys.stderr)
        return 1
    try:
        report = run_gate(
            store,
            baseline_sha=baseline,
            candidate_sha=args.candidate,
            max_regress=parse_percent(args.max_regress),
        )
    except TrajectoryError as exc:
        if args.allow_missing_baseline:
            print(f"bench gate skipped: {exc}")
            return 0
        raise
    render_gate_report(report, verbose=args.verbose)
    if report.failed:
        return 1
    if args.require_baseline and report.compared == 0:
        print("error: --require-baseline set but no metric had a "
              "comparable baseline", file=sys.stderr)
        return 1
    return 0


def _cmd_bench_import(args: argparse.Namespace) -> int:
    from repro.bench.trajectory import import_legacy_bench_json

    store = _bench_store(args)
    row = import_legacy_bench_json(
        args.path, git_sha=args.sha, benchmark=args.benchmark,
    )
    path = store.append(row)
    print(
        f"imported {len(row.metrics)} metric(s) from {args.path} as "
        f"benchmark {row.benchmark!r} @ {row.git_sha[:10]} -> {path}"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import logging

    from repro.service.config import ServiceConfig
    from repro.service.daemon import serve

    logging.basicConfig(
        level=getattr(logging, args.log_level.upper()),
        format="%(asctime)s %(levelname)s %(name)s: %(message)s",
    )
    config = ServiceConfig(
        q=args.q,
        gamma=args.gamma,
        backend=args.backend,
        window=args.window,
        tau=args.tau,
        shards=args.shards,
        shard_mode=args.shard_mode,
        host=args.host,
        udp_port=args.udp_port,
        tcp_port=args.tcp_port,
        rpc_port=args.rpc_port,
        batch_max=args.batch_max,
        flush_interval=args.flush_interval,
        snapshot_dir=args.snapshot_dir,
        snapshot_interval=args.snapshot_interval,
        recover=not args.no_recover,
        track_evictions=args.track_evictions,
        metrics=not args.no_metrics,
        fleet=args.fleet,
        daemon_id=args.daemon_id,
        heartbeat_interval=args.heartbeat_interval,
    )

    def _ready(daemon) -> None:
        print(
            f"repro.service up: backend={daemon.engine.name} "
            f"udp={daemon.udp.port} tcp={daemon.tcp.port} "
            f"rpc={daemon.rpc.port}"
            + (f" recovered seq={daemon.snapshot_seq}"
               if daemon.recovered else ""),
            flush=True,
        )

    asyncio.run(serve(config, ready=_ready))
    print("repro.service drained and stopped")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    import json
    import time

    from repro.service.rpc import rpc_call

    params = {}
    if args.op == "top" and args.q:
        params["q"] = args.q
    fmt = getattr(args, "format", "json")
    if args.op == "metrics" and fmt != "json":
        params["format"] = fmt

    def _once():
        result = rpc_call(args.host, args.port, args.op,
                          timeout=args.timeout, retries=args.retries,
                          retry_backoff=args.retry_backoff, **params)
        if isinstance(result, str):
            # Prometheus exposition text: already line-oriented.
            sys.stdout.write(result)
            sys.stdout.flush()
        else:
            print(json.dumps(result, indent=2, sort_keys=True), flush=True)
        return result

    result = _once()
    if args.op == "metrics" and args.watch:
        try:
            while True:
                time.sleep(args.interval)
                print(f"--- {time.strftime('%H:%M:%S')}", flush=True)
                result = _once()
        except KeyboardInterrupt:
            pass
    if args.op == "metrics" and args.record:
        from repro.obs.export import record_snapshot

        if not isinstance(result, dict):
            result = rpc_call(args.host, args.port, "metrics",
                              timeout=args.timeout)
        row = record_snapshot(result)
        print(
            f"recorded {len(row.metrics)} metric point(s) for "
            f"{row.git_sha}",
            file=sys.stderr,
        )
    return 0


def _cmd_fleet_serve(args: argparse.Namespace) -> int:
    import asyncio
    import logging

    from repro.fleet import FleetConfig, serve_fleet

    logging.basicConfig(
        level=getattr(logging, args.log_level.upper()),
        format="%(asctime)s %(levelname)s %(name)s: %(message)s",
    )
    config = FleetConfig(
        host=args.host,
        port=args.port,
        q=args.q,
        heartbeat_interval=args.heartbeat_interval,
        heartbeat_timeout=args.heartbeat_timeout,
        pull_timeout=args.pull_timeout,
        reset_on_advance=not args.no_reset_on_advance,
        metrics=not args.no_metrics,
    )

    def _ready(coordinator) -> None:
        print(
            f"repro.fleet coordinator up: rpc={coordinator.rpc.port} "
            f"q={config.q} heartbeat_timeout={config.heartbeat_timeout:g}s",
            flush=True,
        )

    asyncio.run(serve_fleet(config, ready=_ready))
    print("repro.fleet coordinator stopped")
    return 0


def _cmd_fleet_query(args: argparse.Namespace) -> int:
    import json

    from repro.service.rpc import rpc_call

    params = {}
    if args.op in ("top", "hh", "epoch") and args.q:
        params["q"] = args.q
    if args.op in ("top", "hh"):
        params["source"] = args.source
    if args.op == "hh":
        params.update(theta=args.theta, epsilon=args.epsilon,
                      mode=args.mode)
    if args.op == "epoch":
        params["action"] = args.action
    if args.op == "metrics" and args.format != "json":
        params["format"] = args.format
    result = rpc_call(args.host, args.port, args.op,
                      timeout=args.timeout, retries=args.retries,
                      retry_backoff=args.retry_backoff, **params)
    if isinstance(result, str):
        sys.stdout.write(result)
        sys.stdout.flush()
    else:
        print(json.dumps(result, indent=2, sort_keys=True), flush=True)
    return 0


def _cmd_fleet_status(args: argparse.Namespace) -> int:
    from repro.service.rpc import rpc_call

    status = rpc_call(args.host, args.port, "status",
                      timeout=args.timeout, retries=args.retries,
                      retry_backoff=args.retry_backoff)
    daemons = status["daemons"]
    print(
        f"fleet {status['fleet']}: epoch {status['epoch']}, "
        f"{daemons['alive']}/{daemons['registered']} daemons alive, "
        f"coverage {status['coverage']:.0%}"
    )
    if status.get("last_collect"):
        lc = status["last_collect"]
        print(
            f"last collect: epoch {lc['epoch']}, {lc['reports']} "
            f"report(s), {lc['observed']} records, {lc['seconds']:.3f}s"
        )
    print(f"{'daemon':>24} {'state':>6} {'rejoins':>8} {'pulls':>6} "
          f"{'errors':>7}")
    for member in status["members"]:
        state = "alive" if member["alive"] else "lost"
        print(
            f"{member['daemon_id']:>24} {state:>6} "
            f"{member['rejoins']:>8} {member['pulls']:>6} "
            f"{member['pull_errors']:>7}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="q-MAX network-measurement toolkit (IMC'19 repro)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("gen-trace", help="synthesize a pcap trace")
    p.add_argument("output", help="output pcap path")
    p.add_argument("--profile", default="caida16",
                   choices=("caida16", "caida18", "univ1"))
    p.add_argument("--packets", type=int, default=10_000)
    p.add_argument("--flows", type=int, default=0,
                   help="flow count override (0 = profile default)")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_gen_trace)

    p = sub.add_parser("top-flows", help="top flows by byte volume")
    p.add_argument("pcap")
    p.add_argument("-q", type=int, default=10)
    p.add_argument("--backend", default="qmax",
                   choices=("qmax", "heap", "skiplist"))
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_top_flows)

    p = sub.add_parser("heavy-hitters",
                       help="network-wide heavy hitters from pcaps")
    p.add_argument("pcaps", nargs="+",
                   help="one pcap per measurement point")
    p.add_argument("-q", type=int, default=1_000)
    p.add_argument("--theta", type=float, default=0.01)
    p.add_argument("--epsilon", type=float, default=0.005)
    p.add_argument("--backend", default="qmax")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_heavy_hitters)

    p = sub.add_parser("distinct", help="distinct-source estimate")
    p.add_argument("pcap")
    p.add_argument("-q", type=int, default=256)
    p.add_argument("--backend", default="qmax")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_distinct)

    p = sub.add_parser("cache-sim", help="LRFU hit-ratio simulation")
    p.add_argument("--capacity", type=int, default=1_000)
    p.add_argument("--requests", type=int, default=50_000)
    p.add_argument("--keys", type=int, default=20_000)
    p.add_argument("--decay", type=float, default=0.75)
    p.add_argument("--gamma", type=float, default=0.25)
    p.add_argument("--backends", nargs="+",
                   default=["qmax", "indexedheap", "skiplist"])
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_cache_sim)

    p = sub.add_parser("stats", help="trace statistics from a pcap")
    p.add_argument("pcap")
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("scan-detect",
                       help="super-spreader / port-scan detection")
    p.add_argument("pcap")
    p.add_argument("-q", type=int, default=50)
    p.add_argument("--kmv", type=int, default=32)
    p.add_argument("--threshold", type=float, default=100.0)
    p.add_argument("--backend", default="qmax",
                   choices=("qmax", "heap", "skiplist"))
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_scan_detect)

    p = sub.add_parser("export-netflow",
                       help="measure a pcap and export NetFlow v5")
    p.add_argument("pcap")
    p.add_argument("output", help="output file for export packets")
    p.add_argument("-q", type=int, default=100)
    p.add_argument("--backend", default="qmax",
                   choices=("qmax", "heap", "skiplist"))
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_export_netflow)

    def _add_sweep_options(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("-q", type=int, default=1_000)
        parser.add_argument("--gamma", type=float, default=0.25)
        parser.add_argument("--items", type=int, default=100_000)
        parser.add_argument("--repeats", type=int, default=3)
        parser.add_argument("--seed", type=int, default=0)
        parser.add_argument(
            "--shards", type=int, default=1,
            help="add a sharded-engine row with this many shards")
        parser.add_argument(
            "--shard-mode", default="auto",
            choices=("auto", "process", "inline"),
            help="sharded engine execution mode")
        parser.add_argument(
            "--kernel", default=None,
            choices=("stepwise", "numpy", "native"),
            help="qmax maintenance kernel (default: REPRO_KERNEL or "
            "the deamortized stepwise schedule); numpy/native run "
            "one-shot boundary drives, falling back when unavailable")
        parser.add_argument(
            "--record", action="store_true",
            help="append the sweep to the bench trajectory store")
        parser.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "bench",
        help="benchmarks: quick sweep, trajectory report, regression "
        "gate (see docs/BENCHMARKS.md)",
        # No prefix matching: the sweep options (--shards, ...) must
        # not swallow subcommand options like import-legacy's --sha.
        allow_abbrev=False,
    )
    _add_sweep_options(p)
    bsub = p.add_subparsers(dest="bench_command", required=False)

    bp = bsub.add_parser("run", help="quick throughput sweep "
                         "(the default when no subcommand is given)")
    _add_sweep_options(bp)

    bp = bsub.add_parser("report",
                         help="render the recorded perf trajectory")
    bp.add_argument("--store", default=None,
                    help="trajectory store directory "
                    "(default: REPRO_TRAJECTORY_DIR or bench_trajectory/)")
    bp.add_argument("--benchmark", default=None,
                    help="expand one benchmark into per-metric rows")
    bp.add_argument("--last", type=int, default=None,
                    help="only the N most recent commits")
    bp.set_defaults(func=_cmd_bench_report)

    bp = bsub.add_parser("gate",
                         help="fail (exit 1) on recorded throughput "
                         "regressions vs a baseline commit")
    bp.add_argument("--store", default=None,
                    help="trajectory store directory")
    bp.add_argument("--baseline", default=None,
                    help="baseline SHA (default: the store's BASELINE "
                    "file)")
    bp.add_argument("--candidate", default=None,
                    help="candidate SHA (default: newest recorded SHA)")
    bp.add_argument("--max-regress", default="10%",
                    help="allowed drop before CI noise, e.g. '10%%' "
                    "or '0.1'")
    bp.add_argument("--require-baseline", action="store_true",
                    help="fail if nothing could be compared")
    bp.add_argument("--allow-missing-baseline", action="store_true",
                    help="exit 0 when the baseline/candidate SHA has "
                    "no recorded rows (CI bootstrap)")
    bp.add_argument("--verbose", action="store_true",
                    help="also list unchanged metrics")
    bp.set_defaults(func=_cmd_bench_gate)

    bp = bsub.add_parser("import-legacy",
                         help="migrate a pre-trajectory BENCH_*.json "
                         "artifact into the store")
    bp.add_argument("path", help="legacy JSON artifact")
    bp.add_argument("--sha", required=True,
                    help="the commit the artifact was measured at")
    bp.add_argument("--store", default=None,
                    help="trajectory store directory")
    bp.add_argument("--benchmark", default=None,
                    help="override the trajectory benchmark id")
    bp.set_defaults(func=_cmd_bench_import)

    p = sub.add_parser("serve",
                       help="run the live measurement daemon")
    p.add_argument("-q", type=int, default=1_000)
    p.add_argument("--gamma", type=float, default=0.25)
    p.add_argument("--backend", default="qmax",
                   choices=("qmax", "sliding"))
    p.add_argument("--window", type=int, default=100_000,
                   help="sliding backend: window size in records")
    p.add_argument("--tau", type=float, default=0.25,
                   help="sliding backend: slack parameter")
    p.add_argument("--shards", type=int, default=1,
                   help=">1 runs the sharded multi-core engine")
    p.add_argument("--shard-mode", default="auto",
                   choices=("auto", "process", "inline"))
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--udp-port", type=int, default=9995,
                   help="NetFlow v5 ingest port (0 = ephemeral)")
    p.add_argument("--tcp-port", type=int, default=9996,
                   help="wire-report frame ingest port (0 = ephemeral)")
    p.add_argument("--rpc-port", type=int, default=9997,
                   help="JSON query RPC port (0 = ephemeral)")
    p.add_argument("--batch-max", type=int, default=512)
    p.add_argument("--flush-interval", type=float, default=0.05)
    p.add_argument("--snapshot-dir", default=None,
                   help="checkpoint directory (unset = no snapshots)")
    p.add_argument("--snapshot-interval", type=float, default=30.0)
    p.add_argument("--no-recover", action="store_true",
                   help="ignore an existing snapshot at startup")
    p.add_argument("--track-evictions", action="store_true",
                   help="carry the eviction log in snapshots")
    p.add_argument("--no-metrics", action="store_true",
                   help="disable the observability registry "
                   "(the metrics RPC op returns an empty snapshot)")
    p.add_argument("--fleet", default=None, metavar="HOST:PORT",
                   help="register with a fleet coordinator and serve "
                   "its measurement epochs (docs/FLEET.md)")
    p.add_argument("--daemon-id", default=None,
                   help="stable fleet identity (default: host:rpc-port; "
                   "set one so a restart rejoins instead of appearing "
                   "as a new daemon)")
    p.add_argument("--heartbeat-interval", type=float, default=1.0,
                   help="fleet heartbeat cadence, seconds")
    p.add_argument("--log-level", default="info",
                   choices=("debug", "info", "warning", "error"),
                   help="stdlib logging level for repro.* loggers")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("query",
                       help="query a running daemon's RPC port")
    p.add_argument("op",
                   choices=("top", "stats", "snapshot", "reset",
                            "health", "metrics"))
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, required=True,
                   help="the daemon's RPC port")
    p.add_argument("-q", type=int, default=0,
                   help="top: how many items (0 = the engine's q)")
    p.add_argument("--timeout", type=float, default=10.0,
                   help="per-attempt socket timeout, seconds")
    p.add_argument("--retries", type=int, default=0,
                   help="extra connect attempts before giving up "
                   "(exponential backoff; only the connect is retried)")
    p.add_argument("--retry-backoff", type=float, default=0.25,
                   help="first retry delay, seconds (doubles each try)")
    p.add_argument("--format", default="json",
                   choices=("json", "prometheus"),
                   help="metrics: exposition format")
    p.add_argument("--watch", action="store_true",
                   help="metrics: re-poll until interrupted")
    p.add_argument("--interval", type=float, default=2.0,
                   help="metrics: --watch poll interval, seconds")
    p.add_argument("--record", action="store_true",
                   help="metrics: append selected gauges to the bench "
                   "trajectory store")
    p.set_defaults(func=_cmd_query)

    p = sub.add_parser("fleet",
                       help="distributed fleet: coordinator + global "
                       "queries (docs/FLEET.md)")
    fsub = p.add_subparsers(dest="fleet_command", required=True)

    def _add_client_options(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--host", default="127.0.0.1")
        parser.add_argument("--port", type=int, required=True,
                            help="the coordinator's RPC port")
        parser.add_argument("--timeout", type=float, default=30.0,
                            help="per-attempt socket timeout, seconds "
                            "(covers the coordinator's daemon fan-out)")
        parser.add_argument("--retries", type=int, default=0,
                            help="extra connect attempts before giving "
                            "up (exponential backoff)")
        parser.add_argument("--retry-backoff", type=float, default=0.25,
                            help="first retry delay, seconds")

    fp = fsub.add_parser("serve", help="run the fleet coordinator")
    fp.add_argument("--host", default="127.0.0.1")
    fp.add_argument("--port", type=int, default=9990,
                    help="coordinator RPC port (0 = ephemeral)")
    fp.add_argument("-q", type=int, default=1_000,
                    help="default size of global answers")
    fp.add_argument("--heartbeat-interval", type=float, default=1.0,
                    help="cadence handed to registering daemons")
    fp.add_argument("--heartbeat-timeout", type=float, default=5.0,
                    help="silence past this marks a daemon lost")
    fp.add_argument("--pull-timeout", type=float, default=10.0,
                    help="per-daemon budget for one report pull")
    fp.add_argument("--no-reset-on-advance", action="store_true",
                    help="keep daemon engines cumulative across epochs")
    fp.add_argument("--no-metrics", action="store_true",
                    help="disable the coordinator's metrics registry")
    fp.add_argument("--log-level", default="info",
                    choices=("debug", "info", "warning", "error"))
    fp.set_defaults(func=_cmd_fleet_serve)

    fp = fsub.add_parser("query",
                         help="ask the coordinator a global question")
    fp.add_argument("op",
                    choices=("status", "top", "hh", "epoch", "health",
                             "metrics"))
    _add_client_options(fp)
    fp.add_argument("-q", type=int, default=0,
                    help="top/hh/epoch collect: answer size "
                    "(0 = the coordinator's q)")
    fp.add_argument("--source", default="live",
                    choices=("live", "epoch"),
                    help="top/hh: pull fresh reports, or answer from "
                    "the last epoch collect")
    fp.add_argument("--theta", type=float, default=0.01,
                    help="hh: heavy-hitter threshold fraction")
    fp.add_argument("--epsilon", type=float, default=0.0,
                    help="hh: false-negative margin")
    fp.add_argument("--mode", default="volume",
                    choices=("volume", "sample"),
                    help="hh: share-of-volume over retained flows, or "
                    "the paper's KMV packet-sample estimate")
    fp.add_argument("--action", default="collect",
                    choices=("begin", "collect", "advance"),
                    help="epoch: which cycle step to run")
    fp.add_argument("--format", default="json",
                    choices=("json", "prometheus"),
                    help="metrics: exposition format")
    fp.set_defaults(func=_cmd_fleet_query)

    fp = fsub.add_parser("status",
                         help="human-readable membership summary")
    _add_client_options(fp)
    fp.set_defaults(func=_cmd_fleet_status)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
