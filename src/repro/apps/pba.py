"""Priority-Based Aggregation (Duffield et al., CIKM 2017) — §2.1.

PBA generalizes priority sampling to streams where a key appears many
times and should be sampled with probability proportional to its
*total* weight (e.g. a flow's byte volume).  Each sampled key keeps an
accumulated weight ``w_x`` and a fixed per-key uniform ``u_x``; its
priority is ``w_x / u_x``, which only grows as more of the key's
packets arrive.  When the reservoir overflows, the minimal-priority key
is discarded and the discard threshold ``z`` is raised; subset-sum
estimates use ``max(w_x, z)`` per surviving key.

The data-structure requirement is exactly what §5.1's machinery
provides: a top-q reservoir whose members' values can be *raised*.
The q-MAX backend reinserts and merges duplicates during maintenance;
the heap baseline pays O(q) per update (no sift in the standard heap —
the paper's explanation for the ×875 PBA speedup); the skip list
removes and reinserts in O(log q).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.apps.reservoirs import make_updatable_reservoir
from repro.errors import ConfigurationError
from repro.hashing.uniform import UniformHasher
from repro.types import ItemId, Value


class PriorityBasedAggregation:
    """Weighted sampling of aggregated (repeating) keys.

    Parameters
    ----------
    k:
        Sample size bound (the reservoir keeps up to ``k`` keys; the
        q-MAX backend transiently holds up to ``k(1+γ)`` entries).
    backend:
        ``"qmax"``, ``"heap"`` or ``"skiplist"``.
    """

    def __init__(
        self,
        k: int,
        backend: str = "qmax",
        gamma: float = 0.25,
        seed: int = 0,
    ) -> None:
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        self.k = k
        self._reservoir = make_updatable_reservoir(backend, k, gamma)
        self._uniform = UniformHasher(seed)
        #: Aggregated weight of each currently sampled key.
        self._weight_of: Dict[ItemId, Value] = {}
        #: Discard threshold: the largest priority ever evicted.
        self.threshold = 0.0
        self.processed = 0

    def update(self, key: ItemId, weight: Value) -> None:
        """Process one (key, weight) arrival (the hot path)."""
        if weight <= 0:
            raise ConfigurationError(
                f"weights must be positive, got {weight}"
            )
        total = self._weight_of.get(key, 0.0) + weight
        self._weight_of[key] = total
        priority = total / self._uniform.unit_open(key)
        self._reservoir.set_value(key, priority)
        # Sync evictions: an evicted key loses its aggregate entirely
        # (PBA restarts evicted keys) and raises the threshold.
        for evicted_key in self._reservoir.take_evicted_keys():
            evicted_weight = self._weight_of.pop(evicted_key, 0.0)
            evicted_priority = (
                evicted_weight / self._uniform.unit_open(evicted_key)
            )
            if evicted_priority > self.threshold:
                self.threshold = evicted_priority
        self.processed += 1

    def sample(self) -> List[Tuple[ItemId, Value, float]]:
        """Current sample: ``(key, aggregated_weight, estimate)``."""
        z = self.threshold
        entries = [
            (key, w, max(w, z))
            for key, w in sorted(
                self._weight_of.items(), key=lambda p: p[1], reverse=True
            )
            if key in self._reservoir
        ]
        # The q-MAX backend transiently retains up to k(1+γ) keys
        # between maintenance rounds; report at most k.
        return entries[: self.k]

    def estimate_subset_sum(
        self, predicate: Callable[[ItemId], bool]
    ) -> float:
        """Estimate of the total weight of keys matching ``predicate``."""
        return sum(
            est for key, _w, est in self.sample() if predicate(key)
        )

    @property
    def backend_name(self) -> str:
        return self._reservoir.name
