"""Super-spreader and port-scan detection (§1, §2.3).

The paper motivates count-distinct with "identifying a source IP that
contacts many distinct ports is used to identify port-scanners", and
network-wide views with super-spreader detection.  This module builds
that application from the repository's parts:

* per-source *fanout* (distinct destinations or ports) is estimated
  with a small KMV reservoir per tracked source, and
* the top-q sources by estimated fanout are maintained in an
  *updatable* reservoir (fanout estimates only grow, so the §5.1
  reinsert-and-merge-with-max scheme applies — the same pattern as
  PBA).

Memory is O(q·(1+γ)·kmv_size): only sources currently in the reservoir
keep KMV state; an evicted source restarts if it reappears (bounded
memory, no false *positives* from restarts — only delayed detection,
the usual trade in scan detection).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

from repro.apps.reservoirs import make_updatable_reservoir
from repro.errors import ConfigurationError
from repro.hashing.uniform import UniformHasher


class _MiniKMV:
    """A tiny k-minimum-values cardinality estimator (sorted list —
    k is small, so bisect-free insertion into a list wins)."""

    __slots__ = ("k", "values")

    def __init__(self, k: int) -> None:
        self.k = k
        self.values: List[float] = []

    def add(self, value: float) -> bool:
        """Insert a hash value; returns True if the sketch changed."""
        values = self.values
        if value in values:
            return False
        if len(values) < self.k:
            values.append(value)
            values.sort()
            return True
        if value >= values[-1]:
            return False
        values.pop()
        values.append(value)
        values.sort()
        return True

    def estimate(self) -> float:
        values = self.values
        if len(values) < self.k:
            return float(len(values))
        return (self.k - 1) / values[-1]


class SuperSpreaderDetector:
    """Track the q sources with the largest distinct-destination fanout.

    Parameters
    ----------
    q:
        Number of top spreaders to maintain.
    kmv_size:
        Per-source KMV reservoir size (standard error ≈ 1/√(k−2)).
    backend:
        Updatable-reservoir backend (``qmax``/``heap``/``skiplist``).
    """

    def __init__(
        self,
        q: int,
        kmv_size: int = 32,
        backend: str = "qmax",
        gamma: float = 0.25,
        seed: int = 0,
    ) -> None:
        if q < 1:
            raise ConfigurationError(f"q must be >= 1, got {q}")
        if kmv_size < 2:
            raise ConfigurationError(
                f"kmv_size must be >= 2, got {kmv_size}"
            )
        self.q = q
        self.kmv_size = kmv_size
        self._reservoir = make_updatable_reservoir(backend, q, gamma)
        self._uniform = UniformHasher(seed)
        self._kmv_of: Dict[Hashable, _MiniKMV] = {}
        self.processed = 0

    def update(self, source: Hashable, destination: Hashable) -> None:
        """Observe one (source, destination) contact (the hot path)."""
        kmv = self._kmv_of.get(source)
        if kmv is None:
            kmv = _MiniKMV(self.kmv_size)
            self._kmv_of[source] = kmv
        # The destination hash is source-independent so the same dest
        # always maps to the same value (per-source dedup for free).
        if kmv.add(self._uniform.unit_open(destination)):
            self._reservoir.set_value(source, kmv.estimate())
            for evicted in self._reservoir.take_evicted_keys():
                self._kmv_of.pop(evicted, None)
        self.processed += 1

    def top_spreaders(self) -> List[Tuple[Hashable, float]]:
        """Sources with the largest estimated fanout, descending."""
        return [
            (source, estimate)
            for source, estimate in self._reservoir.query()
            if source in self._kmv_of
        ][: self.q]

    def fanout_of(self, source: Hashable) -> float:
        """Current fanout estimate of a tracked source (0 if untracked)."""
        kmv = self._kmv_of.get(source)
        return kmv.estimate() if kmv is not None else 0.0

    def scanners(self, threshold: float) -> List[Tuple[Hashable, float]]:
        """Tracked sources whose fanout estimate exceeds ``threshold``
        (the port-scan alarm query)."""
        if threshold <= 0:
            raise ConfigurationError("threshold must be positive")
        return [
            (source, estimate)
            for source, estimate in self.top_spreaders()
            if estimate >= threshold
        ]

    @property
    def tracked_sources(self) -> int:
        """Number of sources currently holding KMV state."""
        return len(self._kmv_of)
