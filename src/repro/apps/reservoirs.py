"""Reservoir backends shared by the measurement applications.

Two interface flavours:

* **Plain reservoirs** (:func:`make_reservoir`): the q-MAX interface —
  items are (id, value) with distinct ids; used by Priority Sampling,
  KMV, bottom-k and network-wide heavy hitters.  Backends: ``qmax``
  (Algorithm 1), ``qmax-amortized``, ``heap``, ``skiplist``,
  ``sortedlist``.

* **Updatable reservoirs** (:func:`make_updatable_reservoir`): keys
  recur and their value must be *replaced* (PBA priorities grow,
  UnivMon estimates change).  q-MAX handles this with the §5.1
  duplicate-merging scheme; the heap baseline mirrors the paper's
  observation that the standard heap has no sift/update and therefore
  pays O(q) per update; the skip list removes and reinserts in
  O(log q).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.baselines.heap import HeapQMax
from repro.baselines.skiplist import SkipList, SkipListQMax
from repro.baselines.sortedlist import SortedListQMax
from repro.core.amortized import AmortizedQMax
from repro.core.interface import QMaxBase
from repro.core.merging import MergingQMax
from repro.core.qmax import QMax
from repro.errors import ConfigurationError
from repro.types import Item, ItemId, Value

#: Plain-reservoir backend names accepted throughout the apps.
BACKENDS = ("qmax", "qmax-amortized", "heap", "skiplist", "sortedlist")


def make_reservoir(
    backend: str,
    q: int,
    gamma: float = 0.25,
    track_evictions: bool = False,
) -> QMaxBase:
    """Build a plain q-MAX reservoir by backend name."""
    if backend == "qmax":
        return QMax(q, gamma, track_evictions=track_evictions)
    if backend == "qmax-amortized":
        return AmortizedQMax(q, gamma, track_evictions=track_evictions)
    if backend == "heap":
        return HeapQMax(q, track_evictions=track_evictions)
    if backend == "skiplist":
        return SkipListQMax(q, track_evictions=track_evictions)
    if backend == "sortedlist":
        return SortedListQMax(q, track_evictions=track_evictions)
    raise ConfigurationError(
        f"unknown backend {backend!r}; expected one of {BACKENDS}"
    )


class UpdatableReservoir:
    """Interface: keep the q keys with the largest current values, where
    a key's value may be replaced by a larger one at any time."""

    q: int

    def set_value(self, key: ItemId, value: Value) -> None:
        """Insert ``key`` or raise its value to ``value``."""
        raise NotImplementedError

    def __contains__(self, key: ItemId) -> bool:
        raise NotImplementedError

    def query(self) -> List[Item]:
        """Top q (key, value) pairs, sorted descending, deduplicated."""
        raise NotImplementedError

    def take_evicted_keys(self) -> List[ItemId]:
        """Keys dropped from the reservoir since the last drain."""
        raise NotImplementedError

    @property
    def name(self) -> str:
        return type(self).__name__


class QMaxUpdatableReservoir(UpdatableReservoir):
    """q-MAX flavour: reinsert on every update, merge duplicates during
    maintenance with ``max`` (values only grow) — §5.1's scheme."""

    def __init__(self, q: int, gamma: float = 0.25) -> None:
        self.q = q
        self._inner = MergingQMax(
            q, gamma, merge=max, track_evictions=True
        )
        self._evicted: List[ItemId] = []

    def set_value(self, key: ItemId, value: Value) -> None:
        self._inner.add(key, value)
        if self._inner._evicted:
            self._evicted.extend(k for k, _ in self._inner.take_evicted())

    def __contains__(self, key: ItemId) -> bool:
        return key in self._inner

    def query(self) -> List[Item]:
        return self._inner.query()

    def take_evicted_keys(self) -> List[ItemId]:
        evicted, self._evicted = self._evicted, []
        return evicted

    @property
    def name(self) -> str:
        return "qmax"


class HeapUpdatableReservoir(UpdatableReservoir):
    """Heap flavour mirroring the paper's std-heap baseline: no sift
    support, so updating an existing key's value costs O(q) (rewrite
    in place, then rebuild the heap bottom-up)."""

    def __init__(self, q: int) -> None:
        self.q = q
        self._vals: List[Value] = []
        self._keys: List[ItemId] = []
        self._index: Dict[ItemId, int] = {}
        self._evicted: List[ItemId] = []

    def set_value(self, key: ItemId, value: Value) -> None:
        idx = self._index.get(key)
        if idx is not None:
            self._vals[idx] = value
            self._heapify()  # O(q): the paper's "no value updates" cost
            return
        if len(self._vals) < self.q:
            self._vals.append(value)
            self._keys.append(key)
            self._index[key] = len(self._vals) - 1
            self._sift_up(len(self._vals) - 1)
            return
        if value <= self._vals[0]:
            return
        old_key = self._keys[0]
        del self._index[old_key]
        self._evicted.append(old_key)
        self._vals[0] = value
        self._keys[0] = key
        self._index[key] = 0
        self._sift_down(0)

    def _heapify(self) -> None:
        for i in range(len(self._vals) // 2 - 1, -1, -1):
            self._sift_down(i)

    def _sift_up(self, i: int) -> None:
        vals, keys, index = self._vals, self._keys, self._index
        v, k = vals[i], keys[i]
        while i > 0:
            parent = (i - 1) >> 1
            if vals[parent] <= v:
                break
            vals[i], keys[i] = vals[parent], keys[parent]
            index[keys[i]] = i
            i = parent
        vals[i], keys[i] = v, k
        index[k] = i

    def _sift_down(self, i: int) -> None:
        vals, keys, index = self._vals, self._keys, self._index
        n = len(vals)
        v, k = vals[i], keys[i]
        while True:
            child = 2 * i + 1
            if child >= n:
                break
            right = child + 1
            if right < n and vals[right] < vals[child]:
                child = right
            if vals[child] >= v:
                break
            vals[i], keys[i] = vals[child], keys[child]
            index[keys[i]] = i
            i = child
        vals[i], keys[i] = v, k
        index[k] = i

    def __contains__(self, key: ItemId) -> bool:
        return key in self._index

    def query(self) -> List[Item]:
        return sorted(
            zip(self._keys, self._vals), key=lambda p: p[1], reverse=True
        )

    def take_evicted_keys(self) -> List[ItemId]:
        evicted, self._evicted = self._evicted, []
        return evicted

    @property
    def name(self) -> str:
        return "heap"


class SkipListUpdatableReservoir(UpdatableReservoir):
    """Skip-list flavour: updates remove the old node and reinsert —
    O(log q), the paper's stronger baseline."""

    def __init__(self, q: int, seed: int = 0x5EED) -> None:
        self.q = q
        self._list = SkipList(seed)
        self._value_of: Dict[ItemId, Value] = {}
        self._evicted: List[ItemId] = []

    def set_value(self, key: ItemId, value: Value) -> None:
        old = self._value_of.get(key)
        if old is not None:
            self._list.remove(old, key)
            self._list.insert(value, key)
            self._value_of[key] = value
            return
        if len(self._list) >= self.q:
            if value <= self._list.min_value():
                return
            dropped_key, _ = self._list.pop_min()
            del self._value_of[dropped_key]
            self._evicted.append(dropped_key)
        self._list.insert(value, key)
        self._value_of[key] = value

    def __contains__(self, key: ItemId) -> bool:
        return key in self._value_of

    def query(self) -> List[Item]:
        return sorted(
            self._value_of.items(), key=lambda p: p[1], reverse=True
        )

    def take_evicted_keys(self) -> List[ItemId]:
        evicted, self._evicted = self._evicted, []
        return evicted

    @property
    def name(self) -> str:
        return "skiplist"


#: Updatable-reservoir backend names.
UPDATABLE_BACKENDS = ("qmax", "heap", "skiplist")


def make_updatable_reservoir(
    backend: str, q: int, gamma: float = 0.25
) -> UpdatableReservoir:
    """Build an updatable reservoir by backend name."""
    if backend == "qmax":
        return QMaxUpdatableReservoir(q, gamma)
    if backend == "heap":
        return HeapUpdatableReservoir(q)
    if backend == "skiplist":
        return SkipListUpdatableReservoir(q)
    raise ConfigurationError(
        f"unknown backend {backend!r}; expected one of {UPDATABLE_BACKENDS}"
    )
