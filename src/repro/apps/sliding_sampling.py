"""Slack-window priority sampling (§2.1's sliding extension).

The paper notes that its slack-window q-MAX "extend[s] these methods
[Priority Sampling / PBA] to slack windows": sampling the recent
traffic is what load balancers and traffic-engineering loops actually
need.  A priority sample over a window is straightforward with the
block layout of Algorithm 3: per-key priorities are deterministic
(``w/u(key)``), so merging per-block reservoirs yields exactly the
priority sample of the covered suffix.

:class:`SlidingPrioritySampler` keeps one (k+1)-reservoir per block and
answers weighted subset-sum queries over the last ``W'`` items,
``W(1-τ) <= W' <= W``.
"""

from __future__ import annotations

import math
from typing import Callable, List, Tuple

from repro.apps.reservoirs import make_reservoir
from repro.core.interface import QMaxBase
from repro.errors import ConfigurationError
from repro.hashing.uniform import UniformHasher
from repro.types import ItemId, Value


class SlidingPrioritySampler:
    """Priority sample of the last ``~W`` stream items.

    Keys are assumed distinct across the stream (e.g. packet ids — the
    paper's OVS integration samples per packet); a key recurring across
    blocks receives the same uniform and therefore the same priority,
    so the merge keeps one copy.
    """

    def __init__(
        self,
        k: int,
        window: int,
        tau: float,
        backend: str = "qmax-amortized",
        gamma: float = 0.25,
        seed: int = 0,
    ) -> None:
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        if not 0.0 < tau <= 1.0:
            raise ConfigurationError(f"tau must be in (0, 1], got {tau}")
        self.k = k
        self.window = window
        self.tau = tau
        self._n_blocks = max(1, math.ceil(1.0 / tau))
        self._block_size = max(1, math.ceil(window / self._n_blocks))
        make_block: Callable[[], QMaxBase] = lambda: make_reservoir(
            backend, k + 1, gamma
        )
        self._blocks: List[QMaxBase] = [
            make_block() for _ in range(self._n_blocks)
        ]
        self._uniform = UniformHasher(seed)
        self._i = 0
        self.processed = 0

    def update(self, key: ItemId, weight: Value) -> None:
        """Process one (key, weight) observation — O(1)."""
        if weight <= 0:
            raise ConfigurationError(
                f"weights must be positive, got {weight}"
            )
        priority = weight / self._uniform.unit_open(key)
        i = self._i
        self._blocks[i // self._block_size].add((key, weight), priority)
        i += 1
        if i >= self._n_blocks * self._block_size:
            i = 0
        if i % self._block_size == 0:
            self._blocks[i // self._block_size].reset()
        self._i = i
        self.processed += 1

    def sample(self) -> Tuple[List[Tuple[ItemId, Value, float]], float]:
        """Priority sample over the slack window: ``(entries, tau)``.

        ``entries`` holds up to ``k`` tuples ``(key, weight, estimate)``
        and ``tau`` is the (k+1)-st merged priority (0.0 while fewer
        than k+1 windowed keys exist).
        """
        best = {}
        for block in self._blocks:
            for (key, weight), priority in block.query():
                best[(key, weight)] = priority
        merged = sorted(best.items(), key=lambda p: p[1], reverse=True)
        if len(merged) > self.k:
            threshold = merged[self.k][1]
            merged = merged[: self.k]
        else:
            threshold = 0.0
        entries = [
            (key, weight, max(weight, threshold))
            for (key, weight), _priority in merged
        ]
        return entries, threshold

    def estimate_subset_sum(
        self, predicate: Callable[[ItemId], bool]
    ) -> float:
        """Estimated total weight of matching keys in the window."""
        entries, _ = self.sample()
        return sum(est for key, _w, est in entries if predicate(key))

    def estimate_total(self) -> float:
        """Estimated total weight of the window."""
        return self.estimate_subset_sum(lambda _key: True)
