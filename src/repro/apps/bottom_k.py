"""Bottom-k sketches (Cohen & Kaplan, PODC 2007) — §2.2.

A bottom-k sketch of a weighted set assigns each key a *rank* derived
from a per-key uniform and the key's weight and keeps the ``k`` keys
with the smallest ranks plus the (k+1)-st rank as a threshold.  We use
exponential ranks ``r_x = -ln(u_x) / w_x`` (ppswor — probability
proportional to size, without replacement): conditioned on the
threshold ``τ``, key ``x`` is in the sketch with probability
``p_x = 1 - exp(-w_x·τ)``, giving the Horvitz-Thompson subset-sum
estimator ``Σ w_x / p_x`` over sampled keys that match the subset.

Bottom-k sketches are *mergeable* — the union's sketch is computable
from the parts' sketches, which is what lets an SDN controller combine
per-NMP summaries into network-wide statistics.

The per-item work is one hash, one log, one division and a q-MIN
reservoir update — the reservoir again being a pluggable q-MAX backend
(``q = k + 1``).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Sequence, Tuple

from repro.apps.reservoirs import make_reservoir
from repro.core.qmin import QMin
from repro.errors import ConfigurationError
from repro.hashing.uniform import UniformHasher
from repro.types import ItemId, Value


class BottomKSketch:
    """Bottom-k (ppswor) sketch of a weighted key stream.

    Keys are assumed distinct (aggregate beforehand, or see PBA).
    """

    def __init__(
        self,
        k: int,
        backend: str = "qmax",
        gamma: float = 0.25,
        seed: int = 0,
        shards: int = 1,
        shard_mode: str = "auto",
    ) -> None:
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        self.k = k
        self.seed = seed
        if shards > 1:
            # q-MIN over the sharded engine: one backend copy per core,
            # bottom-k merged at query time via negation.
            from repro.parallel.engine import ShardedQMaxEngine

            def _sharded(n: int) -> ShardedQMaxEngine:
                return ShardedQMaxEngine(
                    q=n,
                    n_shards=shards,
                    backend=backend,
                    gamma=gamma,
                    mode=shard_mode,
                )

            self._reservoir = QMin(k + 1, backend=_sharded)
        else:
            self._reservoir = QMin(
                k + 1, backend=lambda n: make_reservoir(backend, n, gamma)
            )
        self._uniform = UniformHasher(seed)
        #: Upper bound on the threshold inherited through merges: ranks
        #: at or above it were unobservable in some merged part.
        self._tau_cap = math.inf
        self.processed = 0

    def rank_of(self, key: ItemId, weight: Value) -> float:
        """The ppswor rank ``-ln(u)/w`` of a (key, weight) pair."""
        return -math.log(self._uniform.unit_open(key)) / weight

    def update(self, key: ItemId, weight: Value) -> None:
        """Process one distinct (key, weight) observation."""
        if weight <= 0:
            raise ConfigurationError(
                f"weights must be positive, got {weight}"
            )
        self._reservoir.add((key, weight), self.rank_of(key, weight))
        self.processed += 1

    def update_many(
        self, keys: Sequence[ItemId], weights: Sequence[Value]
    ) -> None:
        """Process a batch of distinct (key, weight) observations.

        Equivalent to calling :meth:`update` per pair, with ranks
        computed in one pass and a single batched reservoir call.  The
        whole batch is validated up front, so a non-positive weight
        rejects it atomically.
        """
        n = len(keys)
        if n != len(weights):
            raise ConfigurationError(
                f"batch length mismatch: {n} keys vs {len(weights)} weights"
            )
        for weight in weights:
            if weight <= 0:
                raise ConfigurationError(
                    f"weights must be positive, got {weight}"
                )
        unit_open = self._uniform.unit_open
        log = math.log
        self._reservoir.add_many(
            list(zip(keys, weights)),
            [-log(unit_open(keys[i])) / weights[i] for i in range(n)],
        )
        self.processed += n

    def sketch(self) -> Tuple[List[Tuple[ItemId, Value, float]], float]:
        """Current sketch: ``(entries, tau)``.

        ``entries`` holds up to ``k`` tuples ``(key, weight, rank)``
        sorted by ascending rank; ``tau`` is the (k+1)-st smallest rank
        (``inf`` while underfull, meaning inclusion was certain).
        """
        smallest = self._reservoir.query()
        if len(smallest) > self.k:
            tau = min(smallest[self.k][1], self._tau_cap)
            smallest = smallest[: self.k]
        else:
            tau = self._tau_cap
        entries = [
            (key, weight, rank)
            for (key, weight), rank in smallest
            if rank < tau
        ]
        return entries, tau

    def estimate_subset_sum(
        self, predicate: Callable[[ItemId], bool]
    ) -> float:
        """Horvitz-Thompson estimate of the matching keys' total weight."""
        entries, tau = self.sketch()
        total = 0.0
        for key, weight, _rank in entries:
            if not predicate(key):
                continue
            if math.isinf(tau):
                total += weight  # inclusion probability 1
            else:
                p_x = -math.expm1(-weight * tau)
                total += weight / p_x
        return total

    def estimate_subset_count(
        self, predicate: Callable[[ItemId], bool]
    ) -> float:
        """Estimate of *how many* keys match ``predicate``."""
        entries, tau = self.sketch()
        total = 0.0
        for key, weight, _rank in entries:
            if not predicate(key):
                continue
            if math.isinf(tau):
                total += 1.0
            else:
                total += 1.0 / -math.expm1(-weight * tau)
        return total

    def estimate_subset_mean(
        self, predicate: Callable[[ItemId], bool]
    ) -> float:
        """Estimated mean weight of keys matching ``predicate``
        (ratio of the HT sum and HT count estimators)."""
        count = self.estimate_subset_count(predicate)
        if count == 0.0:
            return 0.0
        return self.estimate_subset_sum(predicate) / count

    def estimate_subset_variance(
        self, predicate: Callable[[ItemId], bool]
    ) -> float:
        """Estimated population variance of matching keys' weights.

        Uses HT estimates of the first two moments:
        ``Var = E[w²] − E[w]²`` with each moment estimated as
        ``Σ g(w_x)/p_x`` over the sampled matching keys.
        """
        entries, tau = self.sketch()
        count = sum2 = sumsq = 0.0
        for key, weight, _rank in entries:
            if not predicate(key):
                continue
            if math.isinf(tau):
                inv_p = 1.0
            else:
                inv_p = 1.0 / -math.expm1(-weight * tau)
            count += inv_p
            sum2 += weight * inv_p
            sumsq += weight * weight * inv_p
        if count == 0.0:
            return 0.0
        mean = sum2 / count
        return max(0.0, sumsq / count - mean * mean)

    def estimate_subset_percentile(
        self, predicate: Callable[[ItemId], bool], fraction: float
    ) -> float:
        """Estimated weight percentile of matching keys (e.g. 0.5 for
        the median, 0.99 for tail latency — §2.2's QoS use case).

        Computed as the weighted quantile of the sampled matching
        keys, each carrying its inverse inclusion probability.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError(
                f"fraction must be in [0, 1], got {fraction}"
            )
        entries, tau = self.sketch()
        weighted: List[Tuple[Value, float]] = []
        for key, weight, _rank in entries:
            if not predicate(key):
                continue
            if math.isinf(tau):
                inv_p = 1.0
            else:
                inv_p = 1.0 / -math.expm1(-weight * tau)
            weighted.append((weight, inv_p))
        if not weighted:
            return 0.0
        weighted.sort()
        total = sum(mass for _w, mass in weighted)
        target = fraction * total
        running = 0.0
        for weight, mass in weighted:
            running += mass
            if running >= target:
                return weight
        return weighted[-1][0]

    def merge(self, other: "BottomKSketch") -> "BottomKSketch":
        """Sketch of the union of two disjoint key sets.

        Both sketches must share ``k`` and the rank seed (ranks are a
        function of the key, so the same key observed by two NMPs gets
        the same rank — duplicates collapse naturally).
        """
        if self.k != other.k or self.seed != other.seed:
            raise ConfigurationError(
                "can only merge sketches with identical k and seed"
            )
        merged = BottomKSketch(self.k, seed=self.seed)
        seen: Dict[ItemId, Tuple[Value, float]] = {}
        taus = []
        for sketch in (self, other):
            entries, tau = sketch.sketch()
            taus.append(tau)
            for key, weight, rank in entries:
                # The same key observed by both parts carries the same
                # rank (it is a function of the key), so duplicates
                # collapse to one entry.
                seen.setdefault(key, (weight, rank))
        # Ranks at or above either part's threshold were unobservable,
        # so the merged threshold may not exceed them.
        merged._tau_cap = min(taus)
        for key, (weight, rank) in seen.items():
            merged._reservoir.add((key, weight), rank)
        merged.processed = self.processed + other.processed
        return merged

    def close(self) -> None:
        """Release the reservoir (stops a sharded reservoir's workers;
        a no-op for in-process backends)."""
        close = getattr(self._reservoir.inner, "close", None)
        if close is not None:
            close()

    @property
    def backend_name(self) -> str:
        return self._reservoir.inner.name
