"""Count Distinct via k-minimum-values (Bar-Yossef et al., RANDOM 2002) — §2.3.

Hash every key to a uniform value in ``(0, 1]`` and keep the ``q``
smallest *distinct* hash values; with ``v_q`` the q-th smallest, the
number of distinct keys is estimated by ``(q − 1) / v_q``.

The reservoir of minimal hashes is a q-MIN — i.e. a q-MAX on negated
values — so the paper's constant-time updates apply directly.  Two
details beyond the plain reservoir:

* **Distinctness**: repeats of a key hash identically and must not
  occupy two reservoir slots.  We keep a small set of candidate values;
  because the q-th-minimum threshold is monotone non-increasing, the
  set can be pruned to the live reservoir whenever it grows past a
  multiple of q, preserving O(q) space.
* **Slack windows**: :class:`SlidingCountDistinct` keeps one KMV per
  block (Algorithm 3 layout); a query merges block reservoirs while
  deduplicating values, improving on the prior slack-window scheme's
  query time as claimed in §1.
"""

from __future__ import annotations

import math
from typing import Callable, Hashable, List, Sequence, Set

from repro.apps.reservoirs import make_reservoir
from repro.core.qmin import QMin
from repro.errors import ConfigurationError
from repro.hashing.uniform import UniformHasher


class CountDistinct:
    """KMV distinct counter over an interval.

    Parameters
    ----------
    q:
        Reservoir size; the standard error of the estimate is about
        ``1/√(q−2)``.
    backend / gamma:
        Reservoir backend selection, as everywhere in :mod:`repro.apps`.
    """

    def __init__(
        self,
        q: int,
        backend: str = "qmax",
        gamma: float = 0.25,
        seed: int = 0,
    ) -> None:
        if q < 2:
            raise ConfigurationError(f"q must be >= 2 for KMV, got {q}")
        self.q = q
        self._reservoir = QMin(
            q, backend=lambda n: make_reservoir(backend, n, gamma)
        )
        self._uniform = UniformHasher(seed)
        self._candidates: Set[float] = set()
        self._prune_at = 4 * q
        self.processed = 0

    def update(self, key: Hashable) -> None:
        """Observe one key (the hot path)."""
        value = self._uniform.unit_open(key)
        if value not in self._candidates:
            self._candidates.add(value)
            self._reservoir.add(value, value)
            if len(self._candidates) >= self._prune_at:
                # Safe because the q-th-minimum only decreases: a pruned
                # (evicted) value can never re-enter the reservoir.
                self._candidates = {v for _, v in self._reservoir.items()}
        self.processed += 1

    def update_many(self, keys: Sequence[Hashable]) -> None:
        """Observe a batch of keys, equivalently to per-key ``update``.

        New hash values are buffered and handed to the reservoir in
        batches; the buffer is flushed before every candidate prune so
        the reservoir (and hence the pruned candidate set) matches the
        sequential state exactly at that point.
        """
        unit_open = self._uniform.unit_open
        candidates = self._candidates
        reservoir = self._reservoir
        prune_at = self._prune_at
        pending: List[float] = []
        for key in keys:
            value = unit_open(key)
            if value not in candidates:
                candidates.add(value)
                pending.append(value)
                if len(candidates) >= prune_at:
                    reservoir.add_many(pending, pending)
                    pending = []
                    candidates = {v for _, v in reservoir.items()}
        if pending:
            reservoir.add_many(pending, pending)
        self._candidates = candidates
        self.processed += len(keys)

    def estimate(self) -> float:
        """Estimated number of distinct keys observed."""
        smallest = self._reservoir.query()
        if len(smallest) < self.q:
            return float(len(smallest))  # exact while underfull
        v_q = smallest[-1][1]
        return (self.q - 1) / v_q

    def smallest_values(self) -> List[float]:
        """The q (or fewer) smallest hash values, ascending — the raw
        KMV synopsis, used for merging and intersection estimates."""
        return [value for _id, value in self._reservoir.query()]

    def merge_estimate(self, other: "CountDistinct") -> float:
        """Distinct count of the *union* of two streams.

        Both counters must share the hash seed: a key observed by both
        maps to the same value, so the union's KMV synopsis is the q
        smallest values of the combined synopses (with duplicates
        collapsed) — the mergeability the paper's network-wide setting
        relies on.
        """
        if self.q != other.q:
            raise ConfigurationError("can only merge equal-q counters")
        union = sorted(set(self.smallest_values())
                       | set(other.smallest_values()))
        if len(union) < self.q:
            return float(len(union))
        return (self.q - 1) / union[self.q - 1]

    def intersection_estimate(self, other: "CountDistinct") -> float:
        """Distinct count of the *intersection* of two streams.

        Uses the standard KMV Jaccard estimator: among the q smallest
        union values, the fraction present in both synopses estimates
        the Jaccard similarity; multiplied by the union estimate it
        gives the intersection size.
        """
        if self.q != other.q:
            raise ConfigurationError("can only merge equal-q counters")
        mine = set(self.smallest_values())
        theirs = set(other.smallest_values())
        union = sorted(mine | theirs)[: self.q]
        if not union:
            return 0.0
        in_both = sum(1 for v in union if v in mine and v in theirs)
        jaccard = in_both / len(union)
        return jaccard * self.merge_estimate(other)

    @property
    def backend_name(self) -> str:
        return self._reservoir.inner.name


class SlidingCountDistinct:
    """KMV distinct counting over a ``(W, τ)``-slack window.

    Follows Algorithm 3's layout: one KMV reservoir per ``Wτ``-sized
    block in a cyclic buffer; the oldest block is recycled at each
    boundary.  A query merges the per-block minima (deduplicating hash
    values, since the same key may appear in several blocks) and applies
    the KMV estimator to the union — O(q·τ⁻¹) work, independent of W.
    """

    def __init__(
        self,
        q: int,
        window: int,
        tau: float,
        backend: str = "qmax-amortized",
        gamma: float = 0.25,
        seed: int = 0,
    ) -> None:
        if q < 2:
            raise ConfigurationError(f"q must be >= 2 for KMV, got {q}")
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        if not 0.0 < tau <= 1.0:
            raise ConfigurationError(f"tau must be in (0, 1], got {tau}")
        self.q = q
        self.window = window
        self.tau = tau
        self._n_blocks = max(1, math.ceil(1.0 / tau))
        self._block_size = max(1, math.ceil(window / self._n_blocks))
        make_block: Callable[[], QMin] = lambda: QMin(
            q, backend=lambda n: make_reservoir(backend, n, gamma)
        )
        self._blocks: List[QMin] = [
            make_block() for _ in range(self._n_blocks)
        ]
        # Per-block dedup sets: a duplicate inside one block would waste
        # reservoir slots and could push a true minimum out of that
        # block's top-q, biasing the merged estimate.
        self._seen: List[Set[float]] = [set() for _ in range(self._n_blocks)]
        self._uniform = UniformHasher(seed)
        self._i = 0

    def update(self, key: Hashable) -> None:
        """Observe one key (O(1): touches a single block)."""
        value = self._uniform.unit_open(key)
        i = self._i
        block_index = i // self._block_size
        seen = self._seen[block_index]
        if value not in seen:
            seen.add(value)
            self._blocks[block_index].add(value, value)
            if len(seen) >= 4 * self.q:
                # Monotone threshold per block: safe to prune to live.
                self._seen[block_index] = {
                    v for _, v in self._blocks[block_index].items()
                }
        i += 1
        if i >= self._n_blocks * self._block_size:
            i = 0
        if i % self._block_size == 0:
            self._blocks[i // self._block_size].reset()
            self._seen[i // self._block_size] = set()
        self._i = i

    def update_many(self, keys: Sequence[Hashable]) -> None:
        """Observe a batch of keys, equivalently to per-key ``update``.

        The batch is split at block boundaries; within a block, new
        values are buffered and flushed to the block's reservoir before
        every dedup-set prune, exactly like
        :meth:`CountDistinct.update_many`.
        """
        n = len(keys)
        unit_open = self._uniform.unit_open
        bs = self._block_size
        total = self._n_blocks * bs
        prune_at = 4 * self.q
        i = self._i
        pos = 0
        while pos < n:
            take = bs - i % bs
            if take > n - pos:
                take = n - pos
            block_index = i // bs
            block = self._blocks[block_index]
            seen = self._seen[block_index]
            pending: List[float] = []
            for key in keys[pos : pos + take]:
                value = unit_open(key)
                if value not in seen:
                    seen.add(value)
                    pending.append(value)
                    if len(seen) >= prune_at:
                        block.add_many(pending, pending)
                        pending = []
                        seen = {v for _, v in block.items()}
            if pending:
                block.add_many(pending, pending)
            self._seen[block_index] = seen
            i += take
            pos += take
            if i >= total:
                i = 0
            if i % bs == 0:
                self._blocks[i // bs].reset()
                self._seen[i // bs] = set()
        self._i = i

    def estimate(self) -> float:
        """Distinct keys in the slack window."""
        merged: Set[float] = set()
        for block in self._blocks:
            merged.update(v for _, v in block.query())
        if not merged:
            return 0.0
        smallest = sorted(merged)[: self.q]
        if len(smallest) < self.q:
            return float(len(smallest))
        return (self.q - 1) / smallest[-1]
