"""Measurement applications built on the q-MAX pattern (§2 of the paper).

Each application accepts a pluggable reservoir backend so benchmarks can
swap q-MAX against the Heap/SkipList baselines without touching the
application logic — exactly how the paper's evaluation is constructed.
"""

from repro.apps.reservoirs import (
    BACKENDS,
    make_reservoir,
    make_updatable_reservoir,
)
from repro.apps.priority_sampling import PrioritySampler
from repro.apps.sliding_sampling import SlidingPrioritySampler
from repro.apps.pba import PriorityBasedAggregation
from repro.apps.count_distinct import CountDistinct, SlidingCountDistinct
from repro.apps.bottom_k import BottomKSketch
from repro.apps.univmon import UnivMon
from repro.apps.dbm import DynamicBucketMerge
from repro.apps.superspreader import SuperSpreaderDetector
from repro.apps.lrfu import ClassicLRFU, QMaxLRFU, SkipListLRFU, StdHeapLRFU
from repro.apps.lrfu_deamortized import DeamortizedLRFU

__all__ = [
    "BACKENDS",
    "make_reservoir",
    "make_updatable_reservoir",
    "PrioritySampler",
    "SlidingPrioritySampler",
    "PriorityBasedAggregation",
    "CountDistinct",
    "SlidingCountDistinct",
    "BottomKSketch",
    "UnivMon",
    "DynamicBucketMerge",
    "SuperSpreaderDetector",
    "ClassicLRFU",
    "QMaxLRFU",
    "SkipListLRFU",
    "StdHeapLRFU",
    "DeamortizedLRFU",
]
