"""Dynamic Bucket Merge (Uyeda et al., NSDI 2011) — §2.5.

DBM monitors bandwidth at query-time-chosen granularities: it keeps at
most ``m`` time buckets, each accumulating the bytes of a span of the
measurement period.  When a new bucket would exceed the budget, the
*pair of adjacent buckets whose merge loses the least information* is
merged.  Finding that pair is a running-minimum problem over pair
costs — the q-MAX pattern with ``q = 1`` over a changing set, which the
paper accelerates by replacing the heap of pair costs.

We implement the bucket list with a doubly linked list and two
interchangeable minimum trackers:

* ``backend="heap"`` — an :class:`~repro.baselines.heap.IndexedHeap`
  with O(log m) update-key (the classic implementation), and
* ``backend="qmax"`` — a q-MIN reservoir with *lazy invalidation*:
  stale pair costs are skipped at extraction (each pair cost enters the
  structure once, so total work stays linear amortized).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.heap import IndexedHeap
from repro.core.amortized import AmortizedQMax
from repro.core.qmin import QMin
from repro.errors import ConfigurationError


class _Bucket:
    """One time bucket: [start, end) with accumulated byte count."""

    __slots__ = ("start", "end", "bytes", "prev", "next", "alive")

    def __init__(self, start: float, end: float, nbytes: float) -> None:
        self.start = start
        self.end = end
        self.bytes = nbytes
        self.prev: Optional["_Bucket"] = None
        self.next: Optional["_Bucket"] = None
        self.alive = True


def _merge_cost(a: _Bucket, b: _Bucket) -> float:
    """Information lost by merging two adjacent buckets.

    Following DBM, the cost is the merged bucket's byte count (merging
    two small buckets loses little resolution; merging heavy ones
    smears a lot of traffic across a wider span).
    """
    return a.bytes + b.bytes


class DynamicBucketMerge:
    """Bandwidth monitor with ``m`` mergeable time buckets.

    Parameters
    ----------
    m:
        Memory budget: max number of buckets (controls query error).
    bucket_seconds:
        Span of each freshly opened bucket.
    backend:
        ``"heap"`` (indexed heap) or ``"qmax"`` (lazy q-MIN) for the
        minimum-cost pair tracker.
    """

    def __init__(
        self,
        m: int,
        bucket_seconds: float = 1.0,
        backend: str = "qmax",
    ) -> None:
        if m < 2:
            raise ConfigurationError(f"m must be >= 2, got {m}")
        if bucket_seconds <= 0:
            raise ConfigurationError("bucket_seconds must be positive")
        if backend not in ("heap", "qmax"):
            raise ConfigurationError(f"unknown backend {backend!r}")
        self.m = m
        self.bucket_seconds = bucket_seconds
        self.backend = backend
        self._head: Optional[_Bucket] = None
        self._tail: Optional[_Bucket] = None
        self._count = 0
        self._pair_seq = itertools.count()
        self._pair_of: Dict[int, Tuple[_Bucket, _Bucket]] = {}
        self._pair_id: Dict[Tuple[int, int], int] = {}
        if backend == "heap":
            self._heap = IndexedHeap()
        else:
            # Lazy tracker: the reservoir holds (pair_id, cost) entries;
            # entries whose pair_id is no longer in _pair_of are stale
            # (superseded cost, or a merged-away bucket) and are skipped
            # at extraction time.
            self._qmin = QMin(
                m, backend=lambda n: AmortizedQMax(n, gamma=0.5)
            )
        self.merges = 0

    # ------------------------------------------------------------------
    # Pair-cost tracking.
    # ------------------------------------------------------------------

    def _pair_key(self, left: _Bucket) -> Tuple[int, int]:
        return (id(left), id(left.next))

    def _register_pair(self, left: _Bucket) -> None:
        if left is None or left.next is None:
            return
        cost = _merge_cost(left, left.next)
        pair_id = next(self._pair_seq)
        key = self._pair_key(left)
        old = self._pair_id.pop(key, None)
        if old is not None:
            # Supersede the previous cost entry for this adjacency.
            self._pair_of.pop(old, None)
            if self.backend == "heap" and old in self._heap:
                self._heap.remove(old)
        self._pair_of[pair_id] = (left, left.next)
        self._pair_id[key] = pair_id
        if self.backend == "heap":
            self._heap.push(pair_id, cost)
        else:
            self._qmin.add(pair_id, cost)

    def _unregister_pair(self, left: _Bucket) -> None:
        if left is None or left.next is None:
            return
        key = self._pair_key(left)
        pair_id = self._pair_id.pop(key, None)
        if pair_id is None:
            return
        self._pair_of.pop(pair_id, None)
        if self.backend == "heap" and pair_id in self._heap:
            self._heap.remove(pair_id)

    def _pop_min_pair(self) -> Tuple[_Bucket, _Bucket]:
        if self.backend == "heap":
            pair_id, _cost = self._heap.pop_min()
            left, right = self._pair_of.pop(pair_id)
            del self._pair_id[self._pair_key(left)]
            return left, right
        # Lazy q-MIN: pop candidates until a live, still-adjacent pair.
        while True:
            candidates = self._qmin.query()
            for pair_id, _cost in candidates:
                pair = self._pair_of.get(pair_id)
                if pair is None:
                    continue
                left, right = pair
                if left.alive and right.alive and left.next is right:
                    # Consume this entry; a surviving adjacency will be
                    # re-registered by the merge.
                    del self._pair_of[pair_id]
                    self._pair_id.pop(self._pair_key(left), None)
                    return left, right
                del self._pair_of[pair_id]  # stale entry
            # All reservoir candidates were stale: rebuild from scratch.
            self._qmin.reset()
            self._pair_id.clear()
            self._pair_of.clear()
            node = self._head
            while node is not None and node.next is not None:
                self._register_pair(node)
                node = node.next

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------

    def add(self, timestamp: float, nbytes: float) -> None:
        """Account ``nbytes`` at ``timestamp`` (must be non-decreasing)."""
        tail = self._tail
        if tail is not None and timestamp < tail.end:
            tail.bytes += nbytes
            # The tail participates in one pair whose cost changed.
            if tail.prev is not None:
                if self.backend == "heap":
                    self._unregister_pair(tail.prev)
                self._register_pair(tail.prev)
            return
        start = (
            timestamp // self.bucket_seconds
        ) * self.bucket_seconds
        bucket = _Bucket(start, start + self.bucket_seconds, nbytes)
        if tail is None:
            self._head = self._tail = bucket
        else:
            tail.next = bucket
            bucket.prev = tail
            self._tail = bucket
            self._register_pair(tail)
        self._count += 1
        if self._count > self.m:
            self._merge_min_pair()

    def add_many(
        self, timestamps: Sequence[float], byte_counts: Sequence[float]
    ) -> None:
        """Account a batch of (timestamp, bytes) records.

        Runs of consecutive records landing in the open tail bucket —
        the common case for packet-rate streams — are accumulated with
        one pair-cost refresh instead of one per record.  Bucket state
        after the batch is identical to repeated :meth:`add`.
        """
        n = len(timestamps)
        if n != len(byte_counts):
            raise ConfigurationError(
                f"batch length mismatch: {n} timestamps vs "
                f"{len(byte_counts)} byte counts"
            )
        i = 0
        while i < n:
            tail = self._tail
            if tail is None or timestamps[i] >= tail.end:
                self.add(timestamps[i], byte_counts[i])
                i += 1
                continue
            # No merge can trigger inside this run (the bucket count is
            # unchanged), so the tail stays fixed until it ends.
            end = tail.end
            while i < n and timestamps[i] < end:
                tail.bytes += byte_counts[i]
                i += 1
            if tail.prev is not None:
                if self.backend == "heap":
                    self._unregister_pair(tail.prev)
                self._register_pair(tail.prev)

    def _merge_min_pair(self) -> None:
        left, right = self._pop_min_pair()
        # Neighbouring pairs disappear with the merge.
        if left.prev is not None:
            self._unregister_pair(left.prev)
        self._unregister_pair(right)
        left.end = right.end
        left.bytes += right.bytes
        left.next = right.next
        if right.next is not None:
            right.next.prev = left
        else:
            self._tail = left
        right.alive = False
        self._count -= 1
        self.merges += 1
        if left.prev is not None:
            self._register_pair(left.prev)
        if left.next is not None:
            self._register_pair(left)

    def buckets(self) -> List[Tuple[float, float, float]]:
        """Current buckets as (start, end, bytes), oldest first."""
        result = []
        node = self._head
        while node is not None:
            result.append((node.start, node.end, node.bytes))
            node = node.next
        return result

    def bandwidth(self, t1: float, t2: float) -> float:
        """Bytes in ``[t1, t2)``, prorating partially covered buckets."""
        if t2 <= t1:
            raise ConfigurationError("need t2 > t1")
        total = 0.0
        for start, end, nbytes in self.buckets():
            overlap = min(end, t2) - max(start, t1)
            if overlap > 0:
                total += nbytes * overlap / (end - start)
        return total

    def busiest_interval(
        self, span: float
    ) -> Tuple[float, float, float]:
        """The ``span``-second interval with the most traffic.

        This is DBM's raison d'être: the granularity is chosen at
        *query* time.  Slides a ``span`` window across the bucket
        boundaries (an optimum always aligns with one) and returns
        ``(start, end, bytes)``.
        """
        if span <= 0:
            raise ConfigurationError("span must be positive")
        buckets = self.buckets()
        if not buckets:
            return (0.0, span, 0.0)
        candidates = {start for start, _e, _b in buckets}
        candidates.update(end - span for _s, end, _b in buckets)
        first = buckets[0][0]
        best = (first, first + span, -1.0)
        for start in candidates:
            if start < first - span:
                continue
            volume = self.bandwidth(start, start + span)
            if volume > best[2]:
                best = (start, start + span, volume)
        return best

    def rate_timeseries(
        self, resolution: float
    ) -> List[Tuple[float, float]]:
        """Traffic volume per ``resolution``-second tick, from the
        merged buckets (query-time granularity, prorated)."""
        if resolution <= 0:
            raise ConfigurationError("resolution must be positive")
        buckets = self.buckets()
        if not buckets:
            return []
        start = buckets[0][0]
        end = buckets[-1][1]
        series = []
        tick = start
        while tick < end:
            series.append(
                (tick, self.bandwidth(tick, tick + resolution))
            )
            tick += resolution
        return series

    @property
    def n_buckets(self) -> int:
        return self._count
