"""Universal Monitoring sketch (Liu et al., SIGCOMM 2016) — §2.4.

UnivMon answers a whole family of metrics from one structure.  It keeps
``L`` levels; level ``ℓ`` sees the substream of keys whose sampling
hash has ``ℓ`` trailing one-bits (so each level halves the expected
substream).  Every level holds a Count Sketch plus a top-``q`` heavy-
hitter tracker keyed by the sketch's running frequency estimate.  A
G-sum ``Σ g(f_x)`` is estimated by the recursive unbiased estimator

    Y_L = Σ_{HH at level L} g(ŵ)
    Y_ℓ = 2·Y_{ℓ+1} + Σ_{HH at level ℓ} g(ŵ)·(1 − 2·[x sampled at ℓ+1])

The heavy-hitter tracker is exactly the q-MAX pattern *with value
updates* (an item's estimate changes every time it recurs), so the
backend is a :class:`repro.apps.reservoirs.UpdatableReservoir` — the
paper removes the tracker's logarithmic heap cost with q-MAX.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Hashable, List

from repro.apps.reservoirs import make_updatable_reservoir
from repro.errors import ConfigurationError
from repro.hashing.mix import key_to_u64, mix64
from repro.sketches.count_sketch import CountSketch


class UnivMon:
    """Universal sketch with pluggable heavy-hitter reservoirs.

    Parameters
    ----------
    levels:
        Number of substream levels ``L`` (≈ log2 of the expected number
        of distinct keys for full generality).
    q:
        Heavy hitters tracked per level.
    width / depth:
        Count Sketch dimensions per level.
    backend:
        Heavy-hitter reservoir backend (``qmax``/``heap``/``skiplist``).
    """

    def __init__(
        self,
        levels: int = 8,
        q: int = 64,
        width: int = 1024,
        depth: int = 5,
        backend: str = "qmax",
        gamma: float = 0.25,
        seed: int = 0,
    ) -> None:
        if levels < 1:
            raise ConfigurationError(f"levels must be >= 1, got {levels}")
        if q < 1:
            raise ConfigurationError(f"q must be >= 1, got {q}")
        self.levels = levels
        self.q = q
        self._sketches = [
            CountSketch(width, depth, seed=seed * 131 + lvl)
            for lvl in range(levels)
        ]
        self._trackers = [
            make_updatable_reservoir(backend, q, gamma)
            for _ in range(levels)
        ]
        self._sample_seed = mix64(seed ^ 0x5A17)
        self.total = 0

    def _level_of(self, key: Hashable) -> int:
        """Deepest level the key belongs to (trailing ones of its hash).

        Level 0 contains every key; level ℓ those with ℓ trailing ones.
        """
        h = key_to_u64(key, self._sample_seed)
        # Count trailing ones, capped at levels-1.
        trailing = (~h & (h + 1)).bit_length() - 1
        return min(trailing, self.levels - 1)

    def update(self, key: Hashable, count: int = 1) -> None:
        """Process one key occurrence (the hot path)."""
        deepest = self._level_of(key)
        for lvl in range(deepest + 1):
            sketch = self._sketches[lvl]
            sketch.update(key, count)
            estimate = sketch.estimate(key)
            if estimate > 0:
                self._trackers[lvl].set_value(key, float(estimate))
        self.total += count

    def heavy_hitters(self, level: int = 0) -> List:
        """The tracked heavy hitters of a level: (key, estimate)."""
        return self._trackers[level].query()

    def estimate_gsum(self, g: Callable[[float], float]) -> float:
        """Unbiased recursive estimate of ``Σ_x g(f_x)``."""
        estimate = 0.0
        for lvl in range(self.levels - 1, -1, -1):
            level_sum = 0.0
            for key, est in self._trackers[lvl].query():
                sampled_deeper = self._level_of(key) > lvl
                indicator = 1.0 - 2.0 * (1.0 if sampled_deeper else 0.0)
                level_sum += g(est) * indicator
            if lvl == self.levels - 1:
                estimate = sum(
                    g(est) for _k, est in self._trackers[lvl].query()
                )
            else:
                estimate = 2.0 * estimate + level_sum
        return estimate

    def estimate_f2(self) -> float:
        """Second frequency moment ``Σ f_x²``."""
        return self.estimate_gsum(lambda x: x * x)

    def estimate_distinct(self) -> float:
        """Number of distinct keys (``g(x) = 1`` for ``x > 0``)."""
        return self.estimate_gsum(lambda x: 1.0 if x > 0 else 0.0)

    def estimate_entropy(self) -> float:
        """Empirical Shannon entropy of the frequency distribution."""
        if self.total == 0:
            return 0.0
        n = float(self.total)
        gsum = self.estimate_gsum(
            lambda x: x * math.log2(x) if x > 0 else 0.0
        )
        return max(0.0, math.log2(n) - gsum / n)

    @property
    def backend_name(self) -> str:
        return self._trackers[0].name
