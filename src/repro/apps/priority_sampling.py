"""Priority Sampling (Duffield, Lund & Thorup, J.ACM 2007) — §2.1.

Each distinct key ``x`` with weight ``w_x`` receives the priority
``w_x / u_x`` where ``u_x`` is a per-key uniform in ``(0, 1]``.  A
priority sample of size ``k`` consists of the ``k`` keys with the
largest priorities together with the threshold ``τ`` — the (k+1)-st
largest priority.  The subset-sum estimator assigns each sampled key
the weight estimate ``max(w_x, τ)``; it is unbiased, and priority
sampling's variance is (essentially) optimal among all weighted
sampling schemes.

The hot path is one uniform-hash evaluation, one division, and one
reservoir update — the reservoir being whichever q-MAX backend the
caller selects (``q = k + 1``).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.apps.reservoirs import make_reservoir
from repro.core.interface import QMaxBase
from repro.errors import ConfigurationError
from repro.hashing.uniform import UniformHasher
from repro.types import ItemId, Value


class PrioritySampler:
    """Maintains a k-item priority sample of a weighted key stream.

    Parameters
    ----------
    k:
        Sample size.
    backend:
        Reservoir backend name (see :data:`repro.apps.reservoirs.BACKENDS`).
    gamma:
        Space/time parameter forwarded to q-MAX backends.
    seed:
        Seed of the per-key uniform hash (keys are deterministic:
        re-processing a stream reproduces the sample exactly).
    shards:
        When > 1, the reservoir is a
        :class:`~repro.parallel.engine.ShardedQMaxEngine` over
        ``shards`` copies of the chosen backend — one measurement
        instance per core, merged at query time.
    shard_mode:
        Forwarded to the engine (``auto``/``process``/``inline``).

    Notes
    -----
    Keys are assumed *distinct* as in the original algorithm; feed
    repeated keys to :class:`repro.apps.pba.PriorityBasedAggregation`
    instead.
    """

    def __init__(
        self,
        k: int,
        backend: str = "qmax",
        gamma: float = 0.25,
        seed: int = 0,
        shards: int = 1,
        shard_mode: str = "auto",
    ) -> None:
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        self.k = k
        # Reservoir keeps k+1 items: the extra one is the threshold.
        if shards > 1:
            from repro.parallel.engine import ShardedQMaxEngine

            self._reservoir: QMaxBase = ShardedQMaxEngine(
                q=k + 1,
                n_shards=shards,
                backend=backend,
                gamma=gamma,
                mode=shard_mode,
            )
        else:
            self._reservoir = make_reservoir(backend, k + 1, gamma)
        self._uniform = UniformHasher(seed)
        self.processed = 0

    def update(self, key: ItemId, weight: Value) -> None:
        """Process one (key, weight) observation (the hot path)."""
        if weight <= 0:
            raise ConfigurationError(
                f"weights must be positive, got {weight}"
            )
        priority = weight / self._uniform.unit_open(key)
        # Store the weight alongside the key: the estimator needs it and
        # the reservoir is the only state we keep.
        self._reservoir.add((key, weight), priority)
        self.processed += 1

    def update_many(
        self, keys: Sequence[ItemId], weights: Sequence[Value]
    ) -> None:
        """Process a batch of (key, weight) observations.

        Equivalent to calling :meth:`update` per pair, but hashes in a
        tight loop and makes one batched reservoir call.  The whole
        batch is validated up front, so a non-positive weight rejects
        it atomically.
        """
        n = len(keys)
        if n != len(weights):
            raise ConfigurationError(
                f"batch length mismatch: {n} keys vs {len(weights)} weights"
            )
        for weight in weights:
            if weight <= 0:
                raise ConfigurationError(
                    f"weights must be positive, got {weight}"
                )
        unit_open = self._uniform.unit_open
        self._reservoir.add_many(
            list(zip(keys, weights)),
            [weights[i] / unit_open(keys[i]) for i in range(n)],
        )
        self.processed += n

    def sample(self) -> Tuple[List[Tuple[ItemId, Value, float]], float]:
        """The current sample and threshold.

        Returns ``(entries, tau)`` where ``entries`` is a list of
        ``(key, true_weight, weight_estimate)`` for up to ``k`` keys and
        ``tau`` is the (k+1)-st priority (0.0 while underfull).
        """
        top = self._reservoir.query()
        if len(top) > self.k:
            tau = top[self.k][1]
            top = top[: self.k]
        else:
            tau = 0.0
        entries = [
            (key, weight, max(weight, tau)) for (key, weight), _ in top
        ]
        return entries, tau

    def estimate_subset_sum(
        self, predicate: Callable[[ItemId], bool]
    ) -> float:
        """Unbiased estimate of the total weight of keys satisfying
        ``predicate`` (the core priority-sampling query)."""
        entries, _tau = self.sample()
        return sum(est for key, _w, est in entries if predicate(key))

    def estimate_total(self) -> float:
        """Estimate of the total weight of the whole stream."""
        return self.estimate_subset_sum(lambda _key: True)

    def close(self) -> None:
        """Release the reservoir (stops a sharded reservoir's workers;
        a no-op for in-process backends)."""
        close = getattr(self._reservoir, "close", None)
        if close is not None:
            close()

    @property
    def backend_name(self) -> str:
        return self._reservoir.name
