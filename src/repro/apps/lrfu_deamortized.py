"""Worst-case constant-time LRFU (the paper's Figure 3).

:class:`~repro.apps.lrfu.QMaxLRFU` achieves constant *amortized* time;
§5.1 additionally sketches a deamortized iteration so that no single
request pays a maintenance burst.  This module implements that
worst-case-constant variant.

Design (a faithful refinement of Figure 3):

* The array holds ``N = q + 2g`` entry slots (``g = ⌊qγ/2⌋``) in three
  logical regions that rotate like Algorithm 1's: a *stable* region S1
  of ``q + g`` entries, and an append region S2 of ``g`` slots.
* The authoritative score of a key lives in a dict (log-domain,
  combined with log-sum-exp).  Every request appends an *entry*
  ``(key, current_total_score)`` to S2 — a snapshot.  Because scores
  only grow, a key's freshest snapshot always equals its true score,
  so the top-q entry values are the top-q key scores (the same
  insight §5.1 uses to keep Large/New immutable during the Select).
* Each iteration spans ``g`` requests.  During the first half a
  resumable Select finds the q-th largest entry value of S1 and a
  resumable pivot moves the top-q entries next to S2 (paper's part 1).
  During the second half, each request also scans up to two entries of
  the demoted region (Small'): an entry whose key has fresher snapshots
  elsewhere is silently freed (the paper's duplicate merge — here the
  merge already happened in the dict); an entry that is its key's
  *only* snapshot means the key is not among the top q, so the key is
  evicted (paper's part 2/3).
* At the boundary the regions rotate and a new iteration begins.

Worst-case work per request: one dict update, one append, one Select or
pivot micro-step of ``O(1/γ)`` operations, and at most two scan steps —
a constant for fixed γ.

Deviation note: stale snapshots of hot keys occupy array slots until
they drift into Small' and are freed, so the number of *distinct*
cached keys floats below ``q(1+γ)`` (and can transiently dip below
``q`` under heavy re-referencing).  The hit-ratio impact is measured in
the test suite and is within a point of the exact implementations on
realistic traces.
"""

from __future__ import annotations

import math
from typing import Dict, Generator, Hashable, List, Optional

from repro.apps.lrfu import _LRFUBase, _log_sum_exp
from repro.core.select import stepwise_partition_top, stepwise_select
from repro.errors import ConfigurationError

#: Sentinel for dead array slots.
_DEAD = object()

#: Budget factors, as in repro.core.qmax.
_SELECT_BUDGET_FACTOR = 3
_PIVOT_BUDGET_FACTOR = 2


class DeamortizedLRFU(_LRFUBase):
    """LRFU cache with worst-case O(1/γ) work per request."""

    def __init__(
        self, capacity: int, decay: float = 0.75, gamma: float = 0.25
    ) -> None:
        super().__init__(capacity, decay)
        if gamma <= 0:
            raise ConfigurationError(f"gamma must be > 0, got {gamma}")
        self.gamma = gamma
        self._g = max(2, int(capacity * gamma / 2))
        self._n = capacity + 2 * self._g
        neg_inf = float("-inf")
        self._vals: List[float] = [neg_inf] * self._n
        self._keys: List[Hashable] = [_DEAD] * self._n
        #: Authoritative log-domain score per cached key.
        self._score: Dict[Hashable, float] = {}
        #: Live snapshot count per cached key.
        self._refcount: Dict[Hashable, int] = {}
        self._orient_left = True
        self._steps = 0
        self._scan_pos = 0
        self._maint: Optional[Generator[int, None, None]] = None
        self._start_iteration()
        self.evictions = 0

    # ------------------------------------------------------------------
    # Region geometry (mirrors repro.core.qmax.QMax).
    # ------------------------------------------------------------------

    def _s1_bounds(self):
        if self._orient_left:
            return 0, self.capacity + self._g
        return self._g, self._n

    def _s2_base(self) -> int:
        return self.capacity + self._g if self._orient_left else 0

    def _small_bounds(self):
        """The demoted region after the pivot (this iteration's Small')."""
        if self._orient_left:
            return 0, self._g
        return self.capacity + self._g, self._n

    def _start_iteration(self) -> None:
        self._steps = 0
        self._scan_pos = self._small_bounds()[0]
        self._maint = self._maintenance_gen()

    def _maintenance_gen(self) -> Generator[int, None, None]:
        """Select + pivot over S1, budgeted to finish by mid-iteration."""
        lo, hi = self._s1_bounds()
        size = hi - lo
        drives = max(1, self._g // 2)
        sel_ops = -(-_SELECT_BUDGET_FACTOR * size // max(1, drives // 2))
        piv_ops = -(-_PIVOT_BUDGET_FACTOR * size // max(1, drives // 2))
        side = "right" if self._orient_left else "left"
        threshold = yield from stepwise_select(
            self._vals, self._keys, lo, hi, size - self.capacity, sel_ops
        )
        yield from stepwise_partition_top(
            self._vals, self._keys, lo, hi, threshold, side, piv_ops
        )

    # ------------------------------------------------------------------
    # The request path.
    # ------------------------------------------------------------------

    def access(self, key: Hashable) -> bool:
        """Process one request in worst-case O(1/γ); True on a hit."""
        contribution = self._access_log_weight()
        self._t += 1
        old = self._score.get(key)
        if old is None:
            self.misses += 1
            total = contribution
            self._refcount[key] = 1
        else:
            self.hits += 1
            total = _log_sum_exp(old, contribution)
            self._refcount[key] += 1
        self._score[key] = total

        pos = self._s2_base() + self._steps
        self._drop_snapshot(pos)  # the slot may hold a stale snapshot
        self._vals[pos] = total
        self._keys[pos] = key
        self._steps += 1

        self._advance_maintenance()
        return old is not None

    def _drop_snapshot(self, pos: int) -> None:
        """Free one array slot, evicting its key if it was the last
        snapshot (the slot is provably not among the top q)."""
        key = self._keys[pos]
        if key is _DEAD:
            return
        remaining = self._refcount[key] - 1
        if remaining:
            self._refcount[key] = remaining
        else:
            del self._refcount[key]
            del self._score[key]
            self.evictions += 1
        self._keys[pos] = _DEAD
        self._vals[pos] = float("-inf")

    def _advance_maintenance(self) -> None:
        maint = self._maint
        if maint is not None:
            try:
                next(maint)
            except StopIteration:
                self._maint = None
        if self._steps > self._g // 2:
            # Part 2: scan up to two demoted entries per request.
            self._scan(2)
        if self._steps >= self._g:
            self._finish_iteration()

    def _scan(self, budget: int) -> None:
        _, hi = self._small_bounds()
        pos = self._scan_pos
        while budget and pos < hi:
            if self._maint is None:  # only once the pivot has settled
                self._drop_snapshot(pos)
                pos += 1
            budget -= 1
        self._scan_pos = pos

    def _finish_iteration(self) -> None:
        maint = self._maint
        if maint is not None:  # force-finish a lagging select/pivot
            for _ in maint:
                pass
            self._maint = None
        lo, hi = self._small_bounds()
        for pos in range(max(self._scan_pos, lo), hi):
            self._drop_snapshot(pos)
        self._orient_left = not self._orient_left
        self._start_iteration()

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    def __contains__(self, key: Hashable) -> bool:
        return key in self._score

    def __len__(self) -> int:
        """Number of distinct cached keys."""
        return len(self._score)

    @property
    def name(self) -> str:
        return f"lrfu-qmax-deamortized(gamma={self.gamma:g})"

    def check_invariants(self) -> None:
        """Refcounts must equal live snapshot counts, scores finite."""
        from repro.errors import InvariantError

        counts: Dict[Hashable, int] = {}
        for key in self._keys:
            if key is not _DEAD:
                counts[key] = counts.get(key, 0) + 1
        if counts != self._refcount:
            raise InvariantError("refcount map out of sync with slots")
        if set(counts) != set(self._score):
            raise InvariantError("score map out of sync with slots")
        for key, score in self._score.items():
            if not math.isfinite(score):
                raise InvariantError(f"non-finite score for {key!r}")
