"""LRFU caching (Lee et al., IEEE ToC 2001) — §2.7 and §5.1.

LRFU scores every cached item by a Combined Recency and Frequency value
``CRF_x(t) = Σ_{accesses i of x} c^(t-i)`` for an aging parameter
``c ∈ (0, 1)``; the minimal-score item is evicted.  Because all scores
decay by the *same* factor per tick, their relative order between
accesses never changes — so, as in §5, we store scores in the time-free
log domain: an access at tick ``t`` contributes ``t·|log c|`` to the
key's log-score, and scores combine with log-sum-exp.

Three interchangeable implementations drive Figure 9 and Table 2:

* :class:`QMaxLRFU` — the paper's contribution: a
  :class:`~repro.core.merging.MergingQMax` holding between ``q`` and
  ``q(1+γ)`` entries, constant amortized time per request.
* :class:`ClassicLRFU` — an indexed min-heap with O(log q) sift on
  every hit (the textbook implementation).
* :class:`StdHeapLRFU` — a heap without sift support: a hit rewrites
  the score in place and re-heapifies in O(q), matching the paper's
  observation about the standard-library heap baseline.
* :class:`SkipListLRFU` — remove + reinsert in O(log q).
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Optional, Tuple

from repro.baselines.heap import IndexedHeap
from repro.baselines.skiplist import SkipList
from repro.core.merging import MergingQMax
from repro.errors import ConfigurationError


def _log_sum_exp(w1: float, w2: float) -> float:
    """log(e^w1 + e^w2) without overflow."""
    if w1 < w2:
        w1, w2 = w2, w1
    return w1 + math.log1p(math.exp(w2 - w1))


class _LRFUBase:
    """Shared bookkeeping: the decay clock and hit/miss accounting."""

    def __init__(self, capacity: int, decay: float) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"capacity must be >= 1, got {capacity}"
            )
        if not 0.0 < decay < 1.0:
            raise ConfigurationError(
                f"decay must be in (0, 1), got {decay}"
            )
        self.capacity = capacity
        self.decay = decay
        self._tick_weight = -math.log(decay)  # |log c| > 0
        self._t = 0
        self.hits = 0
        self.misses = 0

    def _access_log_weight(self) -> float:
        """Log-domain contribution of an access at the current tick."""
        return self._t * self._tick_weight

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def requests(self) -> int:
        return self.hits + self.misses


class ClassicLRFU(_LRFUBase):
    """Textbook LRFU: dict + indexed min-heap, O(log q) per request."""

    def __init__(self, capacity: int, decay: float = 0.75) -> None:
        super().__init__(capacity, decay)
        self._heap = IndexedHeap()

    def access(self, key: Hashable) -> bool:
        """Process one request; returns True on a cache hit."""
        contribution = self._access_log_weight()
        self._t += 1
        if key in self._heap:
            self.hits += 1
            new_score = _log_sum_exp(self._heap.value_of(key), contribution)
            self._heap.update(key, new_score)
            return True
        self.misses += 1
        if len(self._heap) >= self.capacity:
            self._heap.pop_min()
        self._heap.push(key, contribution)
        return False

    def __contains__(self, key: Hashable) -> bool:
        return key in self._heap

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def name(self) -> str:
        return "lrfu-indexedheap"


class StdHeapLRFU(_LRFUBase):
    """The paper's Heap baseline: no sift, hits cost O(q) re-heapify."""

    def __init__(self, capacity: int, decay: float = 0.75) -> None:
        super().__init__(capacity, decay)
        self._scores: List[float] = []
        self._keys: List[Hashable] = []
        self._index: Dict[Hashable, int] = {}

    def access(self, key: Hashable) -> bool:
        contribution = self._access_log_weight()
        self._t += 1
        idx = self._index.get(key)
        if idx is not None:
            self.hits += 1
            self._scores[idx] = _log_sum_exp(
                self._scores[idx], contribution
            )
            self._heapify()  # O(q): the standard heap has no sift
            return True
        self.misses += 1
        if len(self._scores) >= self.capacity:
            evicted = self._keys[0]
            del self._index[evicted]
            last_s, last_k = self._scores.pop(), self._keys.pop()
            if self._scores:
                self._scores[0] = last_s
                self._keys[0] = last_k
                self._index[last_k] = 0
                self._sift_down(0)
        self._scores.append(contribution)
        self._keys.append(key)
        self._index[key] = len(self._scores) - 1
        self._sift_up(len(self._scores) - 1)
        return False

    def _heapify(self) -> None:
        for i in range(len(self._scores) // 2 - 1, -1, -1):
            self._sift_down(i)

    def _sift_up(self, i: int) -> None:
        scores, keys, index = self._scores, self._keys, self._index
        s, k = scores[i], keys[i]
        while i > 0:
            parent = (i - 1) >> 1
            if scores[parent] <= s:
                break
            scores[i], keys[i] = scores[parent], keys[parent]
            index[keys[i]] = i
            i = parent
        scores[i], keys[i] = s, k
        index[k] = i

    def _sift_down(self, i: int) -> None:
        scores, keys, index = self._scores, self._keys, self._index
        n = len(scores)
        s, k = scores[i], keys[i]
        while True:
            child = 2 * i + 1
            if child >= n:
                break
            right = child + 1
            if right < n and scores[right] < scores[child]:
                child = right
            if scores[child] >= s:
                break
            scores[i], keys[i] = scores[child], keys[child]
            index[keys[i]] = i
            i = child
        scores[i], keys[i] = s, k
        index[k] = i

    def __contains__(self, key: Hashable) -> bool:
        return key in self._index

    def __len__(self) -> int:
        return len(self._scores)

    @property
    def name(self) -> str:
        return "lrfu-stdheap"


class SkipListLRFU(_LRFUBase):
    """Skip-list LRFU: hits remove + reinsert the node, O(log q)."""

    def __init__(self, capacity: int, decay: float = 0.75) -> None:
        super().__init__(capacity, decay)
        self._list = SkipList()
        self._score_of: Dict[Hashable, float] = {}

    def access(self, key: Hashable) -> bool:
        contribution = self._access_log_weight()
        self._t += 1
        old = self._score_of.get(key)
        if old is not None:
            self.hits += 1
            new_score = _log_sum_exp(old, contribution)
            self._list.remove(old, key)
            self._list.insert(new_score, key)
            self._score_of[key] = new_score
            return True
        self.misses += 1
        if len(self._list) >= self.capacity:
            evicted_key, _ = self._list.pop_min()
            del self._score_of[evicted_key]
        self._list.insert(contribution, key)
        self._score_of[key] = contribution
        return False

    def __contains__(self, key: Hashable) -> bool:
        return key in self._score_of

    def __len__(self) -> int:
        return len(self._list)

    @property
    def name(self) -> str:
        return "lrfu-skiplist"


class QMaxLRFU(_LRFUBase):
    """Constant-time LRFU via the §5.1 duplicate-merging q-MAX.

    Every request simply appends a (key, log-contribution) entry; the
    periodic maintenance merges a key's entries with log-sum-exp and
    evicts the lowest-scored keys.  The cache population floats between
    ``q`` and ``q(1+γ)`` — as the paper notes, negligible for small γ,
    and the top-q guarantee matches a q-sized LRFU.
    """

    def __init__(
        self, capacity: int, decay: float = 0.75, gamma: float = 0.25
    ) -> None:
        super().__init__(capacity, decay)
        self.gamma = gamma
        self._store = MergingQMax(
            capacity, gamma, merge=_log_sum_exp, track_evictions=False
        )

    def access(self, key: Hashable) -> bool:
        contribution = self._access_log_weight()
        self._t += 1
        hit = key in self._store
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        self._store.add(key, contribution)
        return hit

    def __contains__(self, key: Hashable) -> bool:
        return key in self._store

    def __len__(self) -> int:
        return len(self._store)

    @property
    def name(self) -> str:
        return f"lrfu-qmax(gamma={self.gamma:g})"


def make_lrfu(
    backend: str,
    capacity: int,
    decay: float = 0.75,
    gamma: float = 0.25,
) -> _LRFUBase:
    """Factory used by benchmarks: build an LRFU cache by backend name."""
    if backend == "qmax":
        return QMaxLRFU(capacity, decay, gamma)
    if backend == "qmax-deamortized":
        from repro.apps.lrfu_deamortized import DeamortizedLRFU

        return DeamortizedLRFU(capacity, decay, gamma)
    if backend == "indexedheap":
        return ClassicLRFU(capacity, decay)
    if backend == "heap":
        return StdHeapLRFU(capacity, decay)
    if backend == "skiplist":
        return SkipListLRFU(capacity, decay)
    raise ConfigurationError(f"unknown LRFU backend {backend!r}")
