"""repro.obs — unified metrics, tracing, and live introspection.

The observability layer the paper's §3 profiling argument implies: the
same instrumentation that produces the time-breakdown tables also runs
in production, so "where does per-packet time go?" is always a query
away.  Three pieces:

* :mod:`repro.obs.metrics` — ``Counter``/``Gauge``/``Histogram`` in a
  process-local :class:`MetricsRegistry`, a no-op
  :class:`NullRegistry` twin for zero-cost disabled operation, and
  :func:`merge_snapshots` for combining per-worker-process views.
* :mod:`repro.obs.exposition` — Prometheus-text and JSON renderers
  over frozen snapshots.
* :func:`span` — ``with obs.span("maintenance"):`` style tracing into
  ``*_seconds`` histograms; a no-op when disabled.

**The default registry.**  Components take a ``metrics=`` parameter:
``None`` (the default) resolves to the process-wide default registry —
a :class:`NullRegistry` unless ``REPRO_METRICS=1`` is set or
:func:`set_default_registry` installed a real one — ``False`` forces
off, and an explicit :class:`MetricsRegistry` wires a private one (the
daemon does this so its metrics stay per-daemon).  Hot structures
check ``registry.enabled`` once at construction and keep ``None``
when disabled, so the disabled hot path has no instrumentation
branches at all.

See docs/OBSERVABILITY.md for the metric catalog and overhead numbers.
"""

from __future__ import annotations

import os
from typing import Optional, Union

from repro.obs.exposition import render_json, render_prometheus
from repro.obs.metrics import (
    Counter,
    DURATION_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    SIZE_BUCKETS,
    Span,
    merge_snapshots,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Span",
    "DURATION_BUCKETS",
    "SIZE_BUCKETS",
    "merge_snapshots",
    "render_prometheus",
    "render_json",
    "default_registry",
    "set_default_registry",
    "resolve_registry",
    "span",
]

#: Truthy values of the ``REPRO_METRICS`` environment switch.
_ENV_TRUE = ("1", "true", "yes", "on")

_default: Optional[Union[MetricsRegistry, NullRegistry]] = None


def default_registry() -> Union[MetricsRegistry, NullRegistry]:
    """The process-wide registry ``metrics=None`` resolves to.

    First call decides: a real registry when ``REPRO_METRICS`` is set
    truthy (how the CI overhead job turns instrumentation on for the
    benchmarks without touching their code), the shared
    :data:`NULL_REGISTRY` otherwise.
    """
    global _default
    if _default is None:
        enabled = os.environ.get("REPRO_METRICS", "").lower() in _ENV_TRUE
        _default = MetricsRegistry() if enabled else NULL_REGISTRY
    return _default


def set_default_registry(
    registry: Optional[Union[MetricsRegistry, NullRegistry]],
) -> None:
    """Install (or with ``None`` re-resolve from the environment) the
    process-wide default registry."""
    global _default
    _default = registry


def resolve_registry(
    metrics: Union[MetricsRegistry, NullRegistry, bool, None],
) -> Union[MetricsRegistry, NullRegistry]:
    """The ``metrics=`` parameter convention shared by instrumented
    components: ``None`` → default registry, ``False`` → disabled,
    ``True`` → a real registry even if the default is off, a registry
    instance → itself."""
    if metrics is None:
        return default_registry()
    if metrics is False:
        return NULL_REGISTRY
    if metrics is True:
        found = default_registry()
        return found if found.enabled else MetricsRegistry()
    return metrics


def span(name: str, registry=None, **labels: str):
    """``with obs.span("maintenance"): ...`` — time a block into the
    ``<name>_seconds`` histogram of ``registry`` (default registry when
    omitted; a no-op singleton when that is disabled)."""
    return (registry or default_registry()).span(name, **labels)
