"""Exposition: metric snapshots → Prometheus text / JSON documents.

Both renderers consume the *snapshot* dict produced by
:meth:`repro.obs.metrics.MetricsRegistry.snapshot` (or by
:func:`repro.obs.metrics.merge_snapshots`), never live registries —
which is what lets the daemon expose metrics merged across worker
processes: workers ship snapshots over their control pipes, the engine
merges, the daemon renders.

The text format follows the Prometheus exposition format 0.0.4:
``# HELP`` / ``# TYPE`` headers grouped per metric family, histogram
``_bucket``/``_sum``/``_count`` series with cumulative ``le`` labels.
"""

from __future__ import annotations

from typing import Any, Dict, List

#: Characters escaped inside label values per the exposition format.
_LABEL_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}


def _escape_label(value: str) -> str:
    for raw, esc in _LABEL_ESCAPES.items():
        value = value.replace(raw, esc)
    return value


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labels_text(labels: Dict[str, str], extra: str = "") -> str:
    parts = [
        f'{k}="{_escape_label(str(v))}"' for k, v in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(snapshot: Dict[str, Any]) -> str:
    """Render a snapshot as Prometheus exposition text."""
    lines: List[str] = []
    seen_headers = set()
    for sample in snapshot.get("metrics", ()):
        name = sample["name"]
        kind = sample["type"]
        labels = sample.get("labels") or {}
        if name not in seen_headers:
            seen_headers.add(name)
            help_text = (sample.get("help") or "").replace("\n", " ")
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
        if kind == "histogram":
            for bound, count in sample["buckets"]:
                le = bound if isinstance(bound, str) else (
                    _format_value(float(bound))
                )
                labels_text = _labels_text(
                    labels, extra=f'le="{le}"'
                )
                lines.append(f"{name}_bucket{labels_text} {count}")
            base = _labels_text(labels)
            lines.append(f"{name}_sum{base} {_format_value(sample['sum'])}")
            lines.append(f"{name}_count{base} {sample['count']}")
        else:
            labels_text = _labels_text(labels)
            lines.append(
                f"{name}{labels_text} {_format_value(sample['value'])}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def render_json(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """The JSON exposition *is* the snapshot; this validates the shape
    cheaply and returns it, so both renderers share one entry point."""
    metrics = snapshot.get("metrics")
    if not isinstance(metrics, list):
        raise ValueError("snapshot has no 'metrics' list")
    return snapshot
