"""Bridge: metric snapshots → the ``repro.bench.trajectory`` store.

Observability data rides the existing regression-gate rails: selected
counters and gauges from a live daemon (or any snapshot) become
:class:`~repro.bench.trajectory.MetricPoint` rows appended to the
append-only per-commit store, so ``repro bench report`` renders them
over time and ``repro bench gate`` can defend them like any benchmark
metric.  ``repro query metrics --record`` is the CLI entry point.
"""

from __future__ import annotations

import fnmatch
import time
from typing import Any, Dict, List, Optional, Sequence

#: Snapshot metrics recorded by default: cumulative ingest/engine
#: counters and the occupancy/latency aggregates — the gauges a fleet
#: operator trends over commits.  Histograms export their count and
#: mean (sum/count) rather than every bucket.
DEFAULT_INCLUDE = (
    "repro_qmax_*",
    "repro_shard_*",
    "repro_ring_*",
    "repro_worker_*",
    "repro_feeder_*",
    "repro_ingest_*",
    "repro_rpc_*",
    "repro_snapshot_*",
)


def _matches(name: str, patterns: Sequence[str]) -> bool:
    return any(fnmatch.fnmatchcase(name, p) for p in patterns)


def _point_name(sample: Dict[str, Any], suffix: str = "") -> str:
    labels = sample.get("labels") or {}
    name = sample["name"] + suffix
    if labels:
        tags = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        return f"{name}{{{tags}}}"
    return name


def snapshot_metric_points(
    snapshot: Dict[str, Any],
    include: Sequence[str] = DEFAULT_INCLUDE,
) -> List[Dict[str, Any]]:
    """Flatten a snapshot into MetricPoint-shaped dicts.

    Counters and gauges become one point each (unit ``count``, or
    ``seconds`` for ``*_seconds*`` names); histograms become a
    ``:count`` point plus a ``:mean`` point when non-empty.  Only
    metrics matching ``include`` glob patterns are exported.  Returned
    as plain dicts so callers hand them to
    :func:`repro.bench.reporting.emit` (which validates them into
    :class:`~repro.bench.trajectory.MetricPoint`).
    """
    points: List[Dict[str, Any]] = []
    for sample in snapshot.get("metrics", ()):
        name = sample["name"]
        if not _matches(name, include):
            continue
        unit = "seconds" if "_seconds" in name else "count"
        if sample["type"] == "histogram":
            count = sample["count"]
            points.append({
                "name": _point_name(sample, ":count"),
                "value": float(count),
                "unit": "count",
            })
            if count:
                points.append({
                    "name": _point_name(sample, ":mean"),
                    "value": sample["sum"] / count,
                    "unit": unit,
                })
        else:
            value = sample["value"]
            # Booleans and non-finite values don't belong in the store.
            if value != value or value in (float("inf"), float("-inf")):
                continue
            points.append({
                "name": _point_name(sample),
                "value": float(value),
                "unit": unit,
            })
    return points


def record_snapshot(
    snapshot: Dict[str, Any],
    benchmark: str = "obs_metrics",
    title: str = "live observability snapshot",
    include: Sequence[str] = DEFAULT_INCLUDE,
    config: Optional[Dict[str, Any]] = None,
    store=None,
):
    """Append one trajectory row built from a snapshot; returns the row.

    Raises :class:`~repro.errors.TrajectoryError` when nothing in the
    snapshot matches ``include`` (an empty row would be rejected by the
    schema anyway — fail with the useful message instead).
    """
    from repro.bench.reporting import emit
    from repro.errors import TrajectoryError

    points = snapshot_metric_points(snapshot, include=include)
    if not points:
        raise TrajectoryError(
            "no snapshot metrics matched the include patterns "
            f"{list(include)!r}"
        )
    rows = [[p["name"], p["value"], p["unit"]] for p in points]
    return emit(
        benchmark,
        title,
        ["metric", "value", "unit"],
        rows,
        config=dict(config or {}, recorded_from="obs_snapshot",
                    captured_at=time.time()),
        metrics=points,
        store=store,
    )
