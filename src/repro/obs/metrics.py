"""Dependency-free metrics primitives: the `repro.obs` core.

Three instrument kinds, one registry, and a no-op twin:

* :class:`Counter` — monotonically increasing float; ``inc()`` is one
  attribute load plus one in-place add, the cheapest observable event
  CPython can express.
* :class:`Gauge` — a point-in-time value with a declared cross-process
  aggregation (``last``/``sum``/``max``/``min``) so merged snapshots
  know whether ten workers' gauges add up (consumed records) or race
  (Ψ, where the last writer wins).
* :class:`Histogram` — fixed upper-bound buckets, cumulative counts
  (Prometheus convention), plus sum and count.  ``observe`` is a short
  linear scan over ≤ ~20 bounds — no allocation, no bisect call.

:class:`MetricsRegistry` hands out instruments keyed by
``(name, labels)`` — asking twice returns the same object, so hot
structures bind instruments once at construction and never look them
up again.  :meth:`MetricsRegistry.snapshot` freezes everything into a
plain JSON-safe dict (the exchange format between worker processes,
the daemon RPC, and the exposition renderers), and
:func:`merge_snapshots` combines snapshots from many processes into
one view: counters sum, gauges follow their aggregation, histograms
add bucket-wise.

:class:`NullRegistry` is the disabled twin: every instrument method
returns a shared no-op singleton whose operations neither allocate nor
branch, so instrumented code pays nothing when observability is off —
the property ``tests/obs/test_null_overhead.py`` pins down.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError

#: Default histogram bounds for durations in seconds: 1µs .. ~8s in
#: powers of 4 — wide enough for a select step and a snapshot write.
DURATION_BUCKETS: Tuple[float, ...] = tuple(
    1e-6 * 4 ** i for i in range(12)
)

#: Default bounds for record/batch sizes: 1 .. 64Ki in powers of 4.
SIZE_BUCKETS: Tuple[float, ...] = tuple(float(4 ** i) for i in range(9))

_LabelsKey = Tuple[Tuple[str, str], ...]


def _labels_key(labels: Dict[str, str]) -> _LabelsKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "help", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, help: str = "",
                 labels: Optional[Dict[str, str]] = None) -> None:
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def sample(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "type": "counter",
            "help": self.help,
            "labels": self.labels,
            "value": self.value,
        }


class Gauge:
    """A point-in-time value with a declared merge aggregation."""

    __slots__ = ("name", "help", "labels", "agg", "value", "_fn")

    kind = "gauge"

    def __init__(self, name: str, help: str = "",
                 labels: Optional[Dict[str, str]] = None,
                 agg: str = "last",
                 fn: Optional[Callable[[], float]] = None) -> None:
        if agg not in ("last", "sum", "max", "min"):
            raise ConfigurationError(
                f"gauge agg must be last/sum/max/min, got {agg!r}"
            )
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self.agg = agg
        self.value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def set_function(self, fn: Callable[[], float]) -> None:
        """Evaluate ``fn`` at snapshot time instead of storing writes —
        the zero-hot-path way to expose an existing counter attribute."""
        self._fn = fn

    def sample(self) -> Dict[str, Any]:
        value = self.value if self._fn is None else float(self._fn())
        return {
            "name": self.name,
            "type": "gauge",
            "help": self.help,
            "labels": self.labels,
            "agg": self.agg,
            "value": value,
        }


class Histogram:
    """Fixed-bucket histogram with cumulative Prometheus semantics."""

    __slots__ = ("name", "help", "labels", "bounds", "counts",
                 "sum", "count")

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 labels: Optional[Dict[str, str]] = None,
                 buckets: Iterable[float] = DURATION_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(bounds):
            raise ConfigurationError(
                f"histogram buckets must be ascending, got {bounds!r}"
            )
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self.bounds = bounds
        # One slot per finite bound plus the +Inf overflow slot.
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        i = 0
        for bound in self.bounds:
            if value <= bound:
                self.counts[i] += 1
                return
            i += 1
        self.counts[i] += 1

    def sample(self) -> Dict[str, Any]:
        cumulative: List[List[Any]] = []
        running = 0
        for bound, n in zip(self.bounds, self.counts):
            running += n
            cumulative.append([bound, running])
        cumulative.append(["+Inf", self.count])
        return {
            "name": self.name,
            "type": "histogram",
            "help": self.help,
            "labels": self.labels,
            "buckets": cumulative,
            "sum": self.sum,
            "count": self.count,
        }


class Span:
    """Times a ``with`` block into a ``*_seconds`` histogram.

    One span object is one timed region; re-entering restarts the
    clock.  Created via :meth:`MetricsRegistry.span` (cold path); the
    enter/exit pair costs two ``perf_counter`` calls and one histogram
    observe.
    """

    __slots__ = ("_hist", "_t0")

    def __init__(self, hist: Histogram) -> None:
        self._hist = hist
        self._t0 = 0.0

    def __enter__(self) -> "Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._hist.observe(time.perf_counter() - self._t0)


class MetricsRegistry:
    """Process-local instrument directory; see the module docstring."""

    enabled = True

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, _LabelsKey], Any] = {}

    # ------------------------------------------------------------------
    # Instrument factories (get-or-create, cold path).
    # ------------------------------------------------------------------

    def _get(self, cls: type, name: str, help: str,
             labels: Dict[str, str], **kwargs: Any) -> Any:
        key = (name, _labels_key(labels))
        found = self._instruments.get(key)
        if found is not None:
            if not isinstance(found, cls):
                raise ConfigurationError(
                    f"metric {name!r} already registered as "
                    f"{type(found).__name__}, not {cls.__name__}"
                )
            return found
        inst = cls(name, help=help, labels=labels, **kwargs)
        self._instruments[key] = inst
        return inst

    def counter(self, name: str, help: str = "",
                **labels: str) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", agg: str = "last",
              **labels: str) -> Gauge:
        gauge = self._get(Gauge, name, help, labels, agg=agg)
        if gauge.agg != agg:
            raise ConfigurationError(
                f"gauge {name!r} already registered with agg="
                f"{gauge.agg!r}, not {agg!r}"
            )
        return gauge

    def callback_gauge(self, name: str, fn: Callable[[], float],
                       help: str = "", agg: str = "last",
                       **labels: str) -> Gauge:
        """A gauge read from ``fn()`` at snapshot time.  Re-registering
        the same name replaces the callback (a restarted component
        re-binds to its new instance)."""
        gauge = self.gauge(name, help=help, agg=agg, **labels)
        gauge.set_function(fn)
        return gauge

    def histogram(self, name: str, help: str = "",
                  buckets: Iterable[float] = DURATION_BUCKETS,
                  **labels: str) -> Histogram:
        return self._get(Histogram, name, help, labels, buckets=buckets)

    def span(self, name: str, help: str = "", **labels: str) -> Span:
        """A context manager timing its block into ``<name>_seconds``."""
        return Span(self.histogram(
            f"{name}_seconds", help=help, buckets=DURATION_BUCKETS,
            **labels,
        ))

    # ------------------------------------------------------------------
    # Snapshots.
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Freeze every instrument into a JSON-safe dict."""
        return {
            "schema": 1,
            "metrics": [
                inst.sample() for _key, inst in sorted(
                    self._instruments.items(), key=lambda kv: kv[0]
                )
            ],
        }

    def __len__(self) -> int:
        return len(self._instruments)


# ----------------------------------------------------------------------
# The disabled twin.
# ----------------------------------------------------------------------

class _NullInstrument:
    """Absorbs every instrument operation without work or allocation."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_function(self, fn: Callable[[], float]) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def __enter__(self) -> "_NullInstrument":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The no-op registry used when observability is disabled.

    Every factory returns the same shared no-op instrument, so code
    written against :class:`MetricsRegistry` runs unchanged — and the
    hot path performs zero extra allocations (pinned by
    ``tests/obs/test_null_overhead.py``).
    """

    enabled = False

    def counter(self, name: str, help: str = "",
                **labels: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "", agg: str = "last",
              **labels: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def callback_gauge(self, name: str, fn: Callable[[], float],
                       help: str = "", agg: str = "last",
                       **labels: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, help: str = "",
                  buckets: Iterable[float] = DURATION_BUCKETS,
                  **labels: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def span(self, name: str, help: str = "",
             **labels: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def snapshot(self) -> Dict[str, Any]:
        return {"schema": 1, "metrics": []}

    def __len__(self) -> int:
        return 0


#: The shared disabled registry; identity-comparable (``reg is NULL``).
NULL_REGISTRY = NullRegistry()


# ----------------------------------------------------------------------
# Cross-process merging.
# ----------------------------------------------------------------------

def _merge_key(sample: Dict[str, Any]) -> Tuple[str, _LabelsKey, str]:
    return (
        sample["name"],
        _labels_key(sample.get("labels") or {}),
        sample["type"],
    )


def merge_snapshots(snapshots: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Combine per-process snapshots into one.

    Counters sum; gauges follow their declared ``agg`` (``last`` keeps
    the value from the latest snapshot in the argument order, which by
    convention is the local process last); histograms require matching
    bucket bounds and add bucket-wise.  Metrics appearing in only some
    snapshots pass through unchanged.
    """
    merged: Dict[Tuple[str, _LabelsKey, str], Dict[str, Any]] = {}
    for snap in snapshots:
        for sample in snap.get("metrics", ()):
            key = _merge_key(sample)
            seen = merged.get(key)
            if seen is None:
                merged[key] = _copy_sample(sample)
                continue
            kind = sample["type"]
            if kind == "counter":
                seen["value"] += sample["value"]
            elif kind == "gauge":
                agg = sample.get("agg", "last")
                if agg == "sum":
                    seen["value"] += sample["value"]
                elif agg == "max":
                    seen["value"] = max(seen["value"], sample["value"])
                elif agg == "min":
                    seen["value"] = min(seen["value"], sample["value"])
                else:
                    seen["value"] = sample["value"]
            elif kind == "histogram":
                bounds = [b for b, _n in sample["buckets"]]
                if bounds != [b for b, _n in seen["buckets"]]:
                    raise ConfigurationError(
                        f"histogram {sample['name']!r} bucket bounds "
                        "differ between snapshots"
                    )
                seen["buckets"] = [
                    [b, n + m]
                    for (b, n), (_b, m) in zip(
                        seen["buckets"], sample["buckets"]
                    )
                ]
                seen["sum"] += sample["sum"]
                seen["count"] += sample["count"]
    return {
        "schema": 1,
        "metrics": [merged[k] for k in sorted(merged, key=repr)],
    }


def _copy_sample(sample: Dict[str, Any]) -> Dict[str, Any]:
    copy = dict(sample)
    if "buckets" in copy:
        copy["buckets"] = [list(pair) for pair in copy["buckets"]]
    return copy
