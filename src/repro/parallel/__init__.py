"""Multi-core sharded q-MAX (docs/PARALLEL.md).

The paper's headline deployment runs one measurement instance per PMD
core and merges their state.  This package is that deployment as a
library: :class:`ShardedQMaxEngine` hash-partitions flow ids across
worker processes fed through shared-memory record rings, answers
queries by merging per-shard retained sets, and degrades gracefully to
an in-process sharded fallback wherever processes or shared memory are
unavailable.
"""

from repro.parallel.engine import ShardedQMaxEngine, partition_stream
from repro.parallel.merge import (
    merge_bottom_items,
    merge_top_items,
    merge_top_records,
)
from repro.parallel.shm_ring import ShmRecordRing
from repro.parallel.worker import SHARD_RECORD, shard_worker_main

__all__ = [
    "ShardedQMaxEngine",
    "partition_stream",
    "merge_top_items",
    "merge_top_records",
    "merge_bottom_items",
    "ShmRecordRing",
    "SHARD_RECORD",
    "shard_worker_main",
]
