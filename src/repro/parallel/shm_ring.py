"""Shared-memory SPSC record ring: the engine → shard-worker channel.

This is the cross-process sibling of :class:`repro.switch.ringbuffer.
RingBuffer`: the same bounded single-producer/single-consumer framing of
fixed-size records, but laid out in a ``multiprocessing.shared_memory``
segment so a worker *process* can drain it without copying through a
pipe.  Two deliberate differences from the datapath ring:

* **Records are contiguous**, not one ``bytes`` object per slot: a
  burst is pushed/popped as a single blob (``n × record_size`` bytes),
  so both sides move data with at most two ``memoryview`` copies
  (wrap-around) and the consumer can hand the blob straight to
  ``np.frombuffer`` / ``struct.iter_unpack`` — the same zero-per-record
  decode as :class:`~repro.switch.pmd.BurstMeasurementPipeline`.
* **A full ring stalls the producer instead of dropping.**  The
  datapath ring models a forwarding plane that must never block; this
  ring carries *accepted* measurement updates, where dropping would
  silently change the retained set.  ``push`` spins (with a tiny sleep)
  until space frees up and counts the stalls.

Layout: a 64-byte header (head and tail as monotonically increasing
u64 record counters, each on its own cache line) followed by
``capacity × record_size`` data bytes.  Monotonic counters make the
empty/full distinction trivial (``head - tail``) and double as the
pushed/consumed statistics.  The producer writes data *then* publishes
``head``; the consumer reads data *then* publishes ``tail`` — on
CPython each publish is one aligned 8-byte store, which is the usual
SPSC ordering argument (and both sides tolerate stale reads by simply
seeing less available space/data than there is).
"""

from __future__ import annotations

import struct
import time
from typing import Callable, Optional

from repro.errors import ConfigurationError, ParallelError

try:  # pragma: no cover - exercised via the inline-fallback tests
    from multiprocessing import shared_memory as _shared_memory

    HAVE_SHM = True
except ImportError:  # pragma: no cover
    _shared_memory = None  # type: ignore[assignment]
    HAVE_SHM = False

#: Header: head (u64) at offset 0, tail (u64) at offset 32 — separate
#: cache lines so producer and consumer stores don't false-share.
_HEAD = struct.Struct("<Q")
_HEAD_OFF = 0
_TAIL_OFF = 32
HEADER_BYTES = 64

#: Producer back-off while the ring is full (seconds).
_STALL_SLEEP = 0.0002

#: How many spins between ``should_abort`` checks while stalled.
_ABORT_CHECK_EVERY = 64


class ShmRecordRing:
    """Bounded SPSC ring of fixed-size records in shared memory.

    Use :meth:`create` on the producer side and :meth:`attach` (with the
    segment name) in the worker; both sides must agree on ``capacity``
    and ``record_size``.  The creator owns the segment and must
    eventually call :meth:`unlink`.
    """

    __slots__ = (
        "capacity",
        "record_size",
        "stalls",
        "_shm",
        "_buf",
        "_data",
        "_owner",
    )

    def __init__(self, shm, capacity: int, record_size: int,
                 owner: bool) -> None:
        self.capacity = capacity
        self.record_size = record_size
        self.stalls = 0
        self._shm = shm
        self._buf = shm.buf
        self._data = shm.buf[HEADER_BYTES:]
        self._owner = owner

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------

    @classmethod
    def create(cls, capacity: int, record_size: int) -> "ShmRecordRing":
        """Allocate a fresh shared segment (producer side)."""
        if not HAVE_SHM:
            raise ParallelError("multiprocessing.shared_memory unavailable")
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        if record_size < 1:
            raise ConfigurationError(
                f"record_size must be >= 1, got {record_size}"
            )
        size = HEADER_BYTES + capacity * record_size
        shm = _shared_memory.SharedMemory(create=True, size=size)
        shm.buf[:HEADER_BYTES] = bytes(HEADER_BYTES)
        return cls(shm, capacity, record_size, owner=True)

    @classmethod
    def attach(cls, name: str, capacity: int,
               record_size: int) -> "ShmRecordRing":
        """Map an existing segment by name (worker side)."""
        if not HAVE_SHM:
            raise ParallelError("multiprocessing.shared_memory unavailable")
        shm = _shared_memory.SharedMemory(name=name)
        return cls(shm, capacity, record_size, owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    # ------------------------------------------------------------------
    # Counters.
    # ------------------------------------------------------------------

    @property
    def head(self) -> int:
        """Total records ever pushed (producer-published)."""
        return _HEAD.unpack_from(self._buf, _HEAD_OFF)[0]

    @property
    def tail(self) -> int:
        """Total records ever consumed (consumer-published)."""
        return _HEAD.unpack_from(self._buf, _TAIL_OFF)[0]

    def __len__(self) -> int:
        """Records currently queued (may be momentarily stale)."""
        return self.head - self.tail

    # ------------------------------------------------------------------
    # Producer side.
    # ------------------------------------------------------------------

    def push(
        self,
        blob: bytes,
        should_abort: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Append ``blob`` (a whole number of records); returns records.

        Blocks while the ring is full.  Blobs larger than the ring are
        written in capacity-sized chunks.  ``should_abort`` is polled
        while stalled (the engine passes a worker-liveness probe so a
        dead consumer surfaces as :class:`ParallelError` instead of an
        infinite spin).
        """
        rec = self.record_size
        n, rem = divmod(len(blob), rec)
        if rem:
            raise ConfigurationError(
                f"blob of {len(blob)} bytes is not a whole number of "
                f"{rec}-byte records"
            )
        view = memoryview(blob)
        written = 0
        while written < n:
            head = self.head
            free = self.capacity - (head - self.tail)
            if free <= 0:
                self.stalls += 1
                spins = 0
                while free <= 0:
                    spins += 1
                    if should_abort is not None and (
                        spins % _ABORT_CHECK_EVERY == 0
                    ) and should_abort():
                        raise ParallelError(
                            "ring consumer gone while producer stalled"
                        )
                    time.sleep(_STALL_SLEEP)
                    free = self.capacity - (head - self.tail)
            take = min(free, n - written)
            slot = head % self.capacity
            first = min(take, self.capacity - slot)
            data = self._data
            src = view[written * rec:(written + first) * rec]
            data[slot * rec:(slot + first) * rec] = src
            if first < take:
                src = view[(written + first) * rec:(written + take) * rec]
                data[0:(take - first) * rec] = src
            written += take
            _HEAD.pack_into(self._buf, _HEAD_OFF, head + take)
        return n

    # ------------------------------------------------------------------
    # Consumer side.
    # ------------------------------------------------------------------

    def pop(self, max_records: int) -> bytes:
        """Drain up to ``max_records`` records as one contiguous blob.

        Returns ``b""`` when the ring is empty.
        """
        tail = self.tail
        avail = self.head - tail
        if avail <= 0:
            return b""
        take = min(avail, max_records)
        rec = self.record_size
        slot = tail % self.capacity
        first = min(take, self.capacity - slot)
        data = self._data
        if first == take:
            blob = bytes(data[slot * rec:(slot + take) * rec])
        else:
            blob = bytes(data[slot * rec:(slot + first) * rec]) + bytes(
                data[0:(take - first) * rec]
            )
        _HEAD.pack_into(self._buf, _TAIL_OFF, tail + take)
        return blob

    # ------------------------------------------------------------------
    # Teardown.
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release this process's mapping (both sides)."""
        self._data.release()
        self._buf.release()
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (creator only; call after close)."""
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double unlink
                pass
