"""Shared-memory SPSC record ring: the engine → shard-worker channel.

This is the cross-process sibling of :class:`repro.switch.ringbuffer.
RingBuffer`: the same bounded single-producer/single-consumer framing of
fixed-size records, but laid out in a ``multiprocessing.shared_memory``
segment so a worker *process* can drain it without copying through a
pipe.  Two deliberate differences from the datapath ring:

* **Records are contiguous**, not one ``bytes`` object per slot, and
  the ring can be *dtype-mapped*: construct it with a NumPy structured
  ``dtype`` whose itemsize equals ``record_size`` and both sides get a
  zero-copy array API — :meth:`push_array` assigns id/value columns
  straight into the mapped buffer and :meth:`pop_view` hands back
  structured-array views *over the ring memory itself* (two views when
  the burst wraps) with the tail published only on
  :meth:`RingView.commit`.  The byte-blob :meth:`push`/:meth:`pop` pair
  is retained as the pure-Python fallback and the two framings are
  interchangeable record-for-record (pinned by the zero-copy
  differential suite).
* **A full ring stalls the producer instead of dropping.**  The
  datapath ring models a forwarding plane that must never block; this
  ring carries *accepted* measurement updates, where dropping would
  silently change the retained set.  ``push`` spins (with a tiny sleep)
  until space frees up and counts the stalls.

Layout: a 64-byte header (head and tail as monotonically increasing
u64 record counters, each on its own cache line) followed by
``capacity × record_size`` data bytes.  Monotonic counters make the
empty/full distinction trivial (``head - tail``) and double as the
pushed/consumed statistics.  The producer writes data *then* publishes
``head``; the consumer reads data *then* publishes ``tail`` — on
CPython each publish is one aligned 8-byte store, which is the usual
SPSC ordering argument (and both sides tolerate stale reads by simply
seeing less available space/data than there is).  The header counters
are accessed through ``memoryview.cast("Q")`` views cached at
construction — native byte order, which is fine because both ends of a
ring always live on the same machine — so neither side re-slices or
re-packs the header on the hot path.
"""

from __future__ import annotations

import struct
import time
from typing import Callable, Optional, Sequence, Tuple

from repro._compat import HAVE_NUMPY, np
from repro.errors import ConfigurationError, ParallelError

try:  # pragma: no cover - exercised via the inline-fallback tests
    from multiprocessing import shared_memory as _shared_memory

    HAVE_SHM = True
except ImportError:  # pragma: no cover
    _shared_memory = None  # type: ignore[assignment]
    HAVE_SHM = False

#: Header geometry: head (u64) at offset 0, tail (u64) at offset 32 —
#: separate cache lines so producer and consumer stores don't
#: false-share.  ``_HEAD`` survives for size arithmetic and tests.
_HEAD = struct.Struct("<Q")
_HEAD_OFF = 0
_TAIL_OFF = 32
HEADER_BYTES = 64

#: Producer back-off while the ring is full (seconds).
_STALL_SLEEP = 0.0002

#: How many spins between ``should_abort`` checks while stalled.
_ABORT_CHECK_EVERY = 64


class RingView:
    """A zero-copy burst: structured-array views over ring memory.

    :attr:`parts` holds one contiguous view, or two when the burst
    wraps around the end of the ring (in stream order: the segment at
    the ring's tail first, then the wrapped prefix).  The views alias
    the shared segment directly, so the producer may overwrite them as
    soon as the consumer publishes the tail — which is why publication
    is explicit: read (or copy out of) the views, *then* call
    :meth:`commit`.  Dropping a view without committing leaves the
    records in the ring for the next pop.
    """

    __slots__ = ("parts", "_ring", "_tail", "_take")

    def __init__(self, ring: "ShmRecordRing", tail: int, take: int,
                 parts: Tuple) -> None:
        self.parts = parts
        self._ring = ring
        self._tail = tail
        self._take = take

    def __len__(self) -> int:
        return self._take

    def tobytes(self) -> bytes:
        """The burst as one blob — byte-identical to :meth:`ShmRecordRing.
        pop` of the same records (the differential suite's probe)."""
        return b"".join(part.tobytes() for part in self.parts)

    def commit(self) -> None:
        """Publish consumption: free the slots for the producer.

        Invalidates :attr:`parts`; the views must not be read after
        this (the producer may already be overwriting them).
        """
        ring = self._ring
        self.parts = ()
        ring._tail_view[0] = self._tail + self._take


class ShmRecordRing:
    """Bounded SPSC ring of fixed-size records in shared memory.

    Use :meth:`create` on the producer side and :meth:`attach` (with the
    segment name) in the worker; both sides must agree on ``capacity``
    and ``record_size``.  The creator owns the segment and must
    eventually call :meth:`unlink`.

    Passing a NumPy structured ``dtype`` (itemsize == ``record_size``)
    additionally maps the data region as one structured ndarray and
    enables the zero-copy :meth:`push_array` / :meth:`pop_view` pair;
    without NumPy (or without a dtype) only the byte-blob API exists.
    """

    __slots__ = (
        "capacity",
        "record_size",
        "stalls",
        "dtype",
        "_shm",
        "_buf",
        "_data",
        "_head_view",
        "_tail_view",
        "_np_data",
        "_owner",
    )

    def __init__(self, shm, capacity: int, record_size: int,
                 owner: bool, dtype=None) -> None:
        self.capacity = capacity
        self.record_size = record_size
        self.stalls = 0
        self._shm = shm
        self._buf = shm.buf
        self._data = shm.buf[HEADER_BYTES:]
        # Cached header-counter views: one aligned u64 load/store per
        # access instead of a struct (un)pack against a fresh slice.
        self._head_view = shm.buf[_HEAD_OFF:_HEAD_OFF + 8].cast("Q")
        self._tail_view = shm.buf[_TAIL_OFF:_TAIL_OFF + 8].cast("Q")
        self._owner = owner
        self.dtype = None
        self._np_data = None
        if dtype is not None:
            if not HAVE_NUMPY:
                raise ConfigurationError(
                    "dtype-mapped ring requires numpy (pip install .[fast])"
                )
            dtype = np.dtype(dtype)
            if dtype.itemsize != record_size:
                raise ConfigurationError(
                    f"dtype itemsize {dtype.itemsize} != record_size "
                    f"{record_size}"
                )
            self.dtype = dtype
            self._np_data = np.frombuffer(self._data, dtype=dtype)

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------

    @classmethod
    def create(cls, capacity: int, record_size: int,
               dtype=None) -> "ShmRecordRing":
        """Allocate a fresh shared segment (producer side)."""
        if not HAVE_SHM:
            raise ParallelError("multiprocessing.shared_memory unavailable")
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        if record_size < 1:
            raise ConfigurationError(
                f"record_size must be >= 1, got {record_size}"
            )
        size = HEADER_BYTES + capacity * record_size
        shm = _shared_memory.SharedMemory(create=True, size=size)
        shm.buf[:HEADER_BYTES] = bytes(HEADER_BYTES)
        return cls(shm, capacity, record_size, owner=True, dtype=dtype)

    @classmethod
    def attach(cls, name: str, capacity: int, record_size: int,
               dtype=None) -> "ShmRecordRing":
        """Map an existing segment by name (worker side)."""
        if not HAVE_SHM:
            raise ParallelError("multiprocessing.shared_memory unavailable")
        shm = _shared_memory.SharedMemory(name=name)
        return cls(shm, capacity, record_size, owner=False, dtype=dtype)

    @property
    def name(self) -> str:
        return self._shm.name

    # ------------------------------------------------------------------
    # Counters.
    # ------------------------------------------------------------------

    @property
    def head(self) -> int:
        """Total records ever pushed (producer-published)."""
        return self._head_view[0]

    @property
    def tail(self) -> int:
        """Total records ever consumed (consumer-published)."""
        return self._tail_view[0]

    def __len__(self) -> int:
        """Records currently queued (may be momentarily stale)."""
        return self._head_view[0] - self._tail_view[0]

    # ------------------------------------------------------------------
    # Producer side.
    # ------------------------------------------------------------------

    def _wait_free(
        self, head: int, should_abort: Optional[Callable[[], bool]]
    ) -> int:
        """Spin until at least one slot is free; returns the free count."""
        free = self.capacity - (head - self.tail)
        if free > 0:
            return free
        self.stalls += 1
        spins = 0
        while free <= 0:
            spins += 1
            if should_abort is not None and (
                spins % _ABORT_CHECK_EVERY == 0
            ) and should_abort():
                raise ParallelError(
                    "ring consumer gone while producer stalled"
                )
            time.sleep(_STALL_SLEEP)
            free = self.capacity - (head - self.tail)
        return free

    def push(
        self,
        blob: bytes,
        should_abort: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Append ``blob`` (a whole number of records); returns records.

        Blocks while the ring is full.  Blobs larger than the ring are
        written in capacity-sized chunks.  ``should_abort`` is polled
        while stalled (the engine passes a worker-liveness probe so a
        dead consumer surfaces as :class:`ParallelError` instead of an
        infinite spin).
        """
        rec = self.record_size
        n, rem = divmod(len(blob), rec)
        if rem:
            raise ConfigurationError(
                f"blob of {len(blob)} bytes is not a whole number of "
                f"{rec}-byte records"
            )
        view = memoryview(blob)
        written = 0
        head_view = self._head_view
        while written < n:
            head = head_view[0]
            free = self._wait_free(head, should_abort)
            take = min(free, n - written)
            slot = head % self.capacity
            first = min(take, self.capacity - slot)
            data = self._data
            src = view[written * rec:(written + first) * rec]
            data[slot * rec:(slot + first) * rec] = src
            if first < take:
                src = view[(written + first) * rec:(written + take) * rec]
                data[0:(take - first) * rec] = src
            written += take
            head_view[0] = head + take
        return n

    def push_array(
        self,
        ids: Sequence,
        vals: Sequence,
        should_abort: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Pack id/value columns straight into the mapped ring memory.

        The zero-copy twin of :meth:`push`: the columns (NumPy arrays,
        or anything ndarray column assignment accepts) are written
        field-wise into the structured array mapped over the ring — no
        intermediate record blob is materialized.  Field names come
        from the ring's dtype (first field ← ``ids``, second ←
        ``vals``).  Same stall/chunk semantics as :meth:`push`.
        """
        npd = self._np_data
        if npd is None:
            raise ConfigurationError(
                "push_array requires a dtype-mapped ring (NumPy stack)"
            )
        n = len(ids)
        if len(vals) != n:
            raise ConfigurationError(
                f"column length mismatch: {n} ids vs {len(vals)} vals"
            )
        f_id, f_val = self.dtype.names[:2]
        written = 0
        head_view = self._head_view
        while written < n:
            head = head_view[0]
            free = self._wait_free(head, should_abort)
            take = min(free, n - written)
            slot = head % self.capacity
            first = min(take, self.capacity - slot)
            seg = npd[slot:slot + first]
            seg[f_id] = ids[written:written + first]
            seg[f_val] = vals[written:written + first]
            if first < take:
                seg = npd[:take - first]
                seg[f_id] = ids[written + first:written + take]
                seg[f_val] = vals[written + first:written + take]
            written += take
            head_view[0] = head + take
        return n

    # ------------------------------------------------------------------
    # Consumer side.
    # ------------------------------------------------------------------

    def pop(self, max_records: int) -> bytes:
        """Drain up to ``max_records`` records as one contiguous blob.

        Returns ``b""`` when the ring is empty.  This is the copying
        fallback; dtype-mapped consumers should prefer :meth:`pop_view`.
        """
        tail = self._tail_view[0]
        avail = self._head_view[0] - tail
        if avail <= 0:
            return b""
        take = min(avail, max_records)
        rec = self.record_size
        slot = tail % self.capacity
        first = min(take, self.capacity - slot)
        data = self._data
        if first == take:
            blob = bytes(data[slot * rec:(slot + take) * rec])
        else:
            blob = bytes(data[slot * rec:(slot + first) * rec]) + bytes(
                data[0:(take - first) * rec]
            )
        self._tail_view[0] = tail + take
        return blob

    def pop_view(self, max_records: int) -> Optional[RingView]:
        """Drain up to ``max_records`` records as zero-copy views.

        Returns a :class:`RingView` whose ``parts`` alias the ring
        memory directly — one structured-array view, or two when the
        burst wraps — or ``None`` when the ring is empty or not
        dtype-mapped (callers fall back to :meth:`pop`).  The records
        stay reserved until :meth:`RingView.commit`; consume (or copy
        from) the views first, then commit.
        """
        npd = self._np_data
        if npd is None:
            return None
        tail = self._tail_view[0]
        avail = self._head_view[0] - tail
        if avail <= 0:
            return None
        take = min(avail, max_records)
        slot = tail % self.capacity
        first = min(take, self.capacity - slot)
        if first == take:
            parts: Tuple = (npd[slot:slot + take],)
        else:
            parts = (npd[slot:slot + first], npd[:take - first])
        return RingView(self, tail, take, parts)

    # ------------------------------------------------------------------
    # Teardown.
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release this process's mapping (both sides).

        Any outstanding :class:`RingView` must be committed or dropped
        first — live views hold buffer exports on the mapping.
        """
        self._np_data = None
        try:
            self._head_view.release()
            self._tail_view.release()
            self._data.release()
            self._buf.release()
            self._shm.close()
        except BufferError:  # pragma: no cover - live view on error path
            # An uncommitted RingView still exports the mapping (e.g. a
            # worker died mid-burst); the OS reclaims it at process
            # exit, so a best-effort close must not mask the real error.
            pass

    def unlink(self) -> None:
        """Destroy the segment (creator only; call after close)."""
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double unlink
                pass
