"""Merging per-shard retained sets into a global answer.

The correctness argument (docs/PARALLEL.md) is the paper's §5.2
mergeability story: when the stream is *partitioned by id* across
shards and each shard retains its local top-q, the union of the
retained sets contains the global top-q — an item missing from its
shard's top-q is beaten by q items *of the same shard*, hence by q
items globally.  Two reductions of the union live here, differing in
what a duplicate id *means*:

* :func:`merge_top_records` — duplicate ids are duplicate *records*
  (the stream repeated the id); every record counts, exactly as a
  single backend retains them.  Used by the sharded engine's query.
* :func:`merge_top_items` / :func:`merge_bottom_items` — duplicate ids
  are repeated *observations of one entity* (the same flow seen by
  several network-wide measurement points), collapsed by a
  caller-supplied ``merge`` via
  :class:`repro.core.merging.MergingQMax`.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, List, Sequence

from repro.core.merging import MergingQMax
from repro.types import Item, TopItems, Value


def merge_top_records(
    parts: Iterable[Sequence[Item]], q: int
) -> TopItems:
    """Global top-q over per-shard ``(id, value)`` lists **without** id
    dedup, sorted descending.  This is the sharded engine's merge: the
    shards partition the *record multiset*, so the same record never
    appears in two parts, but one part may hold several records of one
    id (the stream repeated it) — and a single backend would retain
    each of them separately, so the merge must too."""
    return heapq.nlargest(
        q,
        (rec for part in parts for rec in part),
        key=lambda rec: rec[1],
    )


def merge_top_items(
    parts: Iterable[Sequence[Item]],
    q: int,
    merge: Callable[[Value, Value], Value] = max,
) -> TopItems:
    """Global top-q over per-part ``(id, value)`` lists, sorted
    descending, with duplicate ids across *and within* parts combined
    by ``merge``.  This is the keyed merge for reports where one id is
    one entity observed several times (network-wide measurement
    points); for the sharded engine's record-level query use
    :func:`merge_top_records` instead."""
    merger = MergingQMax(q, merge=merge)
    add = merger.add
    for part in parts:
        for item_id, val in part:
            add(item_id, val)
    return merger.query()


def merge_bottom_items(
    parts: Iterable[Sequence[Item]],
    q: int,
    merge: Callable[[Value, Value], Value] = min,
) -> List[Item]:
    """Global *bottom*-q (ascending) — the q-MIN mirror, used to merge
    per-shard/per-NMP minimal-hash samples (KMV, network-wide NMP
    reports).  Implemented by value negation over the same machinery,
    like :class:`repro.core.qmin.QMin`."""
    def neg_merge(a: Value, b: Value) -> Value:
        return -merge(-a, -b)

    merger = MergingQMax(q, merge=neg_merge)
    add = merger.add
    for part in parts:
        for item_id, val in part:
            add(item_id, -val)
    return [(item_id, -val) for item_id, val in merger.query()]
