"""Shard worker: the per-core measurement loop of the sharded engine.

One worker process owns one q-MAX backend and one shared-memory record
ring.  The engine pushes ``(id: u64, value: f64)`` records into the
ring; the worker drains it in ``add_many``-sized bursts.  On the NumPy
stack the drain is **zero-copy and vectorized end to end**: the ring is
dtype-mapped, so :meth:`~repro.parallel.shm_ring.ShmRecordRing.
pop_view` hands back structured-array views over the ring memory
itself (two on wraparound), a ring-side **admission prefilter** masks
out every record at-or-below the backend's current admission threshold
Ψ̂ (``vals > Ψ̂`` — one vectorized compare; rejected records never
touch the backend), and the surviving columns flow into
``backend.add_many_array`` with no per-record Python calls.  Ψ̂ is
re-read from the backend every burst; because Ψ only tightens within a
stream, a stale Ψ̂ can only *under*-reject — records it lets through
are re-filtered inside ``add_many_array`` — never drop an admissible
record (pinned by the prefilter property suite).  Without NumPy the
legacy copying path (``pop`` blob + ``struct.iter_unpack``) is the
fallback, the same burst discipline as
:class:`repro.switch.pmd.BurstMeasurementPipeline`.

The prefilter is bypassed when the backend tracks evictions (rejects
must then be recorded with their ids, which the mask discards) or does
not expose Ψ; prefilter rejects are reported in shard stats and land
in the ``repro_shard_rejected`` gauge alongside backend rejects, so
``admitted + rejected == consumed`` stays exact either way.

Control flows over a ``multiprocessing`` pipe.  Every command carries
the *expected consumed count* (records pushed to this shard so far);
the worker keeps draining until it has consumed that many records
before acting, which gives the engine an exact per-shard barrier
without sentinel records in the data stream:

``("query", n)``         → top-q of the shard backend
``("items", n)``         → all live items of the shard backend
``("take_evicted", n)``  → drained eviction log
``("stats", n)``         → counters (consumed, admitted, Ψ, ...)
``("metrics", n)``       → this worker's metrics-registry snapshot
                           (shard totals synced into ``agg="sum"``
                           gauges first, so engine-side
                           :func:`repro.obs.merge_snapshots` yields
                           stream-wide totals)
``("reset", n)``         → backend.reset()
``("close", n)``         → final report: live items **and** the
                           eviction-log remainder — nothing the backend
                           still holds is silently dropped — then exit.

A worker that hits an exception reports ``("error", repr)`` on the pipe
and exits; the engine converts that into :class:`ParallelError`.
"""

from __future__ import annotations

import logging
import struct
import time
from typing import Any, Dict, Optional

from repro._compat import HAVE_NUMPY, np
from repro.apps.reservoirs import make_reservoir
from repro.core.interface import QMaxBase
from repro.obs import MetricsRegistry, NULL_REGISTRY, SIZE_BUCKETS
from repro.parallel.shm_ring import ShmRecordRing

_LOG = logging.getLogger("repro.parallel.worker")

#: One update record: (id: u64, value: f64), native byte order — both
#: ends live on the same machine.
SHARD_RECORD = struct.Struct("=Qd")

#: Matching NumPy dtype for zero-copy burst decode.
if HAVE_NUMPY:
    SHARD_RECORD_DTYPE = np.dtype([("id", "u8"), ("val", "f8")])
else:  # pragma: no cover - numpy-less stack
    SHARD_RECORD_DTYPE = None

#: Below this burst size the ndarray round-trip is not worth it (auto
#: mode only — an explicit ``use_numpy=True`` vectorizes every burst).
_VECTOR_MIN_BURST = 32

#: Idle poll granularity for the control pipe (seconds); doubles as the
#: worker's back-off when the ring is empty.
_IDLE_POLL = 0.0005

_NEG_INF = float("-inf")


def build_backend(spec: Any, metrics: Any = False) -> QMaxBase:
    """Materialize a shard backend from its picklable spec.

    ``spec`` is either a dict — ``{"backend": name, "q": int, "gamma":
    float, "track_evictions": bool, "kwargs": {...}}`` with names from
    :data:`repro.apps.reservoirs.BACKENDS` — or a zero-argument callable
    (usable with the ``fork`` start method, where pickling is bypassed).

    ``metrics`` follows the :func:`repro.obs.resolve_registry`
    convention and reaches ``qmax`` backends only (other reservoirs and
    factory-built backends are constructed as-is).
    """
    if callable(spec):
        return spec()
    kwargs = dict(spec.get("kwargs", ()))
    backend = spec.get("backend", "qmax")
    instrumented = getattr(metrics, "enabled", metrics is True)
    if backend == "qmax" and (kwargs or instrumented):
        from repro.core.qmax import QMax

        return QMax(
            spec["q"],
            spec.get("gamma", 0.25),
            track_evictions=spec.get("track_evictions", False),
            metrics=metrics,
            **kwargs,
        )
    return make_reservoir(
        backend,
        spec["q"],
        gamma=spec.get("gamma", 0.25),
        track_evictions=spec.get("track_evictions", False),
    )


def _decode_burst(blob: bytes, use_numpy: Optional[bool]):
    """One burst → (ids, vals) ready for ``add_many``.

    ``use_numpy`` is tri-state and honored consistently at every burst
    size: ``True`` vectorizes even bursts below ``_VECTOR_MIN_BURST``
    (the caller asked explicitly), ``False`` never vectorizes, and
    ``None`` auto-selects — NumPy when available and the burst is large
    enough to amortize the ndarray round-trip.
    """
    if HAVE_NUMPY and (
        use_numpy
        or (
            use_numpy is None
            and len(blob) >= _VECTOR_MIN_BURST * SHARD_RECORD.size
        )
    ):
        arr = np.frombuffer(blob, dtype=SHARD_RECORD_DTYPE)
        # ids become plain ints once (C-level tolist); values stay an
        # ndarray so the backend's vectorized Ψ filter gets them as-is.
        return arr["id"].tolist(), arr["val"]
    pairs = list(SHARD_RECORD.iter_unpack(blob))
    return [p[0] for p in pairs], [p[1] for p in pairs]


def _sync_shard_gauges(
    reg, backend: QMaxBase, consumed: int, pre_rejected: int = 0
) -> None:
    """Mirror the backend's cumulative counters into ``agg="sum"``
    gauges right before a snapshot ships, so merging every worker's
    snapshot yields stream-wide totals with zero hot-path cost.
    Ring-side prefilter rejects are folded into
    ``repro_shard_rejected`` — a prefiltered record is exactly one the
    backend would have rejected itself."""
    if not reg.enabled:
        return
    reg.gauge(
        "repro_shard_consumed",
        "records this shard drained from its ring", agg="sum",
    ).set(float(consumed))
    for attr, name, extra in (
        ("admitted", "repro_shard_admitted", 0),
        ("rejected", "repro_shard_rejected", pre_rejected),
    ):
        value = getattr(backend, attr, None)
        if value is not None:
            reg.gauge(
                name, f"records the shard backend {attr}", agg="sum",
            ).set(float(value + extra))


def _shard_stats(
    backend: QMaxBase, consumed: int, pre_rejected: int = 0
) -> Dict[str, Any]:
    stats: Dict[str, Any] = {
        "consumed": consumed,
        "backend": backend.name,
    }
    kern = getattr(backend, "kernel", None)
    if kern is not None:
        # Resolved in *this* process — a worker without the native
        # extension reports its actual fallback, not the request.
        stats["kernel"] = kern
    for attr in ("admitted", "rejected", "compactions"):
        value = getattr(backend, attr, None)
        if value is not None:
            stats[attr] = value
    if "rejected" in stats:
        # Stream-level total: backend rejects + ring-side prefilter
        # rejects, so admitted + rejected == consumed stays exact.
        stats["rejected"] += pre_rejected
    stats["prefilter_rejected"] = pre_rejected
    psi = getattr(backend, "_psi", None)
    if psi is not None:
        stats["psi"] = psi
    return stats


def shard_worker_main(
    ring_name: str,
    capacity: int,
    conn,
    spec: Any,
    burst: int = 512,
    use_numpy: Optional[bool] = None,
    metrics: bool = False,
) -> None:
    """Entry point of one shard worker process.

    Attaches the ring, builds the backend, acknowledges readiness, then
    alternates between draining record bursts and serving barrier
    commands until ``close``.  ``use_numpy`` is tri-state (see
    :func:`_decode_burst`); any value except ``False`` engages the
    zero-copy ``pop_view`` path when NumPy is available.  With
    ``metrics=True`` the worker keeps a process-local
    :class:`~repro.obs.MetricsRegistry` (shared with its backend) and
    answers the ``metrics`` op with a snapshot of it.
    """
    ring = None
    try:
        zero_copy = HAVE_NUMPY and use_numpy is not False
        ring = ShmRecordRing.attach(
            ring_name, capacity, SHARD_RECORD.size,
            dtype=SHARD_RECORD_DTYPE if zero_copy else None,
        )
        reg = MetricsRegistry() if metrics else NULL_REGISTRY
        backend = build_backend(spec, metrics=reg if metrics else False)
        # Ring-side admission prefilter: needs a backend that exposes Ψ
        # and no eviction tracking (rejects must then carry their ids).
        prefilter = (
            zero_copy
            and getattr(backend, "_psi", None) is not None
            and not getattr(backend, "_track_evictions", False)
        )
        pre_rejected = 0
        obs = reg if reg.enabled else None
        if obs is not None:
            obs_bursts = reg.counter(
                "repro_worker_bursts_total",
                "record bursts drained from the shm ring",
            )
            obs_wakeup = reg.histogram(
                "repro_worker_records_per_wakeup",
                "records decoded per non-empty ring drain",
                buckets=SIZE_BUCKETS,
            )
            obs_idle = reg.counter(
                "repro_worker_idle_polls_total",
                "drain cycles that found the ring empty",
            )
            obs_prefilter = reg.counter(
                "repro_worker_prefilter_rejected_total",
                "records rejected ring-side (vals <= Ψ̂) before the backend",
            )
        conn.send(("ready", backend.name))
        consumed = 0
        pending: Optional[tuple] = None
        while True:
            got = 0
            if zero_copy:
                view = ring.pop_view(burst)
                if view is not None:
                    got = len(view)
                    psi = backend._psi if prefilter else None
                    for part in view.parts:
                        pids = part["id"]
                        pvals = part["val"]
                        if psi is not None and psi != _NEG_INF:
                            mask = pvals > psi
                            kept = int(mask.sum())
                            if kept != pvals.shape[0]:
                                rej = pvals.shape[0] - kept
                                pre_rejected += rej
                                if obs is not None:
                                    obs_prefilter.inc(rej)
                                if not kept:
                                    continue
                                pids = pids[mask]
                                pvals = pvals[mask]
                        backend.add_many_array(pids, pvals)
                    view.commit()
                    # Unmasked columns alias ring memory; drop them so
                    # no buffer export outlives the burst (close() must
                    # be able to unmap the segment).
                    part = pids = pvals = None
            else:
                blob = ring.pop(burst)
                if blob:
                    ids, vals = _decode_burst(blob, use_numpy)
                    backend.add_many(ids, vals)
                    got = len(ids)
            if got:
                consumed += got
                if obs is not None:
                    obs_bursts.inc()
                    obs_wakeup.observe(got)
            if pending is None:
                # Drain eagerly; only look at the pipe when idle (or
                # between bursts, which conn.poll(0) makes free-ish).
                if got:
                    if not conn.poll(0):
                        continue
                else:
                    if obs is not None:
                        obs_idle.inc()
                    if not conn.poll(_IDLE_POLL):
                        continue
                pending = conn.recv()
            op, expected = pending
            if consumed < expected:
                if not got:
                    # Barrier records not visible yet (producer is
                    # mid-push); don't spin hot on an empty ring.
                    time.sleep(_IDLE_POLL)
                continue  # keep draining up to the barrier
            pending = None
            if op == "query":
                conn.send(backend.query())
            elif op == "items":
                conn.send(list(backend.items()))
            elif op == "take_evicted":
                conn.send(backend.take_evicted())
            elif op == "stats":
                conn.send(_shard_stats(backend, consumed, pre_rejected))
            elif op == "metrics":
                _sync_shard_gauges(reg, backend, consumed, pre_rejected)
                conn.send(reg.snapshot())
            elif op == "reset":
                backend.reset()
                conn.send(("reset", consumed))
            elif op == "close":
                conn.send({
                    "items": list(backend.items()),
                    "evicted": backend.take_evicted(),
                    "stats": _shard_stats(backend, consumed, pre_rejected),
                })
                return
            else:  # pragma: no cover - engine never sends unknown ops
                conn.send(("error", f"unknown op {op!r}"))
                return
    except (EOFError, KeyboardInterrupt):  # pragma: no cover
        pass  # engine went away; nothing to report to
    except Exception as exc:  # pragma: no cover - surfaced engine-side
        _LOG.error("shard worker failed: %r", exc)
        try:
            conn.send(("error", repr(exc)))
        except (OSError, ValueError):
            pass
    finally:
        if ring is not None:
            ring.close()
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass
