"""The multi-core sharded q-MAX engine.

:class:`ShardedQMaxEngine` hash-partitions flow ids across ``n_shards``
q-MAX backends and exposes the plain :class:`~repro.core.interface.
QMaxBase` interface over the ensemble.  Two execution modes:

* **process** — one worker process per shard, fed through a
  shared-memory record ring (:mod:`repro.parallel.shm_ring`) in
  ``add_many``-sized bursts; queries are answered by merging the
  per-shard retained sets (:mod:`repro.parallel.merge`).  This is the
  paper's OVS deployment shape: one shared-memory block per PMD
  thread, merged by a user-space reader.
* **inline** — the same hash partition over in-process backends, no
  threads or processes.  This is the graceful fallback for sandboxed
  runners (``mode="auto"`` drops to it whenever workers cannot be
  started, or when ``REPRO_NO_PROCS=1``) and doubles as the
  deterministic reference the differential tests compare against.

Sharding is by *id*: each shard retains the top-q of its sub-stream, so
the union of retained sets provably contains the global top-q (see
docs/PARALLEL.md for the argument and the tie-ordering caveat).  Space
is therefore ``n_shards ×`` a single structure — the standard
memory-for-cores trade of per-core measurement state.

Record encoding: ids travel as u64.  Python ints in ``[0, 2**63)``
(the common case: IP addresses, flow hashes, packet ids) are encoded
natively and vectorize end to end; any other hashable id is *interned*
engine-side into a token in ``[2**63, 2**64)`` and decoded on the way
out.  Values travel as float64 (the batch-path contract of
``QMaxBase.add_many`` already requires ordinary comparable floats).
The interning table lives for the engine's lifetime — long-running
streams of non-integer ids should pre-hash to ints instead.
"""

from __future__ import annotations

import logging
import os
import pickle
import time
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

from repro._compat import HAVE_NUMPY, np
from repro.core.interface import QMaxBase
from repro.errors import ConfigurationError, ParallelError
from repro.hashing.mix import key_to_u64, splitmix64
from repro.obs import merge_snapshots, resolve_registry
from repro.parallel.merge import merge_top_records
from repro.parallel.shm_ring import HAVE_SHM, ShmRecordRing
from repro.parallel.worker import (
    SHARD_RECORD,
    SHARD_RECORD_DTYPE,
    build_backend,
    shard_worker_main,
)
from repro.types import Item, ItemId, TopItems, Value

_LOG = logging.getLogger("repro.parallel.engine")

_MASK64 = (1 << 64) - 1

#: Interned (non-native-int) ids live in the top half of the u64 space.
TOKEN_BASE = 1 << 63

#: Seconds a barrier (query/stats/close) waits for one shard's answer.
_BARRIER_TIMEOUT = 60.0

#: Seconds to wait for each worker's ready handshake.
_READY_TIMEOUT = 20.0


def _shard_hash_params(seed: int):
    """Multiply-shift parameters shared by scalar and vector paths."""
    return splitmix64(seed, 0) | 1, splitmix64(seed, 1)


def partition_stream(
    ids: Sequence[ItemId],
    vals: Sequence[Value],
    n_shards: int,
    shard_seed: int = 0x5EED,
):
    """Pre-partition an (ids, vals) stream by flow-id hash.

    Returns ``n_shards`` pairs of (ids, vals) lists using exactly the
    engine's shard assignment — the NIC-RSS analogue, used by the
    scaling benchmark to build per-shard sub-streams outside the timed
    region (mirroring ``measure_throughput_batched``'s convention that
    bursts arrive already materialized).
    """
    if n_shards < 1:
        raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
    a, b = _shard_hash_params(shard_seed)
    out_ids: List[List[ItemId]] = [[] for _ in range(n_shards)]
    out_vals: List[List[Value]] = [[] for _ in range(n_shards)]
    for item_id, val in zip(ids, vals):
        key = (
            item_id
            if type(item_id) is int and 0 <= item_id < TOKEN_BASE
            else key_to_u64(item_id, shard_seed)
        )
        s = (((a * key + b) & _MASK64) >> 32) % n_shards
        out_ids[s].append(item_id)
        out_vals[s].append(val)
    return list(zip(out_ids, out_vals))


class ShardedQMaxEngine(QMaxBase):
    """Hash-sharded q-MAX over worker processes (or inline fallback).

    Parameters
    ----------
    q:
        Global top-q target.  Every shard retains a full local top-q
        (required for correctness under arbitrary skew).  May be
        omitted when ``backend_factory`` is given (probed from it).
    n_shards:
        Number of shards / worker processes.
    backend:
        Shard backend name (see :data:`repro.apps.reservoirs.BACKENDS`);
        ``"qmax"`` accepts extra ``backend_kwargs`` (``step_batch``,
        ``use_numpy``, ``pivot_sample``, ...).
    backend_factory:
        Alternative to ``backend``: a zero-argument callable building
        one shard backend.  Requires the ``fork`` start method for
        process mode unless the callable pickles; otherwise ``auto``
        falls back inline.
    mode:
        ``"process"`` (raise :class:`ParallelError` if impossible),
        ``"inline"``, or ``"auto"`` (process when available).
    ring_capacity / burst:
        Per-shard ring size and worker drain burst, in records.
    track_evictions:
        Forwarded to shard backends; :meth:`take_evicted` drains the
        union, and :meth:`close` reports the final remainder instead of
        dropping it.
    shard_seed:
        Seed of the flow → shard multiply-shift hash.
    kernel:
        Maintenance kernel name forwarded to every qmax shard
        (``stepwise``/``numpy``/``native``, see
        :mod:`repro.core.kernels`); each worker resolves it locally, so
        a missing extension degrades per process and
        :meth:`shard_stats` reports what each shard actually runs.
        Only valid with ``backend="qmax"``.
    instrument:
        Inline mode only: record cumulative per-shard service seconds
        in :attr:`shard_seconds` (the scaling benchmark's probe).
    metrics:
        :func:`repro.obs.resolve_registry` convention — ``None`` uses
        the process default (off unless ``REPRO_METRICS=1``), ``False``
        forces off, a registry wires a private one.  When enabled,
        workers keep their own registries (shared with their backends)
        and :meth:`metrics_snapshot` returns the engine-local view
        merged with every worker's snapshot.
    """

    def __init__(
        self,
        q: Optional[int] = None,
        n_shards: int = 1,
        backend: str = "qmax",
        gamma: float = 0.25,
        track_evictions: bool = False,
        mode: str = "auto",
        ring_capacity: int = 1 << 15,
        burst: int = 512,
        shard_seed: int = 0x5EED,
        backend_factory: Optional[Callable[[], QMaxBase]] = None,
        use_numpy: Optional[bool] = None,
        backend_kwargs: Optional[Dict[str, Any]] = None,
        kernel: Optional[str] = None,
        instrument: bool = False,
        metrics=None,
    ) -> None:
        if n_shards < 1:
            raise ConfigurationError(
                f"n_shards must be >= 1, got {n_shards}"
            )
        if mode not in ("auto", "process", "inline"):
            raise ConfigurationError(
                f"mode must be auto/process/inline, got {mode!r}"
            )
        if burst < 1:
            raise ConfigurationError(f"burst must be >= 1, got {burst}")
        if use_numpy and not HAVE_NUMPY:
            raise ConfigurationError(
                "use_numpy=True but numpy is not installed "
                "(pip install .[fast])"
            )
        if kernel is not None:
            if backend_factory is not None or backend != "qmax":
                raise ConfigurationError(
                    "kernel= applies to the qmax backend only; bake it "
                    "into backend_factory / backend_kwargs instead"
                )
            backend_kwargs = dict(backend_kwargs or {})
            backend_kwargs["kernel"] = kernel
        self._metrics = resolve_registry(metrics)
        if backend_factory is not None:
            self._spec: Any = backend_factory
            probe = backend_factory()
        else:
            if q is None:
                raise ConfigurationError(
                    "q is required unless backend_factory is given"
                )
            self._spec = {
                "backend": backend,
                "q": q,
                "gamma": gamma,
                "track_evictions": track_evictions,
                "kwargs": dict(backend_kwargs or {}),
            }
            probe = build_backend(self._spec)
        self.q = probe.q
        self.n_shards = n_shards
        self.burst = burst
        self.shard_seed = shard_seed
        self._a, self._b = _shard_hash_params(shard_seed)
        self._track_evictions = track_evictions or bool(
            getattr(probe, "_track_evictions", False)
        )
        self._use_numpy = HAVE_NUMPY if use_numpy is None else use_numpy
        # Tri-state flag forwarded to workers: None = auto, True =
        # vectorize every burst, False = pure path (see _decode_burst).
        self._use_numpy_opt = use_numpy if HAVE_NUMPY else False
        self._inner_name = probe.name
        self._slots_per_shard = getattr(probe, "space_slots", 0)
        self._ring_capacity = ring_capacity
        self._instrument = instrument
        self._tokens: Dict[ItemId, int] = {}
        self._token_ids: List[ItemId] = []
        self._evicted: List[Item] = []
        self._pushed: List[int] = [0] * n_shards
        self._closed = False
        self._final: Optional[List[List[Item]]] = None
        self._backends: List[QMaxBase] = []
        self._procs: List[Any] = []
        self._conns: List[Any] = []
        self._rings: List[ShmRecordRing] = []
        self.shard_seconds: List[float] = [0.0] * n_shards
        self.mode = self._resolve_mode(mode, probe)

    # ------------------------------------------------------------------
    # Startup / mode resolution.
    # ------------------------------------------------------------------

    def _resolve_mode(self, mode: str, probe: QMaxBase) -> str:
        forced_off = os.environ.get("REPRO_NO_PROCS", "") not in ("", "0")
        if mode == "inline" or (mode == "auto" and forced_off):
            self._start_inline(probe)
            return "inline"
        try:
            self._start_processes()
            _LOG.debug(
                "started %d shard worker(s), ring capacity %d",
                self.n_shards, self._ring_capacity,
            )
            return "process"
        except Exception as exc:
            self._teardown_processes(force=True)
            if mode == "process":
                if isinstance(exc, ParallelError):
                    raise
                raise ParallelError(
                    f"cannot start shard workers: {exc!r}"
                ) from exc
            _LOG.warning(
                "process mode unavailable (%r); falling back to inline "
                "sharding", exc,
            )
            self._start_inline(probe)
            return "inline"

    def _start_inline(self, probe: QMaxBase) -> None:
        if self._metrics.enabled and not callable(self._spec):
            # All inline backends share the engine registry: counters
            # are get-or-create by name, so per-shard increments land in
            # the same instruments — matching the summed view a merge of
            # per-worker snapshots produces in process mode.
            self._backends = [
                build_backend(self._spec, metrics=self._metrics)
                for _ in range(self.n_shards)
            ]
            return
        self._backends = [probe]
        for _ in range(self.n_shards - 1):
            self._backends.append(build_backend(self._spec))

    def _start_processes(self) -> None:
        if not HAVE_SHM:
            raise ParallelError("shared memory unavailable")
        import multiprocessing as mp

        methods = mp.get_all_start_methods()
        ctx = mp.get_context("fork" if "fork" in methods else "spawn")
        if ctx.get_start_method() != "fork" and callable(self._spec):
            # spawn pickles the target's args; verify the factory makes
            # it across before committing to worker processes.
            pickle.dumps(self._spec)
        rec_size = SHARD_RECORD.size
        # Dtype-map the rings whenever the vectorized path may run, so
        # push_array/pop_view work on both ends (workers re-map on
        # attach; the pure-Python blob framing stays interchangeable).
        if HAVE_NUMPY and self._use_numpy_opt is not False:
            from repro.parallel.worker import SHARD_RECORD_DTYPE as _dtype
        else:
            _dtype = None
        try:
            for _ in range(self.n_shards):
                self._rings.append(
                    ShmRecordRing.create(
                        self._ring_capacity, rec_size, dtype=_dtype
                    )
                )
            for s in range(self.n_shards):
                parent, child = ctx.Pipe()
                proc = ctx.Process(
                    target=shard_worker_main,
                    args=(
                        self._rings[s].name,
                        self._ring_capacity,
                        child,
                        self._spec,
                        self.burst,
                        self._use_numpy_opt,
                        self._metrics.enabled,
                    ),
                    daemon=True,
                    name=f"qmax-shard-{s}",
                )
                proc.start()
                child.close()
                self._procs.append(proc)
                self._conns.append(parent)
            for s, conn in enumerate(self._conns):
                if not conn.poll(_READY_TIMEOUT):
                    raise ParallelError(
                        f"shard worker {s} did not come up within "
                        f"{_READY_TIMEOUT:g}s"
                    )
                resp = conn.recv()
                if not (isinstance(resp, tuple) and resp[0] == "ready"):
                    raise ParallelError(
                        f"shard worker {s} failed to start: {resp!r}"
                    )
        except Exception:
            raise

    def _teardown_processes(self, force: bool = False) -> None:
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        for proc in self._procs:
            if proc.is_alive():
                if force:
                    proc.terminate()
                proc.join(timeout=5.0)
                if proc.is_alive():  # pragma: no cover - last resort
                    proc.kill()
                    proc.join(timeout=5.0)
        for ring in self._rings:
            try:
                ring.close()
                ring.unlink()
            except (OSError, ValueError):  # pragma: no cover
                pass
        self._conns = []
        self._procs = []
        self._rings = []

    # ------------------------------------------------------------------
    # Sharding and id codec.
    # ------------------------------------------------------------------

    def _encode_id(self, item_id: ItemId) -> int:
        if type(item_id) is int and 0 <= item_id < TOKEN_BASE:
            return item_id
        tok = self._tokens.get(item_id)
        if tok is None:
            tok = TOKEN_BASE + len(self._token_ids)
            self._tokens[item_id] = tok
            self._token_ids.append(item_id)
        return tok

    def _decode_id(self, tok: int) -> ItemId:
        if tok >= TOKEN_BASE:
            return self._token_ids[tok - TOKEN_BASE]
        return tok

    def _decode_items(self, items: Sequence[Item]) -> List[Item]:
        decode = self._decode_id
        return [(decode(tok), val) for tok, val in items]

    def shard_of(self, item_id: ItemId) -> int:
        """Which shard handles this id (flow-sticky, like NIC RSS)."""
        if type(item_id) is int and 0 <= item_id < TOKEN_BASE:
            key = item_id
        else:
            key = key_to_u64(item_id, self.shard_seed)
        return (((self._a * key + self._b) & _MASK64) >> 32) % self.n_shards

    def _shard_of_u64(self, key: int) -> int:
        return (((self._a * key + self._b) & _MASK64) >> 32) % self.n_shards

    # ------------------------------------------------------------------
    # Hot path.
    # ------------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise ParallelError("engine is closed")

    def add(self, item_id: ItemId, val: Value) -> None:
        """Route one item to its shard (prefer :meth:`add_many`)."""
        self._check_open()
        if self.mode == "inline":
            if self.n_shards == 1:
                self._backends[0].add(item_id, val)
            else:
                self._backends[self.shard_of(item_id)].add(item_id, val)
            return
        tok = self._encode_id(item_id)
        s = self._shard_of_u64(tok)
        self._push(s, SHARD_RECORD.pack(tok, val), 1)

    def _push(self, s: int, blob: bytes, n: int) -> None:
        proc = self._procs[s]
        self._rings[s].push(blob, should_abort=lambda: not proc.is_alive())
        self._pushed[s] += n

    def _push_array(self, s: int, ids, vals) -> None:
        """Zero-copy dispatch: columns pack straight into ring memory."""
        proc = self._procs[s]
        self._rings[s].push_array(
            ids, vals, should_abort=lambda: not proc.is_alive()
        )
        self._pushed[s] += len(ids)

    def add_many(self, ids: Sequence[ItemId], vals: Sequence[Value]) -> None:
        """Partition a batch by shard hash and dispatch per-shard bursts.

        Retained-set semantics match a single backend fed the
        concatenated stream (same value multiset; docs/PARALLEL.md
        covers tie ordering) because per-shard arrival order — the only
        order the hash partition guarantees — is preserved.
        """
        self._check_open()
        n = len(ids)
        if n != len(vals):
            raise ConfigurationError(
                f"batch length mismatch: {n} ids vs {len(vals)} vals"
            )
        if n == 0:
            return
        if self.mode == "inline":
            self._add_many_inline(ids, vals)
            return
        if self._use_numpy and n >= 32 and self._add_many_vector(ids, vals):
            return
        self._add_many_records(ids, vals)

    def add_many_array(self, ids, vals) -> None:
        """Array-column batch: native u64/f64 columns qualify directly
        for the vectorized dispatch (``np.asarray`` over an ndarray is
        free); anything else degrades through the base conversion."""
        if self.mode == "process" and self._use_numpy and len(ids) >= 32:
            self.add_many(ids, vals)
            return
        QMaxBase.add_many_array(self, ids, vals)

    def _add_many_vector(self, ids, vals) -> bool:
        """Vectorized dispatch: hash, partition, and pack each shard's
        burst without touching individual records in Python.  Returns
        False when the ids don't qualify (caller falls back).

        With a dtype-mapped ring the per-shard columns go through
        :meth:`~repro.parallel.shm_ring.ShmRecordRing.push_array`
        straight into the mapped buffer — the only copy on the whole
        producer side is the write into shared memory itself.  A ring
        created without a dtype (pure stack) takes the packed-blob
        fallback.
        """
        try:
            arr = np.asarray(ids)
        except (ValueError, TypeError):
            return False  # mixed-type ids don't form an array
        kind = arr.dtype.kind
        if kind == "i":
            if arr.ndim != 1 or not (arr >= 0).all():
                return False
            arr = arr.astype(np.uint64, copy=False)
        elif kind != "u" or arr.ndim != 1:
            return False
        if not (arr < np.uint64(TOKEN_BASE)).all():
            return False
        varr = np.asarray(vals, dtype=np.float64)
        zero_copy = self._rings[0].dtype is not None

        if self.n_shards == 1:
            if zero_copy:
                self._push_array(0, arr, varr)
            else:
                rec = np.empty(arr.shape[0], dtype=SHARD_RECORD_DTYPE)
                rec["id"] = arr
                rec["val"] = varr
                self._push(0, rec.tobytes(), arr.shape[0])
            return True
        mixed = (arr * np.uint64(self._a) + np.uint64(self._b)) >> np.uint64(
            32
        )
        shards = mixed % np.uint64(self.n_shards)
        for s in range(self.n_shards):
            idx = np.flatnonzero(shards == s)
            if not idx.shape[0]:
                continue
            if zero_copy:
                self._push_array(s, arr[idx], varr[idx])
            else:
                rec = np.empty(idx.shape[0], dtype=SHARD_RECORD_DTYPE)
                rec["id"] = arr[idx]
                rec["val"] = varr[idx]
                self._push(s, rec.tobytes(), idx.shape[0])
        return True

    def _add_many_records(self, ids, vals) -> None:
        """Pure-Python dispatch (non-native ids, tiny batches)."""
        pack = SHARD_RECORD.pack
        encode = self._encode_id
        shard = self._shard_of_u64
        parts: List[List[bytes]] = [[] for _ in range(self.n_shards)]
        for i in range(len(ids)):
            tok = encode(ids[i])
            parts[shard(tok)].append(pack(tok, vals[i]))
        for s, chunk in enumerate(parts):
            if chunk:
                self._push(s, b"".join(chunk), len(chunk))

    def _add_many_inline(self, ids, vals) -> None:
        if self.n_shards == 1:
            if self._instrument:
                start = time.perf_counter()
                self._backends[0].add_many(ids, vals)
                self.shard_seconds[0] += time.perf_counter() - start
            else:
                self._backends[0].add_many(ids, vals)
            return
        shard_of = self.shard_of
        part_ids: List[List[ItemId]] = [[] for _ in range(self.n_shards)]
        part_vals: List[List[Value]] = [[] for _ in range(self.n_shards)]
        for i in range(len(ids)):
            s = shard_of(ids[i])
            part_ids[s].append(ids[i])
            part_vals[s].append(vals[i])
        for s in range(self.n_shards):
            if not part_ids[s]:
                continue
            if self._instrument:
                start = time.perf_counter()
                self._backends[s].add_many(part_ids[s], part_vals[s])
                self.shard_seconds[s] += time.perf_counter() - start
            else:
                self._backends[s].add_many(part_ids[s], part_vals[s])

    # ------------------------------------------------------------------
    # Barriers.
    # ------------------------------------------------------------------

    def _command(self, op: str) -> List[Any]:
        """Broadcast a barrier command and gather per-shard answers."""
        conns = self._conns
        for s, conn in enumerate(conns):
            try:
                conn.send((op, self._pushed[s]))
            except (OSError, BrokenPipeError) as exc:
                raise ParallelError(
                    f"shard worker {s} is gone ({exc!r})"
                ) from exc
        responses: List[Any] = []
        for s, conn in enumerate(conns):
            if not conn.poll(_BARRIER_TIMEOUT):
                raise ParallelError(
                    f"shard worker {s} did not answer {op!r} within "
                    f"{_BARRIER_TIMEOUT:g}s"
                )
            try:
                resp = conn.recv()
            except EOFError as exc:
                raise ParallelError(
                    f"shard worker {s} died during {op!r}"
                ) from exc
            if (
                isinstance(resp, tuple)
                and len(resp) == 2
                and resp[0] == "error"
            ):
                raise ParallelError(f"shard worker {s} failed: {resp[1]}")
            responses.append(resp)
        return responses

    def sync(self) -> List[Dict[str, Any]]:
        """Barrier: wait until every shard has consumed everything
        pushed so far; returns per-shard stats dicts."""
        self._check_open()
        if self.mode == "inline":
            return self.shard_stats()
        return self._command("stats")

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------

    def _retained_parts(self, full: bool) -> List[List[Item]]:
        if self._closed:
            assert self._final is not None
            return self._final
        if self.mode == "inline":
            return [
                list(b.items()) if full else b.query()
                for b in self._backends
            ]
        op = "items" if full else "query"
        return [self._decode_items(p) for p in self._command(op)]

    def items(self) -> Iterator[Item]:
        """All live items across shards (union of per-shard live sets)."""
        for part in self._retained_parts(full=True):
            yield from part

    def query(self) -> TopItems:
        """Global top-q: merge the per-shard top-q retained sets.

        The merge is record-level (:func:`merge_top_records`): a stream
        that repeats an id produces several records, all landing in the
        same shard, and a single backend would retain each separately —
        so no id dedup happens here."""
        return merge_top_records(self._retained_parts(full=False), self.q)

    def take_evicted(self) -> List[Item]:
        """Drain evictions across shards (plus the close-time report)."""
        drained = self._evicted
        self._evicted = []
        if self._closed:
            return drained
        if self.mode == "inline":
            for b in self._backends:
                drained.extend(b.take_evicted())
        else:
            for part in self._command("take_evicted"):
                drained.extend(self._decode_items(part))
        return drained

    def reset(self) -> None:
        """Reset every shard (barrier) and the id interning table."""
        self._check_open()
        if self.mode == "inline":
            for b in self._backends:
                b.reset()
        else:
            self._command("reset")
        self._tokens = {}
        self._token_ids = []
        self._evicted = []
        self.shard_seconds = [0.0] * self.n_shards

    def shard_stats(self) -> List[Dict[str, Any]]:
        """Per-shard counters (consumed/admitted/rejected/Ψ where the
        backend exposes them)."""
        self._check_open()
        if self.mode == "inline":
            out = []
            for s, b in enumerate(self._backends):
                stats: Dict[str, Any] = {"backend": b.name}
                kern = getattr(b, "kernel", None)
                if kern is not None:
                    stats["kernel"] = kern
                for attr in ("admitted", "rejected", "compactions"):
                    val = getattr(b, attr, None)
                    if val is not None:
                        stats[attr] = val
                out.append(stats)
            return out
        return self._command("stats")

    def stats(self) -> Dict[str, Any]:
        """Engine-level counters: mode, per-shard pushed, ring stalls."""
        return {
            "mode": self.mode,
            "n_shards": self.n_shards,
            "pushed": list(self._pushed),
            "stalls": [r.stalls for r in self._rings] or None,
            "interned_ids": len(self._token_ids),
        }

    # ------------------------------------------------------------------
    # Observability.
    # ------------------------------------------------------------------

    @property
    def metrics_registry(self):
        """The engine-local registry (``NULL_REGISTRY`` when disabled)."""
        return self._metrics

    def _sync_engine_gauges(self) -> None:
        """Refresh producer-side gauges from existing counters; called
        only when a snapshot is taken, never on the hot path."""
        reg = self._metrics
        for s in range(self.n_shards):
            reg.gauge(
                "repro_shard_pushed",
                "records pushed to this shard's ring (or inline backend)",
                agg="sum", shard=str(s),
            ).set(float(self._pushed[s]))
        for s, ring in enumerate(self._rings):
            reg.gauge(
                "repro_ring_stalls",
                "producer stalls waiting for ring space (backpressure)",
                agg="sum", shard=str(s),
            ).set(float(ring.stalls))
            reg.gauge(
                "repro_ring_occupancy",
                "records currently queued in the shard ring",
                agg="max", shard=str(s),
            ).set(float(len(ring)))
        reg.gauge(
            "repro_engine_interned_ids",
            "non-native flow ids interned into u64 tokens", agg="sum",
        ).set(float(len(self._token_ids)))
        if self.mode == "inline" and not self._closed:
            # Inline shards have no worker registries; mirror their
            # backend counters here the way workers do theirs.
            consumed = admitted = rejected = 0
            have = False
            for b in self._backends:
                a = getattr(b, "admitted", None)
                r = getattr(b, "rejected", None)
                if a is not None:
                    admitted += a
                    have = True
                if r is not None:
                    rejected += r
                    have = True
                consumed += (a or 0) + (r or 0)
            if have:
                reg.gauge(
                    "repro_shard_consumed",
                    "records this shard drained from its ring", agg="sum",
                ).set(float(consumed))
                reg.gauge(
                    "repro_shard_admitted",
                    "records the shard backend admitted", agg="sum",
                ).set(float(admitted))
                reg.gauge(
                    "repro_shard_rejected",
                    "records the shard backend rejected", agg="sum",
                ).set(float(rejected))

    def metrics_snapshot(self) -> Dict[str, Any]:
        """Merged observability snapshot across the whole engine.

        Process mode runs a ``metrics`` barrier (every worker syncs its
        shard gauges and ships its registry snapshot) and merges those
        with the engine-local registry via
        :func:`repro.obs.merge_snapshots`; inline mode and closed
        engines return the engine-local view directly.
        """
        reg = self._metrics
        if not reg.enabled:
            return reg.snapshot()
        self._sync_engine_gauges()
        snaps = [reg.snapshot()]
        if self.mode == "process" and not self._closed:
            snaps.extend(
                s for s in self._command("metrics")
                if isinstance(s, dict) and s.get("metrics")
            )
        return merge_snapshots(snaps) if len(snaps) > 1 else snaps[0]

    # ------------------------------------------------------------------
    # Teardown.
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Drain every shard, collect final retained sets **and** the
        eviction-log remainder (nothing is silently dropped), then stop
        workers and free shared memory.  Idempotent; queries keep
        working on the frozen final state."""
        if self._closed:
            return
        if self.mode == "inline":
            self._final = [list(b.items()) for b in self._backends]
            if self._track_evictions:
                for b in self._backends:
                    self._evicted.extend(b.take_evicted())
            self._closed = True
            return
        try:
            finals = self._command("close")
            self._final = [self._decode_items(f["items"]) for f in finals]
            for f in finals:
                self._evicted.extend(self._decode_items(f["evicted"]))
        finally:
            self._closed = True
            self._teardown_processes()

    def __enter__(self) -> "ShardedQMaxEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter shutdown paths
        try:
            if not self._closed and self.mode == "process":
                self._teardown_processes(force=True)
                self._closed = True
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    @property
    def space_slots(self) -> int:
        """Total slots across shards (``n_shards ×`` one structure)."""
        return self.n_shards * self._slots_per_shard

    @property
    def name(self) -> str:
        return f"sharded-{self.n_shards}x[{self._inner_name}]/{self.mode}"

    def check_invariants(self) -> None:
        if self.mode == "inline" and not self._closed:
            for b in self._backends:
                b.check_invariants()
