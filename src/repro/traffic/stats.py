"""Trace statistics: validating the synthetic-trace substitution.

DESIGN.md §2 argues the synthetic traces preserve the statistics that
drive the paper's results — flow-size skew, flow counts, packet-size
mixture, burstiness.  This module computes those statistics from any
packet sequence (synthetic or read from a pcap) so the claim is
checkable, and so users can calibrate profiles against their own
traces.
"""

from __future__ import annotations

import bisect
import collections
import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro._compat import HAVE_NUMPY, np
from repro.errors import ConfigurationError
from repro.traffic.packet import Packet


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of a packet trace."""

    n_packets: int
    n_flows: int
    n_sources: int
    total_bytes: int
    mean_packet_size: float
    top10_flow_share: float
    zipf_alpha: float
    burst_run_fraction: float
    duration_seconds: float

    def as_rows(self) -> List[Tuple[str, str]]:
        """(label, value) rows for table printing."""
        return [
            ("packets", f"{self.n_packets:,}"),
            ("flows", f"{self.n_flows:,}"),
            ("sources", f"{self.n_sources:,}"),
            ("bytes", f"{self.total_bytes:,}"),
            ("mean packet size", f"{self.mean_packet_size:.1f} B"),
            ("top-10 flow share", f"{self.top10_flow_share:.1%}"),
            ("zipf alpha (fit)", f"{self.zipf_alpha:.2f}"),
            ("burst run fraction", f"{self.burst_run_fraction:.1%}"),
            ("duration", f"{self.duration_seconds:.3f} s"),
        ]


def fit_zipf_alpha(counts: Sequence[int]) -> float:
    """Least-squares slope of log(frequency) vs log(rank).

    A standard quick estimator of the Zipf exponent: fit
    ``log f_r = c − α·log r`` over the ranked flow sizes (restricted to
    the head, where the power law lives).
    """
    ranked = sorted((c for c in counts if c > 0), reverse=True)
    if len(ranked) < 3:
        raise ConfigurationError(
            "need at least 3 distinct flows to fit a Zipf exponent"
        )
    head = ranked[: max(10, len(ranked) // 10)]
    if HAVE_NUMPY:
        log_rank = np.log(np.arange(1, len(head) + 1, dtype=np.float64))
        log_freq = np.log(np.asarray(head, dtype=np.float64))
        slope, _intercept = np.polyfit(log_rank, log_freq, 1)
        return float(-slope)
    xs = [math.log(r) for r in range(1, len(head) + 1)]
    ys = [math.log(c) for c in head]
    n = len(xs)
    mx = sum(xs) / n
    my = sum(ys) / n
    var = sum((x - mx) ** 2 for x in xs)
    cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    return -(cov / var)


def burst_run_fraction(packets: Sequence[Packet]) -> float:
    """Fraction of adjacent packet pairs belonging to the same flow."""
    if len(packets) < 2:
        return 0.0
    same = sum(
        1
        for a, b in zip(packets, packets[1:])
        if a.five_tuple == b.five_tuple
    )
    return same / (len(packets) - 1)


def compute_stats(packets: Sequence[Packet]) -> TraceStats:
    """All trace statistics in one pass-ish."""
    if not packets:
        raise ConfigurationError("empty trace")
    flow_counts = collections.Counter(p.five_tuple for p in packets)
    sources = {p.src_ip for p in packets}
    sizes = [p.size for p in packets]
    ranked = [c for _f, c in flow_counts.most_common()]
    top10 = sum(ranked[:10]) / len(packets)
    return TraceStats(
        n_packets=len(packets),
        n_flows=len(flow_counts),
        n_sources=len(sources),
        total_bytes=sum(sizes),
        mean_packet_size=sum(sizes) / len(packets),
        top10_flow_share=top10,
        zipf_alpha=fit_zipf_alpha(ranked),
        burst_run_fraction=burst_run_fraction(packets),
        duration_seconds=(
            packets[-1].timestamp - packets[0].timestamp
        ),
    )


def size_histogram(
    packets: Sequence[Packet], bins: Sequence[int] = (64, 128, 256, 512,
                                                      1024, 1500)
) -> Dict[str, float]:
    """Packet-size mass per bucket (fractions summing to 1)."""
    if not packets:
        raise ConfigurationError("empty trace")
    edges = sorted(bins)
    labels = [f"<={edge}" for edge in edges] + [f">{edges[-1]}"]
    counts = [0] * (len(edges) + 1)
    for pkt in packets:
        for i, edge in enumerate(edges):
            if pkt.size <= edge:
                counts[i] += 1
                break
        else:
            counts[-1] += 1
    total = len(packets)
    return {label: count / total for label, count in zip(labels, counts)}


def flow_size_ccdf(
    packets: Sequence[Packet], points: int = 20
) -> List[Tuple[int, float]]:
    """CCDF of flow sizes: (size s, fraction of flows with >= s pkts)."""
    flow_counts = collections.Counter(p.five_tuple for p in packets)
    sizes = sorted(flow_counts.values())
    if not sizes:
        raise ConfigurationError("empty trace")
    top = sizes[-1]
    num = min(points, top)
    if num < 2:
        thresholds = [1]
    else:
        # Geometric spacing from 1 to the largest flow, deduplicated.
        step = math.log(top) / (num - 1)
        thresholds = sorted({
            int(math.exp(k * step)) for k in range(num)
        })
    n = len(sizes)
    out = []
    for t in thresholds:
        # sizes is sorted ascending: count of flows >= t.
        lo = bisect.bisect_left(sizes, t)
        out.append((t, (n - lo) / n))
    return out
