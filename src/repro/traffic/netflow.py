"""NetFlow v5 export encoding and decoding.

Measurement results leave switches as flow records; NetFlow v5 is the
lingua franca collectors speak.  This module implements the v5 export
packet format from scratch (header + up to 30 fixed 48-byte records)
so that measured flow tables — e.g. a PBA sample or the heavy hitters
of a window — can be exported to and ingested from standard tooling.

Only the fields our pipeline populates are round-tripped faithfully;
the rest are zeroed on encode and ignored on decode, as collectors do.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.errors import ConfigurationError, NetFlowDecodeError

#: NetFlow v5 constants.
VERSION = 5
MAX_RECORDS_PER_PACKET = 30

_HEADER = struct.Struct("!HHIIIIBBH")
_RECORD = struct.Struct("!IIIHHIIIIHHBBBBHHBBH")

assert _HEADER.size == 24
assert _RECORD.size == 48


@dataclass(frozen=True)
class FlowRecord:
    """One exported flow."""

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    proto: int
    packets: int
    octets: int
    first_ms: int = 0  # SysUptime at flow start (ms)
    last_ms: int = 0

    def __post_init__(self) -> None:
        for field, bits in (
            ("src_ip", 32), ("dst_ip", 32), ("src_port", 16),
            ("dst_port", 16), ("proto", 8), ("packets", 32),
            ("octets", 32), ("first_ms", 32), ("last_ms", 32),
        ):
            value = getattr(self, field)
            if not 0 <= value < (1 << bits):
                raise ConfigurationError(
                    f"{field}={value} out of range for u{bits}"
                )


def encode_packets(
    records: Sequence[FlowRecord],
    sys_uptime_ms: int = 0,
    unix_secs: int = 0,
    engine_id: int = 0,
) -> List[bytes]:
    """Encode records into one or more v5 export packets."""
    packets: List[bytes] = []
    flow_sequence = 0
    for start in range(0, len(records), MAX_RECORDS_PER_PACKET):
        chunk = records[start:start + MAX_RECORDS_PER_PACKET]
        header = _HEADER.pack(
            VERSION,
            len(chunk),
            sys_uptime_ms & 0xFFFFFFFF,
            unix_secs & 0xFFFFFFFF,
            0,  # unix_nsecs
            flow_sequence,
            0,  # engine_type
            engine_id & 0xFF,
            0,  # sampling interval
        )
        body = b"".join(
            _RECORD.pack(
                r.src_ip,
                r.dst_ip,
                0,  # nexthop
                0,  # input ifindex
                0,  # output ifindex
                r.packets,
                r.octets,
                r.first_ms,
                r.last_ms,
                r.src_port,
                r.dst_port,
                0,  # pad1
                0,  # tcp flags
                r.proto,
                0,  # tos
                0,  # src AS
                0,  # dst AS
                0,  # src mask
                0,  # dst mask
                0,  # pad2
            )
            for r in chunk
        )
        packets.append(header + body)
        flow_sequence += len(chunk)
    return packets


def decode_packet(data: bytes) -> List[FlowRecord]:
    """Decode one v5 export packet into flow records.

    Any malformation — truncated header, wrong version, a record count
    exceeding the v5 maximum, or a record area shorter than the count
    promises — raises :class:`NetFlowDecodeError` (never a bare
    ``struct.error``), so a collector can count-and-drop garbage
    datagrams instead of crashing.
    """
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise NetFlowDecodeError(
            f"expected bytes, got {type(data).__name__}"
        )
    if len(data) < _HEADER.size:
        raise NetFlowDecodeError(
            f"truncated NetFlow header: need {_HEADER.size} bytes, "
            f"got {len(data)}"
        )
    try:
        (version, count, _uptime, _secs, _nsecs, _seq, _etype, _eid,
         _sampling) = _HEADER.unpack_from(data)
    except struct.error as exc:  # pragma: no cover - length checked
        raise NetFlowDecodeError(f"undecodable NetFlow header: {exc}") from exc
    if version != VERSION:
        raise NetFlowDecodeError(
            f"unsupported NetFlow version {version}"
        )
    if count > MAX_RECORDS_PER_PACKET:
        raise NetFlowDecodeError(
            f"record count {count} exceeds the v5 maximum of "
            f"{MAX_RECORDS_PER_PACKET}"
        )
    needed = _HEADER.size + count * _RECORD.size
    if len(data) < needed:
        raise NetFlowDecodeError(
            f"truncated NetFlow packet: need {needed} bytes, "
            f"got {len(data)}"
        )
    records = []
    offset = _HEADER.size
    for _ in range(count):
        try:
            (src, dst, _nh, _inif, _outif, pkts, octets, first, last,
             sport, dport, _pad, _flags, proto, _tos, _sas, _das, _smask,
             _dmask, _pad2) = _RECORD.unpack_from(data, offset)
        except struct.error as exc:  # pragma: no cover - length checked
            raise NetFlowDecodeError(
                f"undecodable NetFlow record at offset {offset}: {exc}"
            ) from exc
        offset += _RECORD.size
        records.append(
            FlowRecord(
                src_ip=src, dst_ip=dst, src_port=sport, dst_port=dport,
                proto=proto, packets=pkts, octets=octets,
                first_ms=first, last_ms=last,
            )
        )
    return records


def decode_stream(packets: Iterable[bytes]) -> List[FlowRecord]:
    """Decode a sequence of export packets into one record list."""
    records: List[FlowRecord] = []
    for packet in packets:
        records.extend(decode_packet(packet))
    return records


def records_from_sample(
    sample: Sequence[Tuple[object, float, float]],
) -> List[FlowRecord]:
    """Convert a PBA-style sample ``[(src_ip, weight, estimate)]`` into
    flow records (estimate rounds into the octet counter)."""
    records = []
    for key, _weight, estimate in sample:
        if not isinstance(key, int):
            raise ConfigurationError(
                f"NetFlow export needs integer src_ip keys, got {key!r}"
            )
        records.append(
            FlowRecord(
                src_ip=key & 0xFFFFFFFF,
                dst_ip=0,
                src_port=0,
                dst_port=0,
                proto=0,
                packets=0,
                octets=min(int(round(estimate)), 0xFFFFFFFF),
            )
        )
    return records
