"""Synthetic cache-access trace (the P1-ARC substitute).

The paper evaluates LRFU on "P1.lis" from the ARC paper — an OLTP-style
disk-access trace.  Its salient structure for recency/frequency caching:

* a Zipf-popular working set (frequency matters),
* phases of sequential scans (recency matters; scans pollute
  frequency-only caches), and
* slow drift of the popular set over time.

``generate_cache_trace`` mixes those three behaviours with tunable
proportions; the defaults produce hit-ratio orderings matching Table 2
(bigger caches strictly better; LRFU between LRU-ish and LFU-ish).
"""

from __future__ import annotations

import itertools
import math
import random
from typing import List

from repro._compat import HAVE_NUMPY, np
from repro.errors import ConfigurationError
from repro.traffic.synthetic import zipf_weights


class _PyRng:
    """Adapter giving ``random.Random`` the Generator calls used here."""

    def __init__(self, seed: int) -> None:
        self._rng = random.Random(seed)
        self._hot_cum = None

    def random(self) -> float:
        return self._rng.random()

    def geometric(self, p: float) -> int:
        return max(1, math.ceil(math.log(self._rng.random())
                                / math.log(1.0 - p)))

    def choice(self, n: int, size: int, p) -> List[int]:
        if self._hot_cum is None:
            self._hot_cum = list(itertools.accumulate(p))
        return self._rng.choices(range(n), cum_weights=self._hot_cum,
                                 k=size)


def generate_cache_trace(
    n_requests: int,
    n_keys: int = 50_000,
    seed: int = 0,
    zipf_alpha: float = 1.1,
    scan_fraction: float = 0.2,
    scan_length: int = 200,
    drift_period: int = 50_000,
) -> List[int]:
    """Generate a list of integer keys simulating an OLTP access trace.

    Parameters
    ----------
    n_requests:
        Number of accesses to generate.
    n_keys:
        Key universe size.
    zipf_alpha:
        Skew of the popular-set distribution.
    scan_fraction:
        Fraction of requests that belong to sequential scans.
    scan_length:
        Mean scan run length.
    drift_period:
        Every this many requests the popular set rotates slightly,
        so frequency information ages (what LRFU's decay models).
    """
    if n_requests < 0:
        raise ConfigurationError("n_requests must be >= 0")
    if n_keys < 1:
        raise ConfigurationError("n_keys must be >= 1")
    if not 0.0 <= scan_fraction < 1.0:
        raise ConfigurationError("scan_fraction must be in [0, 1)")

    rng = np.random.default_rng(seed) if HAVE_NUMPY else _PyRng(seed)
    hot_size = max(1, n_keys // 10)
    probs = zipf_weights(hot_size, zipf_alpha)

    trace: List[int] = []
    rotation = 0
    scan_pos = 0
    while len(trace) < n_requests:
        if len(trace) % max(1, drift_period) == 0 and trace:
            rotation += hot_size // 20 + 1
        if rng.random() < scan_fraction:
            # Sequential scan: a run of cold, once-touched keys.
            length = max(1, int(rng.geometric(1.0 / scan_length)))
            start = scan_pos
            scan_pos = (scan_pos + length) % n_keys
            run = [
                hot_size + ((start + k) % (n_keys - hot_size))
                for k in range(length)
            ]
            trace.extend(run[: n_requests - len(trace)])
        else:
            # A batch of Zipf-popular accesses from the (drifting) hot set.
            batch = rng.choice(hot_size, size=64, p=probs)
            trace.extend(
                int((b + rotation) % hot_size)
                for b in batch[: n_requests - len(trace)]
            )
    return trace[:n_requests]
