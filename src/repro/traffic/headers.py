"""Raw IPv4/TCP/UDP/Ethernet header encoding and decoding.

Implemented from scratch with :mod:`struct` so that generated traces
can be serialised into real pcap files (see :mod:`repro.traffic.pcap`)
and so the switch simulation can parse "wire" bytes where needed.
Checksums follow RFC 1071 (ones'-complement sum of 16-bit words).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.traffic.packet import PROTO_TCP, PROTO_UDP, Packet

ETH_HEADER_LEN = 14
IPV4_HEADER_LEN = 20
TCP_HEADER_LEN = 20
UDP_HEADER_LEN = 8

#: EtherType for IPv4.
ETHERTYPE_IPV4 = 0x0800

_ETH = struct.Struct("!6s6sH")
_IPV4 = struct.Struct("!BBHHHBBH4s4s")
_TCP = struct.Struct("!HHIIBBHHH")
_UDP = struct.Struct("!HHHH")


def rfc1071_checksum(data: bytes) -> int:
    """Internet checksum (RFC 1071) of ``data``."""
    if len(data) % 2:
        data += b"\x00"
    total = sum(struct.unpack(f"!{len(data) // 2}H", data))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


@dataclass(frozen=True)
class EthernetHeader:
    """A 14-byte Ethernet II header."""

    dst_mac: bytes
    src_mac: bytes
    ethertype: int = ETHERTYPE_IPV4

    def encode(self) -> bytes:
        if len(self.dst_mac) != 6 or len(self.src_mac) != 6:
            raise ConfigurationError("MAC addresses must be 6 bytes")
        return _ETH.pack(self.dst_mac, self.src_mac, self.ethertype)

    @classmethod
    def decode(cls, data: bytes) -> "EthernetHeader":
        if len(data) < ETH_HEADER_LEN:
            raise ConfigurationError("truncated Ethernet header")
        dst, src, ethertype = _ETH.unpack_from(data)
        return cls(dst, src, ethertype)


@dataclass(frozen=True)
class IPv4Header:
    """A 20-byte (optionless) IPv4 header."""

    src_ip: int
    dst_ip: int
    total_length: int
    proto: int
    ttl: int = 64
    identification: int = 0

    def encode(self) -> bytes:
        version_ihl = (4 << 4) | 5
        header = _IPV4.pack(
            version_ihl,
            0,  # DSCP/ECN
            self.total_length,
            self.identification,
            0,  # flags/fragment offset
            self.ttl,
            self.proto,
            0,  # checksum placeholder
            self.src_ip.to_bytes(4, "big"),
            self.dst_ip.to_bytes(4, "big"),
        )
        checksum = rfc1071_checksum(header)
        return header[:10] + struct.pack("!H", checksum) + header[12:]

    @classmethod
    def decode(cls, data: bytes) -> "IPv4Header":
        if len(data) < IPV4_HEADER_LEN:
            raise ConfigurationError("truncated IPv4 header")
        (
            version_ihl,
            _dscp,
            total_length,
            identification,
            _frag,
            ttl,
            proto,
            checksum,
            src,
            dst,
        ) = _IPV4.unpack_from(data)
        if version_ihl >> 4 != 4:
            raise ConfigurationError("not an IPv4 header")
        if rfc1071_checksum(data[:IPV4_HEADER_LEN]) != 0:
            raise ConfigurationError("IPv4 checksum mismatch")
        return cls(
            src_ip=int.from_bytes(src, "big"),
            dst_ip=int.from_bytes(dst, "big"),
            total_length=total_length,
            proto=proto,
            ttl=ttl,
            identification=identification,
        )


@dataclass(frozen=True)
class TCPHeader:
    """A 20-byte (optionless) TCP header."""

    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: int = 0x10  # ACK
    window: int = 65535

    def encode(self) -> bytes:
        data_offset = (5 << 4)
        return _TCP.pack(
            self.src_port,
            self.dst_port,
            self.seq,
            self.ack,
            data_offset,
            self.flags,
            self.window,
            0,  # checksum: left zero (pcap consumers tolerate this)
            0,  # urgent pointer
        )

    @classmethod
    def decode(cls, data: bytes) -> "TCPHeader":
        if len(data) < TCP_HEADER_LEN:
            raise ConfigurationError("truncated TCP header")
        sport, dport, seq, ack, _off, flags, window, _ck, _urg = (
            _TCP.unpack_from(data)
        )
        return cls(sport, dport, seq, ack, flags, window)


@dataclass(frozen=True)
class UDPHeader:
    """An 8-byte UDP header."""

    src_port: int
    dst_port: int
    length: int = UDP_HEADER_LEN

    def encode(self) -> bytes:
        return _UDP.pack(self.src_port, self.dst_port, self.length, 0)

    @classmethod
    def decode(cls, data: bytes) -> "UDPHeader":
        if len(data) < UDP_HEADER_LEN:
            raise ConfigurationError("truncated UDP header")
        sport, dport, length, _ck = _UDP.unpack_from(data)
        return cls(sport, dport, length)


_DEFAULT_DST_MAC = bytes.fromhex("02005e000001")
_DEFAULT_SRC_MAC = bytes.fromhex("02005e000002")


def packet_to_bytes(pkt: Packet) -> bytes:
    """Serialise a :class:`Packet` into Ethernet/IPv4/TCP|UDP wire bytes.

    The payload is zero-filled so that the IP total length equals
    ``pkt.size`` (clamped up to the minimum header sizes).
    """
    eth = EthernetHeader(_DEFAULT_DST_MAC, _DEFAULT_SRC_MAC).encode()
    if pkt.proto == PROTO_UDP:
        l4_len = UDP_HEADER_LEN
        l4 = UDPHeader(
            pkt.src_port,
            pkt.dst_port,
            length=max(UDP_HEADER_LEN, pkt.size - IPV4_HEADER_LEN),
        ).encode()
    else:
        l4_len = TCP_HEADER_LEN
        l4 = TCPHeader(pkt.src_port, pkt.dst_port).encode()
    total_length = max(pkt.size, IPV4_HEADER_LEN + l4_len)
    ip = IPv4Header(
        src_ip=pkt.src_ip,
        dst_ip=pkt.dst_ip,
        total_length=total_length,
        proto=pkt.proto,
        identification=pkt.packet_id & 0xFFFF,
    ).encode()
    payload = b"\x00" * (total_length - IPV4_HEADER_LEN - l4_len)
    return eth + ip + l4 + payload


def packet_from_bytes(data: bytes, timestamp: float = 0.0) -> Packet:
    """Parse wire bytes (Ethernet/IPv4/TCP|UDP) back into a Packet."""
    eth = EthernetHeader.decode(data)
    if eth.ethertype != ETHERTYPE_IPV4:
        raise ConfigurationError(
            f"unsupported ethertype 0x{eth.ethertype:04x}"
        )
    ip = IPv4Header.decode(data[ETH_HEADER_LEN:])
    l4_offset = ETH_HEADER_LEN + IPV4_HEADER_LEN
    if ip.proto == PROTO_TCP:
        l4 = TCPHeader.decode(data[l4_offset:])
        sport, dport = l4.src_port, l4.dst_port
    elif ip.proto == PROTO_UDP:
        udp = UDPHeader.decode(data[l4_offset:])
        sport, dport = udp.src_port, udp.dst_port
    else:
        sport = dport = 0
    return Packet(
        src_ip=ip.src_ip,
        dst_ip=ip.dst_ip,
        src_port=sport,
        dst_port=dport,
        proto=ip.proto,
        size=ip.total_length,
        timestamp=timestamp,
        packet_id=ip.identification,
    )
