"""Synthetic trace generation calibrated to the paper's traces.

Three trace profiles mirror the evaluation workloads (DESIGN.md §2):

* ``CAIDA16`` / ``CAIDA18`` — backbone traffic: hundreds of thousands
  of mostly small flows with a heavy Zipf tail (skew ≈ 1.1/1.0) and a
  trimodal packet-size mixture.
* ``UNIV1`` — data-center traffic: far fewer flows, fatter elephants,
  bursty per-flow arrivals (ON/OFF batching) and larger packets.

The generators are deterministic given a seed and produce
:class:`~repro.traffic.packet.Packet` objects; benchmark harnesses
usually consume the derived ``(key, value)`` streams instead.

``generate_value_stream`` produces the paper's "randomly generated
stream of numbers" used by Figures 4–7 and 10–16.
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro._compat import HAVE_NUMPY, np
from repro.errors import ConfigurationError
from repro.traffic.packet import PROTO_TCP, PROTO_UDP, Packet


def zipf_weights(n: int, alpha: float):
    """Normalized Zipf(α) probabilities over ranks ``1..n``.

    Returns an ndarray when NumPy is installed, a plain list otherwise
    (both deterministic and numerically equivalent).
    """
    if n < 1:
        raise ConfigurationError(f"need at least one rank, got {n}")
    if HAVE_NUMPY:
        ranks = np.arange(1, n + 1, dtype=np.float64)
        weights = ranks ** -alpha
        return weights / weights.sum()
    weights = [float(r) ** -alpha for r in range(1, n + 1)]
    total = sum(weights)
    return [w / total for w in weights]


@dataclass(frozen=True)
class TraceProfile:
    """Statistical profile of a packet trace.

    Attributes
    ----------
    name:
        Identifier used in benchmark tables.
    n_flows:
        Number of distinct five-tuple flows.
    alpha:
        Zipf skew of the flow-size distribution (packets per flow).
    size_points / size_probs:
        Packet-size mixture (bytes and probabilities).
    burst:
        Mean per-flow burst length: consecutive packets of one flow
        emitted back-to-back (1 = fully interleaved backbone traffic;
        larger = bursty data-center flows).
    mean_rate_pps:
        Mean packet arrival rate, for timestamp synthesis.
    """

    name: str
    n_flows: int
    alpha: float
    size_points: Tuple[int, ...]
    size_probs: Tuple[float, ...]
    burst: int = 1
    mean_rate_pps: float = 1e6

    def __post_init__(self) -> None:
        if abs(sum(self.size_probs) - 1.0) > 1e-9:
            raise ConfigurationError("size_probs must sum to 1")
        if len(self.size_points) != len(self.size_probs):
            raise ConfigurationError("size mixture lengths differ")
        if self.burst < 1:
            raise ConfigurationError("burst must be >= 1")


#: Equinix-Chicago 2016 style backbone trace.
CAIDA16 = TraceProfile(
    name="caida16",
    n_flows=100_000,
    alpha=1.1,
    size_points=(64, 576, 1500),
    size_probs=(0.45, 0.25, 0.30),
)

#: Equinix-NewYork 2018 style backbone trace (slightly less skewed,
#: larger packets on average).
CAIDA18 = TraceProfile(
    name="caida18",
    n_flows=120_000,
    alpha=1.0,
    size_points=(64, 576, 1500),
    size_probs=(0.35, 0.25, 0.40),
)

#: UNIV1 data-center trace: fewer flows, heavy elephants, bursty.
UNIV1 = TraceProfile(
    name="univ1",
    n_flows=10_000,
    alpha=0.9,
    size_points=(64, 1500),
    size_probs=(0.30, 0.70),
    burst=8,
)

PROFILES = {p.name: p for p in (CAIDA16, CAIDA18, UNIV1)}


def _flow_endpoints(n_flows: int, rng):
    """Random but deterministic five-tuple components per flow."""
    src = rng.integers(0x0A000000, 0x0AFFFFFF, size=n_flows, dtype=np.int64)
    dst = rng.integers(0xC0A80000, 0xC0A8FFFF, size=n_flows, dtype=np.int64)
    sport = rng.integers(1024, 65535, size=n_flows, dtype=np.int64)
    dport = rng.choice(
        np.array([80, 443, 53, 22, 8080, 3306], dtype=np.int64),
        size=n_flows,
    )
    proto = rng.choice(
        np.array([PROTO_TCP, PROTO_UDP], dtype=np.int64),
        size=n_flows,
        p=[0.8, 0.2],
    )
    return src, dst, sport, dport, proto


def generate_packets(
    profile: TraceProfile,
    n_packets: int,
    seed: int = 0,
    n_flows: int | None = None,
) -> List[Packet]:
    """Generate ``n_packets`` packets following ``profile``.

    ``n_flows`` overrides the profile's flow count (benchmarks scale it
    with the stream length to keep the new-flow rate realistic).

    With NumPy installed the trace is drawn vectorized; without it a
    ``random.Random`` fallback draws a trace with the same statistical
    profile (both deterministic per seed, but the two paths produce
    different packet sequences).
    """
    if n_packets < 0:
        raise ConfigurationError("n_packets must be >= 0")
    flows = min(n_flows or profile.n_flows, max(1, n_packets))
    probs = zipf_weights(flows, profile.alpha)
    if not HAVE_NUMPY:
        return _generate_packets_py(profile, n_packets, seed, flows, probs)
    rng = np.random.default_rng(seed)

    if profile.burst > 1:
        # Draw bursts: fewer draws, each repeated Geometric(1/burst).
        n_draws = max(1, n_packets // profile.burst + flows)
        draw = rng.choice(flows, size=n_draws, p=probs)
        lengths = rng.geometric(1.0 / profile.burst, size=n_draws)
        flow_of = np.repeat(draw, lengths)[:n_packets]
        if flow_of.size < n_packets:  # top up if bursts fell short
            extra = rng.choice(flows, size=n_packets - flow_of.size, p=probs)
            flow_of = np.concatenate([flow_of, extra])
    else:
        flow_of = rng.choice(flows, size=n_packets, p=probs)

    src, dst, sport, dport, proto = _flow_endpoints(flows, rng)
    sizes = rng.choice(
        np.array(profile.size_points, dtype=np.int64),
        size=n_packets,
        p=profile.size_probs,
    )
    gaps = rng.exponential(1.0 / profile.mean_rate_pps, size=n_packets)
    times = np.cumsum(gaps)

    packets = [
        Packet(
            src_ip=int(src[f]),
            dst_ip=int(dst[f]),
            src_port=int(sport[f]),
            dst_port=int(dport[f]),
            proto=int(proto[f]),
            size=int(sizes[i]),
            timestamp=float(times[i]),
            packet_id=i,
        )
        for i, f in enumerate(flow_of)
    ]
    return packets


def _generate_packets_py(
    profile: TraceProfile,
    n_packets: int,
    seed: int,
    flows: int,
    probs: Sequence[float],
) -> List[Packet]:
    """Pure-Python trace generator (same profile, different draws)."""
    rng = random.Random(seed)
    cum = list(itertools.accumulate(probs))
    population = range(flows)

    if profile.burst > 1:
        # Draw bursts: each flow draw repeats Geometric(1/burst) times.
        log_q = math.log(1.0 - 1.0 / profile.burst)
        flow_of: List[int] = []
        while len(flow_of) < n_packets:
            f = rng.choices(population, cum_weights=cum)[0]
            length = max(1, math.ceil(math.log(rng.random()) / log_q))
            flow_of.extend([f] * length)
        del flow_of[n_packets:]
    else:
        flow_of = rng.choices(population, cum_weights=cum, k=n_packets)

    src = [rng.randrange(0x0A000000, 0x0AFFFFFF) for _ in range(flows)]
    dst = [rng.randrange(0xC0A80000, 0xC0A8FFFF) for _ in range(flows)]
    sport = [rng.randrange(1024, 65535) for _ in range(flows)]
    dport = rng.choices((80, 443, 53, 22, 8080, 3306), k=flows)
    proto = rng.choices(
        (PROTO_TCP, PROTO_UDP), weights=(0.8, 0.2), k=flows
    )
    sizes = rng.choices(
        profile.size_points, weights=profile.size_probs, k=n_packets
    )
    now = 0.0
    packets = []
    expovariate = rng.expovariate
    for i, f in enumerate(flow_of):
        now += expovariate(profile.mean_rate_pps)
        packets.append(Packet(
            src_ip=src[f],
            dst_ip=dst[f],
            src_port=sport[f],
            dst_port=dport[f],
            proto=proto[f],
            size=sizes[i],
            timestamp=now,
            packet_id=i,
        ))
    return packets


def generate_value_stream(
    n: int, seed: int = 0
) -> List[Tuple[int, float]]:
    """The paper's synthetic workload: uniform random values with
    sequential ids (Figures 4–7, 10–13, 15–16)."""
    if HAVE_NUMPY:
        rng = np.random.default_rng(seed)
        return list(enumerate(rng.random(n).tolist()))
    rng = random.Random(seed)
    return [(i, rng.random()) for i in range(n)]


def packets_to_weighted_stream(
    packets: Sequence[Packet],
) -> Iterator[Tuple[int, int]]:
    """(source address, packet size) pairs — the evaluation's key/weight
    convention ("decimal representation of the IP source address ... and
    total length field in the IP header")."""
    for pkt in packets:
        yield pkt.src_ip, pkt.size
