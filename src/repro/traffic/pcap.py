"""Classic pcap (libpcap) file reading and writing, from scratch.

Supports the microsecond-resolution classic format (magic 0xA1B2C3D4,
both endiannesses on read) with the Ethernet link type — enough to
round-trip the synthetic traces through standard tools.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Iterable, Iterator, List, Tuple, Union

from repro.errors import ConfigurationError
from repro.traffic.headers import packet_from_bytes, packet_to_bytes
from repro.traffic.packet import Packet

_MAGIC_LE = 0xA1B2C3D4
LINKTYPE_ETHERNET = 1

_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")


def write_pcap(
    path: Union[str, Path],
    packets: Iterable[Packet],
    snaplen: int = 65535,
) -> int:
    """Write packets to a classic pcap file; returns the packet count.

    Each packet is serialised to Ethernet/IPv4/TCP|UDP wire bytes via
    :func:`repro.traffic.headers.packet_to_bytes`, truncated to
    ``snaplen`` on capture length (original length preserved).
    """
    count = 0
    with open(path, "wb") as fh:
        fh.write(
            _GLOBAL_HEADER.pack(
                _MAGIC_LE, 2, 4, 0, 0, snaplen, LINKTYPE_ETHERNET
            )
        )
        for pkt in packets:
            data = packet_to_bytes(pkt)
            captured = data[:snaplen]
            seconds = int(pkt.timestamp)
            micros = int(round((pkt.timestamp - seconds) * 1e6))
            fh.write(
                _RECORD_HEADER.pack(
                    seconds, micros, len(captured), len(data)
                )
            )
            fh.write(captured)
            count += 1
    return count


def _iter_records(
    data: bytes,
) -> Iterator[Tuple[float, bytes]]:
    if len(data) < _GLOBAL_HEADER.size:
        raise ConfigurationError("truncated pcap global header")
    magic = struct.unpack_from("<I", data)[0]
    if magic == _MAGIC_LE:
        endian = "<"
    elif magic == struct.unpack(">I", struct.pack("<I", _MAGIC_LE))[0]:
        endian = ">"
    else:
        raise ConfigurationError(f"bad pcap magic 0x{magic:08x}")
    record = struct.Struct(endian + "IIII")
    offset = _GLOBAL_HEADER.size
    while offset + record.size <= len(data):
        seconds, micros, caplen, _origlen = record.unpack_from(data, offset)
        offset += record.size
        if offset + caplen > len(data):
            raise ConfigurationError("truncated pcap record")
        yield seconds + micros / 1e6, data[offset:offset + caplen]
        offset += caplen


def read_pcap(path: Union[str, Path]) -> List[Packet]:
    """Read a classic pcap file back into :class:`Packet` objects."""
    with open(path, "rb") as fh:
        data = fh.read()
    return [
        packet_from_bytes(raw, timestamp=ts)
        for ts, raw in _iter_records(data)
    ]
