"""Traffic substrate: packet model, trace generators, and pcap IO.

The paper evaluates on CAIDA'16, CAIDA'18, UNIV1 and the P1-ARC cache
trace — none of which can ship with this repository.  This package
provides synthetic generators whose *relevant statistics* (flow-size
skew, flow counts, packet-size mixture, access locality) are calibrated
to published characterisations of those traces, as documented in
DESIGN.md §2.  It also includes from-scratch IPv4/TCP/UDP header
encoding and pcap file IO so generated traces can be exported to and
re-imported from standard tooling.
"""

from repro.traffic.packet import Packet, flow_key, src_dst_key
from repro.traffic.synthetic import (
    TraceProfile,
    CAIDA16,
    CAIDA18,
    UNIV1,
    PROFILES,
    generate_packets,
    generate_value_stream,
    zipf_weights,
)
from repro.traffic.cache_trace import generate_cache_trace
from repro.traffic.pcap import read_pcap, write_pcap

__all__ = [
    "Packet",
    "flow_key",
    "src_dst_key",
    "TraceProfile",
    "CAIDA16",
    "CAIDA18",
    "UNIV1",
    "PROFILES",
    "generate_packets",
    "generate_value_stream",
    "zipf_weights",
    "generate_cache_trace",
    "read_pcap",
    "write_pcap",
]
