"""The packet model used throughout the measurement applications.

The paper's OVS integration records "the source IP address, packet ID,
and packet size of selected packets"; our :class:`Packet` carries the
full five-tuple plus size and timestamp so every application (per-flow,
per-source, per-pair) can derive its key.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

#: Protocol numbers (IANA).
PROTO_TCP = 6
PROTO_UDP = 17


@dataclass(frozen=True)
class Packet:
    """One packet observation.

    Attributes
    ----------
    src_ip, dst_ip:
        IPv4 addresses as 32-bit integers (decimal representation of
        the source address is the paper's evaluation key).
    src_port, dst_port:
        Transport ports.
    proto:
        IP protocol number (6 = TCP, 17 = UDP).
    size:
        Total IP length in bytes (the paper's value/weight field).
    timestamp:
        Seconds since trace start.
    packet_id:
        A unique per-packet identifier (the network-wide heavy hitters
        algorithm hashes it to sample packets without double counting).
    """

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    proto: int
    size: int
    timestamp: float = 0.0
    packet_id: int = 0

    @property
    def five_tuple(self) -> Tuple[int, int, int, int, int]:
        """(src_ip, dst_ip, src_port, dst_port, proto)."""
        return (
            self.src_ip,
            self.dst_ip,
            self.src_port,
            self.dst_port,
            self.proto,
        )


def flow_key(pkt: Packet) -> Tuple[int, int, int, int, int]:
    """Per-flow key: the five-tuple."""
    return pkt.five_tuple


def src_dst_key(pkt: Packet) -> Tuple[int, int]:
    """(src, dst) address pair key (subnet-style aggregation)."""
    return (pkt.src_ip, pkt.dst_ip)


def ip_to_str(addr: int) -> str:
    """Dotted-quad representation of a 32-bit address."""
    return ".".join(str((addr >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def str_to_ip(dotted: str) -> int:
    """Parse a dotted-quad string into a 32-bit integer."""
    parts = dotted.split(".")
    if len(parts) != 4:
        raise ValueError(f"not a dotted quad: {dotted!r}")
    addr = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"octet out of range in {dotted!r}")
        addr = (addr << 8) | octet
    return addr
