"""Exception types used across the :mod:`repro` package.

Keeping a small, explicit exception hierarchy lets callers distinguish
configuration mistakes (``ConfigurationError``) from violations of runtime
preconditions (``InvariantError``) without catching broad built-ins.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """Raised when a structure is constructed with invalid parameters.

    Examples: a non-positive ``q``, a slack parameter outside ``(0, 1]``,
    or a decay constant outside the valid range.
    """


class InvariantError(ReproError, RuntimeError):
    """Raised when an internal invariant check fails.

    These indicate a bug in the library (or misuse of a private API) and
    are exercised directly by the test suite via the ``check_invariants``
    hooks on the data structures.
    """


class EmptyStructureError(ReproError, LookupError):
    """Raised when querying an element from an empty structure."""


class ParallelError(ReproError, RuntimeError):
    """Raised when the sharded engine's worker machinery fails.

    Examples: a shard worker died or stopped answering, a shared-memory
    ring could not be created, or a barrier (query / close) timed out.
    The in-process fallback never raises this.
    """


class WireFormatError(ConfigurationError):
    """Raised when bytes received off the wire do not decode.

    Covers every external encoding the library parses — NetFlow v5
    export packets, binary/JSON NMP reports — so a collector can catch
    one type to count-and-drop malformed input from a misbehaving peer.
    Subclasses :class:`ConfigurationError` because historically the
    codecs raised that type; existing callers keep working.
    """


class NetFlowDecodeError(WireFormatError):
    """Raised when a NetFlow v5 export datagram is malformed.

    Examples: a truncated header, a record area shorter than the
    header's record count promises, or an unsupported version field.
    Never a bare ``struct.error``: the daemon's ingest path relies on
    this type to count-and-drop instead of crashing.
    """


class TrajectoryError(ReproError, ValueError):
    """Raised by the benchmark-trajectory store (:mod:`repro.bench`).

    Examples: a row that fails schema validation, a malformed line in
    an append-only ``bench_trajectory/*.jsonl`` file, a row whose SHA
    does not match the file it was found in, or an unknown baseline
    passed to the regression gate.  A *failing* gate is not an error —
    the gate reports it through its result and exit code.
    """


class ServiceError(ReproError, RuntimeError):
    """Raised by the measurement daemon (:mod:`repro.service`).

    Examples: an RPC request for an unknown operation, a corrupt
    snapshot file at recovery time, or a daemon that failed to come up
    within its startup timeout.
    """


class FleetError(ServiceError):
    """Raised by the fleet coordinator (:mod:`repro.fleet`).

    Examples: a malformed registration request, an epoch op against a
    daemon the coordinator never saw, or a coordinator that failed to
    come up within its startup timeout.  Subclasses
    :class:`ServiceError` so RPC clients catching the service type
    handle coordinator errors identically.
    """
