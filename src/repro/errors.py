"""Exception types used across the :mod:`repro` package.

Keeping a small, explicit exception hierarchy lets callers distinguish
configuration mistakes (``ConfigurationError``) from violations of runtime
preconditions (``InvariantError``) without catching broad built-ins.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """Raised when a structure is constructed with invalid parameters.

    Examples: a non-positive ``q``, a slack parameter outside ``(0, 1]``,
    or a decay constant outside the valid range.
    """


class InvariantError(ReproError, RuntimeError):
    """Raised when an internal invariant check fails.

    These indicate a bug in the library (or misuse of a private API) and
    are exercised directly by the test suite via the ``check_invariants``
    hooks on the data structures.
    """


class EmptyStructureError(ReproError, LookupError):
    """Raised when querying an element from an empty structure."""


class ParallelError(ReproError, RuntimeError):
    """Raised when the sharded engine's worker machinery fails.

    Examples: a shard worker died or stopped answering, a shared-memory
    ring could not be created, or a barrier (query / close) timed out.
    The in-process fallback never raises this.
    """
