"""Coordinator configuration.

:class:`FleetConfig` mirrors :class:`~repro.service.config.
ServiceConfig`'s shape — a plain validated dataclass buildable from
CLI flags, test fixtures, or embedding code — and carries everything
the coordinator needs: where to listen, the global ``q``, the failure
detector's timing, and the epoch-cycle policy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass
class FleetConfig:
    """Everything the fleet coordinator needs.

    Parameters
    ----------
    host, port:
        The coordinator's RPC listen address (one port serves both
        daemons — register/heartbeat — and operators — status/top/hh/
        epoch).  Port 0 asks the kernel for an ephemeral port.
    q:
        Default size of global answers (``top``/``hh`` accept a
        per-query override).
    heartbeat_interval:
        The cadence handed to registering daemons; the failure
        detector expects roughly one heartbeat per interval.
    heartbeat_timeout:
        A daemon silent for this long is marked **lost**: it stops
        being pulled, and query results report the reduced coverage.
        Must exceed ``heartbeat_interval``.
    pull_timeout:
        Per-daemon budget for one report/epoch RPC during a fan-out;
        a daemon blowing it is marked lost for that round.
    reset_on_advance:
        When ``True`` (interval measurement), ``epoch advance`` resets
        every daemon's engine so each epoch answers over its own
        traffic; ``False`` keeps engines cumulative.
    metrics:
        Keep a per-coordinator :class:`~repro.obs.MetricsRegistry`
        (registered/alive/coverage gauges, epoch latency and merge
        spans) and serve the ``metrics`` RPC op from it.
    """

    host: str = "127.0.0.1"
    port: int = 9990
    q: int = 1000
    heartbeat_interval: float = 1.0
    heartbeat_timeout: float = 5.0
    pull_timeout: float = 10.0
    reset_on_advance: bool = True
    metrics: bool = True

    def __post_init__(self) -> None:
        if self.q < 1:
            raise ConfigurationError(f"q must be >= 1, got {self.q}")
        if not 0 <= self.port < 65536:
            raise ConfigurationError(
                f"port must be in [0, 65536), got {self.port}"
            )
        if self.heartbeat_interval <= 0:
            raise ConfigurationError(
                f"heartbeat_interval must be > 0, got "
                f"{self.heartbeat_interval}"
            )
        if self.heartbeat_timeout <= self.heartbeat_interval:
            raise ConfigurationError(
                f"heartbeat_timeout ({self.heartbeat_timeout}) must "
                f"exceed heartbeat_interval ({self.heartbeat_interval})"
            )
        if self.pull_timeout <= 0:
            raise ConfigurationError(
                f"pull_timeout must be > 0, got {self.pull_timeout}"
            )
