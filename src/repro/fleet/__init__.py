"""repro.fleet — coordinator for a distributed measurement fleet.

Many :mod:`repro.service` daemons, one coordinator, global answers:
the live multi-process realisation of the paper's §6 network-wide
scheme.  Daemons register and heartbeat; the coordinator drives the
measurement epoch cycle, pulls per-daemon reports over the daemons'
existing RPC, and serves network-wide top-q and heavy-hitter queries
with an explicit coverage fraction when part of the fleet is down.

See docs/FLEET.md for the architecture, the epoch protocol, and the
failure/rejoin semantics.
"""

from repro.fleet.config import FleetConfig
from repro.fleet.coordinator import (
    FLEET_OPS,
    CoordinatorThread,
    DaemonRecord,
    FleetCoordinator,
    serve_fleet,
)

__all__ = [
    "FleetConfig",
    "FleetCoordinator",
    "CoordinatorThread",
    "DaemonRecord",
    "FLEET_OPS",
    "serve_fleet",
]
