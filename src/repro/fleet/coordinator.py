"""The fleet coordinator: many daemons, one global answer.

:class:`FleetCoordinator` is the live multi-process version of the
paper's §6 network-wide setting — the role
:class:`~repro.netwide.controller.Controller` plays in the offline
simulation, lifted onto real sockets.  N
:class:`~repro.service.daemon.MeasurementDaemon` processes (edge
collectors) register with it over the same newline-JSON RPC the daemon
itself serves; the coordinator issues measurement epochs, pulls
per-daemon NMP-style reports over each daemon's *existing* RPC
(``top`` / ``stats`` / ``epoch collect``), and answers global queries:

* **top** — network-wide top-q via
  :func:`repro.parallel.merge.merge_top_items` over per-daemon
  retained sets (duplicate ids across daemons are repeated
  observations of one flow, merged by ``max``);
* **hh** — network-wide heavy hitters, either share-of-total volume
  (``mode="volume"``) or the paper's KMV sample estimate
  (``mode="sample"``) via the same
  :func:`repro.netwide.controller.heavy_hitters_from_reports` math the
  offline controller runs.

**Failure semantics** (docs/FLEET.md): a daemon heartbeats every
``heartbeat_interval``; silence past ``heartbeat_timeout`` — or a
failed pull — marks it *lost*.  The coordinator never blocks a global
query on a lost daemon: it answers from the daemons that responded and
reports the **coverage fraction** (responding / registered) alongside
every result, so a consumer can tell a full answer from a degraded
one.  A lost daemon that comes back re-registers (the daemon's fleet
agent does this automatically after restoring its snapshot), which
counts as a *rejoin* and puts it back into the epoch cycle.

Everything runs on one asyncio loop; daemon state is only touched from
RPC handlers and the watchdog task, so no locking is needed —
:class:`CoordinatorThread` is the background-thread harness for tests,
the demo, and synchronous embedders, mirroring
:class:`~repro.service.daemon.DaemonThread`.
"""

from __future__ import annotations

import asyncio
import contextlib
import logging
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import FleetError
from repro.fleet.config import FleetConfig
from repro.netwide.controller import heavy_hitters_from_reports
from repro.obs import MetricsRegistry, NULL_REGISTRY, render_prometheus
from repro.parallel.merge import merge_top_items
from repro.service.rpc import RpcServer, rpc_call_async
from repro.service.snapshot import decode_id, encode_id

_LOG = logging.getLogger("repro.fleet.coordinator")

#: Operations the coordinator serves (documented in docs/FLEET.md).
FLEET_OPS = (
    "register", "heartbeat", "deregister",
    "status", "top", "hh", "epoch", "health", "metrics",
)


@dataclass
class DaemonRecord:
    """Everything the coordinator knows about one member daemon."""

    daemon_id: str
    host: str
    rpc_port: int
    info: Dict[str, Any] = field(default_factory=dict)
    registered_at: float = 0.0
    last_seen: float = 0.0
    alive: bool = True
    rejoins: int = 0
    pulls: int = 0
    pull_errors: int = 0

    def summary(self) -> Dict[str, Any]:
        return {
            "daemon_id": self.daemon_id,
            "host": self.host,
            "rpc_port": self.rpc_port,
            "alive": self.alive,
            "registered_at": self.registered_at,
            "last_seen": self.last_seen,
            "rejoins": self.rejoins,
            "pulls": self.pulls,
            "pull_errors": self.pull_errors,
            "info": self.info,
        }


class FleetCoordinator:
    """One coordinator process: see the module docstring."""

    def __init__(self, config: FleetConfig) -> None:
        self.config = config
        self.registry = (
            MetricsRegistry() if config.metrics else NULL_REGISTRY
        )
        self.daemons: Dict[str, DaemonRecord] = {}
        self.epoch = 0
        self.started_at: Optional[float] = None
        # Last collected reports, keyed by daemon id — keyed storage is
        # what makes duplicate report delivery idempotent: a re-pulled
        # report *replaces* its predecessor instead of double counting.
        self._reports: Dict[str, Dict[str, Any]] = {}
        self.last_collect: Dict[str, Any] = {}
        self.registrations = 0
        self.rejoins = 0
        self.heartbeats = 0
        self.lost_events = 0
        self.epochs_begun = 0
        self.rpc: RpcServer = None  # type: ignore[assignment]
        self._watchdog_task: Optional[asyncio.Task] = None
        self._stop_requested: asyncio.Event = None  # type: ignore
        self._stopped = False

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    async def start(self) -> None:
        self._stop_requested = asyncio.Event()
        self.rpc = RpcServer(
            self.handle_rpc, self.config.host, self.config.port
        )
        await self.rpc.start()
        self._watchdog_task = asyncio.get_running_loop().create_task(
            self._watchdog(), name="repro-fleet-watchdog"
        )
        self.started_at = time.time()
        self._register_gauges()
        _LOG.info(
            "coordinator up: rpc=%d q=%d heartbeat_timeout=%gs",
            self.rpc.port, self.config.q, self.config.heartbeat_timeout,
        )

    def _register_gauges(self) -> None:
        reg = self.registry
        if not reg.enabled:
            return
        reg.callback_gauge(
            "repro_fleet_daemons_registered",
            lambda: float(len(self.daemons)),
            "daemons the coordinator has seen and not deregistered",
        )
        reg.callback_gauge(
            "repro_fleet_daemons_alive",
            lambda: float(sum(1 for d in self.daemons.values()
                              if d.alive)),
            "daemons currently passing the heartbeat failure detector",
        )
        reg.callback_gauge(
            "repro_fleet_coverage", self.coverage,
            "alive daemons / registered daemons (1.0 = full fleet)",
        )
        reg.callback_gauge(
            "repro_fleet_epoch", lambda: float(self.epoch),
            "current measurement epoch",
        )
        for attr, help_text in (
            ("registrations", "register handshakes accepted"),
            ("rejoins", "re-registrations of a known daemon id"),
            ("heartbeats", "heartbeats received"),
            ("lost_events", "times a daemon was marked lost"),
            ("epochs_begun", "epochs begun"),
        ):
            reg.callback_gauge(
                f"repro_fleet_{attr}",
                (lambda a=attr: float(getattr(self, a))),
                help_text, agg="sum",
            )

    async def stop(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        if self._watchdog_task is not None:
            self._watchdog_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._watchdog_task
        await self.rpc.close()
        _LOG.info(
            "coordinator stopped: %d daemons, epoch %d",
            len(self.daemons), self.epoch,
        )

    def request_stop(self) -> None:
        """Signal-handler-safe shutdown request."""
        self._stop_requested.set()

    async def wait_for_stop_request(self) -> None:
        await self._stop_requested.wait()

    # ------------------------------------------------------------------
    # Failure detection.
    # ------------------------------------------------------------------

    async def _watchdog(self) -> None:
        interval = min(
            self.config.heartbeat_interval,
            self.config.heartbeat_timeout / 4,
        )
        while True:
            await asyncio.sleep(interval)
            self.check_liveness()

    def check_liveness(self, now: Optional[float] = None) -> None:
        """Mark daemons silent past the heartbeat timeout as lost."""
        now = time.time() if now is None else now
        cutoff = now - self.config.heartbeat_timeout
        for rec in self.daemons.values():
            if rec.alive and rec.last_seen < cutoff:
                self._mark_lost(rec, "heartbeat timeout")

    def _mark_lost(self, rec: DaemonRecord, why: str) -> None:
        rec.alive = False
        self.lost_events += 1
        _LOG.warning("daemon %s lost (%s)", rec.daemon_id, why)

    def coverage(self) -> float:
        """Alive / registered — the degradation fraction every query
        result carries."""
        if not self.daemons:
            return 0.0
        alive = sum(1 for d in self.daemons.values() if d.alive)
        return alive / len(self.daemons)

    def alive_daemons(self) -> List[DaemonRecord]:
        return [d for d in self.daemons.values() if d.alive]

    # ------------------------------------------------------------------
    # RPC dispatch.
    # ------------------------------------------------------------------

    def handle_rpc(self, op: str, request: Dict[str, Any]) -> Any:
        if op == "register":
            return self._op_register(request)
        if op == "heartbeat":
            return self._op_heartbeat(request)
        if op == "deregister":
            return self._op_deregister(request)
        if op == "status":
            return self._op_status()
        if op == "health":
            return self._op_health()
        if op == "metrics":
            return self._op_metrics(request)
        if op == "top":
            return self._op_top(request)      # coroutine: server awaits
        if op == "hh":
            return self._op_hh(request)       # coroutine: server awaits
        if op == "epoch":
            return self._op_epoch(request)    # coroutine: server awaits
        raise FleetError(f"unknown op {op!r}")

    # -- daemon-facing ops ---------------------------------------------

    def _op_register(self, request: Dict[str, Any]) -> Dict[str, Any]:
        daemon_id = request.get("daemon_id")
        host = request.get("host")
        rpc_port = request.get("rpc_port")
        if not isinstance(daemon_id, str) or not daemon_id:
            raise FleetError("register needs a non-empty daemon_id")
        if not isinstance(host, str) or not host:
            raise FleetError("register needs the daemon's host")
        if not isinstance(rpc_port, int) or not 0 < rpc_port < 65536:
            raise FleetError(
                f"register needs a valid rpc_port, got {rpc_port!r}"
            )
        now = time.time()
        info = {
            k: v for k, v in request.items()
            if k not in ("op", "daemon_id", "host", "rpc_port")
        }
        rec = self.daemons.get(daemon_id)
        if rec is None:
            rec = DaemonRecord(
                daemon_id=daemon_id, host=host, rpc_port=rpc_port,
                registered_at=now,
            )
            self.daemons[daemon_id] = rec
            _LOG.info(
                "daemon %s registered (%s:%d), fleet size %d",
                daemon_id, host, rpc_port, len(self.daemons),
            )
        else:
            # A known id re-registering is the rejoin path — whether it
            # was marked lost already or crashed faster than the
            # failure detector noticed.
            rec.rejoins += 1
            self.rejoins += 1
            rec.host, rec.rpc_port = host, rpc_port
            _LOG.info(
                "daemon %s rejoined (%s:%d), rejoin #%d",
                daemon_id, host, rpc_port, rec.rejoins,
            )
        rec.info = info
        rec.alive = True
        rec.last_seen = now
        self.registrations += 1
        return {
            "fleet": f"{self.config.host}:{self.rpc.port}",
            "epoch": self.epoch,
            "heartbeat_interval": self.config.heartbeat_interval,
            "daemons": len(self.daemons),
        }

    def _require_known(self, request: Dict[str, Any]) -> DaemonRecord:
        daemon_id = request.get("daemon_id")
        rec = self.daemons.get(daemon_id)  # type: ignore[arg-type]
        if rec is None:
            # Forces a full re-register after a coordinator restart:
            # the daemon's fleet agent treats this error as "go through
            # the handshake again".
            raise FleetError(f"unknown daemon {daemon_id!r}; register")
        return rec

    def _op_heartbeat(self, request: Dict[str, Any]) -> Dict[str, Any]:
        rec = self._require_known(request)
        rec.last_seen = time.time()
        if not rec.alive:
            rec.alive = True
            _LOG.info("daemon %s back from lost", rec.daemon_id)
        self.heartbeats += 1
        return {"epoch": self.epoch}

    def _op_deregister(self, request: Dict[str, Any]) -> Dict[str, Any]:
        rec = self._require_known(request)
        del self.daemons[rec.daemon_id]
        self._reports.pop(rec.daemon_id, None)
        _LOG.info(
            "daemon %s deregistered, fleet size %d",
            rec.daemon_id, len(self.daemons),
        )
        return {"daemons": len(self.daemons)}

    # -- operator-facing ops -------------------------------------------

    def _op_status(self) -> Dict[str, Any]:
        return {
            "fleet": f"{self.config.host}:{self.rpc.port}",
            "epoch": self.epoch,
            "q": self.config.q,
            "uptime_s": (
                time.time() - self.started_at if self.started_at else 0.0
            ),
            "daemons": {
                "registered": len(self.daemons),
                "alive": len(self.alive_daemons()),
            },
            "coverage": self.coverage(),
            "counters": {
                "registrations": self.registrations,
                "rejoins": self.rejoins,
                "heartbeats": self.heartbeats,
                "lost_events": self.lost_events,
                "epochs_begun": self.epochs_begun,
            },
            "last_collect": self.last_collect,
            "members": [
                rec.summary() for rec in sorted(
                    self.daemons.values(), key=lambda r: r.daemon_id
                )
            ],
        }

    def _op_health(self) -> Dict[str, Any]:
        return {
            "status": "ok",
            "role": "fleet-coordinator",
            "epoch": self.epoch,
            "daemons_alive": len(self.alive_daemons()),
            "coverage": self.coverage(),
            "uptime_s": (
                time.time() - self.started_at if self.started_at else 0.0
            ),
        }

    def _op_metrics(self, request: Dict[str, Any]) -> Any:
        fmt = request.get("format", "json")
        snapshot = self.registry.snapshot()
        if fmt == "json":
            return snapshot
        if fmt == "prometheus":
            return render_prometheus(snapshot)
        raise FleetError(
            f"metrics format must be 'json' or 'prometheus', got {fmt!r}"
        )

    # ------------------------------------------------------------------
    # Pulling from daemons.
    # ------------------------------------------------------------------

    async def _pull_one(
        self, rec: DaemonRecord, op: str, **params: Any
    ) -> Optional[Any]:
        """One daemon RPC; a failure marks the daemon lost and returns
        ``None`` instead of failing the whole fan-out."""
        rec.pulls += 1
        try:
            with self.registry.span(
                "repro_fleet_pull", "per-daemon report pull latency"
            ):
                return await rpc_call_async(
                    rec.host, rec.rpc_port, op,
                    timeout=self.config.pull_timeout, **params,
                )
        except FleetError:
            raise
        except Exception as exc:  # ServiceError, cancelled peer, ...
            rec.pull_errors += 1
            self._mark_lost(rec, f"pull {op!r} failed: {exc}")
            return None

    async def _pull_alive(
        self, op: str, **params: Any
    ) -> Tuple[Dict[str, Any], int]:
        """Fan one RPC out to every alive daemon.

        Returns ``(responses by daemon_id, registered_count)`` —
        daemons that failed are absent from the responses (and now
        marked lost), which is exactly what the coverage fraction of
        the eventual answer is computed from.
        """
        recs = self.alive_daemons()
        registered = len(self.daemons)
        results = await asyncio.gather(
            *(self._pull_one(rec, op, **params) for rec in recs)
        )
        responses = {
            rec.daemon_id: result
            for rec, result in zip(recs, results)
            if result is not None
        }
        return responses, registered

    @staticmethod
    def _decoded_items(report: Dict[str, Any]) -> List[Tuple[Any, float]]:
        rows = report.get("top", []) if isinstance(report, dict) else []
        return [(decode_id(i), float(v)) for i, v in rows]

    def _answer(
        self,
        responded: int,
        registered: int,
        extra: Dict[str, Any],
    ) -> Dict[str, Any]:
        """The envelope every global answer shares: epoch, coverage,
        and the daemon counts behind it."""
        coverage = responded / registered if registered else 0.0
        answer = {
            "epoch": self.epoch,
            "coverage": coverage,
            "daemons": {
                "responded": responded,
                "registered": registered,
                "alive": len(self.alive_daemons()),
            },
        }
        answer.update(extra)
        return answer

    async def _gather_reports(
        self, k: int, source: str
    ) -> Tuple[Dict[str, Dict[str, Any]], int]:
        """Per-daemon reports for a global query.

        ``source="live"`` pulls fresh ``epoch collect`` reports right
        now; ``source="epoch"`` answers from the last explicit collect
        without touching the daemons (the controller-poll pattern of
        "Give Me Some Slack": queries between collections are free).
        """
        if source == "epoch":
            return dict(self._reports), max(
                len(self.daemons), len(self._reports)
            )
        if source != "live":
            raise FleetError(
                f"source must be 'live' or 'epoch', got {source!r}"
            )
        responses, registered = await self._pull_alive(
            "epoch", action="collect", q=k
        )
        return responses, registered

    # ------------------------------------------------------------------
    # Global queries.
    # ------------------------------------------------------------------

    async def _op_top(self, request: Dict[str, Any]) -> Dict[str, Any]:
        k = request.get("q", self.config.q)
        if not isinstance(k, int) or k < 1:
            raise FleetError(f"q must be a positive int, got {k!r}")
        source = request.get("source", "live")
        reports, registered = await self._gather_reports(k, source)
        with self.registry.span(
            "repro_fleet_merge", "global top-q merge time"
        ):
            parts = [self._decoded_items(r) for r in reports.values()]
            merged = merge_top_items(parts, k, merge=max)
        return self._answer(len(reports), registered, {
            "source": source,
            "items": [[encode_id(i), v] for i, v in merged],
        })

    async def _op_hh(self, request: Dict[str, Any]) -> Dict[str, Any]:
        theta = request.get("theta", 0.01)
        epsilon = request.get("epsilon", 0.0)
        mode = request.get("mode", "volume")
        k = request.get("q", self.config.q)
        if not isinstance(k, int) or k < 1:
            raise FleetError(f"q must be a positive int, got {k!r}")
        if not isinstance(theta, (int, float)) or not 0 < theta <= 1:
            raise FleetError(f"theta must be in (0, 1], got {theta!r}")
        if not isinstance(epsilon, (int, float)) or epsilon < 0:
            raise FleetError(f"epsilon must be >= 0, got {epsilon!r}")
        source = request.get("source", "live")
        reports, registered = await self._gather_reports(k, source)
        with self.registry.span(
            "repro_fleet_merge", "global top-q merge time"
        ):
            if mode == "volume":
                extra = self._hh_volume(reports, k, theta, epsilon)
            elif mode == "sample":
                extra = self._hh_sample(reports, k, theta, epsilon)
            else:
                raise FleetError(
                    f"mode must be 'volume' or 'sample', got {mode!r}"
                )
        extra["source"] = source
        extra["mode"] = mode
        return self._answer(len(reports), registered, extra)

    def _hh_volume(
        self,
        reports: Dict[str, Dict[str, Any]],
        k: int,
        theta: float,
        epsilon: float,
    ) -> Dict[str, Any]:
        """Share-of-total heavy hitters over flow volumes.

        Per-daemon retained sets are merged by ``max`` (a flow observed
        at several daemons contributes its largest retained volume —
        identical observations deduplicate); the threshold is measured
        against the fleet's total ingested value volume, which every
        epoch report carries.  Exact for flows large enough to be in
        every observer's local top-k (the §5.2 mergeability argument).
        """
        parts = [self._decoded_items(r) for r in reports.values()]
        merged = merge_top_items(parts, k, merge=max)
        total = sum(
            float(r.get("volume", 0.0)) for r in reports.values()
        )
        cutoff = (theta - epsilon) * total
        heavy = [(i, v) for i, v in merged if v >= cutoff]
        return {
            "total_volume": total,
            "cutoff": cutoff,
            "hitters": [[encode_id(i), v] for i, v in heavy],
        }

    def _hh_sample(
        self,
        reports: Dict[str, Dict[str, Any]],
        k: int,
        theta: float,
        epsilon: float,
    ) -> Dict[str, Any]:
        """The paper's KMV estimate over ``((flow, pid), hash)``
        entries — the same :mod:`repro.netwide.controller` math the
        offline simulation runs, against live daemon reports.

        Assumes daemons aggregate NMP wire reports (ids are
        ``(flow, packet_id)`` tuples, values are unit-interval hashes)
        and retain at least as many entries as were fed; non-tuple ids
        are skipped and counted so a mixed fleet degrades loudly.
        """
        entry_lists = []
        skipped = 0
        for report in reports.values():
            entries = []
            for item_id, value in self._decoded_items(report):
                if isinstance(item_id, tuple) and len(item_id) == 2:
                    entries.append((item_id, value))
                else:
                    skipped += 1
            entry_lists.append(entries)
        heavy = heavy_hitters_from_reports(
            entry_lists, k, theta, epsilon
        )
        return {
            "skipped_entries": skipped,
            "hitters": [[encode_id(i), v] for i, v in heavy],
        }

    # ------------------------------------------------------------------
    # The epoch cycle.
    # ------------------------------------------------------------------

    async def _op_epoch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        action = request.get("action")
        if action == "begin":
            return await self._epoch_begin()
        if action == "collect":
            return await self._epoch_collect(request)
        if action == "advance":
            return await self._epoch_advance()
        raise FleetError(
            f"epoch action must be begin/collect/advance, got {action!r}"
        )

    async def _broadcast_epoch(
        self, **params: Any
    ) -> Tuple[Dict[str, Any], int]:
        return await self._pull_alive("epoch", **params)

    async def _epoch_begin(self) -> Dict[str, Any]:
        self.epoch += 1
        self.epochs_begun += 1
        acks, registered = await self._broadcast_epoch(
            action="begin", epoch=self.epoch
        )
        _LOG.info(
            "epoch %d begun at %d/%d daemons",
            self.epoch, len(acks), registered,
        )
        return self._answer(len(acks), registered, {"action": "begin"})

    async def _epoch_collect(
        self, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        k = request.get("q", self.config.q)
        if not isinstance(k, int) or k < 1:
            raise FleetError(f"q must be a positive int, got {k!r}")
        start = time.perf_counter()
        with self.registry.span(
            "repro_fleet_collect", "end-to-end epoch collect time"
        ):
            reports, registered = await self._pull_alive(
                "epoch", action="collect", q=k
            )
            # Replace-by-id: collecting twice in one epoch (or a
            # duplicate delivery) overwrites, never double counts.
            for daemon_id, report in reports.items():
                self._reports[daemon_id] = report
        elapsed = time.perf_counter() - start
        observed = sum(
            int(r.get("observed", 0)) for r in reports.values()
        )
        self.last_collect = {
            "epoch": self.epoch,
            "reports": len(reports),
            "observed": observed,
            "seconds": elapsed,
            "at": time.time(),
        }
        return self._answer(len(reports), registered, {
            "action": "collect",
            "observed": observed,
            "seconds": elapsed,
        })

    async def _epoch_advance(self) -> Dict[str, Any]:
        next_epoch = self.epoch + 1
        acks, registered = await self._broadcast_epoch(
            action="advance", epoch=next_epoch,
            reset=self.config.reset_on_advance,
        )
        self.epoch = next_epoch
        self.epochs_begun += 1
        _LOG.info(
            "advanced to epoch %d (%d/%d daemons, reset=%s)",
            self.epoch, len(acks), registered,
            self.config.reset_on_advance,
        )
        return self._answer(len(acks), registered, {
            "action": "advance",
            "reset": self.config.reset_on_advance,
        })


# ----------------------------------------------------------------------
# Entry points.
# ----------------------------------------------------------------------

async def serve_fleet(
    config: FleetConfig,
    ready=None,
) -> None:
    """Run a coordinator until SIGTERM/SIGINT.

    ``ready`` (if given) is called with the live coordinator right
    after startup — the CLI uses it to print the bound port.
    """
    import signal as _signal

    coordinator = FleetCoordinator(config)
    await coordinator.start()
    loop = asyncio.get_running_loop()
    for sig in (_signal.SIGTERM, _signal.SIGINT):
        try:
            loop.add_signal_handler(sig, coordinator.request_stop)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    if ready is not None:
        ready(coordinator)
    try:
        await coordinator.wait_for_stop_request()
    finally:
        await coordinator.stop()


class CoordinatorThread:
    """A coordinator on a private event loop in a background thread —
    the test/demo/embedding harness, mirroring
    :class:`~repro.service.daemon.DaemonThread`."""

    def __init__(
        self, config: FleetConfig, start_timeout: float = 15.0
    ) -> None:
        self.config = config
        self.coordinator: FleetCoordinator = None  # type: ignore
        self._loop: asyncio.AbstractEventLoop = None  # type: ignore
        self._ready = threading.Event()
        self._finish: asyncio.Event = None  # type: ignore[assignment]
        self._startup_error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-fleet", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(start_timeout):
            raise FleetError(
                f"coordinator did not start within {start_timeout:g}s"
            )
        if self._startup_error is not None:
            raise FleetError(
                f"coordinator failed to start: {self._startup_error!r}"
            ) from self._startup_error

    def _thread_main(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._finish = asyncio.Event()
        self.coordinator = FleetCoordinator(self.config)
        try:
            await self.coordinator.start()
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        await self._finish.wait()
        await self.coordinator.stop()

    def stop(self, timeout: float = 30.0) -> None:
        if not self._thread.is_alive():
            return
        self._loop.call_soon_threadsafe(self._finish.set)
        self._thread.join(timeout)
        if self._thread.is_alive():  # pragma: no cover - watchdog path
            raise FleetError(
                f"coordinator did not stop within {timeout:g}s"
            )

    @property
    def host(self) -> str:
        return self.config.host

    @property
    def port(self) -> int:
        return self.coordinator.rpc.port

    @property
    def address(self) -> str:
        """``host:port`` in the form ``ServiceConfig.fleet`` expects."""
        return f"{self.host}:{self.port}"

    def __enter__(self) -> "CoordinatorThread":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
