"""The datapath → measurement-process record channel.

The paper's OVS integration does not run measurement inline: the
datapath "record[s] the source IP address, packet ID, and packet size
of selected packets" into one shared-memory block per PMD thread, and a
user-space program reads the records and feeds the algorithms.  This
module models that channel: a bounded single-producer/single-consumer
ring buffer of fixed-size packet records with drop accounting (a full
ring drops records rather than stalling the datapath — exactly the
back-pressure-free design line-rate forwarding needs).

:class:`RecordingMonitor` is a :class:`~repro.switch.monitor.MonitorHook`
that only writes records into a ring; :class:`MeasurementProcess`
drains rings and feeds any per-packet consumer — decoupling forwarding
cost from measurement cost like the real deployment.
"""

from __future__ import annotations

import struct
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.switch.monitor import MonitorHook
from repro.traffic.packet import Packet

#: One record: (src_ip: u32, packet_id: u64, size: u32) — the paper's
#: recorded fields.
RECORD = struct.Struct("!IQI")

#: A decoded record.
PacketRecord = Tuple[int, int, int]


class RingBuffer:
    """Bounded SPSC ring of packet records with drop counting."""

    __slots__ = ("capacity", "_slots", "_head", "_tail", "pushed",
                 "dropped")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self._slots: List[Optional[bytes]] = [None] * (capacity + 1)
        self._head = 0  # next slot to write
        self._tail = 0  # next slot to read
        self.pushed = 0
        self.dropped = 0

    def __len__(self) -> int:
        return (self._head - self._tail) % len(self._slots)

    @property
    def is_full(self) -> bool:
        return len(self) == self.capacity

    def push(self, record: bytes) -> bool:
        """Producer side: write one record; False (and count) if full."""
        next_head = (self._head + 1) % len(self._slots)
        if next_head == self._tail:
            self.dropped += 1
            return False
        self._slots[self._head] = record
        self._head = next_head
        self.pushed += 1
        return True

    def pop(self) -> Optional[bytes]:
        """Consumer side: read one record, or None when empty."""
        if self._tail == self._head:
            return None
        record = self._slots[self._tail]
        self._slots[self._tail] = None
        self._tail = (self._tail + 1) % len(self._slots)
        return record

    def drain(self, limit: Optional[int] = None) -> List[bytes]:
        """Pop up to ``limit`` records (all, when None)."""
        out: List[bytes] = []
        while limit is None or len(out) < limit:
            record = self.pop()
            if record is None:
                break
            out.append(record)
        return out


def encode_record(pkt: Packet) -> bytes:
    """Serialise the paper's three recorded fields."""
    return RECORD.pack(
        pkt.src_ip & 0xFFFFFFFF,
        pkt.packet_id & 0xFFFFFFFFFFFFFFFF,
        pkt.size & 0xFFFFFFFF,
    )


def decode_record(data: bytes) -> PacketRecord:
    """Parse one record; raises ConfigurationError on bad length."""
    if len(data) != RECORD.size:
        raise ConfigurationError(
            f"record must be {RECORD.size} bytes, got {len(data)}"
        )
    return RECORD.unpack(data)


def decode_records(records: Sequence[bytes]) -> List[PacketRecord]:
    """Decode a burst of records with a single C-level struct pass."""
    joined = b"".join(records)
    if len(joined) % RECORD.size:
        raise ConfigurationError(
            f"burst length {len(joined)} not a multiple of {RECORD.size}"
        )
    return list(RECORD.iter_unpack(joined))


class RecordingMonitor(MonitorHook):
    """Datapath-side hook: serialise records into a ring, nothing else.

    This is the forwarding-path cost of the paper's design: one struct
    pack and one ring write per packet, independent of q and of the
    measurement algorithm.
    """

    def __init__(self, capacity: int = 65536) -> None:
        self.ring = RingBuffer(capacity)
        self.name = f"recording(ring={capacity})"

    def on_packet(self, pkt: Packet) -> None:
        self.ring.push(encode_record(pkt))

    def on_batch(self, pkts: Sequence[Packet]) -> None:
        push = self.ring.push
        pack = RECORD.pack
        for pkt in pkts:
            push(pack(
                pkt.src_ip & 0xFFFFFFFF,
                pkt.packet_id & 0xFFFFFFFFFFFFFFFF,
                pkt.size & 0xFFFFFFFF,
            ))


class MeasurementProcess:
    """User-space side: drains rings and feeds a per-record consumer.

    ``consumer(src_ip, packet_id, size)`` is called once per record —
    wire it to any application update (q-MAX reservoir, priority
    sampler, NMP...).
    """

    def __init__(
        self,
        rings: Sequence[RingBuffer],
        consumer: Callable[[int, int, int], None],
    ) -> None:
        if not rings:
            raise ConfigurationError("need at least one ring")
        self.rings = list(rings)
        self.consumer = consumer
        self.consumed = 0

    def poll(self, budget_per_ring: int = 256) -> int:
        """One polling round across all rings; returns records consumed."""
        consumed = 0
        for ring in self.rings:
            for raw in ring.drain(budget_per_ring):
                src_ip, packet_id, size = decode_record(raw)
                self.consumer(src_ip, packet_id, size)
                consumed += 1
        self.consumed += consumed
        return consumed

    def run_until_empty(self, max_rounds: int = 1_000_000) -> int:
        """Poll until every ring is empty; returns total consumed."""
        total = 0
        for _ in range(max_rounds):
            consumed = self.poll()
            if consumed == 0:
                return total
            total += consumed
        raise ConfigurationError("rings never drained (producer racing?)")
