"""Monitoring hooks attachable to the simulated datapath.

Mirrors the paper's OVS integration: the datapath records the source
IP, packet id and packet size of each forwarded packet and hands the
record to a measurement structure.  The hook's per-packet cost is what
differentiates q-MAX from Heap/SkipList in Figures 12–17.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.apps.priority_sampling import PrioritySampler
from repro.apps.reservoirs import make_reservoir
from repro.core.interface import QMaxBase
from repro.errors import ConfigurationError
from repro.hashing.uniform import UniformHasher
from repro.netwide.nmp import MeasurementPoint
from repro.traffic.packet import Packet


class MonitorHook:
    """Base class: a per-packet measurement callback."""

    name = "monitor"

    def on_packet(self, pkt: Packet) -> None:
        raise NotImplementedError

    def on_batch(self, pkts: Sequence[Packet]) -> None:
        """Process one forwarded burst; equivalent to per-packet
        :meth:`on_packet` calls in order.  Subclasses override this to
        amortize hashing and reservoir dispatch across the burst."""
        on_packet = self.on_packet
        for pkt in pkts:
            on_packet(pkt)


class NullMonitor(MonitorHook):
    """Vanilla OVS: no measurement (the baseline curve)."""

    name = "vanilla"

    def on_packet(self, pkt: Packet) -> None:
        return None

    def on_batch(self, pkts: Sequence[Packet]) -> None:
        return None


class QMaxMonitor(MonitorHook):
    """Raw reservoir monitoring: keep the q packets with the largest
    hash-derived values (the Figures 12/13/15/16 microworkload).

    The value is a per-packet uniform hash — the same access pattern as
    the paper's random-number streams.
    """

    def __init__(
        self,
        q: int,
        backend: str = "qmax",
        gamma: float = 0.25,
        seed: int = 0,
    ) -> None:
        self._reservoir: QMaxBase = make_reservoir(backend, q, gamma)
        self._uniform = UniformHasher(seed)
        self.name = f"reservoir[{self._reservoir.name}]"

    def on_packet(self, pkt: Packet) -> None:
        value = self._uniform.unit(pkt.packet_id)
        self._reservoir.add((pkt.src_ip, pkt.packet_id, pkt.size), value)

    def on_batch(self, pkts: Sequence[Packet]) -> None:
        unit = self._uniform.unit
        self._reservoir.add_many(
            [(pkt.src_ip, pkt.packet_id, pkt.size) for pkt in pkts],
            [unit(pkt.packet_id) for pkt in pkts],
        )

    @property
    def reservoir(self) -> QMaxBase:
        return self._reservoir


class PrioritySamplingMonitor(MonitorHook):
    """Priority Sampling in the datapath (Figure 14a/b, 17a/b)."""

    def __init__(
        self,
        q: int,
        backend: str = "qmax",
        gamma: float = 0.25,
        seed: int = 0,
    ) -> None:
        self._sampler = PrioritySampler(q, backend=backend, gamma=gamma,
                                        seed=seed)
        self.name = f"priority-sampling[{backend}]"

    def on_packet(self, pkt: Packet) -> None:
        # Key by packet id (priority sampling assumes distinct keys),
        # weight by packet size — the byte-volume sample.
        self._sampler.update(pkt.packet_id, pkt.size)

    def on_batch(self, pkts: Sequence[Packet]) -> None:
        self._sampler.update_many(
            [pkt.packet_id for pkt in pkts], [pkt.size for pkt in pkts]
        )

    @property
    def sampler(self) -> PrioritySampler:
        return self._sampler


class NetworkWideMonitor(MonitorHook):
    """Network-wide heavy hitters NMP in the datapath (Fig 14c/d, 17c/d)."""

    def __init__(
        self,
        q: int,
        backend: str = "qmax",
        gamma: float = 0.25,
        seed: int = 0,
    ) -> None:
        self._nmp = MeasurementPoint(q, backend=backend, gamma=gamma,
                                     seed=seed)
        self.name = f"network-wide-hh[{backend}]"

    def on_packet(self, pkt: Packet) -> None:
        self._nmp.observe(pkt)

    def on_batch(self, pkts: Sequence[Packet]) -> None:
        self._nmp.observe_many(pkts)

    @property
    def nmp(self) -> MeasurementPoint:
        return self._nmp


class SlidingReservoirMonitor(MonitorHook):
    """Windowed reservoir monitoring: the top-q hash values over the
    recent ``window_seconds`` of traffic — the in-switch counterpart of
    the sliding experiments (Figures 10–11), keyed by packet timestamp.
    """

    def __init__(
        self,
        q: int,
        window_seconds: float,
        tau: float = 0.25,
        seed: int = 0,
    ) -> None:
        from repro.core.time_sliding import TimeSlidingQMax

        self._window = TimeSlidingQMax(q, window_seconds, tau)
        self._uniform = UniformHasher(seed)
        self.name = f"sliding-reservoir(W={window_seconds:g}s)"

    def on_packet(self, pkt: Packet) -> None:
        value = self._uniform.unit(pkt.packet_id)
        self._window.add_at(
            pkt.timestamp, (pkt.src_ip, pkt.packet_id, pkt.size), value
        )

    @property
    def window(self):
        return self._window


def make_monitor(
    kind: str,
    q: int,
    backend: str = "qmax",
    gamma: float = 0.25,
    seed: int = 0,
) -> MonitorHook:
    """Factory for benchmark harnesses."""
    if kind == "none":
        return NullMonitor()
    if kind == "reservoir":
        return QMaxMonitor(q, backend, gamma, seed)
    if kind == "priority-sampling":
        return PrioritySamplingMonitor(q, backend, gamma, seed)
    if kind == "network-wide-hh":
        return NetworkWideMonitor(q, backend, gamma, seed)
    raise ConfigurationError(f"unknown monitor kind {kind!r}")
