"""Multi-PMD datapath: RSS sharding across poll-mode drivers.

The paper's OVS integration "build[s] one shared memory block for each
PMD thread" — monitoring state is per-PMD, and a user-space program
merges the per-PMD records.  This module models that deployment: an
RSS-style hash on the five-tuple shards packets across ``n_pmds``
single-threaded :class:`~repro.switch.datapath.Datapath` instances,
each with its own monitor, plus merged views over the per-PMD state.

(The simulation runs the PMDs sequentially in one Python thread; the
point is the *state sharding* — which flows land on which monitor and
how per-PMD samples merge — not parallel speedup.)
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro._compat import HAVE_NUMPY, np
from repro.core.interface import QMaxBase
from repro.errors import ConfigurationError
from repro.hashing.multiply_shift import MultiplyShiftHash
from repro.hashing.uniform import UniformHasher
from repro.switch.datapath import Datapath
from repro.switch.monitor import MonitorHook, NetworkWideMonitor
from repro.switch.ringbuffer import RECORD, RecordingMonitor, RingBuffer
from repro.traffic.packet import Packet

#: Big-endian record layout matching ``ringbuffer.RECORD`` ("!IQI"),
#: for zero-copy burst decoding via ``np.frombuffer``.
_RECORD_DTYPE = [("src", ">u4"), ("pid", ">u8"), ("size", ">u4")]

#: Below this burst size the ndarray round-trip is not worth it.
_VECTOR_MIN_BURST = 32


class MultiPMDDatapath:
    """An RSS-sharded bank of datapaths with per-PMD monitors.

    Parameters
    ----------
    n_pmds:
        Number of PMD instances (OVS: one per polled core).
    monitor_factory:
        Builds one monitor per PMD (receives the PMD index).
    rss_seed:
        Seed of the RSS hash (flow → PMD assignment).
    """

    def __init__(
        self,
        n_pmds: int,
        monitor_factory: Callable[[int], MonitorHook],
        rss_seed: int = 0,
    ) -> None:
        if n_pmds < 1:
            raise ConfigurationError(f"n_pmds must be >= 1, got {n_pmds}")
        self.n_pmds = n_pmds
        self.monitors: List[MonitorHook] = [
            monitor_factory(i) for i in range(n_pmds)
        ]
        self.pmds: List[Datapath] = [
            Datapath(monitor=monitor) for monitor in self.monitors
        ]
        self._rss = MultiplyShiftHash(out_bits=32, seed=rss_seed)

    def pmd_of(self, pkt: Packet) -> int:
        """RSS: which PMD handles this packet (flow-sticky)."""
        return self._rss(pkt.five_tuple) % self.n_pmds

    def process(self, pkt: Packet) -> str:
        """Dispatch one packet to its PMD."""
        return self.pmds[self.pmd_of(pkt)].process(pkt)

    def run(self, packets: Sequence[Packet]) -> int:
        """Process a trace; returns total packets forwarded.

        Packets are sharded to their PMDs first, then each PMD runs its
        shard through its batched PMD loop — per-PMD arrival order (the
        only order RSS guarantees) is preserved, so per-PMD state is
        identical to per-packet dispatch.
        """
        shards: List[List[Packet]] = [[] for _ in range(self.n_pmds)]
        rss = self._rss
        n_pmds = self.n_pmds
        for pkt in packets:
            shards[rss(pkt.five_tuple) % n_pmds].append(pkt)
        for dp, shard in zip(self.pmds, shards):
            if shard:
                dp.run(shard)
        return self.packets_forwarded

    # ------------------------------------------------------------------
    # Merged views over the per-PMD state.
    # ------------------------------------------------------------------

    @property
    def packets_forwarded(self) -> int:
        return sum(dp.packets_forwarded for dp in self.pmds)

    @property
    def bytes_forwarded(self) -> int:
        return sum(dp.bytes_forwarded for dp in self.pmds)

    def load_by_pmd(self) -> List[int]:
        """Packets forwarded per PMD (RSS balance check)."""
        return [dp.packets_forwarded for dp in self.pmds]

    def merged_network_wide_sample(self, q: int):
        """Merge per-PMD NMP samples (requires NetworkWideMonitor).

        Per-PMD reports are bottom-q (record, hash) lists; the merge is
        the sharded engine's bottom-q merge
        (:func:`repro.parallel.merge.merge_bottom_items`): duplicate
        observations of one record carry identical hashes and collapse,
        and the result is the q globally minimal pairs, ascending —
        exactly the controller's KMV sample format.
        """
        from repro.parallel.merge import merge_bottom_items

        reports = []
        for monitor in self.monitors:
            if not isinstance(monitor, NetworkWideMonitor):
                raise ConfigurationError(
                    "merged_network_wide_sample needs NetworkWideMonitor "
                    f"per PMD, found {type(monitor).__name__}"
                )
            reports.append(monitor.nmp.report())
        return merge_bottom_items(reports, q)


class _RecordIds:
    """Lazy ``(src_ip, packet_id, size)`` view over decoded columns.

    ``add_many`` only touches ``ids[i]`` for items that survive the Ψ
    filter, so in the common discard case no record tuple is ever
    materialized — the whole burst is rejected by one vectorized
    comparison.
    """

    __slots__ = ("_src", "_pid", "_size")

    def __init__(self, src, pid, size) -> None:
        self._src = src
        self._pid = pid
        self._size = size

    def __len__(self) -> int:
        return len(self._src)

    def __getitem__(self, i):
        return (int(self._src[i]), int(self._pid[i]), int(self._size[i]))


class BurstMeasurementPipeline:
    """The paper's full OVS deployment, DPDK burst semantics included.

    The datapath side is a :class:`MultiPMDDatapath` whose per-PMD
    monitors only serialize ``(src_ip, packet_id, size)`` records into
    shared-memory rings (:class:`RecordingMonitor`).  The measurement
    side drains each ring in bursts: one burst is decoded with a single
    C-level pass (``np.frombuffer`` when NumPy is available, a
    ``struct`` bulk-unpack otherwise), per-packet uniform values are
    derived — vectorized via :meth:`UniformHasher.unit_many` on the
    NumPy path — and the whole burst goes to the reservoir through
    ``add_many``.  On the NumPy path the common case (every record at
    or below Ψ) therefore executes **zero per-record Python calls**:
    decode, hash, and filter are all single vectorized operations.

    Parameters
    ----------
    n_pmds:
        Number of PMD instances / rings.
    reservoir_factory:
        Builds the shared measurement reservoir (a ``QMaxBase``).
    ring_capacity:
        Per-PMD ring size in records.
    burst:
        Records drained from one ring per poll round (DPDK's
        ``rx_burst`` analogue).
    seed:
        Seed of the per-packet uniform hash.
    shards:
        When > 1, the measurement reservoir becomes a
        :class:`~repro.parallel.engine.ShardedQMaxEngine` over
        ``shards`` copies of ``reservoir_factory`` — the paper's
        one-measurement-instance-per-core deployment.  Record ids are
        tuples, so per-record Python dispatch replaces the vectorized
        single-reservoir path; use it for core scaling, not for
        single-core burst throughput.
    shard_mode:
        Forwarded to the engine (``auto``/``process``/``inline``).
    """

    def __init__(
        self,
        n_pmds: int,
        reservoir_factory: Callable[[], QMaxBase],
        ring_capacity: int = 65536,
        burst: int = 256,
        seed: int = 0,
        rss_seed: int = 0,
        use_numpy: Optional[bool] = None,
        shards: int = 1,
        shard_mode: str = "auto",
    ) -> None:
        if burst < 1:
            raise ConfigurationError(f"burst must be >= 1, got {burst}")
        if use_numpy and not HAVE_NUMPY:
            raise ConfigurationError(
                "use_numpy=True but numpy is not installed "
                "(pip install .[fast])"
            )
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        self.datapath = MultiPMDDatapath(
            n_pmds,
            lambda _i: RecordingMonitor(ring_capacity),
            rss_seed=rss_seed,
        )
        if shards > 1:
            from repro.parallel.engine import ShardedQMaxEngine

            self.reservoir: QMaxBase = ShardedQMaxEngine(
                n_shards=shards,
                mode=shard_mode,
                backend_factory=reservoir_factory,
                use_numpy=use_numpy,
            )
        else:
            self.reservoir = reservoir_factory()
        self.shards = shards
        self.burst = burst
        self.consumed = 0
        self._uniform = UniformHasher(seed)
        self._use_numpy = HAVE_NUMPY if use_numpy is None else use_numpy
        self._min_burst = 1 if use_numpy else _VECTOR_MIN_BURST

    @property
    def rings(self) -> List[RingBuffer]:
        return [m.ring for m in self.datapath.monitors]

    def process(self, packets: Sequence[Packet]) -> int:
        """Forward a trace and measure all recorded packets; returns
        the number of records consumed by the measurement side."""
        self.datapath.run(packets)
        return self.drain()

    def poll(self) -> int:
        """One burst per ring; returns records consumed."""
        consumed = 0
        for ring in self.rings:
            records = ring.drain(self.burst)
            if records:
                self._consume_burst(records)
                consumed += len(records)
        self.consumed += consumed
        return consumed

    def drain(self) -> int:
        """Poll until every ring is empty; returns total consumed."""
        total = 0
        while True:
            consumed = self.poll()
            if consumed == 0:
                return total
            total += consumed

    def close(self) -> None:
        """Drain outstanding records and release the reservoir (a
        sharded reservoir stops its workers; plain ones are no-ops)."""
        self.drain()
        close = getattr(self.reservoir, "close", None)
        if close is not None:
            close()

    def _consume_burst(self, records: List[bytes]) -> None:
        if self._use_numpy and len(records) >= self._min_burst:
            arr = np.frombuffer(b"".join(records), dtype=_RECORD_DTYPE)
            self.reservoir.add_many(
                _RecordIds(arr["src"], arr["pid"], arr["size"]),
                self._uniform.unit_many(arr["pid"]),
            )
        else:
            recs = list(RECORD.iter_unpack(b"".join(records)))
            unit = self._uniform.unit
            self.reservoir.add_many(recs, [unit(r[1]) for r in recs])
