"""Multi-PMD datapath: RSS sharding across poll-mode drivers.

The paper's OVS integration "build[s] one shared memory block for each
PMD thread" — monitoring state is per-PMD, and a user-space program
merges the per-PMD records.  This module models that deployment: an
RSS-style hash on the five-tuple shards packets across ``n_pmds``
single-threaded :class:`~repro.switch.datapath.Datapath` instances,
each with its own monitor, plus merged views over the per-PMD state.

(The simulation runs the PMDs sequentially in one Python thread; the
point is the *state sharding* — which flows land on which monitor and
how per-PMD samples merge — not parallel speedup.)
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.errors import ConfigurationError
from repro.hashing.multiply_shift import MultiplyShiftHash
from repro.switch.datapath import Datapath
from repro.switch.monitor import MonitorHook, NetworkWideMonitor
from repro.traffic.packet import Packet


class MultiPMDDatapath:
    """An RSS-sharded bank of datapaths with per-PMD monitors.

    Parameters
    ----------
    n_pmds:
        Number of PMD instances (OVS: one per polled core).
    monitor_factory:
        Builds one monitor per PMD (receives the PMD index).
    rss_seed:
        Seed of the RSS hash (flow → PMD assignment).
    """

    def __init__(
        self,
        n_pmds: int,
        monitor_factory: Callable[[int], MonitorHook],
        rss_seed: int = 0,
    ) -> None:
        if n_pmds < 1:
            raise ConfigurationError(f"n_pmds must be >= 1, got {n_pmds}")
        self.n_pmds = n_pmds
        self.monitors: List[MonitorHook] = [
            monitor_factory(i) for i in range(n_pmds)
        ]
        self.pmds: List[Datapath] = [
            Datapath(monitor=monitor) for monitor in self.monitors
        ]
        self._rss = MultiplyShiftHash(out_bits=32, seed=rss_seed)

    def pmd_of(self, pkt: Packet) -> int:
        """RSS: which PMD handles this packet (flow-sticky)."""
        return self._rss(pkt.five_tuple) % self.n_pmds

    def process(self, pkt: Packet) -> str:
        """Dispatch one packet to its PMD."""
        return self.pmds[self.pmd_of(pkt)].process(pkt)

    def run(self, packets: Sequence[Packet]) -> int:
        """Process a trace; returns total packets forwarded."""
        for pkt in packets:
            self.process(pkt)
        return self.packets_forwarded

    # ------------------------------------------------------------------
    # Merged views over the per-PMD state.
    # ------------------------------------------------------------------

    @property
    def packets_forwarded(self) -> int:
        return sum(dp.packets_forwarded for dp in self.pmds)

    @property
    def bytes_forwarded(self) -> int:
        return sum(dp.bytes_forwarded for dp in self.pmds)

    def load_by_pmd(self) -> List[int]:
        """Packets forwarded per PMD (RSS balance check)."""
        return [dp.packets_forwarded for dp in self.pmds]

    def merged_network_wide_sample(self, q: int):
        """Merge per-PMD NMP samples (requires NetworkWideMonitor)."""
        from repro.netwide.controller import Controller

        nmps = []
        for monitor in self.monitors:
            if not isinstance(monitor, NetworkWideMonitor):
                raise ConfigurationError(
                    "merged_network_wide_sample needs NetworkWideMonitor "
                    f"per PMD, found {type(monitor).__name__}"
                )
            nmps.append(monitor.nmp)
        return Controller(q).merge_reports(nmps)
