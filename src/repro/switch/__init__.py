"""Simulated Open-vSwitch-style datapath (the OVS integration substitute).

The paper's §6.6 measures how much a monitoring structure's per-packet
update cost degrades a virtual switch's forwarding throughput on 10G
and 40G links.  We reproduce the *structure* of that experiment: a
datapath with an exact-match megaflow cache in front of a wildcard flow
table, a PMD-style batch loop, and a pluggable monitoring hook that
records (source IP, packet id, packet size) per packet — mirroring the
paper's shared-memory design.  Throughput is measured in packets/sec of
the simulated pipeline and converted to Gbps via the link model.
"""

from repro.switch.flow_table import FlowRule, FlowTable, make_default_rules
from repro.switch.datapath import Datapath
from repro.switch.pmd import MultiPMDDatapath
from repro.switch.monitor import (
    MonitorHook,
    NullMonitor,
    QMaxMonitor,
    PrioritySamplingMonitor,
    NetworkWideMonitor,
    make_monitor,
)
from repro.switch.linerate import LinkModel, TEN_GBPS, FORTY_GBPS

__all__ = [
    "FlowRule",
    "FlowTable",
    "make_default_rules",
    "Datapath",
    "MultiPMDDatapath",
    "MonitorHook",
    "NullMonitor",
    "QMaxMonitor",
    "PrioritySamplingMonitor",
    "NetworkWideMonitor",
    "make_monitor",
    "LinkModel",
    "TEN_GBPS",
    "FORTY_GBPS",
]
