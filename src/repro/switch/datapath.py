"""The simulated datapath: megaflow cache, slow path, PMD batch loop.

Structure mirrors the OVS userspace datapath:

1. **Exact-match cache** (EMC): a dict keyed by five-tuple.  Hits pay
   one dict lookup — the fast path.
2. **Slow path**: on a miss, the wildcard :class:`FlowTable` classifies
   the packet and the result is installed in the EMC (with a bounded
   size and random-ish eviction, like the real EMC).
3. **Monitoring hook**: every forwarded packet's (src IP, packet id,
   size) record is handed to the attached monitor — the paper's
   shared-memory monitoring point.

``process_batch``/``run`` return simple counters; the benchmark harness
measures wall-clock packet rates around them, and the relative rates of
the same pipeline with different monitors reproduce Figures 12–17's
shapes (the monitor's cost is the only variable).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.switch.flow_table import FlowTable, make_default_rules
from repro.switch.monitor import MonitorHook, NullMonitor
from repro.traffic.packet import Packet

#: Default exact-match cache capacity (OVS's EMC holds 8192 entries).
DEFAULT_EMC_SIZE = 8192


class Datapath:
    """A single-PMD simulated switch datapath."""

    def __init__(
        self,
        flow_table: Optional[FlowTable] = None,
        monitor: Optional[MonitorHook] = None,
        emc_size: int = DEFAULT_EMC_SIZE,
        batch_size: int = 32,
    ) -> None:
        if emc_size < 1:
            raise ConfigurationError("emc_size must be >= 1")
        if batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        self.flow_table = flow_table or FlowTable(make_default_rules())
        self.monitor: MonitorHook = monitor or NullMonitor()
        self.emc_size = emc_size
        self.batch_size = batch_size
        self._emc: Dict[Tuple[int, int, int, int, int], str] = {}
        self.packets_forwarded = 0
        self.packets_dropped = 0
        self.emc_hits = 0
        self.emc_misses = 0
        self.bytes_forwarded = 0

    def _classify(self, pkt: Packet) -> str:
        key = pkt.five_tuple
        emc = self._emc
        action = emc.get(key)
        if action is not None:
            self.emc_hits += 1
            return action
        self.emc_misses += 1
        action = self.flow_table.lookup(pkt)
        if len(emc) >= self.emc_size:
            # Bounded cache: evict an arbitrary entry (dict order is
            # insertion order, so this approximates FIFO/random like
            # the EMC's hash-slot replacement).
            emc.pop(next(iter(emc)))
        emc[key] = action
        return action

    def process(self, pkt: Packet) -> str:
        """Forward one packet through the full pipeline."""
        action = self._classify(pkt)
        if action == "drop":
            self.packets_dropped += 1
            return action
        self.monitor.on_packet(pkt)
        self.packets_forwarded += 1
        self.bytes_forwarded += pkt.size
        return action

    def process_batch(self, batch: Sequence[Packet]) -> int:
        """Process one PMD batch; returns packets forwarded.

        Classifies the whole batch first, then hands the forwarded
        packets to the monitor as one burst (``on_batch``) — the
        DPDK-style split that lets batch-aware monitors amortize their
        per-packet cost.  Monitors never influence classification, so
        the resulting state matches per-packet :meth:`process` calls.
        """
        classify = self._classify
        forwarded: List[Packet] = []
        append = forwarded.append
        dropped = 0
        nbytes = 0
        for pkt in batch:
            if classify(pkt) == "drop":
                dropped += 1
            else:
                append(pkt)
                nbytes += pkt.size
        if forwarded:
            self.monitor.on_batch(forwarded)
        self.packets_dropped += dropped
        self.packets_forwarded += len(forwarded)
        self.bytes_forwarded += nbytes
        return len(forwarded)

    def run(self, packets: Sequence[Packet]) -> int:
        """Run the PMD loop over a trace in batches."""
        size = self.batch_size
        for start in range(0, len(packets), size):
            self.process_batch(packets[start:start + size])
        return self.packets_forwarded

    @property
    def emc_hit_rate(self) -> float:
        total = self.emc_hits + self.emc_misses
        return self.emc_hits / total if total else 0.0

    def reset_counters(self) -> None:
        self.packets_forwarded = 0
        self.packets_dropped = 0
        self.emc_hits = 0
        self.emc_misses = 0
        self.bytes_forwarded = 0
