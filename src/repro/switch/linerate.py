"""Link-rate accounting for the switch experiments.

Converts measured packets/second into Gbps for a given packet size and
computes the line-rate packet rate of a link — including Ethernet
framing overhead (preamble 8B + inter-frame gap 12B; the 4-byte FCS is
counted inside the frame size, per convention), which is why a 10G link
carries at most ~14.88 Mpps of 64-byte frames.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Per-frame wire overhead in bytes: preamble + inter-frame gap.
FRAMING_OVERHEAD = 8 + 12

#: Minimum Ethernet frame (FCS included, per convention).
MIN_FRAME = 64


@dataclass(frozen=True)
class LinkModel:
    """A link with a nominal rate in bits/second."""

    bits_per_second: float
    name: str = "link"

    def __post_init__(self) -> None:
        if self.bits_per_second <= 0:
            raise ConfigurationError("link rate must be positive")

    def line_rate_pps(self, frame_bytes: int) -> float:
        """Maximal packets/second for a given frame size."""
        frame = max(frame_bytes, MIN_FRAME) + FRAMING_OVERHEAD
        return self.bits_per_second / (frame * 8)

    def gbps_at(self, pps: float, frame_bytes: int) -> float:
        """Goodput (payload bits, excluding framing) at a packet rate."""
        return pps * max(frame_bytes, MIN_FRAME) * 8 / 1e9

    def utilisation(self, pps: float, frame_bytes: int) -> float:
        """Fraction of line rate achieved at ``pps`` (capped at 1)."""
        return min(1.0, pps / self.line_rate_pps(frame_bytes))


TEN_GBPS = LinkModel(10e9, name="10G")
FORTY_GBPS = LinkModel(40e9, name="40G")
