"""Wildcard flow table — the datapath's slow path.

OVS's datapath consults an exact-match cache first; on a miss it falls
back to a priority-ordered wildcard rule table (the "megaflow"
classifier) and installs the result in the cache.  We model rules as
masked five-tuple matches with priorities and simple actions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.traffic.packet import Packet

#: A five-tuple of match values; None entries are wildcards.
MatchSpec = Tuple[
    Optional[int], Optional[int], Optional[int], Optional[int], Optional[int]
]


@dataclass(frozen=True)
class FlowRule:
    """One wildcard rule.

    Attributes
    ----------
    match:
        (src_ip_prefix, prefix_len, dst_port, proto, _reserved) style
        matching is overkill here; we match on (src_ip masked, dst_ip
        masked, dst_port, proto) with explicit masks.
    priority:
        Higher wins.
    action:
        Opaque action label (e.g. output port) returned on match.
    """

    src_ip: Optional[int] = None
    src_mask: int = 0xFFFFFFFF
    dst_ip: Optional[int] = None
    dst_mask: int = 0xFFFFFFFF
    dst_port: Optional[int] = None
    proto: Optional[int] = None
    priority: int = 0
    action: str = "output:1"

    def matches(self, pkt: Packet) -> bool:
        if self.src_ip is not None and (pkt.src_ip & self.src_mask) != (
            self.src_ip & self.src_mask
        ):
            return False
        if self.dst_ip is not None and (pkt.dst_ip & self.dst_mask) != (
            self.dst_ip & self.dst_mask
        ):
            return False
        if self.dst_port is not None and pkt.dst_port != self.dst_port:
            return False
        if self.proto is not None and pkt.proto != self.proto:
            return False
        return True


class FlowTable:
    """Priority-ordered wildcard rule list with linear matching.

    Linear scan is authentic to datapath slow paths at small rule
    counts and keeps the per-miss cost realistic relative to the
    exact-match fast path.
    """

    def __init__(self, rules: Optional[List[FlowRule]] = None) -> None:
        self._rules: List[FlowRule] = []
        for rule in rules or []:
            self.add_rule(rule)

    def add_rule(self, rule: FlowRule) -> None:
        """Insert keeping descending-priority order."""
        index = 0
        while (
            index < len(self._rules)
            and self._rules[index].priority >= rule.priority
        ):
            index += 1
        self._rules.insert(index, rule)

    def lookup(self, pkt: Packet) -> str:
        """Action of the highest-priority matching rule."""
        for rule in self._rules:
            if rule.matches(pkt):
                return rule.action
        return "drop"

    def __len__(self) -> int:
        return len(self._rules)


def make_default_rules(n_output_ports: int = 4) -> List[FlowRule]:
    """A plausible rule set: per-/8 forwarding plus service rules."""
    if n_output_ports < 1:
        raise ConfigurationError("need at least one output port")
    rules = [
        FlowRule(
            src_ip=(10 << 24),
            src_mask=0xFF000000,
            priority=10,
            action=f"output:{1 + i % n_output_ports}",
        )
        for i in range(n_output_ports)
    ]
    rules.append(FlowRule(dst_port=22, priority=100, action="controller"))
    rules.append(FlowRule(dst_port=53, priority=50, action="output:1"))
    rules.append(FlowRule(priority=0, action="output:1"))  # default
    return rules
