"""Shared type aliases and the stream-item model.

The paper's streaming model (§4.1) treats a stream as a sequence of
``(id, value)`` pairs where ``id`` comes from an arbitrary universe and
``value`` from a fully ordered domain.  We represent items as plain
tuples ``(id, value)`` throughout the hot paths (tuples are the cheapest
composite object in CPython), and expose the aliases here so signatures
stay readable.
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Tuple, Union

#: Identifier of a stream item (flow key, packet id, cache key, ...).
ItemId = Hashable

#: Value of a stream item; any totally ordered numeric works.
Value = Union[int, float]

#: A stream item as stored by every q-MAX implementation.
Item = Tuple[ItemId, Value]

#: An iterable of stream items (what ``extend`` style APIs consume).
ItemStream = Iterable[Item]

#: What ``query`` returns: items sorted by descending value.
TopItems = List[Item]
