"""The benchmark regression gate: fail CI when throughput drops.

``repro bench gate --baseline <sha> --max-regress 10%`` compares the
candidate commit's recorded trajectory rows against a baseline commit's
and fails when any throughput metric (unit in
:data:`~repro.bench.trajectory.THROUGHPUT_UNITS`) dropped by more than
the allowance.  Comparisons are only made between rows with the same
machine fingerprint id — numbers from different hosts (or different
accelerator stacks, which the fingerprint includes) are not comparable
and show up as ``no-baseline`` instead of failing.

Noise handling: benchmark rows carry 99% confidence-interval
half-widths, and the allowance for a metric widens by the relative CI
of both sides — a 12% drop inside ±8% error bars is noise, not a
regression.  A metric fails only when::

    (baseline - candidate) / baseline  >  max_regress + ci_b/baseline
                                                      + ci_c/baseline
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.bench.trajectory import (
    THROUGHPUT_UNITS,
    MetricPoint,
    TrajectoryStore,
)
from repro.errors import TrajectoryError

#: Result statuses, from best to worst.
STATUS_OK = "ok"
STATUS_IMPROVED = "improved"
STATUS_NO_BASELINE = "no-baseline"
STATUS_REGRESSED = "REGRESSED"


def parse_percent(text: str) -> float:
    """``"10%"`` -> 0.10; bare floats (``0.1``) pass through."""
    match = re.fullmatch(r"\s*([0-9]*\.?[0-9]+)\s*(%?)\s*", str(text))
    if not match:
        raise TrajectoryError(f"cannot parse percentage {text!r}")
    value = float(match.group(1))
    if match.group(2):
        value /= 100.0
    if not 0.0 <= value < 1.0:
        raise TrajectoryError(
            f"max-regress must be in [0%, 100%): got {text!r}"
        )
    return value


@dataclass(frozen=True)
class GateFinding:
    """The gate's verdict on one (benchmark, metric, machine) triple."""

    benchmark: str
    metric: str
    machine_id: str
    unit: str
    baseline: Optional[float]
    candidate: float
    delta: Optional[float]  # relative change, candidate vs baseline
    allowance: Optional[float]  # total allowed relative drop
    status: str

    @property
    def failed(self) -> bool:
        return self.status == STATUS_REGRESSED


@dataclass(frozen=True)
class GateReport:
    baseline_sha: str
    candidate_sha: str
    max_regress: float
    findings: Tuple[GateFinding, ...]

    @property
    def failed(self) -> bool:
        return any(f.failed for f in self.findings)

    @property
    def compared(self) -> int:
        return sum(1 for f in self.findings
                   if f.status != STATUS_NO_BASELINE)


def _judge(
    base: MetricPoint, cand: MetricPoint, max_regress: float
) -> Tuple[float, float, str]:
    if base.value <= 0.0:
        return 0.0, max_regress, STATUS_OK  # degenerate baseline
    delta = (cand.value - base.value) / base.value
    allowance = max_regress + (base.ci_halfwidth + cand.ci_halfwidth) / base.value
    if delta < -allowance:
        return delta, allowance, STATUS_REGRESSED
    if delta > allowance:
        return delta, allowance, STATUS_IMPROVED
    return delta, allowance, STATUS_OK


def run_gate(
    store: TrajectoryStore,
    baseline_sha: str,
    candidate_sha: Optional[str] = None,
    max_regress: float = 0.10,
) -> GateReport:
    """Compare the candidate SHA's throughput metrics to the baseline's.

    ``candidate_sha`` defaults to the most recently measured SHA in the
    store.  Unknown SHAs raise :class:`TrajectoryError`; a candidate
    metric without a same-machine baseline counterpart is reported as
    ``no-baseline`` and never fails the gate (new benchmarks and new CI
    runners must not block merges).
    """
    shas = store.shas()
    if baseline_sha not in shas:
        raise TrajectoryError(
            f"baseline sha {baseline_sha!r} has no rows in {store.root}"
        )
    if candidate_sha is None:
        candidates = [s for s in shas if s != baseline_sha]
        if not candidates:
            raise TrajectoryError(
                f"store {store.root} has no candidate sha besides the "
                f"baseline {baseline_sha!r}"
            )
        candidate_sha = candidates[-1]
    elif candidate_sha not in shas:
        raise TrajectoryError(
            f"candidate sha {candidate_sha!r} has no rows in {store.root}"
        )

    base_metrics = store.latest_metrics(baseline_sha)
    cand_metrics = store.latest_metrics(candidate_sha)

    findings: List[GateFinding] = []
    for key in sorted(cand_metrics):
        benchmark, metric_name, machine_id = key
        _row, cand = cand_metrics[key]
        if cand.unit not in THROUGHPUT_UNITS:
            continue
        held = base_metrics.get(key)
        if held is None or held[1].unit != cand.unit:
            findings.append(GateFinding(
                benchmark=benchmark, metric=metric_name,
                machine_id=machine_id, unit=cand.unit,
                baseline=None, candidate=cand.value,
                delta=None, allowance=None, status=STATUS_NO_BASELINE,
            ))
            continue
        base = held[1]
        delta, allowance, status = _judge(base, cand, max_regress)
        findings.append(GateFinding(
            benchmark=benchmark, metric=metric_name,
            machine_id=machine_id, unit=cand.unit,
            baseline=base.value, candidate=cand.value,
            delta=delta, allowance=allowance, status=status,
        ))
    return GateReport(
        baseline_sha=baseline_sha,
        candidate_sha=candidate_sha,
        max_regress=max_regress,
        findings=tuple(findings),
    )


def render_gate_report(report: GateReport, verbose: bool = False) -> str:
    """Human-readable gate outcome (regressions always listed)."""
    from repro.bench.reporting import print_table

    shown = [f for f in report.findings
             if verbose or f.status != STATUS_OK]
    lines: List[str] = []
    if shown:
        rows = [
            [
                f.benchmark,
                f.metric,
                "-" if f.baseline is None else round(f.baseline, 3),
                round(f.candidate, 3),
                "-" if f.delta is None else f"{f.delta:+.1%}",
                "-" if f.allowance is None else f"±{f.allowance:.1%}",
                f.status,
            ]
            for f in shown
        ]
        lines.append(print_table(
            f"bench gate: {report.candidate_sha[:10]} vs baseline "
            f"{report.baseline_sha[:10]} (max regress "
            f"{report.max_regress:.0%} + CI)",
            ["benchmark", "metric", "baseline", "candidate", "delta",
             "allowed", "status"],
            rows,
        ))
    n_reg = sum(1 for f in report.findings if f.failed)
    summary = (
        f"gate {'FAILED' if report.failed else 'passed'}: "
        f"{report.compared} metric(s) compared, {n_reg} regressed, "
        f"{len(report.findings) - report.compared} without baseline"
    )
    print(summary)
    lines.append(summary)
    return "\n".join(lines)
