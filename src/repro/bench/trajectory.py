"""The durable benchmark-trajectory store.

Every benchmark run in this repository records its results as
:class:`TrajectoryRow` objects — schema'd, validated, and keyed by the
git commit they measured — in an append-only JSONL store (by default
``bench_trajectory/`` at the repository root).  The paper's central
claim is throughput, so the perf history across PRs is a first-class
artifact: ``repro bench report`` renders it, and ``repro bench gate``
fails CI when a commit regresses a recorded baseline.

Layout::

    bench_trajectory/
        BASELINE            # one line: the default gate baseline SHA
        <full-git-sha>.jsonl  # one JSON object per line, append-only

Rows are only ever *appended*; re-running a benchmark at the same SHA
adds new rows (consumers take the latest row per (benchmark, metric,
machine)).  Nothing in this module rewrites or deletes store files.

Environment knobs:

* ``REPRO_TRAJECTORY_DIR`` — store directory override.
* ``REPRO_TRAJECTORY=0``   — disable recording (print-only runs).
* ``REPRO_GIT_SHA``        — SHA override when git is unavailable
  (e.g. measuring an exported tree in CI).
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import platform
import re
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro._compat import HAVE_NUMPY, HAVE_SCIPY
from repro.errors import TrajectoryError

#: Version of the on-disk row schema; bump on incompatible change.
SCHEMA_VERSION = 1

#: Units that denote "higher is better" throughput — the gate and the
#: report's headline trajectory only consider metrics in these units.
THROUGHPUT_UNITS = frozenset({"mpps", "mrps", "gbps", "qps"})

_SHA_RE = re.compile(r"^(?:[0-9a-f]{7,40}|unknown)$")
_BENCHMARK_RE = re.compile(r"^[a-z0-9][a-z0-9_./=-]*$")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise TrajectoryError(message)


@dataclass(frozen=True)
class MetricPoint:
    """One measured value with its confidence-interval half-width."""

    name: str
    value: float
    unit: str
    ci_halfwidth: float = 0.0

    def __post_init__(self) -> None:
        _require(isinstance(self.name, str) and bool(self.name.strip()),
                 "metric name must be a non-empty string")
        _require(isinstance(self.value, (int, float))
                 and not isinstance(self.value, bool)
                 and math.isfinite(self.value),
                 f"metric {self.name!r}: value must be a finite number")
        _require(isinstance(self.unit, str) and bool(self.unit.strip()),
                 f"metric {self.name!r}: unit must be a non-empty string")
        _require(isinstance(self.ci_halfwidth, (int, float))
                 and not isinstance(self.ci_halfwidth, bool)
                 and math.isfinite(self.ci_halfwidth)
                 and self.ci_halfwidth >= 0.0,
                 f"metric {self.name!r}: ci_halfwidth must be >= 0")
        object.__setattr__(self, "value", float(self.value))
        object.__setattr__(self, "ci_halfwidth", float(self.ci_halfwidth))

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "value": self.value,
            "unit": self.unit,
            "ci_halfwidth": self.ci_halfwidth,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "MetricPoint":
        _require(isinstance(data, Mapping), "metric must be an object")
        extra = set(data) - {"name", "value", "unit", "ci_halfwidth"}
        _require(not extra, f"metric has unknown fields: {sorted(extra)}")
        missing = {"name", "value", "unit"} - set(data)
        _require(not missing, f"metric missing fields: {sorted(missing)}")
        return cls(
            name=data["name"],  # type: ignore[arg-type]
            value=data["value"],  # type: ignore[arg-type]
            unit=data["unit"],  # type: ignore[arg-type]
            ci_halfwidth=data.get("ci_halfwidth", 0.0),  # type: ignore[arg-type]
        )


_ROW_FIELDS = {
    "schema_version", "benchmark", "title", "git_sha", "recorded_at",
    "machine", "config", "metrics",
}
_ROW_REQUIRED = _ROW_FIELDS - {"title"}


@dataclass(frozen=True)
class TrajectoryRow:
    """One benchmark run: what was measured, on what, at which commit."""

    benchmark: str
    git_sha: str
    recorded_at: float
    machine: Mapping[str, object]
    metrics: Tuple[MetricPoint, ...]
    config: Mapping[str, object] = field(default_factory=dict)
    title: str = ""
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        _require(self.schema_version == SCHEMA_VERSION,
                 f"unsupported schema_version {self.schema_version!r} "
                 f"(this library speaks v{SCHEMA_VERSION})")
        _require(isinstance(self.benchmark, str)
                 and bool(_BENCHMARK_RE.match(self.benchmark)),
                 f"invalid benchmark id {self.benchmark!r}")
        _require(isinstance(self.git_sha, str)
                 and bool(_SHA_RE.match(self.git_sha)),
                 f"invalid git_sha {self.git_sha!r} (want 7-40 hex chars "
                 "or 'unknown')")
        _require(isinstance(self.recorded_at, (int, float))
                 and not isinstance(self.recorded_at, bool)
                 and math.isfinite(self.recorded_at)
                 and self.recorded_at > 0,
                 "recorded_at must be a positive unix timestamp")
        object.__setattr__(self, "recorded_at", float(self.recorded_at))
        _require(isinstance(self.title, str), "title must be a string")
        _require(isinstance(self.machine, Mapping)
                 and isinstance(self.machine.get("id"), str)
                 and bool(self.machine["id"]),
                 "machine must be a fingerprint dict with an 'id'")
        _require(isinstance(self.config, Mapping),
                 "config must be a mapping")
        try:
            json.dumps(self.config)
            json.dumps(dict(self.machine))
        except (TypeError, ValueError) as exc:
            raise TrajectoryError(
                f"config/machine must be JSON-serializable: {exc}"
            ) from exc
        _require(isinstance(self.metrics, tuple) and len(self.metrics) > 0,
                 "metrics must be a non-empty tuple of MetricPoint")
        _require(all(isinstance(m, MetricPoint) for m in self.metrics),
                 "metrics must all be MetricPoint instances")
        names = [m.name for m in self.metrics]
        _require(len(names) == len(set(names)),
                 f"duplicate metric names in row: {sorted(names)}")

    @property
    def machine_id(self) -> str:
        return str(self.machine["id"])

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema_version": self.schema_version,
            "benchmark": self.benchmark,
            "title": self.title,
            "git_sha": self.git_sha,
            "recorded_at": self.recorded_at,
            "machine": dict(self.machine),
            "config": dict(self.config),
            "metrics": [m.to_dict() for m in self.metrics],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "TrajectoryRow":
        _require(isinstance(data, Mapping), "row must be a JSON object")
        extra = set(data) - _ROW_FIELDS
        _require(not extra, f"row has unknown fields: {sorted(extra)}")
        missing = _ROW_REQUIRED - set(data)
        _require(not missing, f"row missing fields: {sorted(missing)}")
        metrics = data["metrics"]
        _require(isinstance(metrics, Sequence)
                 and not isinstance(metrics, (str, bytes)),
                 "metrics must be an array")
        return cls(
            benchmark=data["benchmark"],  # type: ignore[arg-type]
            git_sha=data["git_sha"],  # type: ignore[arg-type]
            recorded_at=data["recorded_at"],  # type: ignore[arg-type]
            machine=data["machine"],  # type: ignore[arg-type]
            config=data["config"],  # type: ignore[arg-type]
            title=data.get("title", ""),  # type: ignore[arg-type]
            schema_version=data["schema_version"],  # type: ignore[arg-type]
            metrics=tuple(MetricPoint.from_dict(m) for m in metrics),
        )

    @classmethod
    def from_json(cls, text: str) -> "TrajectoryRow":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise TrajectoryError(f"row is not valid JSON: {exc}") from exc
        return cls.from_dict(data)


def machine_fingerprint(extra: Optional[Mapping[str, object]] = None
                        ) -> Dict[str, object]:
    """A stable description of the measuring host.

    The ``id`` digest covers everything that changes comparability:
    platform, interpreter, core count, and which optional accelerator
    stacks are installed (NumPy results are not comparable with
    pure-Python results).  The gate only compares rows whose ids match.
    """
    info: Dict[str, object] = {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count(),
        "numpy": HAVE_NUMPY,
        "scipy": HAVE_SCIPY,
    }
    if extra:
        info.update(extra)
    digest = hashlib.sha256(
        json.dumps(info, sort_keys=True).encode("utf-8")
    ).hexdigest()
    info["id"] = digest[:12]
    return info


def current_git_sha(cwd: Union[str, Path, None] = None) -> str:
    """The commit being measured: ``REPRO_GIT_SHA`` override, then
    ``git rev-parse HEAD``, then ``"unknown"``."""
    override = os.environ.get("REPRO_GIT_SHA", "").strip().lower()
    if override:
        _require(bool(_SHA_RE.match(override)),
                 f"REPRO_GIT_SHA={override!r} is not a git SHA")
        return override
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd else None,
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = proc.stdout.strip().lower()
    if proc.returncode == 0 and _SHA_RE.match(sha):
        return sha
    return "unknown"


def recording_enabled() -> bool:
    """Whether benchmark runs append to the store (``REPRO_TRAJECTORY``)."""
    flag = os.environ.get("REPRO_TRAJECTORY", "1").strip().lower()
    return flag not in ("0", "off", "no", "false")


def default_store_root() -> Path:
    """``REPRO_TRAJECTORY_DIR``, else ``bench_trajectory/`` at the
    repository root (found by walking up from the working directory)."""
    override = os.environ.get("REPRO_TRAJECTORY_DIR")
    if override:
        return Path(override)
    here = Path.cwd()
    for candidate in (here, *here.parents):
        if (candidate / ".git").exists() or (candidate / "pyproject.toml").is_file():
            return candidate / "bench_trajectory"
    return here / "bench_trajectory"


class TrajectoryStore:
    """File-backed, append-only store of :class:`TrajectoryRow` objects.

    One ``<git_sha>.jsonl`` file per measured commit; rows are appended
    as single JSON lines and never rewritten.  Reading a file that
    contains a malformed or schema-invalid line raises
    :class:`~repro.errors.TrajectoryError` naming the file and line.
    """

    BASELINE_FILE = "BASELINE"

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self.root = Path(root) if root is not None else default_store_root()

    # -- writing -------------------------------------------------------

    def append(self, row: TrajectoryRow) -> Path:
        """Append one validated row to its SHA's JSONL file."""
        _require(isinstance(row, TrajectoryRow),
                 "append() takes a TrajectoryRow")
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(row.git_sha)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(row.to_json() + "\n")
        return path

    # -- reading -------------------------------------------------------

    def path_for(self, sha: str) -> Path:
        _require(isinstance(sha, str) and bool(_SHA_RE.match(sha)),
                 f"invalid store sha {sha!r}")
        return self.root / f"{sha}.jsonl"

    def _files(self) -> List[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.jsonl"))

    def iter_rows(
        self,
        sha: Optional[str] = None,
        benchmark: Optional[str] = None,
    ) -> Iterator[TrajectoryRow]:
        files = [self.path_for(sha)] if sha is not None else self._files()
        for path in files:
            if not path.is_file():
                continue
            with open(path, "r", encoding="utf-8") as fh:
                for lineno, line in enumerate(fh, 1):
                    if not line.strip():
                        continue
                    try:
                        row = TrajectoryRow.from_json(line)
                    except TrajectoryError as exc:
                        raise TrajectoryError(
                            f"{path.name}:{lineno}: {exc}"
                        ) from exc
                    if row.git_sha != path.stem:
                        raise TrajectoryError(
                            f"{path.name}:{lineno}: row sha "
                            f"{row.git_sha!r} does not match its file"
                        )
                    if benchmark is None or row.benchmark == benchmark:
                        yield row

    def rows(self, sha: Optional[str] = None,
             benchmark: Optional[str] = None) -> List[TrajectoryRow]:
        return list(self.iter_rows(sha=sha, benchmark=benchmark))

    def shas(self) -> List[str]:
        """Recorded SHAs, ordered by each SHA's earliest row timestamp
        (i.e. the order the commits were first measured)."""
        first_seen: Dict[str, float] = {}
        for row in self.iter_rows():
            seen = first_seen.get(row.git_sha)
            if seen is None or row.recorded_at < seen:
                first_seen[row.git_sha] = row.recorded_at
        return sorted(first_seen, key=lambda s: (first_seen[s], s))

    def benchmarks(self) -> List[str]:
        return sorted({row.benchmark for row in self.iter_rows()})

    def latest_metrics(
        self, sha: str
    ) -> Dict[Tuple[str, str, str], Tuple[TrajectoryRow, MetricPoint]]:
        """Latest metric per (benchmark, metric name, machine id) at a
        SHA — re-runs at the same commit supersede older rows."""
        latest: Dict[Tuple[str, str, str],
                     Tuple[TrajectoryRow, MetricPoint]] = {}
        for row in self.iter_rows(sha=sha):
            for metric in row.metrics:
                key = (row.benchmark, metric.name, row.machine_id)
                held = latest.get(key)
                if held is None or row.recorded_at >= held[0].recorded_at:
                    latest[key] = (row, metric)
        return latest

    # -- baseline ------------------------------------------------------

    def baseline_sha(self) -> Optional[str]:
        """The default gate baseline (first token of ``BASELINE``)."""
        path = self.root / self.BASELINE_FILE
        if not path.is_file():
            return None
        text = path.read_text(encoding="utf-8").strip()
        for line in text.splitlines():
            token = line.split("#", 1)[0].strip().lower()
            if token:
                _require(bool(_SHA_RE.match(token)),
                         f"{path}: {token!r} is not a git SHA")
                return token
        return None


# -- legacy import -----------------------------------------------------

#: Legacy repo-root artifact names -> trajectory benchmark ids.
LEGACY_BENCHMARK_IDS = {"shard_scaling": "abl_shard_scaling"}


def import_legacy_bench_json(
    path: Union[str, Path],
    git_sha: str,
    recorded_at: Optional[float] = None,
    benchmark: Optional[str] = None,
) -> TrajectoryRow:
    """Convert a pre-trajectory ``BENCH_*.json`` artifact into a row.

    Understands the ``BENCH_shard_scaling.json`` shape produced by PR 2
    (``benchmark``/``config``/``machine``/``metric``/``rows`` keys with
    per-row ``aggregate_mpps``).  ``git_sha`` must name the commit the
    artifact was measured at; ``recorded_at`` defaults to the file's
    mtime, preserving trajectory ordering.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise TrajectoryError(f"cannot read legacy json {path}: {exc}") from exc
    _require(isinstance(payload, dict) and "rows" in payload,
             f"{path}: not a recognized legacy bench artifact")
    name = benchmark or LEGACY_BENCHMARK_IDS.get(
        str(payload.get("benchmark", "")), str(payload.get("benchmark", ""))
    )
    machine = dict(payload.get("machine", {}))
    machine = machine_fingerprint(extra=machine) if machine else machine_fingerprint()
    metrics: List[MetricPoint] = []
    for entry in payload["rows"]:
        _require(isinstance(entry, dict) and "aggregate_mpps" in entry,
                 f"{path}: legacy row without aggregate_mpps: {entry!r}")
        label = "/".join(
            str(entry[k]) for k in ("regime", "mode") if k in entry
        )
        metric_name = f"{label}/shards={entry.get('shards', '?')}"
        metrics.append(MetricPoint(
            name=metric_name,
            value=float(entry["aggregate_mpps"]),
            unit="mpps",
        ))
    config = dict(payload.get("config", {}))
    if "metric" in payload:
        config["metric_note"] = payload["metric"]
    config["imported_from"] = path.name
    return TrajectoryRow(
        benchmark=name,
        git_sha=git_sha,
        recorded_at=(recorded_at if recorded_at is not None
                     else path.stat().st_mtime),
        machine=machine,
        config=config,
        title=f"imported legacy artifact {path.name}",
        metrics=tuple(metrics),
    )
