"""Statistics for benchmark reporting.

The paper: "We ran each data point ten times, and we report the mean
and 99% confidence intervals according to Student's t-test."  The same
computation lives here (scipy provides the t quantile when installed;
a pure-Python incomplete-beta inversion otherwise, so the benchmark
harness has no hard scientific-stack dependency).
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

from repro._compat import HAVE_SCIPY, scipy_stats as _scipy_stats
from repro.errors import ConfigurationError


def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the regularized incomplete beta."""
    eps, fpmin = 3e-14, 1e-300
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < fpmin:
        d = fpmin
    d = 1.0 / d
    h = d
    for m in range(1, 200):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < fpmin:
            d = fpmin
        c = 1.0 + aa / c
        if abs(c) < fpmin:
            c = fpmin
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < fpmin:
            d = fpmin
        c = 1.0 + aa / c
        if abs(c) < fpmin:
            c = fpmin
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < eps:
            break
    return h


def _betainc(a: float, b: float, x: float) -> float:
    """Regularized incomplete beta function I_x(a, b)."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_front = (
        math.lgamma(a + b) - math.lgamma(a) - math.lgamma(b)
        + a * math.log(x) + b * math.log1p(-x)
    )
    front = math.exp(ln_front)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def _t_cdf(t: float, df: float) -> float:
    """CDF of Student's t with ``df`` degrees of freedom."""
    x = df / (df + t * t)
    p = 0.5 * _betainc(df / 2.0, 0.5, x)
    return 1.0 - p if t > 0 else p


def _t_ppf(p: float, df: float) -> float:
    """Student-t quantile by bisection on the CDF (p in (0, 1))."""
    if not 0.0 < p < 1.0:
        raise ConfigurationError("p must be in (0, 1)")
    lo, hi = -1.0, 1.0
    while _t_cdf(lo, df) > p:
        lo *= 2.0
    while _t_cdf(hi, df) < p:
        hi *= 2.0
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if _t_cdf(mid, df) < p:
            lo = mid
        else:
            hi = mid
        if hi - lo < 1e-12 * max(1.0, abs(hi)):
            break
    return 0.5 * (lo + hi)


def confidence_interval(
    samples: Sequence[float], confidence: float = 0.99
) -> Tuple[float, float]:
    """Mean and half-width of the Student-t confidence interval.

    With a single sample the half-width is reported as 0 (no spread
    information), matching common bench-harness behaviour.
    """
    if not samples:
        raise ConfigurationError("need at least one sample")
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError("confidence must be in (0, 1)")
    n = len(samples)
    mean = sum(samples) / n
    if n == 1:
        return mean, 0.0
    variance = sum((x - mean) ** 2 for x in samples) / (n - 1)
    sem = math.sqrt(variance / n)
    p = (1 + confidence) / 2
    if HAVE_SCIPY:
        t_crit = float(_scipy_stats.t.ppf(p, df=n - 1))
    else:
        t_crit = _t_ppf(p, n - 1)
    return mean, t_crit * sem


def summarize(samples: Sequence[float], confidence: float = 0.99) -> str:
    """Human-readable ``mean ± halfwidth`` string."""
    mean, half = confidence_interval(samples, confidence)
    return f"{mean:.3f} ± {half:.3f}"
