"""Statistics for benchmark reporting.

The paper: "We ran each data point ten times, and we report the mean
and 99% confidence intervals according to Student's t-test."  The same
computation lives here (scipy provides the t quantile).
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

from scipy import stats as _scipy_stats

from repro.errors import ConfigurationError


def confidence_interval(
    samples: Sequence[float], confidence: float = 0.99
) -> Tuple[float, float]:
    """Mean and half-width of the Student-t confidence interval.

    With a single sample the half-width is reported as 0 (no spread
    information), matching common bench-harness behaviour.
    """
    if not samples:
        raise ConfigurationError("need at least one sample")
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError("confidence must be in (0, 1)")
    n = len(samples)
    mean = sum(samples) / n
    if n == 1:
        return mean, 0.0
    variance = sum((x - mean) ** 2 for x in samples) / (n - 1)
    sem = math.sqrt(variance / n)
    t_crit = float(_scipy_stats.t.ppf((1 + confidence) / 2, df=n - 1))
    return mean, t_crit * sem


def summarize(samples: Sequence[float], confidence: float = 0.99) -> str:
    """Human-readable ``mean ± halfwidth`` string."""
    mean, half = confidence_interval(samples, confidence)
    return f"{mean:.3f} ± {half:.3f}"
