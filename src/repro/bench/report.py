"""Render the recorded perf trajectory: MPPS over commits, per bench.

``repro bench report`` gives the headline view — one row per benchmark,
one column per recorded commit (in first-measured order), each cell the
geometric mean of that benchmark's throughput metrics at that commit —
plus the relative change between the last two commits that have data.
``repro bench report --benchmark <id>`` expands a single benchmark into
its individual metrics.

Geometric means are computed per machine fingerprint and then averaged,
so a commit measured on two stacks (pure / NumPy) is not skewed toward
whichever recorded more rows.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.trajectory import (
    THROUGHPUT_UNITS,
    TrajectoryStore,
)
from repro.errors import TrajectoryError


def _geomean(values: Sequence[float]) -> Optional[float]:
    positives = [v for v in values if v > 0.0]
    if not positives:
        return None
    return math.exp(sum(math.log(v) for v in positives) / len(positives))


def _headline_cell(
    store_metrics: Dict[Tuple[str, str, str], tuple], benchmark: str
) -> Optional[float]:
    """Geomean of throughput metrics per machine, then mean of those."""
    per_machine: Dict[str, List[float]] = {}
    for (bench, _name, machine_id), (_row, metric) in store_metrics.items():
        if bench != benchmark or metric.unit not in THROUGHPUT_UNITS:
            continue
        per_machine.setdefault(machine_id, []).append(metric.value)
    means = [g for vals in per_machine.values()
             for g in [_geomean(vals)] if g is not None]
    if not means:
        return None
    return sum(means) / len(means)


def _delta(cells: Sequence[Optional[float]]) -> str:
    present = [c for c in cells if c is not None]
    if len(present) < 2 or present[-2] <= 0:
        return "-"
    return f"{(present[-1] - present[-2]) / present[-2]:+.1%}"


def render_report(
    store: TrajectoryStore,
    benchmark: Optional[str] = None,
    last: Optional[int] = None,
) -> str:
    """Print (and return) the trajectory tables for a store."""
    from repro.bench.reporting import print_table

    shas = store.shas()
    if not shas:
        raise TrajectoryError(f"trajectory store {store.root} is empty")
    if last is not None and last > 0:
        shas = shas[-last:]
    sha_cols = [s[:10] for s in shas]
    latest = {sha: store.latest_metrics(sha) for sha in shas}

    chunks: List[str] = []
    if benchmark is None:
        rows: List[List[object]] = []
        for bench in store.benchmarks():
            cells = [_headline_cell(latest[sha], bench) for sha in shas]
            if all(c is None for c in cells):
                continue  # no throughput metrics (accuracy-only bench)
            rows.append(
                [bench]
                + ["-" if c is None else round(c, 3) for c in cells]
                + [_delta(cells)]
            )
        chunks.append(print_table(
            f"bench trajectory: throughput geomean per commit "
            f"({len(shas)} commit(s), oldest -> newest)",
            ["benchmark"] + sha_cols + ["Δ last"],
            rows,
        ))
        return "\n".join(chunks)

    if benchmark not in store.benchmarks():
        raise TrajectoryError(
            f"benchmark {benchmark!r} has no rows in {store.root}"
        )
    keys = sorted({
        (name, machine_id, metric.unit)
        for sha in shas
        for (bench, name, machine_id), (_row, metric)
        in latest[sha].items()
        if bench == benchmark
    })
    rows = []
    for name, machine_id, unit in keys:
        cells: List[Optional[float]] = []
        for sha in shas:
            held = latest[sha].get((benchmark, name, machine_id))
            cells.append(held[1].value if held is not None else None)
        rows.append(
            [name, unit, machine_id[:6]]
            + ["-" if c is None else round(c, 3) for c in cells]
            + [_delta(cells)]
        )
    chunks.append(print_table(
        f"bench trajectory: {benchmark} per metric "
        f"(oldest -> newest)",
        ["metric", "unit", "machine"] + sha_cols + ["Δ last"],
        rows,
    ))
    return "\n".join(chunks)
