"""Throughput measurement for the paper-style benchmarks.

``measure_throughput`` times a callable over a workload several times
and reports MPPS with the paper's 99% confidence interval.  It is
deliberately simple — wall-clock around a tight loop — because every
figure in the paper is a *relative* comparison between backends run
through the identical harness.
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass, field
from typing import Callable, List, Sequence, Tuple

from repro.bench.stats import confidence_interval
from repro.errors import ConfigurationError
from repro.types import Item


@dataclass(frozen=True)
class Measurement:
    """Result of one throughput measurement."""

    label: str
    n_items: int
    seconds_per_run: Tuple[float, ...]
    confidence: float = 0.99

    @property
    def mpps(self) -> float:
        """Mean throughput in millions of items per second.

        Defined as the arithmetic mean of the *per-run rates*
        (``mean(n_items / seconds_i)``), i.e. exactly ``mpps_ci[0]`` —
        the quantity whose spread the confidence interval describes.
        The alternative ``n_items / mean(seconds_i)`` (the harmonic
        mean of the rates) is always <= this and historically made
        ``mpps`` disagree with ``mpps_ci``'s mean; the two are now one
        definition, matching the paper's per-run-rate methodology.
        """
        mean, _ = self.mpps_ci
        return mean

    @property
    def mpps_ci(self) -> Tuple[float, float]:
        """(mean, halfwidth) of the per-run MPPS distribution."""
        rates = [self.n_items / s / 1e6 for s in self.seconds_per_run]
        return confidence_interval(rates, self.confidence)

    def __str__(self) -> str:
        mean, half = self.mpps_ci
        return f"{self.label}: {mean:.3f} ± {half:.3f} MPPS"


def mpps(n_items: int, seconds: float) -> float:
    """Millions of items per second."""
    return n_items / seconds / 1e6


def measure_throughput(
    label: str,
    make_consumer: Callable[[], Callable[[object, float], None]],
    stream: Sequence[Item],
    repeats: int = 3,
    confidence: float = 0.99,
) -> Measurement:
    """Time ``consumer(id, value)`` over ``stream``, ``repeats`` times.

    ``make_consumer`` builds a *fresh* consumer per run (a bound
    ``add``/``update`` method) so runs are independent, as in the
    paper's methodology.
    """
    if repeats < 1:
        raise ConfigurationError("repeats must be >= 1")
    if not stream:
        raise ConfigurationError("stream must be non-empty")
    times: List[float] = []
    for _ in range(repeats):
        consumer = make_consumer()
        gc.disable()
        try:
            start = time.perf_counter()
            for item_id, value in stream:
                consumer(item_id, value)
            elapsed = time.perf_counter() - start
        finally:
            gc.enable()
        times.append(elapsed)
    return Measurement(
        label=label,
        n_items=len(stream),
        seconds_per_run=tuple(times),
        confidence=confidence,
    )


def measure_throughput_batched(
    label: str,
    make_consumer: Callable[[], Callable[[Sequence, Sequence], None]],
    stream: Sequence[Item],
    batch_size: int,
    repeats: int = 3,
    confidence: float = 0.99,
) -> Measurement:
    """Time ``consumer(ids, values)`` over ``stream`` in batches.

    The batched counterpart of :func:`measure_throughput`:
    ``make_consumer`` returns a bound ``add_many``/``update_many``
    method, and the stream is pre-split into ``batch_size`` chunks of
    parallel id/value lists *outside* the timed region — mirroring a
    deployment where bursts arrive already materialized (NIC rings,
    DPDK bursts).
    """
    if repeats < 1:
        raise ConfigurationError("repeats must be >= 1")
    if batch_size < 1:
        raise ConfigurationError("batch_size must be >= 1")
    if not stream:
        raise ConfigurationError("stream must be non-empty")
    batches: List[Tuple[List, List]] = []
    for start in range(0, len(stream), batch_size):
        chunk = stream[start : start + batch_size]
        batches.append(([i for i, _ in chunk], [v for _, v in chunk]))
    times: List[float] = []
    for _ in range(repeats):
        consumer = make_consumer()
        gc.disable()
        try:
            start_t = time.perf_counter()
            for ids, values in batches:
                consumer(ids, values)
            elapsed = time.perf_counter() - start_t
        finally:
            gc.enable()
        times.append(elapsed)
    return Measurement(
        label=label,
        n_items=len(stream),
        seconds_per_run=tuple(times),
        confidence=confidence,
    )


def measure_callable(
    label: str,
    make_runner: Callable[[], Callable[[], int]],
    repeats: int = 3,
    confidence: float = 0.99,
) -> Measurement:
    """Variant for workloads that drive themselves (e.g. the datapath).

    ``make_runner`` returns a zero-argument callable that processes its
    workload and returns the number of items processed.
    """
    if repeats < 1:
        raise ConfigurationError("repeats must be >= 1")
    times: List[float] = []
    n_items = 0
    for _ in range(repeats):
        runner = make_runner()
        gc.disable()
        try:
            start = time.perf_counter()
            n_items = runner()
            elapsed = time.perf_counter() - start
        finally:
            gc.enable()
        times.append(elapsed)
    if n_items <= 0:
        raise ConfigurationError("runner processed no items")
    return Measurement(
        label=label,
        n_items=n_items,
        seconds_per_run=tuple(times),
        confidence=confidence,
    )
