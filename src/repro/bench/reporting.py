"""Paper-style table and series printers plus the trajectory emit path.

Every benchmark prints the same rows/series the corresponding paper
table or figure reports, so `pytest benchmarks/ --benchmark-only -s`
regenerates a textual version of the evaluation section.

:func:`emit` and :func:`emit_series` are the *required* output route
for everything under ``benchmarks/``: they print the familiar table
AND record a schema-valid :class:`~repro.bench.trajectory.TrajectoryRow`
in the append-only store keyed by the measured git SHA, so every run
extends the per-commit perf history that ``repro bench report`` renders
and ``repro bench gate`` defends.  No benchmark writes its own JSON.

Set ``REPRO_CSV_DIR=<dir>`` to additionally write each table as a CSV
file (named from a slug of its title) — the plotting-tool-friendly
export used to regenerate figures outside this repository.
"""

from __future__ import annotations

import os
import re
import time
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.bench.trajectory import (
    MetricPoint,
    TrajectoryRow,
    TrajectoryStore,
    current_git_sha,
    machine_fingerprint,
    recording_enabled,
)
from repro.errors import TrajectoryError

Number = Union[int, float]


def _slugify(title: str) -> str:
    slug = re.sub(r"[^a-z0-9]+", "-", title.lower()).strip("-")
    return slug[:80] or "table"


def _maybe_export_csv(
    title: str, columns: Sequence[str], rows: Sequence[Sequence[object]]
) -> None:
    directory = os.environ.get("REPRO_CSV_DIR")
    if not directory:
        return
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    (path / f"{_slugify(title)}.csv").write_text(
        to_csv(columns, rows), encoding="utf-8"
    )


def _format_cell(value: object, width: int) -> str:
    if isinstance(value, float):
        text = f"{value:.3f}"
    else:
        text = str(value)
    return text.rjust(width)


def print_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Print (and return) an aligned text table."""
    widths = [
        max(len(str(col)), *(len(_format_cell(row[i], 0).strip())
                             for row in rows)) if rows else len(str(col))
        for i, col in enumerate(columns)
    ]
    lines = [f"\n=== {title} ==="]
    lines.append(
        "  ".join(str(col).rjust(w) for col, w in zip(columns, widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(
                _format_cell(cell, w) for cell, w in zip(row, widths)
            )
        )
    text = "\n".join(lines)
    print(text)
    _maybe_export_csv(title, columns, rows)
    return text


def to_csv(
    columns: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render a table as CSV text (plotting-tool friendly).

    Cells containing commas, quotes or newlines are quoted per RFC 4180.
    """

    def cell(value: object) -> str:
        text = f"{value:.6g}" if isinstance(value, float) else str(value)
        if any(ch in text for ch in ',"\n'):
            text = '"' + text.replace('"', '""') + '"'
        return text

    lines = [",".join(cell(c) for c in columns)]
    lines.extend(",".join(cell(c) for c in row) for row in rows)
    return "\n".join(lines) + "\n"


def print_series(
    title: str,
    x_label: str,
    xs: Sequence[Number],
    series: Dict[str, Sequence[Number]],
) -> str:
    """Print a figure as one table: x column plus one column per line."""
    columns = [x_label] + list(series)
    rows: List[List[object]] = []
    for i, x in enumerate(xs):
        rows.append([x] + [series[name][i] for name in series])
    return print_table(title, columns, rows)


def _slug_column(name: str) -> str:
    return re.sub(r"[^a-z0-9]+", "-", str(name).lower()).strip("-")


def _derive_metrics(
    columns: Sequence[str],
    rows: Sequence[Sequence[object]],
    unit: str,
    value_columns: Optional[Mapping[str, str]],
) -> List[MetricPoint]:
    """Turn a printed table into metric points.

    ``value_columns`` maps column name -> unit and accepts int or float
    cells (non-numeric cells in a named column are skipped — e.g. a
    ``"-"`` placeholder row).  Without it, every column whose cells are
    all floats is a value column with ``unit``; the remaining columns
    are key columns, joined into the metric name.
    """
    columns = [str(c) for c in columns]
    if value_columns is not None:
        unknown = set(value_columns) - set(columns)
        if unknown:
            raise TrajectoryError(
                f"value_columns not in table: {sorted(unknown)}"
            )
        value_units = {c: value_columns[c] for c in columns
                       if c in value_columns}
    else:
        value_units = {
            col: unit
            for i, col in enumerate(columns)
            if rows and all(
                isinstance(row[i], float) and not isinstance(row[i], bool)
                for row in rows
            )
        }
    if not value_units:
        raise TrajectoryError(
            "no value columns found — pass value_columns= or metrics="
        )
    key_indices = [i for i, col in enumerate(columns)
                   if col not in value_units]
    multi = len(value_units) > 1
    metrics: List[MetricPoint] = []
    for row in rows:
        key = "/".join(str(row[i]) for i in key_indices)
        for i, col in enumerate(columns):
            if col not in value_units:
                continue
            cell = row[i]
            if isinstance(cell, bool) or not isinstance(cell, (int, float)):
                continue  # placeholder cell (e.g. "-") in a value column
            name = key or _slug_column(col)
            if multi and key:
                name = f"{key}:{_slug_column(col)}"
            metrics.append(MetricPoint(
                name=name, value=float(cell), unit=value_units[col],
            ))
    return metrics


def emit(
    benchmark: str,
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    config: Optional[Mapping[str, object]] = None,
    unit: str = "mpps",
    value_columns: Optional[Mapping[str, str]] = None,
    metrics: Optional[Sequence[MetricPoint]] = None,
    store: Optional[TrajectoryStore] = None,
    record: bool = True,
    git_sha: Optional[str] = None,
    recorded_at: Optional[float] = None,
    machine: Optional[Mapping[str, object]] = None,
) -> TrajectoryRow:
    """Print a benchmark table AND record it in the trajectory store.

    This is the single output path for ``benchmarks/bench_*.py``: the
    table is printed exactly as :func:`print_table` would (including
    the ``REPRO_CSV_DIR`` export), then a validated
    :class:`TrajectoryRow` is appended to the store keyed by the
    current git SHA.  Metric points come from ``metrics`` when given,
    otherwise they are derived from the table's numeric columns (see
    :func:`_derive_metrics`).

    Recording is skipped — but the row is still built, validated, and
    returned — when ``record=False`` or ``REPRO_TRAJECTORY=0``.
    """
    print_table(title, columns, rows)
    if metrics is not None:
        points = tuple(
            m if isinstance(m, MetricPoint) else MetricPoint(**m)
            for m in metrics
        )
    else:
        points = tuple(_derive_metrics(columns, rows, unit, value_columns))
    row = TrajectoryRow(
        benchmark=benchmark,
        title=title,
        git_sha=git_sha or current_git_sha(),
        recorded_at=recorded_at if recorded_at is not None else time.time(),
        machine=machine or machine_fingerprint(),
        config=dict(config or {}),
        metrics=points,
    )
    if record and recording_enabled():
        (store or TrajectoryStore()).append(row)
    return row


def emit_series(
    benchmark: str,
    title: str,
    x_label: str,
    xs: Sequence[Number],
    series: Dict[str, Sequence[Number]],
    *,
    config: Optional[Mapping[str, object]] = None,
    unit: str = "mpps",
    **kwargs,
) -> TrajectoryRow:
    """:func:`emit` for figure-style series (one metric per line/x)."""
    columns = [x_label] + list(series)
    rows: List[List[object]] = []
    for i, x in enumerate(xs):
        rows.append([x] + [series[name][i] for name in series])
    metrics = [
        MetricPoint(
            name=f"{name}@{x_label}={x}", value=float(values[i]), unit=unit,
        )
        for name, values in series.items()
        for i, x in enumerate(xs)
    ]
    return emit(
        benchmark, title, columns, rows,
        config=config, metrics=metrics, **kwargs,
    )
