"""Paper-style table and series printers for benchmark output.

Every benchmark prints the same rows/series the corresponding paper
table or figure reports, so `pytest benchmarks/ --benchmark-only -s`
regenerates a textual version of the evaluation section.

Set ``REPRO_CSV_DIR=<dir>`` to additionally write each table as a CSV
file (named from a slug of its title) — the plotting-tool-friendly
export used to regenerate figures outside this repository.
"""

from __future__ import annotations

import os
import re
from pathlib import Path
from typing import Dict, List, Sequence, Union

Number = Union[int, float]


def _slugify(title: str) -> str:
    slug = re.sub(r"[^a-z0-9]+", "-", title.lower()).strip("-")
    return slug[:80] or "table"


def _maybe_export_csv(
    title: str, columns: Sequence[str], rows: Sequence[Sequence[object]]
) -> None:
    directory = os.environ.get("REPRO_CSV_DIR")
    if not directory:
        return
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    (path / f"{_slugify(title)}.csv").write_text(
        to_csv(columns, rows), encoding="utf-8"
    )


def _format_cell(value: object, width: int) -> str:
    if isinstance(value, float):
        text = f"{value:.3f}"
    else:
        text = str(value)
    return text.rjust(width)


def print_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Print (and return) an aligned text table."""
    widths = [
        max(len(str(col)), *(len(_format_cell(row[i], 0).strip())
                             for row in rows)) if rows else len(str(col))
        for i, col in enumerate(columns)
    ]
    lines = [f"\n=== {title} ==="]
    lines.append(
        "  ".join(str(col).rjust(w) for col, w in zip(columns, widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(
                _format_cell(cell, w) for cell, w in zip(row, widths)
            )
        )
    text = "\n".join(lines)
    print(text)
    _maybe_export_csv(title, columns, rows)
    return text


def to_csv(
    columns: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render a table as CSV text (plotting-tool friendly).

    Cells containing commas, quotes or newlines are quoted per RFC 4180.
    """

    def cell(value: object) -> str:
        text = f"{value:.6g}" if isinstance(value, float) else str(value)
        if any(ch in text for ch in ',"\n'):
            text = '"' + text.replace('"', '""') + '"'
        return text

    lines = [",".join(cell(c) for c in columns)]
    lines.extend(",".join(cell(c) for c in row) for row in rows)
    return "\n".join(lines) + "\n"


def print_series(
    title: str,
    x_label: str,
    xs: Sequence[Number],
    series: Dict[str, Sequence[Number]],
) -> str:
    """Print a figure as one table: x column plus one column per line."""
    columns = [x_label] + list(series)
    rows: List[List[object]] = []
    for i, x in enumerate(xs):
        rows.append([x] + [series[name][i] for name in series])
    return print_table(title, columns, rows)
