"""Benchmark substrate: throughput measurement, statistics, reporting.

The paper reports throughput in Millions of Packets Per Second (MPPS)
with 99% Student-t confidence intervals over ten repetitions; this
package provides the measurement loop, the statistics, the shared
workload builders, and paper-style table/series printers used by every
file under ``benchmarks/``.
"""

from repro.bench.runner import Measurement, measure_throughput, mpps
from repro.bench.stats import confidence_interval, summarize
from repro.bench.workloads import (
    scale,
    scaled,
    trace_streams,
    value_stream,
)
from repro.bench.reporting import emit, emit_series, print_series, print_table
from repro.bench.trajectory import (
    MetricPoint,
    TrajectoryRow,
    TrajectoryStore,
    current_git_sha,
    import_legacy_bench_json,
    machine_fingerprint,
)
from repro.bench.gate import GateReport, parse_percent, run_gate
from repro.bench.report import render_report

__all__ = [
    "Measurement",
    "measure_throughput",
    "mpps",
    "confidence_interval",
    "summarize",
    "scale",
    "scaled",
    "trace_streams",
    "value_stream",
    "emit",
    "emit_series",
    "print_series",
    "print_table",
    "MetricPoint",
    "TrajectoryRow",
    "TrajectoryStore",
    "current_git_sha",
    "import_legacy_bench_json",
    "machine_fingerprint",
    "GateReport",
    "parse_percent",
    "run_gate",
    "render_report",
]
