"""Benchmark substrate: throughput measurement, statistics, reporting.

The paper reports throughput in Millions of Packets Per Second (MPPS)
with 99% Student-t confidence intervals over ten repetitions; this
package provides the measurement loop, the statistics, the shared
workload builders, and paper-style table/series printers used by every
file under ``benchmarks/``.
"""

from repro.bench.runner import Measurement, measure_throughput, mpps
from repro.bench.stats import confidence_interval, summarize
from repro.bench.workloads import (
    scale,
    scaled,
    trace_streams,
    value_stream,
)
from repro.bench.reporting import print_series, print_table

__all__ = [
    "Measurement",
    "measure_throughput",
    "mpps",
    "confidence_interval",
    "summarize",
    "scale",
    "scaled",
    "trace_streams",
    "value_stream",
    "print_series",
    "print_table",
]
