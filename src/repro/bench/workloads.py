"""Shared workload builders for the benchmark suite.

All sizes honour the ``REPRO_SCALE`` environment variable (a float,
default 1.0): the defaults are laptop-scale versions of the paper's
150M-item streams (DESIGN.md §2 documents the scaling substitution);
setting ``REPRO_SCALE=10`` (or more) pushes every benchmark toward the
paper's regimes.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Dict, List, Tuple

from repro.traffic.cache_trace import generate_cache_trace
from repro.traffic.synthetic import (
    PROFILES,
    generate_packets,
    generate_value_stream,
)


def scale() -> float:
    """The global benchmark scale factor from ``REPRO_SCALE``."""
    return float(os.environ.get("REPRO_SCALE", "1.0"))


def scaled(n: int, minimum: int = 1) -> int:
    """Scale a default size by the global factor."""
    return max(minimum, int(n * scale()))


@lru_cache(maxsize=8)
def value_stream(n: int, seed: int = 0) -> Tuple[Tuple[int, float], ...]:
    """Cached random value stream (the paper's synthetic workload)."""
    return tuple(generate_value_stream(n, seed))


@lru_cache(maxsize=8)
def trace_streams(
    n: int, seed: int = 0
) -> Dict[str, Tuple[Tuple[int, int], ...]]:
    """(key, weight) streams for the three trace profiles.

    Key = source IP, weight = packet size — the paper's convention.
    """
    streams = {}
    for name, profile in PROFILES.items():
        packets = generate_packets(
            profile, n, seed=seed, n_flows=max(64, n // 20)
        )
        streams[name] = tuple((p.src_ip, p.size) for p in packets)
    return streams


@lru_cache(maxsize=16)
def batched(
    stream: Tuple[Tuple[int, float], ...], batch_size: int
) -> Tuple[Tuple[Tuple, Tuple], ...]:
    """Pre-split an (id, value) stream into ``(ids, values)`` batches.

    Cached so that repeated benchmark rows over the same stream don't
    pay the chunking cost; the tuples make the result safely shareable
    between cached calls.
    """
    out = []
    for start in range(0, len(stream), batch_size):
        chunk = stream[start : start + batch_size]
        out.append((
            tuple(i for i, _ in chunk),
            tuple(v for _, v in chunk),
        ))
    return tuple(out)


@lru_cache(maxsize=4)
def cache_stream(n: int, seed: int = 0) -> Tuple[int, ...]:
    """Cached P1-ARC-style cache trace."""
    return tuple(generate_cache_trace(n, n_keys=max(256, n // 4),
                                      seed=seed))


@lru_cache(maxsize=4)
def packet_trace(n: int, profile: str = "caida16", seed: int = 0):
    """Cached full-packet trace for the switch benchmarks."""
    return tuple(
        generate_packets(PROFILES[profile], n, seed=seed,
                         n_flows=max(64, n // 20))
    )
