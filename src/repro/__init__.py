"""repro — a reproduction of "q-MAX: A Unified Scheme for Improving
Network Measurement Throughput" (IMC 2019).

The package is organised like the paper:

* :mod:`repro.core` — the q-MAX algorithms (interval, sliding-window,
  exponential decay) and the sorting reduction.
* :mod:`repro.baselines` — Heap / SkipList / sorted-array comparators.
* :mod:`repro.apps` — the measurement applications whose update path
  q-MAX accelerates (priority sampling, PBA, count distinct, bottom-k,
  UnivMon, DBM, LRFU).
* :mod:`repro.netwide` — network-wide heavy hitters over a simulated
  multi-NMP topology.
* :mod:`repro.traffic` — synthetic trace generators and pcap IO.
* :mod:`repro.switch` — a simulated Open-vSwitch-style datapath with a
  pluggable monitoring hook (the OVS integration substitute).
* :mod:`repro.bench` — throughput measurement and reporting helpers.

Quickstart::

    from repro import QMax

    qmax = QMax(q=100, gamma=0.25)
    for i, value in enumerate(stream_of_numbers):
        qmax.add(i, value)
    top = qmax.query()           # 100 largest (id, value) pairs
"""

from repro.core import (
    AmortizedQMax,
    BufferedSlidingQMax,
    ExponentialDecayQMax,
    HierarchicalSlidingQMax,
    MergingQMax,
    QMax,
    QMaxBase,
    QMin,
    SlidingQMax,
    TimeHierarchicalSlidingQMax,
    TimeSlidingQMax,
    VectorQMax,
    sort_via_qmax,
)
from repro.baselines import HeapQMax, SkipListQMax, SortedListQMax

__version__ = "1.0.0"

__all__ = [
    "QMaxBase",
    "QMax",
    "AmortizedQMax",
    "VectorQMax",
    "MergingQMax",
    "QMin",
    "SlidingQMax",
    "TimeSlidingQMax",
    "TimeHierarchicalSlidingQMax",
    "HierarchicalSlidingQMax",
    "BufferedSlidingQMax",
    "ExponentialDecayQMax",
    "sort_via_qmax",
    "HeapQMax",
    "SkipListQMax",
    "SortedListQMax",
    "__version__",
]
