"""Count Sketch (Charikar, Chen, Farach-Colton, ICALP 2002).

``depth`` rows of ``width`` counters; each key maps per-row to one
counter (multiply-shift hash) and a ±1 sign (second hash).  Point
queries take the median of the signed per-row estimates, giving an
unbiased estimator with error ``O(‖f‖₂ / √width)`` per row.

UnivMon (§2.4) maintains one Count Sketch per substream level and uses
its point queries to score heavy hitters and its row L2 statistics for
G-sum estimation.
"""

from __future__ import annotations

import math
import statistics
from typing import Hashable, List

from repro._compat import HAVE_NUMPY, np
from repro.errors import ConfigurationError
from repro.hashing.mix import key_to_u64
from repro.hashing.multiply_shift import MultiplyShiftHash


class CountSketch:
    """A seeded Count Sketch with integer counters."""

    __slots__ = ("width", "depth", "_rows", "_bucket_hashes", "_sign_hashes")

    def __init__(self, width: int = 1024, depth: int = 5, seed: int = 0) -> None:
        if width < 1 or depth < 1:
            raise ConfigurationError(
                f"width and depth must be >= 1, got {width}x{depth}"
            )
        self.width = width
        self.depth = depth
        # int64 counter matrix with NumPy, list-of-lists without; all
        # per-item access below uses rows[r][c], valid for both.
        if HAVE_NUMPY:
            self._rows = np.zeros((depth, width), dtype=np.int64)
        else:
            self._rows = [[0] * width for _ in range(depth)]
        self._bucket_hashes = [
            MultiplyShiftHash(out_bits=64, seed=seed * 1000 + 2 * r)
            for r in range(depth)
        ]
        self._sign_hashes = [
            MultiplyShiftHash(out_bits=64, seed=seed * 1000 + 2 * r + 1)
            for r in range(depth)
        ]

    def _coords(self, key: Hashable):
        k = key_to_u64(key)
        for row in range(self.depth):
            bucket = self._bucket_hashes[row].hash_u64(k) % self.width
            sign = 1 if self._sign_hashes[row].hash_u64(k) & 1 else -1
            yield row, bucket, sign

    def update(self, key: Hashable, count: int = 1) -> None:
        """Add ``count`` occurrences of ``key``."""
        rows = self._rows
        for row, bucket, sign in self._coords(key):
            rows[row][bucket] += sign * count

    def estimate(self, key: Hashable) -> int:
        """Unbiased point estimate of ``key``'s frequency (median row)."""
        rows = self._rows
        return int(
            statistics.median(
                sign * rows[row][bucket]
                for row, bucket, sign in self._coords(key)
            )
        )

    def l2_estimate(self) -> float:
        """Estimate of the stream's L2 norm (median of row norms)."""
        if HAVE_NUMPY:
            norms = np.sqrt(
                (self._rows.astype(np.float64) ** 2).sum(axis=1)
            )
            return float(np.median(norms))
        norms = [
            math.sqrt(sum(float(c) * c for c in row))
            for row in self._rows
        ]
        return float(statistics.median(norms))

    def merge(self, other: "CountSketch") -> None:
        """Merge another sketch built with identical parameters/seed."""
        if (self.width, self.depth) != (other.width, other.depth):
            raise ConfigurationError("cannot merge differently-sized sketches")
        if HAVE_NUMPY:
            self._rows += other._rows
        else:
            for mine, theirs in zip(self._rows, other._rows):
                for i, v in enumerate(theirs):
                    mine[i] += v

    def reset(self) -> None:
        if HAVE_NUMPY:
            self._rows.fill(0)
        else:
            self._rows = [[0] * self.width for _ in range(self.depth)]

    @property
    def counters(self) -> int:
        """Total number of counters (space usage)."""
        return self.width * self.depth
