"""Count-Min sketch (Cormode & Muthukrishnan, 2004).

``depth`` rows of ``width`` non-negative counters; point queries take
the minimum across rows, overestimating by at most ``ε·N`` with
probability ``1 − δ`` for ``width = ⌈e/ε⌉`` and ``depth = ⌈ln 1/δ⌉``.
Used by the network-wide heavy hitter controller for per-flow frequency
estimation over the sampled packets.
"""

from __future__ import annotations

import math
from typing import Hashable

from repro._compat import HAVE_NUMPY, np
from repro.errors import ConfigurationError
from repro.hashing.mix import key_to_u64
from repro.hashing.multiply_shift import MultiplyShiftHash


class CountMinSketch:
    """A seeded Count-Min sketch with conservative sizing helpers."""

    __slots__ = ("width", "depth", "_rows", "_hashes", "total")

    def __init__(self, width: int = 1024, depth: int = 4, seed: int = 0) -> None:
        if width < 1 or depth < 1:
            raise ConfigurationError(
                f"width and depth must be >= 1, got {width}x{depth}"
            )
        self.width = width
        self.depth = depth
        # int64 counter matrix with NumPy, list-of-lists without; all
        # per-item access below uses rows[r][c], valid for both.
        if HAVE_NUMPY:
            self._rows = np.zeros((depth, width), dtype=np.int64)
        else:
            self._rows = [[0] * width for _ in range(depth)]
        self._hashes = [
            MultiplyShiftHash(out_bits=64, seed=seed * 917 + r)
            for r in range(depth)
        ]
        self.total = 0

    @classmethod
    def from_error(
        cls, epsilon: float, delta: float, seed: int = 0
    ) -> "CountMinSketch":
        """Size the sketch for additive error ``ε·N`` w.p. ``1 − δ``."""
        if not 0 < epsilon < 1 or not 0 < delta < 1:
            raise ConfigurationError("epsilon and delta must be in (0, 1)")
        width = math.ceil(math.e / epsilon)
        depth = max(1, math.ceil(math.log(1.0 / delta)))
        return cls(width=width, depth=depth, seed=seed)

    def update(self, key: Hashable, count: int = 1) -> None:
        """Add ``count`` occurrences of ``key``."""
        k = key_to_u64(key)
        rows = self._rows
        for row in range(self.depth):
            rows[row][self._hashes[row].hash_u64(k) % self.width] += count
        self.total += count

    def estimate(self, key: Hashable) -> int:
        """Point estimate (never underestimates)."""
        k = key_to_u64(key)
        rows = self._rows
        return int(
            min(
                rows[row][self._hashes[row].hash_u64(k) % self.width]
                for row in range(self.depth)
            )
        )

    def merge(self, other: "CountMinSketch") -> None:
        """Merge another sketch built with identical parameters/seed."""
        if (self.width, self.depth) != (other.width, other.depth):
            raise ConfigurationError("cannot merge differently-sized sketches")
        if HAVE_NUMPY:
            self._rows += other._rows
        else:
            for mine, theirs in zip(self._rows, other._rows):
                for i, v in enumerate(theirs):
                    mine[i] += v
        self.total += other.total

    def reset(self) -> None:
        if HAVE_NUMPY:
            self._rows.fill(0)
        else:
            self._rows = [[0] * self.width for _ in range(self.depth)]
        self.total = 0

    @property
    def counters(self) -> int:
        """Total number of counters (space usage)."""
        return self.width * self.depth
