"""Frequency-sketch substrate.

UnivMon (§2.4) composes Count Sketch instances; the network-wide heavy
hitter controller and several tests use Count-Min for frequency
estimation.  Both are implemented from scratch on the
:mod:`repro.hashing` families.
"""

from repro.sketches.count_sketch import CountSketch
from repro.sketches.count_min import CountMinSketch

__all__ = ["CountSketch", "CountMinSketch"]
