"""Time-based slack-window q-MAX.

§4.3.4 notes that in distributed settings "defining the window size in
time makes more sense than defining it in packets".  This module is the
time-domain twin of :class:`repro.core.sliding.SlidingQMax`: blocks
span ``W·τ`` *seconds* instead of items, rotate on timestamp
boundaries, and a query covers a time window whose span lies between
``W(1−τ)`` and ``W`` seconds before the query time.

Timestamps must be non-decreasing (stream order); out-of-order packets
within one block are harmless, across blocks they would be accounted to
the wrong block and are rejected.
"""

from __future__ import annotations

import math
from typing import Callable, Iterator, List

from repro.core.interface import QMaxBase
from repro.core.sliding import default_block_factory
from repro.errors import ConfigurationError
from repro.types import Item, ItemId, TopItems, Value


class TimeSlidingQMax(QMaxBase):
    """q-MAX over a time-based ``(W, τ)``-slack window.

    Parameters
    ----------
    q:
        Number of maximal items to report.
    window_seconds:
        The window span ``W`` in seconds.
    tau:
        Slack fraction in ``(0, 1]``.
    block_factory:
        Builds one q-MAX per block (receives ``q``).
    """

    __slots__ = ("q", "window_seconds", "tau", "_n_blocks",
                 "_block_seconds", "_blocks", "_epoch_of", "_last_ts",
                 "_result_factory")

    def __init__(
        self,
        q: int,
        window_seconds: float,
        tau: float,
        block_factory: Callable[[int], QMaxBase] = default_block_factory,
    ) -> None:
        if q < 1:
            raise ConfigurationError(f"q must be >= 1, got {q}")
        if window_seconds <= 0:
            raise ConfigurationError("window_seconds must be positive")
        if not 0.0 < tau <= 1.0:
            raise ConfigurationError(f"tau must be in (0, 1], got {tau}")
        self.q = q
        self.window_seconds = window_seconds
        self.tau = tau
        # ⌈1/τ⌉ slots: the current partial block plus ⌈1/τ⌉-1 complete
        # ones cover a span in [W(1-τ), W) — never more than W.
        self._n_blocks = max(1, math.ceil(1.0 / tau))
        self._block_seconds = window_seconds * tau
        self._blocks: List[QMaxBase] = [
            block_factory(q) for _ in range(self._n_blocks)
        ]
        self._epoch_of: List[int] = [-1] * self._n_blocks
        self._last_ts = float("-inf")
        self._result_factory = block_factory

    def add_at(self, timestamp: float, item_id: ItemId,
               val: Value) -> None:
        """Process one timestamped item (timestamps non-decreasing)."""
        if timestamp < self._last_ts - self._block_seconds:
            raise ConfigurationError(
                f"timestamp {timestamp} is more than one block older "
                f"than the stream head {self._last_ts}"
            )
        self._last_ts = max(self._last_ts, timestamp)
        epoch = int(timestamp / self._block_seconds)
        slot = epoch % self._n_blocks
        if self._epoch_of[slot] != epoch:
            self._blocks[slot].reset()
            self._epoch_of[slot] = epoch
        self._blocks[slot].add(item_id, val)

    def add(self, item_id: ItemId, val: Value) -> None:
        """QMaxBase-compatible add using the last seen timestamp."""
        self.add_at(max(self._last_ts, 0.0), item_id, val)

    def _live_slots(self, now: float) -> Iterator[int]:
        current_epoch = int(now / self._block_seconds)
        oldest = current_epoch - (self._n_blocks - 1)
        for slot in range(self._n_blocks):
            epoch = self._epoch_of[slot]
            if oldest <= epoch <= current_epoch:
                yield slot

    def query_at(self, now: float) -> TopItems:
        """Top q over the slack window ending at time ``now``."""
        result = self._result_factory(self.q)
        for slot in self._live_slots(now):
            for item_id, val in self._blocks[slot].query():
                result.add(item_id, val)
        return result.query()

    def query(self) -> TopItems:
        """Top q over the window ending at the newest timestamp."""
        return self.query_at(self._last_ts if self._last_ts > float(
            "-inf") else 0.0)

    def items(self) -> Iterator[Item]:
        now = self._last_ts if self._last_ts > float("-inf") else 0.0
        for slot in self._live_slots(now):
            yield from self._blocks[slot].items()

    def reset(self) -> None:
        for block in self._blocks:
            block.reset()
        self._epoch_of = [-1] * self._n_blocks
        self._last_ts = float("-inf")

    @property
    def name(self) -> str:
        return f"time-sliding-qmax(tau={self.tau:g})"
