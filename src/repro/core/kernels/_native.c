/* Native maintenance kernel for the q-MAX reproduction.
 *
 * Two entry points over contiguous writable buffers (no NumPy C API —
 * plain buffer protocol, so ndarray slices and array.array both work):
 *
 *   select_kth(vals, perm, kth) -> float
 *       Median-of-three quickselect (insertion-sort cutoff) placing
 *       the ascending-rank `kth` value of the float64 buffer `vals`
 *       at index kth, in place, co-swapping the uint64 buffer `perm`
 *       (callers pass arange and apply it to their id column after);
 *       everything left of kth ends <= the result, everything right
 *       >= it.  Returns the selected value.
 *
 *   dnf_partition(vals, perm, pivot, big_on_right) -> None
 *       Dutch-national-flag three-way partition of `vals` around
 *       `pivot`, co-swapping `perm`: [<][=][>] when big_on_right is
 *       true, [>][=][<] otherwise.
 *
 * Mirrors the pure-Python routines in repro/core/select.py; the
 * differential fuzz suite pins both to identical retained-set
 * semantics.  The GIL is released around the O(n) loops.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <stdint.h>

/* Below this size quickselect finishes with insertion sort (matches
 * _SMALL_CUTOFF in repro/core/select.py). */
#define SMALL_CUTOFF 16

static void
swap_rec(double *v, uint64_t *p, Py_ssize_t i, Py_ssize_t j)
{
    double tv = v[i];
    uint64_t tp = p[i];
    v[i] = v[j];
    p[i] = p[j];
    v[j] = tv;
    p[j] = tp;
}

static void
insertion_sort(double *v, uint64_t *p, Py_ssize_t lo, Py_ssize_t hi)
{
    Py_ssize_t i, j;
    for (i = lo + 1; i < hi; i++) {
        double cv = v[i];
        uint64_t cp = p[i];
        j = i - 1;
        while (j >= lo && v[j] > cv) {
            v[j + 1] = v[j];
            p[j + 1] = p[j];
            j--;
        }
        v[j + 1] = cv;
        p[j + 1] = cp;
    }
}

static double
median_of_three(double *v, uint64_t *p,
                Py_ssize_t lo, Py_ssize_t mid, Py_ssize_t hi)
{
    if (v[mid] < v[lo])
        swap_rec(v, p, lo, mid);
    if (v[hi] < v[lo])
        swap_rec(v, p, lo, hi);
    if (v[hi] < v[mid])
        swap_rec(v, p, mid, hi);
    return v[mid];
}

static double
quickselect(double *v, uint64_t *p, Py_ssize_t n, Py_ssize_t target)
{
    Py_ssize_t left = 0, right = n - 1;
    while (right - left >= SMALL_CUTOFF) {
        Py_ssize_t mid = left + (right - left) / 2;
        double pivot = median_of_three(v, p, left, mid, right);
        /* Hoare partition; the median-of-three placed sentinels at
         * both ends, so the inner scans cannot run off the region. */
        Py_ssize_t i = left, j = right;
        while (i <= j) {
            while (v[i] < pivot)
                i++;
            while (v[j] > pivot)
                j--;
            if (i <= j) {
                swap_rec(v, p, i, j);
                i++;
                j--;
            }
        }
        if (target <= j)
            right = j;
        else if (target >= i)
            left = i;
        else
            return v[target];
    }
    insertion_sort(v, p, left, right + 1);
    return v[target];
}

static void
dnf(double *v, uint64_t *p, Py_ssize_t n, double pivot, int big_on_right)
{
    Py_ssize_t lt = 0, i = 0, gt = n;
    while (i < gt) {
        double x = v[i];
        int low = big_on_right ? (x < pivot) : (x > pivot);
        if (low) {
            swap_rec(v, p, i, lt);
            lt++;
            i++;
        }
        else {
            int high = big_on_right ? (x > pivot) : (x < pivot);
            if (high) {
                gt--;
                swap_rec(v, p, i, gt);
            }
            else {
                i++;
            }
        }
    }
}

/* Validate the (vals, perm) buffer pair; returns the record count or
 * -1 with an exception set.  Buffers are already acquired by the
 * caller's PyArg_ParseTuple and must be released there on all paths. */
static Py_ssize_t
check_buffers(Py_buffer *vbuf, Py_buffer *pbuf)
{
    if (vbuf->len % (Py_ssize_t)sizeof(double) != 0) {
        PyErr_SetString(PyExc_ValueError,
                        "vals buffer length is not a multiple of 8");
        return -1;
    }
    Py_ssize_t n = vbuf->len / (Py_ssize_t)sizeof(double);
    if (pbuf->len != n * (Py_ssize_t)sizeof(uint64_t)) {
        PyErr_SetString(PyExc_ValueError,
                        "perm buffer does not match vals length "
                        "(need one uint64 per double)");
        return -1;
    }
    if (n < 1) {
        PyErr_SetString(PyExc_ValueError, "empty region");
        return -1;
    }
    return n;
}

static PyObject *
py_select_kth(PyObject *Py_UNUSED(self), PyObject *args)
{
    Py_buffer vbuf, pbuf;
    Py_ssize_t kth;
    if (!PyArg_ParseTuple(args, "w*w*n:select_kth", &vbuf, &pbuf, &kth))
        return NULL;
    Py_ssize_t n = check_buffers(&vbuf, &pbuf);
    if (n < 0 || kth < 0 || kth >= n) {
        if (n >= 0)
            PyErr_Format(PyExc_ValueError,
                         "kth=%zd out of range for %zd records", kth, n);
        PyBuffer_Release(&vbuf);
        PyBuffer_Release(&pbuf);
        return NULL;
    }
    double *v = (double *)vbuf.buf;
    uint64_t *p = (uint64_t *)pbuf.buf;
    double result;
    Py_BEGIN_ALLOW_THREADS
    result = quickselect(v, p, n, kth);
    Py_END_ALLOW_THREADS
    PyBuffer_Release(&vbuf);
    PyBuffer_Release(&pbuf);
    return PyFloat_FromDouble(result);
}

static PyObject *
py_dnf_partition(PyObject *Py_UNUSED(self), PyObject *args)
{
    Py_buffer vbuf, pbuf;
    double pivot;
    int big_on_right;
    if (!PyArg_ParseTuple(args, "w*w*dp:dnf_partition",
                          &vbuf, &pbuf, &pivot, &big_on_right))
        return NULL;
    Py_ssize_t n = check_buffers(&vbuf, &pbuf);
    if (n < 0) {
        PyBuffer_Release(&vbuf);
        PyBuffer_Release(&pbuf);
        return NULL;
    }
    double *v = (double *)vbuf.buf;
    uint64_t *p = (uint64_t *)pbuf.buf;
    Py_BEGIN_ALLOW_THREADS
    dnf(v, p, n, pivot, big_on_right);
    Py_END_ALLOW_THREADS
    PyBuffer_Release(&vbuf);
    PyBuffer_Release(&pbuf);
    Py_RETURN_NONE;
}

static PyMethodDef native_methods[] = {
    {"select_kth", py_select_kth, METH_VARARGS,
     "select_kth(vals, perm, kth) -> float\n\n"
     "In-place quickselect of the ascending-rank kth value of the\n"
     "float64 buffer, co-swapping the uint64 permutation buffer."},
    {"dnf_partition", py_dnf_partition, METH_VARARGS,
     "dnf_partition(vals, perm, pivot, big_on_right) -> None\n\n"
     "In-place three-way partition around pivot, co-swapping the\n"
     "uint64 permutation buffer."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef native_module = {
    PyModuleDef_HEAD_INIT,
    "repro.core.kernels._native",
    "Compiled select/partition maintenance routines (see native.py).",
    -1,
    native_methods,
};

PyMODINIT_FUNC
PyInit__native(void)
{
    return PyModule_Create(&native_module);
}
