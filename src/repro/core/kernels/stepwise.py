"""The reference kernel: the resumable generators, run in one shot.

This is the semantics anchor of the kernel subsystem: it executes the
exact same quickselect + Dutch-national-flag code the deamortized
schedule steps through, only without yielding between operation
budgets.  The differential fuzz suite pins the ``numpy`` and ``native``
kernels against this one — identical retained value-multiset and Ψ
after every drive — so the fast kernels are proven drop-in.
"""

from __future__ import annotations

from time import perf_counter

from repro.core.select import (
    run_to_completion,
    stepwise_partition_top,
    stepwise_select,
)

#: Large enough that a single resumption finishes any drive; the ops
#: accounting is irrelevant in one-shot mode.
_ONE_SHOT_BUDGET = 1 << 60


class StepwiseKernel:
    """One-shot drive through the deamortized generators (reference)."""

    name = "stepwise"
    #: The generators index element-by-element in Python; a float64
    #: ndarray store would only slow them down.
    array_storage = False

    def drive(self, vals, ids, lo, hi, q, side, observe=None):
        """Select the q-th largest of ``vals[lo:hi)`` and partition the
        top ``q`` items to ``side``; returns the threshold.

        ``observe(phase, seconds)`` — when given — receives one
        ``"select"`` and one ``"pivot"`` span per drive.
        """
        rank = (hi - lo) - q
        if observe is not None:
            t0 = perf_counter()
        threshold = run_to_completion(
            stepwise_select(vals, ids, lo, hi, rank, _ONE_SHOT_BUDGET)
        )
        if observe is not None:
            t1 = perf_counter()
            observe("select", t1 - t0)
        run_to_completion(
            stepwise_partition_top(
                vals, ids, lo, hi, threshold, side, _ONE_SHOT_BUDGET
            )
        )
        if observe is not None:
            observe("pivot", perf_counter() - t1)
        return threshold
