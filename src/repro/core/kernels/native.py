"""Compiled maintenance kernel: C quickselect + DNF partition.

Wraps the optional ``repro.core.kernels._native`` extension (see
``_native.c``; built best-effort by ``setup.py`` / ``make
build-native``).  The C side works on two contiguous buffers — the
region's ``double`` values and a ``uint64`` permutation initialized to
``arange`` — selecting the target rank in place and co-swapping the
permutation, so Python applies the id movement with a single
fancy-index afterwards.  No NumPy C API is involved (plain buffer
protocol), which keeps the extension ABI-independent of the installed
NumPy and lets it run on the pure-Python stack through ``array('d')``
/ ``array('Q')`` shadow buffers.

Import of this module never fails: when the extension is missing the
kernel just reports unavailable and the registry falls back
(``native`` → ``numpy`` → ``stepwise``).
"""

from __future__ import annotations

from array import array
from time import perf_counter

from repro._compat import HAVE_NUMPY, np
from repro.errors import ConfigurationError

try:
    from repro.core.kernels import _native
except ImportError:  # no compiler / extension not built
    _native = None


def native_module_available() -> bool:
    return _native is not None


class NativeKernel:
    """One-shot drive through the compiled select/partition routines."""

    name = "native"
    array_storage = True

    def __init__(self) -> None:
        if _native is None:
            raise ConfigurationError(
                "the native kernel extension is not built "
                "(python setup.py build_ext --inplace)"
            )

    def drive(self, vals, ids, lo, hi, q, side, observe=None):
        n = hi - lo
        if not 1 <= q <= n:
            raise ConfigurationError(
                f"q={q} out of range for region [{lo}, {hi})"
            )
        kth = n - q
        big_on_right = side == "right"
        if side not in ("left", "right"):
            raise ConfigurationError(
                f"side must be 'left' or 'right', got {side!r}"
            )
        if observe is not None:
            t0 = perf_counter()
        if HAVE_NUMPY and isinstance(vals, np.ndarray):
            region = vals[lo:hi]
            perm = np.arange(n, dtype=np.uint64)
            threshold = _native.select_kth(region, perm, kth)
            if observe is not None:
                t1 = perf_counter()
                observe("select", t1 - t0)
            _native.dnf_partition(region, perm, threshold, big_on_right)
            ids[lo:hi] = ids[lo:hi][perm.astype(np.intp)]
            if observe is not None:
                observe("pivot", perf_counter() - t1)
            return threshold
        # List storage: the C routines see float64/uint64 shadow
        # buffers; the original value/id objects are permuted into
        # place afterwards (integer values stay integers).
        region_vals = vals[lo:hi]
        region_ids = ids[lo:hi]
        buf = array("d", region_vals)
        perm = array("Q", range(n))
        _native.select_kth(buf, perm, kth)
        # perm[kth] is the original index of the rank value — recover
        # the caller's object before the partition moves it again.
        threshold = region_vals[perm[kth]]
        if observe is not None:
            t1 = perf_counter()
            observe("select", t1 - t0)
        _native.dnf_partition(buf, perm, buf[kth], big_on_right)
        i = lo
        for j in perm:
            vals[i] = region_vals[j]
            ids[i] = region_ids[j]
            i += 1
        if observe is not None:
            observe("pivot", perf_counter() - t1)
        return threshold
