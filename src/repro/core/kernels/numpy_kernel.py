"""Vectorized maintenance kernel: one-shot ``np.argpartition`` drives.

One introselect over the region's float64 column yields the threshold
*and* a permutation that realizes the partition; applying it is two
fancy-index copies (values, ids).  On the ndarray store QMax uses in
kernel mode nothing touches a per-record Python object — the drive is
a handful of C calls regardless of region size.

A list-storage fallback exists for pure-Python stores (and foreign
callers): comparisons still run in C over a float64 shadow array, the
original value/id *objects* are permuted into place afterwards, so
integer values stay integers — the same contract as
:func:`repro.core.select.partition_top`'s NumPy path.
"""

from __future__ import annotations

from time import perf_counter

from repro._compat import HAVE_NUMPY, np
from repro.errors import ConfigurationError


def numpy_kernel_available() -> bool:
    return HAVE_NUMPY


class NumpyKernel:
    """One-shot argpartition select + fancy-index partition."""

    name = "numpy"
    array_storage = True

    def __init__(self) -> None:
        if not HAVE_NUMPY:
            raise ConfigurationError(
                "the numpy kernel needs numpy (pip install .[fast])"
            )

    def drive(self, vals, ids, lo, hi, q, side, observe=None):
        n = hi - lo
        if not 1 <= q <= n:
            raise ConfigurationError(
                f"q={q} out of range for region [{lo}, {hi})"
            )
        kth = n - q
        if observe is not None:
            t0 = perf_counter()
        if isinstance(vals, np.ndarray):
            region = vals[lo:hi]
            order = np.argpartition(region, kth)
            threshold = float(region[order[kth]])
            if observe is not None:
                t1 = perf_counter()
                observe("select", t1 - t0)
            # Ascending argpartition leaves the top q (threshold
            # included) in the last q slots; mirror for side="left".
            if side == "left":
                order = order[::-1]
            vals[lo:hi] = region[order]
            ids[lo:hi] = ids[lo:hi][order]
            if observe is not None:
                observe("pivot", perf_counter() - t1)
            return threshold
        region_vals = vals[lo:hi]
        varr = np.asarray(region_vals, dtype=np.float64)
        order = np.argpartition(varr, kth)
        threshold = region_vals[int(order[kth])]
        if observe is not None:
            t1 = perf_counter()
            observe("select", t1 - t0)
        perm = order.tolist()
        if side == "left":
            perm.reverse()
        region_ids = ids[lo:hi]
        for i in range(n):
            j = perm[i]
            vals[lo + i] = region_vals[j]
            ids[lo + i] = region_ids[j]
        if observe is not None:
            observe("pivot", perf_counter() - t1)
        return threshold
