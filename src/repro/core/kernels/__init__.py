"""Maintenance kernels: one-shot select+pivot drives behind a registry.

Algorithm 1's maintenance — Select the q-th largest value of the merged
region, then three-way-partition the region around it — is executed by
:class:`repro.core.qmax.QMax` either *deamortized* (the resumable
generators of :mod:`repro.core.select`, a few elementary operations per
admitted item) or as **one opaque fast call per iteration** through a
*maintenance kernel*.  A kernel performs the entire drive at the
iteration boundary, trading the paper's per-update O(1/γ) worst-case
bound for a far lower amortized constant: no generator dispatch, no
per-element Python bytecode on the vectorized/native implementations.

Registered kernels:

``stepwise``
    The resumable generators driven to completion in one call — the
    deamortization-exact reference all other kernels are differentially
    fuzzed against.  Always available.  (Passing the *name*
    ``"stepwise"`` to ``QMax`` selects the default deamortized
    schedule; passing a :class:`~repro.core.kernels.stepwise.
    StepwiseKernel` *instance* selects one-shot drives.)
``numpy``
    One-shot ``np.argpartition`` select + fancy-index partition over
    the float64 value column; no per-record Python.  Available when
    NumPy is installed.
``native``
    Optional C extension (``_native.c``): median-of-three quickselect
    plus Dutch-national-flag partition over contiguous ``double`` /
    ``uint64`` buffers.  Built best-effort by ``setup.py`` (or
    ``make build-native``); available only when the compiled module
    imports.

Resolution is *graceful*: :func:`get_kernel` walks a fallback chain
(``native`` → ``numpy`` → ``stepwise``) when the requested kernel is
unavailable on this host, logging a warning — a deployment pinned to
``REPRO_KERNEL=native`` still runs (slower) on a box without a
compiler.  Pass ``require=True`` to fail instead.  ``QMax.stats()``
always reports the kernel that actually resolved, never the request.
"""

from __future__ import annotations

import logging
import os
from typing import Callable, Dict, NamedTuple, Optional, Tuple

from repro.errors import ConfigurationError

_LOG = logging.getLogger("repro.core.kernels")

#: Environment variable consulted by :func:`resolve_kernel` when no
#: explicit kernel is requested.
KERNEL_ENV = "REPRO_KERNEL"

#: The default kernel name (the deamortized reference schedule).
DEFAULT_KERNEL = "stepwise"


class _Entry(NamedTuple):
    factory: Callable[[], object]
    available: Callable[[], bool]
    fallback: Optional[str]


_REGISTRY: Dict[str, _Entry] = {}


def register_kernel(
    name: str,
    factory: Callable[[], object],
    available: Optional[Callable[[], bool]] = None,
    fallback: Optional[str] = None,
) -> None:
    """Register a kernel factory under ``name``.

    ``available`` is a zero-argument probe (default: always true);
    ``fallback`` names the kernel :func:`get_kernel` degrades to when
    the probe fails.  Registering an existing name replaces it (tests
    use this to inject unavailable kernels).
    """
    _REGISTRY[name] = _Entry(factory, available or (lambda: True), fallback)


def kernel_names() -> Tuple[str, ...]:
    """All registered kernel names, in registration order."""
    return tuple(_REGISTRY)


def kernel_available(name: str) -> bool:
    """Whether ``name`` is registered and usable on this host."""
    entry = _REGISTRY.get(name)
    return entry is not None and entry.available()


def native_available() -> bool:
    """Whether the compiled ``_native`` extension imported."""
    return kernel_available("native")


def get_kernel(name: str, require: bool = False):
    """Instantiate the kernel registered under ``name``.

    When the kernel is unavailable (e.g. ``native`` without the
    compiled extension) the registered fallback chain is followed with
    a warning, unless ``require=True``, which raises
    :class:`~repro.errors.ConfigurationError` instead.
    """
    if name not in _REGISTRY:
        raise ConfigurationError(
            f"unknown kernel {name!r}; registered: {', '.join(_REGISTRY)}"
        )
    current = name
    seen = set()
    while True:
        if current in seen:  # defensive: a fallback cycle
            raise ConfigurationError(
                f"kernel fallback cycle starting at {name!r}"
            )
        seen.add(current)
        entry = _REGISTRY[current]
        if entry.available():
            if current != name:
                _LOG.warning(
                    "kernel %r is not available on this host; "
                    "falling back to %r", name, current,
                )
            return entry.factory()
        if require:
            raise ConfigurationError(
                f"kernel {name!r} is not available on this host "
                f"(required explicitly)"
            )
        if entry.fallback is None:
            raise ConfigurationError(
                f"kernel {name!r} is unavailable and has no fallback"
            )
        current = entry.fallback


def resolve_kernel(spec, require: bool = False):
    """Resolve a kernel request to an instance.

    ``spec`` is ``None`` (consult ``REPRO_KERNEL``, defaulting to
    ``stepwise``), a registered name, or an object already implementing
    the kernel protocol (``drive(vals, ids, lo, hi, q, side,
    observe=None) -> threshold``), which is returned as-is.
    """
    if spec is None:
        spec = os.environ.get(KERNEL_ENV) or DEFAULT_KERNEL
    if isinstance(spec, str):
        return get_kernel(spec, require=require)
    if hasattr(spec, "drive"):
        return spec
    raise ConfigurationError(
        f"kernel must be a name or an object with a drive() method, "
        f"got {spec!r}"
    )


# ----------------------------------------------------------------------
# Built-in registrations (import order defines the fallback chain).
# ----------------------------------------------------------------------

from repro.core.kernels.stepwise import StepwiseKernel  # noqa: E402
from repro.core.kernels.numpy_kernel import (  # noqa: E402
    NumpyKernel,
    numpy_kernel_available,
)
from repro.core.kernels.native import (  # noqa: E402
    NativeKernel,
    native_module_available,
)

register_kernel("stepwise", StepwiseKernel)
register_kernel(
    "numpy", NumpyKernel,
    available=numpy_kernel_available, fallback="stepwise",
)
register_kernel(
    "native", NativeKernel,
    available=native_module_available, fallback="numpy",
)

__all__ = [
    "DEFAULT_KERNEL",
    "KERNEL_ENV",
    "NativeKernel",
    "NumpyKernel",
    "StepwiseKernel",
    "get_kernel",
    "kernel_available",
    "kernel_names",
    "native_available",
    "register_kernel",
    "resolve_kernel",
]
