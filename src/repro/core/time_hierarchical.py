"""Hierarchical time-based slack windows (Algorithm 4 in the time domain).

Theorem 8 composes the network-wide estimator with "our slack solutions
(Algorithm 3 or Algorithm 4)"; :mod:`repro.core.time_sliding` is the
Algorithm-3 instantiation, this module the Algorithm-4 one: ``c``
levels of time blocks spanning ``W·τ·r^(ℓ)`` seconds (``r =
⌈τ^(-1/c)⌉``), all epoch-aligned, with the greedy coarsest-first cover
of :mod:`repro.core.hierarchical` transplanted to timestamps.  Queries
merge ``O(c·τ^(-1/c))`` blocks instead of ``τ⁻¹``.
"""

from __future__ import annotations

import math
from typing import Callable, Iterator, List, Tuple

from repro.core.interface import QMaxBase
from repro.core.sliding import default_block_factory
from repro.errors import ConfigurationError
from repro.types import Item, ItemId, TopItems, Value


class _TimeLevel:
    """One level: a cyclic buffer of per-epoch q-MAX instances."""

    __slots__ = ("span", "n_slots", "blocks", "epoch_of")

    #: Sentinel epoch that no real timestamp maps to.
    NEVER = -(1 << 62)

    def __init__(
        self,
        span: float,
        n_slots: int,
        factory: Callable[[int], QMaxBase],
        q: int,
    ) -> None:
        self.span = span
        self.n_slots = n_slots
        self.blocks: List[QMaxBase] = [factory(q) for _ in range(n_slots)]
        self.epoch_of: List[int] = [self.NEVER] * n_slots

    def epoch(self, timestamp: float) -> int:
        # floor (not int()): int() truncates toward zero, which would
        # alias slightly-negative probe timestamps onto epoch 0.
        return math.floor(timestamp / self.span)

    def slot_for(self, epoch: int) -> int:
        return epoch % self.n_slots

    def block(self, epoch: int) -> QMaxBase:
        """The live block for ``epoch``, recycling the slot if stale."""
        slot = self.slot_for(epoch)
        if self.epoch_of[slot] != epoch:
            self.blocks[slot].reset()
            self.epoch_of[slot] = epoch
        return self.blocks[slot]

    def complete_block(self, epoch: int):
        """The block for ``epoch`` if its slot still holds it."""
        slot = self.slot_for(epoch)
        if self.epoch_of[slot] == epoch:
            return self.blocks[slot]
        return None


class TimeHierarchicalSlidingQMax(QMaxBase):
    """Multi-level time-based slack-window q-MAX.

    Parameters as in :class:`~repro.core.time_sliding.TimeSlidingQMax`
    plus ``levels`` (the paper's ``c``).
    """

    __slots__ = ("q", "window_seconds", "tau", "c", "_levels",
                 "_last_ts", "_result_factory")

    def __init__(
        self,
        q: int,
        window_seconds: float,
        tau: float,
        levels: int = 2,
        block_factory: Callable[[int], QMaxBase] = default_block_factory,
    ) -> None:
        if q < 1:
            raise ConfigurationError(f"q must be >= 1, got {q}")
        if window_seconds <= 0:
            raise ConfigurationError("window_seconds must be positive")
        if not 0.0 < tau <= 1.0:
            raise ConfigurationError(f"tau must be in (0, 1], got {tau}")
        if levels < 1:
            raise ConfigurationError(f"levels must be >= 1, got {levels}")
        self.q = q
        self.window_seconds = window_seconds
        self.tau = tau
        self.c = levels
        self._result_factory = block_factory

        finest = window_seconds * tau
        ratio = max(2, math.ceil((1.0 / tau) ** (1.0 / levels)))
        self._levels: List[_TimeLevel] = []
        span = finest
        for _ in range(levels):
            if span >= window_seconds:
                break
            n_slots = math.ceil(window_seconds / span) + 1
            self._levels.append(
                _TimeLevel(span, n_slots, block_factory, q)
            )
            span *= ratio
        if not self._levels:
            self._levels.append(_TimeLevel(finest, 2, block_factory, q))
        self._last_ts = float("-inf")

    # ------------------------------------------------------------------
    # Updates.
    # ------------------------------------------------------------------

    def add_at(self, timestamp: float, item_id: ItemId,
               val: Value) -> None:
        """Insert into the current block of every level — O(c)."""
        if timestamp < self._last_ts - self._levels[0].span:
            raise ConfigurationError(
                f"timestamp {timestamp} is more than one finest block "
                f"older than the stream head {self._last_ts}"
            )
        self._last_ts = max(self._last_ts, timestamp)
        for level in self._levels:
            level.block(level.epoch(timestamp)).add(item_id, val)

    def add(self, item_id: ItemId, val: Value) -> None:
        self.add_at(max(self._last_ts, 0.0), item_id, val)

    # ------------------------------------------------------------------
    # Queries: greedy epoch-aligned disjoint cover, coarsest-first.
    # ------------------------------------------------------------------

    def _cover(self, now: float) -> List[Tuple[float, QMaxBase]]:
        """Disjoint complete blocks tiling ``[boundary, p)`` where the
        finest partial block covers ``[p, now]`` and the combined span
        stays within [W(1-τ), W]."""
        finest = self._levels[0]
        p = finest.epoch(now) * finest.span
        oldest_allowed = now - self.window_seconds
        target = oldest_allowed + self.window_seconds * self.tau
        chosen: List[Tuple[float, QMaxBase]] = []
        eps = finest.span * 1e-9
        while p > max(target, 0.0) + eps:  # no blocks before time 0
            picked = None
            for level in reversed(self._levels):  # coarsest first
                span = level.span
                # The block ending at p must be epoch-aligned at this
                # level, entirely inside the window, and still held.
                if abs(p / span - round(p / span)) > 1e-9:
                    continue
                start = p - span
                if start < oldest_allowed - eps:
                    continue
                block = level.complete_block(level.epoch(start + eps))
                if block is None:
                    continue
                picked = (start, block)
                break
            if picked is None:
                break
            chosen.append(picked)
            p = picked[0]
        return chosen

    def query_at(self, now: float) -> TopItems:
        """Top q over the slack window ending at ``now``."""
        result = self._result_factory(self.q)
        finest = self._levels[0]
        partial = finest.complete_block(finest.epoch(now))
        if partial is not None:
            for item_id, val in partial.query():
                result.add(item_id, val)
        for _start, block in self._cover(now):
            for item_id, val in block.query():
                result.add(item_id, val)
        return result.query()

    def query(self) -> TopItems:
        if self._last_ts == float("-inf"):
            return []
        return self.query_at(self._last_ts)

    def items(self) -> Iterator[Item]:
        if self._last_ts == float("-inf"):
            return
        now = self._last_ts
        finest = self._levels[0]
        partial = finest.complete_block(finest.epoch(now))
        if partial is not None:
            yield from partial.items()
        for _start, block in self._cover(now):
            yield from block.items()

    def reset(self) -> None:
        for level in self._levels:
            for block in level.blocks:
                block.reset()
            level.epoch_of = [_TimeLevel.NEVER] * level.n_slots
        self._last_ts = float("-inf")

    @property
    def name(self) -> str:
        return (
            f"time-hier-sliding-qmax(tau={self.tau:g},c={self.c})"
        )
