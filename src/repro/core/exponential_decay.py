"""Exponential-Decay q-MAX (§5 of the paper).

Under exponential decay with aging parameter ``c ∈ (0, 1]``, the weight
of the item that arrived at time ``i`` is ``val_i · c**(t-i)`` at the
current time ``t``; the goal is to report the q items with the largest
*decayed* weights.

Re-weighting everything on each arrival is hopeless, and the naive
static transformation ``val_i · c**(-i)`` overflows floating point.
The paper's fix — which this module implements — works in the log
domain: feed ``val'_i = log(val_i) − i·log(c)`` to a standard q-MAX.
The transformation is strictly monotone in the decayed weight, so the
top-q under ``val'`` equals the top-q under decayed weight at any time.
"""

from __future__ import annotations

import math
from typing import Callable, Iterator, List, Sequence

from repro.core.interface import QMaxBase
from repro.core.qmax import QMax
from repro.errors import ConfigurationError
from repro.types import Item, ItemId, TopItems, Value


class ExponentialDecayQMax(QMaxBase):
    """q-MAX under exponential decay, via the log-domain reduction.

    Parameters
    ----------
    q:
        Number of maximal items to maintain.
    decay:
        The paper's aging parameter ``c ∈ (0, 1]``; each new arrival
        multiplies the effective weight of all previous items by ``c``.
        ``c = 1`` degenerates to plain q-MAX.
    backend:
        Factory for the underlying q-MAX structure (receives ``q``).
    """

    __slots__ = ("q", "decay", "_neg_log_c", "_t", "_inner")

    def __init__(
        self,
        q: int,
        decay: float = 0.99,
        backend: Callable[[int], QMaxBase] = QMax,
    ) -> None:
        if not 0.0 < decay <= 1.0:
            raise ConfigurationError(
                f"decay must be in (0, 1], got {decay}"
            )
        self.q = q
        self.decay = decay
        self._neg_log_c = -math.log(decay)
        self._t = 0
        self._inner = backend(q)

    def add(self, item_id: ItemId, val: Value) -> None:
        """Record an arrival of positive weight ``val`` at the next tick."""
        if val <= 0:
            raise ConfigurationError(
                f"exponential decay requires positive weights, got {val}"
            )
        self._inner.add(item_id, math.log(val) + self._t * self._neg_log_c)
        self._t += 1

    def add_many(self, ids: Sequence[ItemId], vals: Sequence[Value]) -> None:
        """Batch update: one log-domain transform pass, one backend call.

        Deviation from the sequential loop: the whole batch is validated
        *before* any item is applied, so a non-positive weight rejects
        the batch atomically instead of applying a prefix.  The
        transform deliberately uses ``math.log`` (not a vectorized log)
        so stored values are bit-identical to repeated :meth:`add`.
        """
        n = len(ids)
        if n != len(vals):
            raise ConfigurationError(
                f"batch length mismatch: {n} ids vs {len(vals)} vals"
            )
        for val in vals:
            if val <= 0:
                raise ConfigurationError(
                    f"exponential decay requires positive weights, got {val}"
                )
        t = self._t
        neg_log_c = self._neg_log_c
        log = math.log
        self._inner.add_many(
            ids, [log(v) + (t + i) * neg_log_c for i, v in enumerate(vals)]
        )
        self._t = t + n

    @property
    def now(self) -> int:
        """Number of arrivals processed (the logical clock)."""
        return self._t

    def _decayed(self, transformed: Value) -> float:
        """Convert a stored log-domain value to the current decayed weight.

        The current time is the latest arrival's timestamp (``t - 1``):
        the most recent item has not decayed at all yet.
        """
        now = max(0, self._t - 1)
        return math.exp(transformed - now * self._neg_log_c)

    def items(self) -> Iterator[Item]:
        """Live items with their *current decayed* weights."""
        for item_id, transformed in self._inner.items():
            yield item_id, self._decayed(transformed)

    def query(self) -> TopItems:
        """Top q items by decayed weight, sorted descending."""
        # The transformation is monotone, so the inner top-q is ours;
        # we only convert the reported values back to decayed weights.
        return [
            (item_id, self._decayed(transformed))
            for item_id, transformed in self._inner.query()
        ]

    def reset(self) -> None:
        self._t = 0
        self._inner.reset()

    def take_evicted(self) -> List[Item]:
        return [
            (item_id, self._decayed(v))
            for item_id, v in self._inner.take_evicted()
        ]

    def check_invariants(self) -> None:
        self._inner.check_invariants()

    @property
    def name(self) -> str:
        return f"ed-qmax(c={self.decay:g})[{self._inner.name}]"
