"""Algorithm 4 and Theorem 7: fast-query slack-window q-MAX.

Algorithm 3 answers queries in O(q·τ⁻¹) — too slow for small τ.  The
paper layers ``c`` instances with geometrically coarser blocks: level
``ℓ ∈ {1..c}`` uses blocks of ``W·τ^((c-ℓ+1)/c)`` items (level ``c`` is
the finest, with blocks of ``W·τ``; level 1 the coarsest).  Every block
boundary of a coarser level aligns with the finer levels, so a query can
cover the slack window with O(c·τ^(1/c)) *disjoint* blocks, taking the
coarsest-possible block at each position (this greedy cover is an
equivalent restatement of the paper's PARTIAL-based decomposition in
Algorithm 4 and achieves the same O(q·c·τ^(-1/c)) query bound,
Theorem 6).

Updates touch all ``c`` levels — O(c) per item.  Theorem 7 removes that
factor: :class:`BufferedSlidingQMax` funnels arrivals through a single
front q-MAX covering the current finest block and, on each finest-block
boundary, forwards only that block's top q into the hierarchy.  Because
"top-q of a union" equals "top-q of the union of per-part top-q's",
coarser blocks built from forwarded items answer exactly like blocks
built from the raw stream.
"""

from __future__ import annotations

import math
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from repro.core.interface import QMaxBase
from repro.core.sliding import default_block_factory
from repro.errors import ConfigurationError
from repro.types import Item, ItemId, TopItems, Value


class _Level:
    """One level: a cyclic buffer of per-block q-MAX instances."""

    __slots__ = ("block_size", "n_blocks", "blocks")

    def __init__(
        self,
        block_size: int,
        n_blocks: int,
        factory: Callable[[int], QMaxBase],
        q: int,
    ) -> None:
        self.block_size = block_size
        self.n_blocks = n_blocks
        self.blocks: List[QMaxBase] = [factory(q) for _ in range(n_blocks)]

    def slot(self, block_start: int) -> QMaxBase:
        """The buffer slot holding the block starting at ``block_start``."""
        return self.blocks[(block_start // self.block_size) % self.n_blocks]


class HierarchicalSlidingQMax(QMaxBase):
    """Multi-level slack-window q-MAX (Algorithm 4).

    Parameters
    ----------
    q, window, tau:
        As in :class:`~repro.core.sliding.SlidingQMax`.
    levels:
        The paper's ``c``: number of levels.  ``c = 1`` degenerates to
        Algorithm 3; larger ``c`` trades update time (O(c)) for query
        time (O(q·c·τ^(-1/c))).
    block_factory:
        Builds one q-MAX per block (receives ``q``).
    """

    __slots__ = ("q", "window", "tau", "c", "_levels", "_t",
                 "_finest", "_result_factory")

    def __init__(
        self,
        q: int,
        window: int,
        tau: float,
        levels: int = 2,
        block_factory: Callable[[int], QMaxBase] = default_block_factory,
    ) -> None:
        if q < 1:
            raise ConfigurationError(f"q must be >= 1, got {q}")
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        if not 0.0 < tau <= 1.0:
            raise ConfigurationError(f"tau must be in (0, 1], got {tau}")
        if levels < 1:
            raise ConfigurationError(f"levels must be >= 1, got {levels}")
        self.q = q
        self.window = window
        self.tau = tau
        self.c = levels
        self._result_factory = block_factory

        # Geometric block sizes: finest = ceil(W·τ); each coarser level
        # multiplies by r = ceil(τ^(-1/c)).  Coarser block sizes are
        # exact multiples of finer ones so boundaries align.
        finest = max(1, math.ceil(window * tau))
        ratio = max(2, math.ceil((1.0 / tau) ** (1.0 / levels)))
        self._levels: List[_Level] = []
        size = finest
        for _ in range(levels):
            if size >= window:
                break
            n_blocks = math.ceil(window / size) + 1
            self._levels.append(_Level(size, n_blocks, block_factory, q))
            size *= ratio
        if not self._levels:
            # Window so small a single finest block covers it.
            self._levels.append(_Level(finest, 2, block_factory, q))
        self._finest = self._levels[0]
        self._t = 0

    # ------------------------------------------------------------------
    # Updates.
    # ------------------------------------------------------------------

    def add(self, item_id: ItemId, val: Value) -> None:
        """O(c): insert into the current block of every level."""
        t = self._t
        for level in self._levels:
            if t % level.block_size == 0:
                level.slot(t).reset()  # recycle the expired slot
            level.slot(t).add(item_id, val)
        self._t = t + 1

    def add_many(self, ids: Sequence[ItemId], vals: Sequence[Value]) -> None:
        """Batch update: chunk to finest-block boundaries.

        Coarser block sizes are exact multiples of the finest, so no
        level's reset point or slot rotation falls strictly inside a
        chunk — resets happen only at chunk starts, exactly as the
        item-at-a-time loop would schedule them.
        """
        n = len(ids)
        if n != len(vals):
            raise ConfigurationError(
                f"batch length mismatch: {n} ids vs {len(vals)} vals"
            )
        fs = self._finest.block_size
        t = self._t
        pos = 0
        while pos < n:
            take = fs - t % fs
            if take > n - pos:
                take = n - pos
            chunk_ids = ids[pos : pos + take]
            chunk_vals = vals[pos : pos + take]
            for level in self._levels:
                if t % level.block_size == 0:
                    level.slot(t).reset()
                level.slot(t).add_many(chunk_ids, chunk_vals)
            t += take
            pos += take
        self._t = t

    # ------------------------------------------------------------------
    # Queries: greedy disjoint cover, coarsest-first.
    # ------------------------------------------------------------------

    def _cover(
        self, p: Optional[int] = None, t_true: Optional[int] = None
    ) -> List[Tuple[int, QMaxBase]]:
        """Choose disjoint complete blocks covering a valid slack window.

        Returns ``(start, block)`` pairs whose ranges tile a contiguous
        suffix ``[o, p)`` of the *completed* stream positions; callers
        prepend whatever covers ``[p, t_true)`` (the partial finest
        block here, the front buffer in the Theorem-7 variant).  The
        combined suffix length lies in ``[W(1-τ), W]`` up to block-size
        rounding.
        """
        t = self._t if t_true is None else t_true
        finest_size = self._finest.block_size
        if p is None:
            p = t - (t % finest_size)  # partial finest block covers [p, t)
        oldest_allowed = max(0, t - self.window)
        target = max(0, t - self.window + math.ceil(self.window * self.tau))
        chosen: List[Tuple[int, QMaxBase]] = []
        while p > target:
            picked = None
            for level in reversed(self._levels):  # coarsest first
                size = level.block_size
                start = p - size
                if p % size != 0 or start < oldest_allowed:
                    continue
                # The block [start, p) must be complete (p <= position
                # where its slot was last reset + size) — guaranteed by
                # alignment: its slot was reset at `start` and has since
                # received exactly the items [start, min(t, p)) = all.
                picked = (start, level.slot(start))
                break
            if picked is None:
                break  # cannot extend without violating the W bound
            chosen.append(picked)
            p = picked[0]
        return chosen

    def query(self) -> TopItems:
        """Top q over a slack window (Theorem 6)."""
        result = self._result_factory(self.q)
        t = self._t
        finest = self._finest
        if t % finest.block_size != 0 or t == 0:
            # Current partial finest block (may be empty right at start).
            for item_id, val in finest.slot(t).query():
                result.add(item_id, val)
        for _, block in self._cover():
            for item_id, val in block.query():
                result.add(item_id, val)
        return result.query()

    def items(self) -> Iterator[Item]:
        # Finest level alone already holds every live item.
        t = self._t
        finest = self._finest
        if t % finest.block_size != 0 or t == 0:
            yield from finest.slot(t).items()
        for _, block in self._cover():
            yield from block.items()

    def reset(self) -> None:
        for level in self._levels:
            for block in level.blocks:
                block.reset()
        self._t = 0

    @property
    def name(self) -> str:
        return f"hier-sliding-qmax(tau={self.tau:g},c={self.c})"


class BufferedSlidingQMax(QMaxBase):
    """Theorem 7: constant-time updates with fast queries.

    A single front q-MAX absorbs the stream; every ``W·τ`` items (one
    finest block) its top q are forwarded into a
    :class:`HierarchicalSlidingQMax` whose "items" are those per-block
    representatives.  Updates cost O(1) amortized plus O(q·c) once per
    block — o(1) amortized per item when ``W = Ω(q·τ⁻¹·log τ⁻¹)``.
    """

    __slots__ = ("q", "window", "tau", "_front", "_hier", "_in_block",
                 "_block_items")

    def __init__(
        self,
        q: int,
        window: int,
        tau: float,
        levels: int = 2,
        block_factory: Callable[[int], QMaxBase] = default_block_factory,
    ) -> None:
        self.q = q
        self.window = window
        self.tau = tau
        self._hier = HierarchicalSlidingQMax(
            q, window, tau, levels=levels, block_factory=block_factory
        )
        self._block_items = self._hier._finest.block_size
        self._front = block_factory(q)
        self._in_block = 0

    def add(self, item_id: ItemId, val: Value) -> None:
        """O(1) amortized: update the front buffer only."""
        self._front.add(item_id, val)
        self._in_block += 1
        if self._in_block == self._block_items:
            self._forward_block()

    def add_many(self, ids: Sequence[ItemId], vals: Sequence[Value]) -> None:
        """Batch update: fill the front buffer in block-sized chunks,
        forwarding representatives at each finest-block boundary."""
        n = len(ids)
        if n != len(vals):
            raise ConfigurationError(
                f"batch length mismatch: {n} ids vs {len(vals)} vals"
            )
        front = self._front
        block_items = self._block_items
        pos = 0
        while pos < n:
            take = block_items - self._in_block
            if take > n - pos:
                take = n - pos
            front.add_many(ids[pos : pos + take], vals[pos : pos + take])
            self._in_block += take
            pos += take
            if self._in_block == block_items:
                self._forward_block()

    def _forward_block(self) -> None:
        """Flush the finished block's top q into every level."""
        top = self._front.query()
        hier = self._hier
        # Advance the hierarchy's clock by one finest block, feeding the
        # representatives; pad the clock so block boundaries line up.
        base = hier._t
        for offset in range(self._block_items):
            t = base + offset
            for level in hier._levels:
                if t % level.block_size == 0:
                    level.slot(t).reset()
            if offset < len(top):
                item_id, val = top[offset]
                for level in hier._levels:
                    level.slot(t).add(item_id, val)
        hier._t = base + self._block_items
        self._front.reset()
        self._in_block = 0

    def query(self) -> TopItems:
        """Top q over a slack window (Theorem 7)."""
        result = self._hier._result_factory(self.q)
        for item_id, val in self._front.query():
            result.add(item_id, val)
        for _, block in self._hier._cover(
            p=self._hier._t, t_true=self._hier._t + self._in_block
        ):
            for item_id, val in block.query():
                result.add(item_id, val)
        return result.query()

    def items(self) -> Iterator[Item]:
        yield from self._front.items()
        for _, block in self._hier._cover(
            p=self._hier._t, t_true=self._hier._t + self._in_block
        ):
            yield from block.items()

    def reset(self) -> None:
        self._front.reset()
        self._hier.reset()
        self._in_block = 0

    @property
    def name(self) -> str:
        return (
            f"buffered-sliding-qmax(tau={self.tau:g},c={self._hier.c})"
        )
