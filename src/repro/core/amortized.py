"""Amortized and vectorised q-MAX variants.

:class:`AmortizedQMax` is the "fill a buffer, then compact" version of
Algorithm 1: identical admission filter and space bound, but the Select
and pivot run in one shot when the buffer fills instead of being spread
over the iteration.  It is the natural ablation of the deamortization
(same amortized cost, bursty worst case) and, in CPython, usually the
faster of the two because it avoids generator dispatch per item.

:class:`VectorQMax` additionally stores values in a NumPy array and
compacts with ``argpartition``; it exposes a batch ``add_batch`` used by
the ablation benchmark to show how far vectorisation pushes the same
algorithmic idea.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

from repro._compat import HAVE_NUMPY, np
from repro.core.interface import QMaxBase
from repro.core.select import partition_top
from repro.errors import ConfigurationError, InvariantError
from repro.types import Item, ItemId, Value

_EMPTY = object()


class AmortizedQMax(QMaxBase):
    """Amortized-maintenance q-MAX (ablation of Algorithm 1).

    Keeps an array of ``q + max(1, ⌈qγ⌉)`` slots.  Admitted items fill
    the free suffix; when it is exhausted, one linear-time maintenance
    pass moves the top-q to the front, evicts the rest, and raises the
    admission threshold ``Ψ`` to the q-th largest value.
    """

    __slots__ = (
        "q",
        "gamma",
        "_cap",
        "_vals",
        "_ids",
        "_fill",
        "_psi",
        "_track_evictions",
        "_evicted",
        "compactions",
        "admitted",
        "rejected",
    )

    def __init__(
        self, q: int, gamma: float = 0.25, track_evictions: bool = False
    ) -> None:
        if q < 1:
            raise ConfigurationError(f"q must be >= 1, got {q}")
        if gamma <= 0:
            raise ConfigurationError(f"gamma must be > 0, got {gamma}")
        self.q = q
        self.gamma = gamma
        self._cap = q + max(1, int(q * gamma + 0.999999))
        self._track_evictions = track_evictions
        self.reset()

    def reset(self) -> None:
        self._vals: List[Value] = [float("-inf")] * self._cap
        self._ids: List[ItemId] = [_EMPTY] * self._cap
        self._fill = 0
        self._psi: Value = float("-inf")
        self._evicted: List[Item] = []
        self.compactions = 0
        self.admitted = 0
        self.rejected = 0

    def add(self, item_id: ItemId, val: Value) -> None:
        if val <= self._psi:
            self.rejected += 1
            if self._track_evictions:
                self._evicted.append((item_id, val))
            return
        pos = self._fill
        self._vals[pos] = val
        self._ids[pos] = item_id
        self._fill = pos + 1
        self.admitted += 1
        if self._fill == self._cap:
            self._compact()

    def add_many(self, ids: Sequence[ItemId], vals: Sequence[Value]) -> None:
        """Batch update; Ψ and the fill cursor are constant between
        compactions, so the batch is consumed in free-suffix-sized
        chunks with all per-item attribute lookups hoisted."""
        n = len(ids)
        if n != len(vals):
            raise ConfigurationError(
                f"batch length mismatch: {n} ids vs {len(vals)} vals"
            )
        vals_a = self._vals
        ids_a = self._ids
        cap = self._cap
        track = self._track_evictions
        evicted = self._evicted
        admitted = 0
        i = 0
        while i < n:
            psi = self._psi
            fill = self._fill
            room = cap - fill
            while i < n:
                val = vals[i]
                if val <= psi:
                    if track:
                        evicted.append((ids[i], val))
                    i += 1
                    continue
                vals_a[fill] = val
                ids_a[fill] = ids[i]
                fill += 1
                admitted += 1
                i += 1
                room -= 1
                if not room:
                    break
            self._fill = fill
            if not room:
                self._compact()
        self.admitted += admitted
        self.rejected += n - admitted

    def _compact(self) -> None:
        """One-shot maintenance: select, pivot, evict the non-top-q."""
        self._psi = partition_top(
            self._vals, self._ids, 0, self._fill, self.q, side="left"
        )
        if self._track_evictions:
            vals, ids = self._vals, self._ids
            for i in range(self.q, self._fill):
                if ids[i] is not _EMPTY:
                    self._evicted.append((ids[i], vals[i]))
        self._fill = self.q
        self.compactions += 1

    def items(self) -> Iterator[Item]:
        vals, ids = self._vals, self._ids
        for i in range(self._fill):
            if ids[i] is not _EMPTY:
                yield ids[i], vals[i]

    def take_evicted(self) -> List[Item]:
        evicted, self._evicted = self._evicted, []
        return evicted

    def flush(self) -> None:
        """Run maintenance now (compacts the live set to exactly top-q).

        Exposed for the sorting reduction (Algorithm 2), which needs to
        synchronise eviction batches with its probe insertions.
        """
        if self._fill > self.q:
            self._compact()

    @property
    def space_slots(self) -> int:
        return self._cap

    @property
    def name(self) -> str:
        return f"qmax-amortized(gamma={self.gamma:g})"

    def check_invariants(self) -> None:
        if not 0 <= self._fill <= self._cap:
            raise InvariantError(f"fill {self._fill} out of range")
        live = [v for _, v in self.items()]
        if self._psi != float("-inf"):
            at_least = sum(1 for v in live if v >= self._psi)
            if at_least < min(self.q, len(live)):
                raise InvariantError("psi exceeds the q-th largest live value")


class VectorQMax(QMaxBase):
    """NumPy-backed q-MAX with batch ingestion.

    Values live in a ``float64`` array and ids in an object array;
    maintenance uses ``np.argpartition`` (introselect — the same
    linear-time selection idea as Algorithm 1's Select, executed in C).
    ``add`` works item-at-a-time for interface compatibility, but the
    intended use is :meth:`add_batch`, which filters an entire chunk
    against ``Ψ`` with one vectorised comparison.
    """

    __slots__ = ("q", "gamma", "_cap", "_vals", "_ids", "_fill", "_psi",
                 "compactions", "admitted", "rejected")

    def __init__(self, q: int, gamma: float = 0.25) -> None:
        if not HAVE_NUMPY:
            raise ConfigurationError(
                "VectorQMax requires numpy (pip install .[fast])"
            )
        if q < 1:
            raise ConfigurationError(f"q must be >= 1, got {q}")
        if gamma <= 0:
            raise ConfigurationError(f"gamma must be > 0, got {gamma}")
        self.q = q
        self.gamma = gamma
        self._cap = q + max(1, int(q * gamma + 0.999999))
        self.reset()

    def reset(self) -> None:
        self._vals = np.full(self._cap, -np.inf, dtype=np.float64)
        self._ids = np.empty(self._cap, dtype=object)
        self._fill = 0
        self._psi = -np.inf
        self.compactions = 0
        self.admitted = 0
        self.rejected = 0

    def add(self, item_id: ItemId, val: Value) -> None:
        if val <= self._psi:
            self.rejected += 1
            return
        self._vals[self._fill] = val
        self._ids[self._fill] = item_id
        self._fill += 1
        self.admitted += 1
        if self._fill == self._cap:
            self._compact()

    def add_many(self, ids: Sequence[ItemId], vals: Sequence[Value]) -> None:
        """Uniform batch entry point; delegates to :meth:`add_batch`."""
        self.add_batch(ids, vals)

    def add_batch(
        self, item_ids: Sequence[ItemId], vals: "np.ndarray"
    ) -> None:
        """Admit a whole chunk of items with vectorised filtering."""
        vals = np.asarray(vals, dtype=np.float64)
        ids_arr = np.asarray(item_ids, dtype=object)
        if vals.shape != ids_arr.shape:
            raise ConfigurationError("ids and vals must have equal length")
        keep = vals > self._psi
        vals = vals[keep]
        ids_arr = ids_arr[keep]
        self.rejected += int(keep.size - vals.size)
        start = 0
        while start < vals.size:
            room = self._cap - self._fill
            take = min(room, vals.size - start)
            end = self._fill + take
            self._vals[self._fill:end] = vals[start:start + take]
            self._ids[self._fill:end] = ids_arr[start:start + take]
            self._fill = end
            self.admitted += take
            start += take
            if self._fill == self._cap:
                self._compact()
                # Re-filter the remainder against the tightened threshold.
                if start < vals.size:
                    keep = vals[start:] > self._psi
                    tail_vals = vals[start:][keep]
                    tail_ids = ids_arr[start:][keep]
                    self.rejected += int(keep.size - tail_vals.size)
                    vals, ids_arr, start = tail_vals, tail_ids, 0

    def _compact(self) -> None:
        # argpartition puts the q largest at the end; move them to front.
        order = np.argpartition(self._vals[: self._fill], self._fill - self.q)
        top = order[self._fill - self.q:]
        self._vals[: self.q] = self._vals[top]
        self._ids[: self.q] = self._ids[top]
        self._fill = self.q
        self._psi = float(self._vals[: self.q].min())
        self.compactions += 1

    def items(self) -> Iterator[Item]:
        for i in range(self._fill):
            if self._ids[i] is not None:
                yield self._ids[i], float(self._vals[i])

    @property
    def space_slots(self) -> int:
        return self._cap

    @property
    def name(self) -> str:
        return f"qmax-numpy(gamma={self.gamma:g})"
