"""q-MIN: maintain the q *smallest* values, via value negation.

Several applications need minima rather than maxima: KMV distinct
counting and bottom-k sketches keep the q smallest hash values, and the
network-wide heavy hitters NMPs keep the q packets with minimal hash.
Rather than duplicating every algorithm, :class:`QMin` adapts any
:class:`~repro.core.interface.QMaxBase` by negating values on the way in
and out.
"""

from __future__ import annotations

import heapq
from operator import itemgetter
from typing import Callable, Iterator, List, Sequence

from repro.core.interface import QMaxBase
from repro.core.qmax import QMax
from repro.types import Item, ItemId, TopItems, Value


class QMin(QMaxBase):
    """Maintains the q items with the *smallest* values.

    Parameters
    ----------
    q:
        Number of minimal items to maintain.
    backend:
        Factory producing the underlying q-MAX structure; defaults to
        :class:`~repro.core.qmax.QMax` with its default ``gamma``.
    """

    __slots__ = ("q", "_inner")

    def __init__(
        self,
        q: int,
        backend: Callable[[int], QMaxBase] = QMax,
    ) -> None:
        self.q = q
        self._inner = backend(q)

    def add(self, item_id: ItemId, val: Value) -> None:
        self._inner.add(item_id, -val)

    def add_many(self, ids: Sequence[ItemId], vals: Sequence[Value]) -> None:
        """Batch update: negate once, then ride the backend's fast path."""
        self._inner.add_many(ids, [-v for v in vals])

    def items(self) -> Iterator[Item]:
        for item_id, neg_val in self._inner.items():
            yield item_id, -neg_val

    def query(self) -> TopItems:
        """The q smallest items, sorted ascending by value."""
        return heapq.nsmallest(self.q, self.items(), key=itemgetter(1))

    def reset(self) -> None:
        self._inner.reset()

    def take_evicted(self) -> List[Item]:
        return [(i, -v) for i, v in self._inner.take_evicted()]

    def check_invariants(self) -> None:
        self._inner.check_invariants()

    @property
    def name(self) -> str:
        return f"qmin[{self._inner.name}]"

    @property
    def inner(self) -> QMaxBase:
        """The wrapped q-MAX structure (for instrumentation)."""
        return self._inner
