"""Algorithm 3: ``Basic-(q, W, τ)-max`` — q-MAX over slack windows.

An *exact* sliding-window q-MAX needs Ω(W) space even for q = 1
(§4.3.1), so the paper relaxes the window: a ``(W, τ)``-slack window is
a suffix of the stream whose length varies between ``W(1-τ)`` and ``W``.

The basic algorithm partitions the stream into consecutive blocks of
``s = W·τ`` items and keeps one q-MAX instance per block in a cyclic
buffer of ``n = ⌈1/τ⌉`` slots.  Each arrival updates only its block's
instance (O(1) update); when a block boundary is crossed, the oldest
instance is reset and becomes the new current block.  A query merges the
top-q of every retained block (O(q·τ⁻¹) time, Theorem 5).
"""

from __future__ import annotations

import math
from typing import Callable, Iterator, List, Sequence

from repro.core.amortized import AmortizedQMax
from repro.core.interface import QMaxBase
from repro.errors import ConfigurationError
from repro.types import Item, ItemId, TopItems, Value


def default_block_factory(q: int) -> QMaxBase:
    """Default per-block structure: an amortized q-MAX with γ = 0.25."""
    return AmortizedQMax(q, gamma=0.25)


class SlidingQMax(QMaxBase):
    """q-MAX over a count-based ``(W, τ)``-slack window (Algorithm 3).

    Parameters
    ----------
    q:
        Number of maximal items to report.
    window:
        The paper's ``W``: the maximal window size in items.
    tau:
        Slack parameter in ``(0, 1]``; the reported top-q refers to the
        last ``W'`` items for some ``W(1-τ) <= W' <= W``.
    block_factory:
        Builds one q-MAX per block (receives ``q``).
    """

    __slots__ = ("q", "window", "tau", "_n_blocks", "_block_size",
                 "_blocks", "_i", "_result_factory")

    def __init__(
        self,
        q: int,
        window: int,
        tau: float,
        block_factory: Callable[[int], QMaxBase] = default_block_factory,
    ) -> None:
        if q < 1:
            raise ConfigurationError(f"q must be >= 1, got {q}")
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        if not 0.0 < tau <= 1.0:
            raise ConfigurationError(f"tau must be in (0, 1], got {tau}")
        self.q = q
        self.window = window
        self.tau = tau
        self._n_blocks = max(1, math.ceil(1.0 / tau))
        self._block_size = max(1, math.ceil(window / self._n_blocks))
        self._blocks: List[QMaxBase] = [
            block_factory(q) for _ in range(self._n_blocks)
        ]
        self._result_factory = block_factory
        self._i = 0

    # ------------------------------------------------------------------
    # Updates (Algorithm 3, ADD).
    # ------------------------------------------------------------------

    def add(self, item_id: ItemId, val: Value) -> None:
        """O(1): update the current block's q-MAX, rotating on boundary."""
        i = self._i
        self._blocks[i // self._block_size].add(item_id, val)
        i += 1
        if i >= self._n_blocks * self._block_size:
            i = 0
        if i % self._block_size == 0:
            # The block about to receive items is the oldest: reset it.
            self._blocks[i // self._block_size].reset()
        self._i = i

    def add_many(self, ids: Sequence[ItemId], vals: Sequence[Value]) -> None:
        """Batch update: split at block boundaries, delegate each run to
        the owning block's ``add_many`` so its fast path engages."""
        n = len(ids)
        if n != len(vals):
            raise ConfigurationError(
                f"batch length mismatch: {n} ids vs {len(vals)} vals"
            )
        blocks = self._blocks
        bs = self._block_size
        total = self._n_blocks * bs
        i = self._i
        pos = 0
        while pos < n:
            take = bs - i % bs
            if take > n - pos:
                take = n - pos
            blocks[i // bs].add_many(
                ids[pos : pos + take], vals[pos : pos + take]
            )
            pos += take
            i += take
            if i >= total:
                i = 0
            if i % bs == 0:
                blocks[i // bs].reset()
        self._i = i

    # ------------------------------------------------------------------
    # Queries (Algorithm 3, QUERY / PARTIAL / MERGE).
    # ------------------------------------------------------------------

    def partial(self, first: int, last: int) -> QMaxBase:
        """Merge blocks ``first..last`` (cyclic, inclusive) into a fresh
        result q-MAX and return it (the paper's PARTIAL procedure)."""
        result = self._result_factory(self.q)
        j = first % self._n_blocks
        while True:
            for item_id, val in self._blocks[j].query():
                result.add(item_id, val)
            if j == last % self._n_blocks:
                break
            j = (j + 1) % self._n_blocks
        return result

    def query(self) -> TopItems:
        """Top q over the slack window: merge all blocks (Theorem 5)."""
        return self.partial(0, self._n_blocks - 1).query()

    def items(self) -> Iterator[Item]:
        for block in self._blocks:
            yield from block.items()

    def reset(self) -> None:
        for block in self._blocks:
            block.reset()
        self._i = 0

    @property
    def n_blocks(self) -> int:
        """Number of block instances (the paper's ``n = τ⁻¹``)."""
        return self._n_blocks

    @property
    def block_size(self) -> int:
        """Items per block (the paper's ``s = W/n``)."""
        return self._block_size

    @property
    def name(self) -> str:
        return f"sliding-qmax(tau={self.tau:g})"
