"""q-MAX with duplicate-key merging (§5.1's LRFU machinery, generalized).

Plain q-MAX assumes each id appears once.  LRFU (§5.1) and
Priority-Based Aggregation break that assumption: the same key arrives
repeatedly and its entries must be *aggregated*.  The paper's solution
inserts every arrival as its own entry and merges duplicates during the
periodic maintenance, keeping updates constant-time.

:class:`MergingQMax` implements that scheme with a caller-supplied
commutative/associative ``merge(v1, v2) -> v`` (log-sum-exp for LRFU,
``max`` for PBA where per-key values are monotone increasing).  A
reference-count dict gives O(1) membership tests — exactly what a cache
needs to classify hits vs. misses.

Deviation note (DESIGN.md §5): the paper also describes a deamortized
three-part iteration (Figure 3) with worst-case constant time.  This
class implements the amortized variant (merge + select + pivot run in
one shot when the buffer fills); the amortized cost matches, and the
benchmark suite measures this implementation.
"""

from __future__ import annotations

import heapq
from operator import itemgetter
from typing import Callable, Dict, Iterator, List

from repro.core.interface import QMaxBase
from repro.core.select import partition_top
from repro.errors import ConfigurationError, InvariantError
from repro.types import Item, ItemId, TopItems, Value

_EMPTY = object()


class MergingQMax(QMaxBase):
    """Maintain the q largest *aggregated* values of a keyed stream.

    Parameters
    ----------
    q:
        Number of maximal keys to maintain.
    gamma:
        Space overhead: the entry buffer holds ``q + max(1, ⌈qγ⌉)``
        entries; maintenance runs when it fills.
    merge:
        Commutative, associative function combining two values of the
        same key into one.
    track_evictions:
        Record keys whose last entry is discarded (drained with
        :meth:`take_evicted`) — a cache uses this to invalidate lines.
    """

    __slots__ = (
        "q",
        "gamma",
        "_cap",
        "_vals",
        "_ids",
        "_fill",
        "_merge",
        "_refcount",
        "_track_evictions",
        "_evicted",
        "compactions",
    )

    def __init__(
        self,
        q: int,
        gamma: float = 0.25,
        merge: Callable[[Value, Value], Value] = max,
        track_evictions: bool = False,
    ) -> None:
        if q < 1:
            raise ConfigurationError(f"q must be >= 1, got {q}")
        if gamma <= 0:
            raise ConfigurationError(f"gamma must be > 0, got {gamma}")
        self.q = q
        self.gamma = gamma
        self._cap = q + max(1, int(q * gamma + 0.999999))
        self._merge = merge
        self._track_evictions = track_evictions
        self.reset()

    def reset(self) -> None:
        self._vals: List[Value] = [float("-inf")] * self._cap
        self._ids: List[ItemId] = [_EMPTY] * self._cap
        self._fill = 0
        self._refcount: Dict[ItemId, int] = {}
        self._evicted: List[Item] = []
        self.compactions = 0

    def __contains__(self, item_id: ItemId) -> bool:
        """O(1): does ``item_id`` currently have at least one live entry?"""
        return item_id in self._refcount

    def __len__(self) -> int:
        """Number of distinct live keys."""
        return len(self._refcount)

    def add(self, item_id: ItemId, val: Value) -> None:
        """Record an arrival; duplicates of a key are merged lazily.

        Unlike plain q-MAX there is no admission filter: a duplicate
        arrival below the current threshold may still lift its key into
        the top q after merging, so every arrival must be recorded.
        """
        pos = self._fill
        self._vals[pos] = val
        self._ids[pos] = item_id
        self._fill = pos + 1
        self._refcount[item_id] = self._refcount.get(item_id, 0) + 1
        if self._fill == self._cap:
            self._maintain()

    def _maintain(self) -> None:
        """Merge duplicate keys, then keep only the top q (if needed)."""
        vals, ids = self._vals, self._ids
        merged_at: Dict[ItemId, int] = {}
        merge = self._merge
        write = 0
        for read in range(self._fill):
            key = ids[read]
            slot = merged_at.get(key)
            if slot is None:
                merged_at[key] = write
                vals[write] = vals[read]
                ids[write] = key
                write += 1
            else:
                vals[slot] = merge(vals[slot], vals[read])
        self._fill = write
        self._refcount = dict.fromkeys(merged_at, 1)

        if self._fill > self.q:
            partition_top(vals, ids, 0, self._fill, self.q, side="left")
            for i in range(self.q, self._fill):
                key = ids[i]
                del self._refcount[key]
                if self._track_evictions:
                    self._evicted.append((key, vals[i]))
            self._fill = self.q
        self.compactions += 1

    def flush(self) -> None:
        """Run maintenance now (merges duplicates, trims to top q)."""
        if self._fill:
            self._maintain()

    def items(self) -> Iterator[Item]:
        """Live keys with their *merged* values (computed on the fly)."""
        vals, ids = self._vals, self._ids
        merged: Dict[ItemId, Value] = {}
        merge = self._merge
        for i in range(self._fill):
            key = ids[i]
            if key in merged:
                merged[key] = merge(merged[key], vals[i])
            else:
                merged[key] = vals[i]
        return iter(merged.items())

    def query(self) -> TopItems:
        """Top q keys by merged value, sorted descending."""
        return heapq.nlargest(self.q, self.items(), key=itemgetter(1))

    def take_evicted(self) -> List[Item]:
        evicted, self._evicted = self._evicted, []
        return evicted

    @property
    def space_slots(self) -> int:
        return self._cap

    @property
    def name(self) -> str:
        return f"merging-qmax(gamma={self.gamma:g})"

    def check_invariants(self) -> None:
        counts: Dict[ItemId, int] = {}
        for i in range(self._fill):
            counts[self._ids[i]] = counts.get(self._ids[i], 0) + 1
        if counts != self._refcount:
            raise InvariantError("refcount map out of sync with entries")
        if self._fill > self._cap:
            raise InvariantError("fill exceeds capacity")
