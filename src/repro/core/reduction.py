"""Algorithm 2: integer sorting through a q-MAX solution.

The paper's lower bound (Theorem 3) shows that a q-MAX algorithm with
``q + Ψ`` space and ``O(φ)`` update time yields an integer-sorting
algorithm running in ``O(nΨφ)`` — so a too-good q-MAX would improve the
state of the art in integer sorting.  This module makes the reduction
*executable*: it really sorts through the q-MAX eviction interface,
which doubles as a strong end-to-end correctness test of the eviction
semantics.

The construction: feed each of the ``n`` values ``Ψ`` times into a
``q = nΨ`` structure, then push ``Ψ`` copies of a value larger than
everything; each such group displaces the ``Ψ`` smallest remaining
copies — all of one value, the next element of the sorted order.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from repro.core.amortized import AmortizedQMax
from repro.core.interface import QMaxBase
from repro.errors import ConfigurationError, InvariantError
from repro.types import Value


def _default_factory(q: int) -> QMaxBase:
    return AmortizedQMax(q, gamma=0.25, track_evictions=True)


def sort_via_qmax(
    values: Sequence[Value],
    space_overhead: int = 2,
    factory: Callable[[int], QMaxBase] = _default_factory,
) -> List[Value]:
    """Sort ``values`` ascending using only a q-MAX structure.

    Parameters
    ----------
    values:
        The numbers to sort (any totally ordered numerics; the paper
        states it for integers but nothing requires that).
    space_overhead:
        The reduction's ``Ψ`` — how many copies of each value are fed
        in.  Any value ``>= 1`` works; larger values exercise the
        batched-eviction path more heavily.
    factory:
        Builds the q-MAX instance for ``q = n·Ψ``.  The structure must
        track evictions (items must be drainable via ``take_evicted``)
        and expose ``flush()`` if it batches maintenance (as
        :class:`~repro.core.amortized.AmortizedQMax` does).
    """
    if space_overhead < 1:
        raise ConfigurationError(
            f"space_overhead must be >= 1, got {space_overhead}"
        )
    n = len(values)
    if n == 0:
        return []

    psi = space_overhead
    qmax = factory(n * psi)
    for index, value in enumerate(values):
        for _ in range(psi):
            qmax.add(("orig", index), value)
    # Nothing may have been evicted during the feed: q = nΨ items fit.
    stray = qmax.take_evicted()
    if stray:
        raise InvariantError(
            f"reduction fed q items but {len(stray)} were evicted"
        )

    sentinel = max(values) + 1
    result: List[Value] = []
    flush = getattr(qmax, "flush", lambda: None)
    for probe in range(n):
        for j in range(psi):
            qmax.add(("probe", probe, j), sentinel)
        flush()
        batch = qmax.take_evicted()
        if len(batch) != psi:
            raise InvariantError(
                f"probe group {probe} evicted {len(batch)} items, "
                f"expected {psi}"
            )
        batch_values = {v for _, v in batch}
        if len(batch_values) != 1:
            raise InvariantError(
                f"probe group {probe} evicted mixed values {batch_values}"
            )
        result.append(batch_values.pop())
    return result
