"""Core q-MAX algorithms — the paper's primary contribution.

Exports the interval algorithm (Algorithm 1) and its amortized /
vectorised variants, the sliding-window algorithms (Algorithms 3 and 4,
Theorem 7), the exponential-decay reduction (§5), the duplicate-merging
variant used by LRFU and PBA, and the sorting reduction (Algorithm 2).
"""

from repro.core.interface import QMaxBase
from repro.core.qmax import QMax
from repro.core.amortized import AmortizedQMax, VectorQMax
from repro.core.merging import MergingQMax
from repro.core.qmin import QMin
from repro.core.sliding import SlidingQMax
from repro.core.time_sliding import TimeSlidingQMax
from repro.core.time_hierarchical import TimeHierarchicalSlidingQMax
from repro.core.hierarchical import BufferedSlidingQMax, HierarchicalSlidingQMax
from repro.core.exponential_decay import ExponentialDecayQMax
from repro.core.reduction import sort_via_qmax

__all__ = [
    "QMaxBase",
    "QMax",
    "AmortizedQMax",
    "VectorQMax",
    "MergingQMax",
    "QMin",
    "SlidingQMax",
    "TimeSlidingQMax",
    "TimeHierarchicalSlidingQMax",
    "HierarchicalSlidingQMax",
    "BufferedSlidingQMax",
    "ExponentialDecayQMax",
    "sort_via_qmax",
]
