"""The q-MAX interface (§4.1 of the paper).

A q-MAX structure processes a stream of ``(id, value)`` items and, upon
query, lists the ``q`` items with the largest values.  The interface is
deliberately *weaker* than a priority queue — that weakness is exactly
what lets Algorithm 1 beat the logarithmic lower bound of
comparison-based structures:

* ``add`` need not tell the caller immediately which item was displaced
  (evictions may be batched; drain them with :meth:`take_evicted`),
* ``query`` may be slow relative to ``add`` (it is called rarely).

All structures in :mod:`repro.core` and :mod:`repro.baselines` implement
this ABC so that applications and benchmarks can swap backends freely,
mirroring how the paper replaces Heap/SkipList with q-MAX inside each
application without touching the application logic.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from operator import itemgetter
from typing import Iterable, Iterator, List, Sequence

from repro.errors import ConfigurationError
from repro.types import Item, ItemId, TopItems, Value

#: Sort key extracting the value from an ``(id, value)`` item.
_BY_VALUE = itemgetter(1)


class QMaxBase(ABC):
    """Abstract base class for structures maintaining the q largest items."""

    #: Number of maximal items the structure maintains.
    q: int

    @abstractmethod
    def add(self, item_id: ItemId, val: Value) -> None:
        """Process one stream item.

        This is the hot path; implementations keep it allocation-light.
        """

    @abstractmethod
    def items(self) -> Iterator[Item]:
        """Iterate over all *live* items currently retained.

        The live set is a superset of the top-q (of size at most the
        structure's space bound).  Order is unspecified.
        """

    @abstractmethod
    def reset(self) -> None:
        """Forget all state, as if freshly constructed.

        Used by the sliding-window block buffer (Algorithm 3), which
        recycles q-MAX instances instead of reallocating them.
        """

    def query(self) -> TopItems:
        """Return the q items with the largest values, sorted descending.

        Ties at the q-th value are broken arbitrarily.  If fewer than q
        items were added, all of them are returned.
        """
        return heapq.nlargest(self.q, self.items(), key=_BY_VALUE)

    def add_many(self, ids: Sequence[ItemId], vals: Sequence[Value]) -> None:
        """Process a batch of stream items.

        Semantically identical to ``for i, v in zip(ids, vals): add(i, v)``
        — same retained set, same multiset of evictions — but
        implementations may (and the fast backends do) amortize
        per-item interpreter overhead across the batch: filter the
        whole batch against the admission threshold in one pass,
        bulk-write survivors, and drive deamortized maintenance with a
        budget proportional to the number of admissions.  Values must
        be ordinary comparable floats (NaN is unsupported on the batch
        path).

        The default implementation is a correct, allocation-light loop;
        override it only with a *genuinely* faster path.
        """
        if len(ids) != len(vals):
            raise ConfigurationError(
                f"batch length mismatch: {len(ids)} ids vs {len(vals)} vals"
            )
        add = self.add
        for item_id, val in zip(ids, vals):
            add(item_id, val)

    def add_many_array(self, ids, vals) -> None:
        """Process a batch given as array columns (NumPy or equivalent).

        Semantically identical to :meth:`add_many`; the columns are
        u64-compatible ids and float values, typically structured-array
        fields sliced straight off a shared-memory ring
        (:meth:`repro.parallel.shm_ring.ShmRecordRing.pop_view`).  The
        default implementation converts each column once (a single
        C-level ``tolist``) and delegates; vectorized backends override
        it to ingest the arrays without per-record Python calls.
        """
        self.add_many(
            ids.tolist() if hasattr(ids, "tolist") else list(ids),
            vals.tolist() if hasattr(vals, "tolist") else list(vals),
        )

    def extend(self, stream: Iterable[Item]) -> None:
        """Feed every ``(id, value)`` pair of ``stream`` through ``add``."""
        add = self.add
        for item_id, val in stream:
            add(item_id, val)

    def take_evicted(self) -> List[Item]:
        """Drain and return items evicted since the last drain.

        Only meaningful when the structure was built with eviction
        tracking enabled; the default implementation returns an empty
        list.  An item appears here at most once, after the structure
        has determined it can never be among the top q.

        Ordering is **unspecified**: batched paths (:meth:`add_many`)
        may discover evictions in a different order than item-at-a-time
        processing would, so callers must treat the drained list as a
        multiset.  Within one drain no ordering relation — arrival
        order, value order, or otherwise — is guaranteed.
        """
        return []

    def check_invariants(self) -> None:
        """Verify internal invariants; raise ``InvariantError`` on failure.

        No-op by default.  The test suite calls this after randomized
        operation sequences on implementations that override it.
        """

    @property
    def name(self) -> str:
        """Short human-readable backend name used in benchmark tables."""
        return type(self).__name__

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(q={self.q})"
