"""Step-wise selection and partitioning primitives.

Algorithm 1 deamortizes its maintenance by breaking a linear-time
*Select* (find the value with a given rank) and a linear-time *pivot*
(move the top-q items to one side of the array) into fixed-size chunks,
one chunk per admitted item (``SelectStep()`` / ``PivotStep()`` in the
paper's pseudo-code).

We realize "resumable computation" with Python generators: each
generator performs at most ``ops_per_step`` elementary operations
(comparisons/swaps) between ``yield``\\ s, yielding the number of
operations actually performed, and delivers its final result via
``return`` (i.e. ``StopIteration.value``).  The driver in
:class:`repro.core.qmax.QMax` advances the generator once per admitted
item.

All routines operate *in place* on two parallel lists ``vals`` and
``ids`` (structure-of-arrays layout: value comparisons never touch the
id objects, which keeps the hot loops cheap in CPython).
"""

from __future__ import annotations

from typing import Generator, List, Optional, Tuple

from repro._compat import HAVE_NUMPY, np
from repro.errors import ConfigurationError
from repro.types import ItemId, Value

#: Below this size, quickselect finishes with insertion sort.
_SMALL_CUTOFF = 16

#: Below this region size the ndarray round-trip of the
#: ``np.argpartition`` one-shot path costs more than it saves.
_NP_PARTITION_MIN = 64

#: Default sample size of the sampled-pivot Select (SQUID-style).
_PIVOT_SAMPLE = 9

#: Generator type for step-wise routines: yields op counts, returns a result.
StepwiseResult = Generator[int, None, Value]
StepwiseVoid = Generator[int, None, None]


def _insertion_sort(
    vals: List[Value], ids: List[ItemId], lo: int, hi: int
) -> None:
    """Ascending insertion sort of ``vals[lo:hi)`` with ids in tow."""
    for i in range(lo + 1, hi):
        v, d = vals[i], ids[i]
        j = i - 1
        while j >= lo and vals[j] > v:
            vals[j + 1] = vals[j]
            ids[j + 1] = ids[j]
            j -= 1
        vals[j + 1] = v
        ids[j + 1] = d


def _median_of_three(
    vals: List[Value], ids: List[ItemId], lo: int, mid: int, hi_incl: int
) -> Value:
    """Order ``vals[lo] <= vals[mid] <= vals[hi_incl]`` and return the median."""
    if vals[mid] < vals[lo]:
        vals[lo], vals[mid] = vals[mid], vals[lo]
        ids[lo], ids[mid] = ids[mid], ids[lo]
    if vals[hi_incl] < vals[lo]:
        vals[lo], vals[hi_incl] = vals[hi_incl], vals[lo]
        ids[lo], ids[hi_incl] = ids[hi_incl], ids[lo]
    if vals[hi_incl] < vals[mid]:
        vals[mid], vals[hi_incl] = vals[hi_incl], vals[mid]
        ids[mid], ids[hi_incl] = ids[hi_incl], ids[mid]
    return vals[mid]


def stepwise_select(
    vals: List[Value],
    ids: List[ItemId],
    lo: int,
    hi: int,
    rank: int,
    ops_per_step: int,
) -> StepwiseResult:
    """Resumable quickselect: value of ascending ``rank`` in ``vals[lo:hi)``.

    ``rank`` is 0-indexed within the region (``rank == 0`` is the
    minimum, ``rank == hi - lo - 1`` the maximum).  The region is
    rearranged in place; on completion every element left of the target
    position is ``<=`` the result and everything right of it is ``>=``.

    Yields the number of elementary operations executed since the last
    yield (at most ``ops_per_step`` plus a small constant), and returns
    the selected value.
    """
    if not lo <= lo + rank < hi:
        raise ConfigurationError(
            f"rank {rank} out of range for region [{lo}, {hi})"
        )
    if ops_per_step < 1:
        raise ConfigurationError("ops_per_step must be >= 1")

    target = lo + rank
    left, right = lo, hi - 1
    ops = 0
    while right - left >= _SMALL_CUTOFF:
        mid = (left + right) // 2
        pivot = _median_of_three(vals, ids, left, mid, right)
        # Hoare partition; the median-of-three already placed sentinels
        # at both ends, so the inner loops cannot run off the region.
        i, j = left, right
        while i <= j:
            while vals[i] < pivot:
                i += 1
                ops += 1
                if ops >= ops_per_step:
                    yield ops
                    ops = 0
            while vals[j] > pivot:
                j -= 1
                ops += 1
                if ops >= ops_per_step:
                    yield ops
                    ops = 0
            if i <= j:
                vals[i], vals[j] = vals[j], vals[i]
                ids[i], ids[j] = ids[j], ids[i]
                i += 1
                j -= 1
                ops += 1
                if ops >= ops_per_step:
                    yield ops
                    ops = 0
        if target <= j:
            right = j
        elif target >= i:
            left = i
        else:
            if ops:
                yield ops
            return vals[target]
    _insertion_sort(vals, ids, left, right + 1)
    ops += right + 1 - left
    yield ops
    return vals[target]


def stepwise_partition_top(
    vals: List[Value],
    ids: List[ItemId],
    lo: int,
    hi: int,
    pivot: Value,
    side: str,
    ops_per_step: int,
) -> StepwiseVoid:
    """Resumable three-way (Dutch national flag) partition around ``pivot``.

    After completion, ``vals[lo:hi)`` is arranged as ``[< pivot][== pivot]
    [> pivot]`` when ``side == "right"`` or ``[> pivot][== pivot][< pivot]``
    when ``side == "left"``.

    When ``pivot`` is the q-th largest value of the region (as produced
    by :func:`stepwise_select` with ``rank == (hi - lo) - q``), the top
    q items (counting ties toward the ``== pivot`` block as needed) end
    up occupying exactly the ``q`` slots adjacent to the chosen side —
    this is the "bring the largest q items to the middle of A" pivot of
    Algorithm 1.
    """
    if side not in ("left", "right"):
        raise ConfigurationError(f"side must be 'left' or 'right', got {side!r}")
    if ops_per_step < 1:
        raise ConfigurationError("ops_per_step must be >= 1")

    # big_on_right: classic ascending DNF; otherwise mirror comparisons.
    big_on_right = side == "right"
    lt, i, gt = lo, lo, hi
    ops = 0
    while i < gt:
        v = vals[i]
        low = v < pivot if big_on_right else v > pivot
        high = v > pivot if big_on_right else v < pivot
        if low:
            vals[i], vals[lt] = vals[lt], vals[i]
            ids[i], ids[lt] = ids[lt], ids[i]
            lt += 1
            i += 1
        elif high:
            gt -= 1
            vals[i], vals[gt] = vals[gt], vals[i]
            ids[i], ids[gt] = ids[gt], ids[i]
        else:
            i += 1
        ops += 1
        if ops >= ops_per_step:
            yield ops
            ops = 0
    if ops:
        yield ops
    return None


def _stepwise_dnf(
    vals: List[Value],
    ids: List[ItemId],
    lo: int,
    hi: int,
    pivot: Value,
    ops_per_step: int,
    shared: List[int],
) -> Generator[int, None, Tuple[int, int]]:
    """Resumable ascending three-way partition; returns ``(lt, gt)``
    such that ``vals[lo:lt) < pivot == vals[lt:gt) < vals[gt:hi)``.

    ``shared`` is the single op accumulator threaded through the whole
    BFPRT recursion so the per-yield budget holds globally.
    """
    lt, i, gt = lo, lo, hi
    while i < gt:
        v = vals[i]
        if v < pivot:
            vals[i], vals[lt] = vals[lt], vals[i]
            ids[i], ids[lt] = ids[lt], ids[i]
            lt += 1
            i += 1
        elif v > pivot:
            gt -= 1
            vals[i], vals[gt] = vals[gt], vals[i]
            ids[i], ids[gt] = ids[gt], ids[i]
        else:
            i += 1
        shared[0] += 1
        if shared[0] >= ops_per_step:
            yield shared[0]
            shared[0] = 0
    return lt, gt


def stepwise_select_deterministic(
    vals: List[Value],
    ids: List[ItemId],
    lo: int,
    hi: int,
    rank: int,
    ops_per_step: int,
    _shared: Optional[List[int]] = None,
) -> StepwiseResult:
    """Resumable BFPRT (median-of-medians) selection.

    Same contract as :func:`stepwise_select`, but with a *deterministic*
    linear operation bound — the Select of Blum, Floyd, Pratt, Rivest &
    Tarjan that Theorem 1's worst-case analysis presumes (reference
    [21] of the paper).  Several times more operations than quickselect
    on random data; immune to adversarial inputs.

    ``_shared`` is internal: the op accumulator shared across recursion
    levels, so a single resumption never exceeds the budget no matter
    how deep the median-of-medians recursion goes.
    """
    if not lo <= lo + rank < hi:
        raise ConfigurationError(
            f"rank {rank} out of range for region [{lo}, {hi})"
        )
    if ops_per_step < 1:
        raise ConfigurationError("ops_per_step must be >= 1")
    top_level = _shared is None
    shared = [0] if top_level else _shared

    left, right = lo, hi
    target = lo + rank
    while right - left > _SMALL_CUTOFF:
        n = right - left
        # Phase 1: median of each group of five, swapped to the front
        # block [left, left + n_groups).
        n_groups = (n + 4) // 5
        for g in range(n_groups):
            g_lo = left + 5 * g
            g_hi = min(g_lo + 5, right)
            _insertion_sort(vals, ids, g_lo, g_hi)
            mid = (g_lo + g_hi - 1) // 2
            dest = left + g
            vals[dest], vals[mid] = vals[mid], vals[dest]
            ids[dest], ids[mid] = ids[mid], ids[dest]
            shared[0] += 2 * (g_hi - g_lo)
            if shared[0] >= ops_per_step:
                yield shared[0]
                shared[0] = 0
        # Phase 2: pivot = median of the medians block (recursive;
        # generators compose and the shared accumulator keeps every
        # resumption within one budget).
        if n_groups > 1:
            pivot = yield from stepwise_select_deterministic(
                vals, ids, left, left + n_groups, n_groups // 2,
                ops_per_step, shared,
            )
        else:
            pivot = vals[left]
        # Phase 3: three-way partition around the pivot.
        lt, gt = yield from _stepwise_dnf(
            vals, ids, left, right, pivot, ops_per_step, shared
        )
        if target < lt:
            right = lt
        elif target >= gt:
            left = gt
        else:
            if top_level and shared[0]:
                yield shared[0]
            return pivot
    _insertion_sort(vals, ids, left, right)
    shared[0] += right - left
    if top_level and shared[0]:
        yield shared[0]
    return vals[target]


def stepwise_select_sampled(
    vals: List[Value],
    ids: List[ItemId],
    lo: int,
    hi: int,
    rank: int,
    ops_per_step: int,
    sample_size: int = _PIVOT_SAMPLE,
) -> StepwiseResult:
    """Resumable sampled-pivot selection (SQUID-style).

    Same contract as :func:`stepwise_select`, but every round draws the
    pivot from a small *k-sample* of the region instead of a
    median-of-three: ``sample_size`` values at fixed strides are
    sorted, and the sample element whose sample-rank is proportional to
    the target's rank becomes the pivot.  Aiming the pivot at the
    target's quantile (rather than the median) shrinks the active
    region toward the target faster when the wanted rank is eccentric —
    exactly q-MAX's case, where the Select always looks for the
    ``g``-th smallest of ``q + g`` values.  This is the pivot
    estimation SQUID (Ben Basat et al., 2022) uses to keep quantile
    maintenance cheap per update; sampling is deterministic (strided)
    so replays reproduce the schedule exactly.
    """
    if not lo <= lo + rank < hi:
        raise ConfigurationError(
            f"rank {rank} out of range for region [{lo}, {hi})"
        )
    if ops_per_step < 1:
        raise ConfigurationError("ops_per_step must be >= 1")
    if sample_size < 1:
        raise ConfigurationError(
            f"sample_size must be >= 1, got {sample_size}"
        )

    shared = [0]
    left, right = lo, hi
    target = lo + rank
    while right - left > _SMALL_CUTOFF:
        n = right - left
        k = sample_size if sample_size < n else n
        stride = n // k
        sample = sorted(vals[left + i * stride] for i in range(k))
        # Proportional-rank pivot: the sample's best guess at the
        # target's quantile.
        pos = (target - left) * (k - 1) // (n - 1)
        pivot = sample[pos]
        shared[0] += k
        if shared[0] >= ops_per_step:
            yield shared[0]
            shared[0] = 0
        # The pivot is a value drawn from the region, so the == block
        # of the three-way partition is non-empty and the active region
        # strictly shrinks every round (no sentinels needed).
        lt, gt = yield from _stepwise_dnf(
            vals, ids, left, right, pivot, ops_per_step, shared
        )
        if target < lt:
            right = lt
        elif target >= gt:
            left = gt
        else:
            if shared[0]:
                yield shared[0]
            return pivot
    _insertion_sort(vals, ids, left, right)
    shared[0] += right - left
    if shared[0]:
        yield shared[0]
    return vals[target]


def quickselect(
    vals: List[Value], ids: List[ItemId], lo: int, hi: int, rank: int
) -> Value:
    """One-shot in-place quickselect (ascending ``rank`` within the
    region) — the fast path used by amortized maintenance.

    Identical semantics to driving :func:`stepwise_select` to
    completion, without the per-operation budget accounting.
    """
    if not lo <= lo + rank < hi:
        raise ConfigurationError(
            f"rank {rank} out of range for region [{lo}, {hi})"
        )
    target = lo + rank
    left, right = lo, hi - 1
    while right - left >= _SMALL_CUTOFF:
        mid = (left + right) // 2
        pivot = _median_of_three(vals, ids, left, mid, right)
        i, j = left, right
        while i <= j:
            v = vals[i]
            while v < pivot:
                i += 1
                v = vals[i]
            v = vals[j]
            while v > pivot:
                j -= 1
                v = vals[j]
            if i <= j:
                vals[i], vals[j] = vals[j], vals[i]
                ids[i], ids[j] = ids[j], ids[i]
                i += 1
                j -= 1
        if target <= j:
            right = j
        elif target >= i:
            left = i
        else:
            return vals[target]
    _insertion_sort(vals, ids, left, right + 1)
    return vals[target]


def dnf_partition(
    vals: List[Value],
    ids: List[ItemId],
    lo: int,
    hi: int,
    pivot: Value,
    side: str,
) -> None:
    """One-shot three-way partition (see :func:`stepwise_partition_top`)."""
    if side not in ("left", "right"):
        raise ConfigurationError(f"side must be 'left' or 'right', got {side!r}")
    big_on_right = side == "right"
    lt, i, gt = lo, lo, hi
    while i < gt:
        v = vals[i]
        if (v < pivot) if big_on_right else (v > pivot):
            vals[i], vals[lt] = vals[lt], vals[i]
            ids[i], ids[lt] = ids[lt], ids[i]
            lt += 1
            i += 1
        elif (v > pivot) if big_on_right else (v < pivot):
            gt -= 1
            vals[i], vals[gt] = vals[gt], vals[i]
            ids[i], ids[gt] = ids[gt], ids[i]
        else:
            i += 1


def run_to_completion(gen: Generator) -> Optional[Value]:
    """Drive a step-wise generator until it finishes; return its result."""
    try:
        while True:
            next(gen)
    except StopIteration as stop:
        return stop.value


def select_kth_largest(
    vals: List[Value], ids: List[ItemId], lo: int, hi: int, k: int
) -> Value:
    """One-shot: the k-th largest value (1-indexed) in ``vals[lo:hi)``."""
    if not 1 <= k <= hi - lo:
        raise ConfigurationError(f"k={k} out of range for region [{lo}, {hi})")
    return quickselect(vals, ids, lo, hi, (hi - lo) - k)


def partition_top(
    vals: List[Value],
    ids: List[ItemId],
    lo: int,
    hi: int,
    q: int,
    side: str = "right",
    use_numpy: Optional[bool] = None,
) -> Value:
    """One-shot select-and-pivot: move the top ``q`` items of the region
    to ``side`` and return the threshold value (the q-th largest).

    This is the amortized maintenance operation (one full Select plus
    one full pivot), used by :class:`repro.core.amortized.AmortizedQMax`,
    by query-time top-q extraction, and as the fallback when a
    deamortized iteration must be force finished.

    ``use_numpy`` selects the ``np.argpartition`` fast path: one
    C-level introselect over the region's values, with the original
    value/id *objects* permuted into place afterwards (so integer
    values stay integers — only the comparisons run in float64, the
    same contract as the vectorized ``add_many`` filter).  ``None``
    auto-engages it when NumPy is installed and the region is large
    enough to amortize the ndarray round-trip; the retained *set* is
    identical on both paths (ordering within the two blocks — and the
    choice among ties at the threshold — is unspecified on either).
    """
    if use_numpy is None:
        use_numpy = HAVE_NUMPY and hi - lo >= _NP_PARTITION_MIN
    elif use_numpy and not HAVE_NUMPY:
        raise ConfigurationError(
            "use_numpy=True but numpy is not installed (pip install .[fast])"
        )
    if use_numpy:
        return _partition_top_numpy(vals, ids, lo, hi, q, side)
    threshold = select_kth_largest(vals, ids, lo, hi, q)
    dnf_partition(vals, ids, lo, hi, threshold, side)
    return threshold


def _partition_top_numpy(
    vals: List[Value],
    ids: List[ItemId],
    lo: int,
    hi: int,
    q: int,
    side: str,
) -> Value:
    """``np.argpartition`` realization of :func:`partition_top`."""
    if side not in ("left", "right"):
        raise ConfigurationError(f"side must be 'left' or 'right', got {side!r}")
    n = hi - lo
    if not 1 <= q <= n:
        raise ConfigurationError(f"k={q} out of range for region [{lo}, {hi})")
    region_vals = vals[lo:hi]
    region_ids = ids[lo:hi]
    varr = np.asarray(region_vals, dtype=np.float64)
    kth = n - q
    order = np.argpartition(varr, kth)
    threshold = region_vals[int(order[kth])]
    perm = order.tolist()
    if side == "left":
        perm.reverse()
    for i in range(n):
        j = perm[i]
        vals[lo + i] = region_vals[j]
        ids[lo + i] = region_ids[j]
    return threshold
