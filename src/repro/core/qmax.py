"""Algorithm 1: the deamortized interval q-MAX.

The structure keeps an array ``A`` of ``N = q + 2g`` slots where
``g = ⌊qγ/2⌋`` (so ``N ≈ ⌈q(1+γ)⌉``), split into two regions:

* **S1** — ``q + g`` slots that are guaranteed to contain the current
  top-q items, and
* **S2** — ``g`` slots that receive newly admitted items.

An admission threshold ``Ψ`` (a lower bound on the q-th largest retained
value) filters the stream: items with ``val <= Ψ`` are discarded in O(1).
Each admitted item is written into the next S2 slot and pays one
*deamortized maintenance step*: the first ``⌈g/2⌉`` steps of an
iteration advance a resumable Select that computes the q-th largest
value of S1 (which then becomes the new ``Ψ``); the remaining steps
advance a resumable pivot that moves S1's top-q to the side of its
region adjacent to S2.  After ``g`` admitted items the iteration ends:
the ``g`` S1 slots *not* holding top-q items are exactly the slots
farthest from S2 — they become the new S2 (their occupants are evicted),
and the old S2 together with the old top-q becomes the new S1.  The
array orientation therefore alternates left/right each iteration, as in
Figure 1 of the paper.

Deviations from the paper (documented in DESIGN.md §5):

* The paper's SelectStep presumes a deterministic linear-time Select;
  we use a resumable quickselect (expected linear).  If the Select or
  pivot has not finished when its step budget runs out, the remainder
  runs synchronously at the iteration boundary, preserving amortized
  O(γ⁻¹) cost per admitted item.
* CPython pays ~0.5µs per generator dispatch, so maintenance advances
  in *micro-batches*: the resumable computation is driven once every
  ``step_batch`` admitted items (default 8) with a proportionally
  larger operation budget.  The worst-case per-update work remains a
  constant — ``O(step_batch/γ)`` — and ``step_batch=1`` recovers the
  paper's exact schedule.  The ``instrument=True`` mode records
  realized per-update maintenance costs for the tests that verify the
  constant bound.
"""

from __future__ import annotations

import os
from time import perf_counter
from typing import Generator, Iterator, List, Optional, Sequence

from repro._compat import HAVE_NUMPY, np
from repro.core.interface import QMaxBase
from repro.core.kernels import DEFAULT_KERNEL, KERNEL_ENV, resolve_kernel
from repro.core.select import (
    partition_top,
    stepwise_partition_top,
    stepwise_select,
    stepwise_select_deterministic,
    stepwise_select_sampled,
)
from repro.errors import ConfigurationError, InvariantError
from repro.obs import resolve_registry
from repro.types import Item, ItemId, TopItems, Value

#: Sentinel stored in empty slots; never equal to a user id.
_EMPTY = object()

#: Budget factor over the expected quickselect cost (~3n ops on random
#: input) when sizing the per-drive operation budget.
_SELECT_BUDGET_FACTOR = 3

#: BFPRT does a deterministic ~22n counted operations (and our counter
#: undercounts the group sorts slightly); budget with headroom so the
#: Select reliably finishes within its half of the iteration.
_BFPRT_BUDGET_FACTOR = 36

#: The pivot is a single Dutch-national-flag pass (exactly n ops).
_PIVOT_BUDGET_FACTOR = 2

#: Below this batch size the ndarray round-trip costs more than the
#: tight pure-Python loop saves, so auto mode stays pure.
_NUMPY_MIN_BATCH = 32


class QMax(QMaxBase):
    """Deamortized q-MAX over an interval (Algorithm 1).

    Parameters
    ----------
    q:
        Number of maximal items to maintain (``q >= 1``).
    gamma:
        Space/time trade-off: the structure uses ``q + 2·⌊qγ/2⌋`` slots
        and performs ``O(1/γ)`` work per admitted item.  Must be
        positive.  When ``⌊qγ/2⌋ < 2`` the deamortized schedule is
        degenerate and the structure behaves like the amortized variant
        (maintenance runs in full at each iteration boundary).
    track_evictions:
        When true, every discarded item (admission-filtered or displaced
        at an iteration boundary) is recorded and can be drained with
        :meth:`take_evicted`.  Off by default to keep the hot path lean.
    step_batch:
        Admitted items per maintenance drive (see module docstring).
    instrument:
        Record ``maintenance_ops`` / ``max_step_ops`` statistics.
    deterministic_select:
        Use the BFPRT median-of-medians Select (the paper's reference
        [21]) instead of quickselect.  Gives a *deterministic*
        worst-case O(1/γ) update bound at ~5-8× the expected operation
        count — pick it when the value stream may be adversarial.
    pivot_sample:
        When > 0, use the SQUID-style sampled-pivot Select instead of
        quickselect: each round draws the pivot from a ``pivot_sample``
        element strided sample at the target's proportional rank (see
        :func:`repro.core.select.stepwise_select_sampled`).  Mutually
        exclusive with ``deterministic_select``.
    kernel:
        Maintenance execution strategy (see :mod:`repro.core.kernels`).
        ``None`` consults ``REPRO_KERNEL`` then defaults to
        ``"stepwise"`` — the deamortized generator schedule above,
        with its per-update O(1/γ) bound.  ``"numpy"`` / ``"native"``
        (or any kernel instance, including a
        :class:`~repro.core.kernels.stepwise.StepwiseKernel`) switch to
        **one-shot drives**: maintenance runs as a single fast call at
        each iteration boundary (every ``g`` admissions), which trades
        the per-update worst-case bound for a much smaller amortized
        constant.  Ψ then tightens only at boundaries (it is exact at
        every boundary and remains a valid lower bound throughout), so
        admission decisions between a one-shot structure and the
        deamortized default can differ mid-iteration — the top-q
        answer is exact either way (docs/ALGORITHMS.md).  Unavailable
        kernels degrade gracefully (``native`` → ``numpy`` →
        ``stepwise``); :meth:`stats` reports what actually resolved.
        Step-budget Select strategies (``deterministic_select``,
        ``pivot_sample``) are meaningless under one-shot drives: they
        raise with an explicitly requested kernel, and win over a
        kernel that merely came from ``REPRO_KERNEL`` (the deamortized
        schedule is preserved whenever step-budget semantics are
        requested).  ``step_batch`` is ignored in one-shot mode.
    use_numpy:
        Controls the :meth:`add_many` batch filter.  ``None`` (default)
        auto-selects: NumPy when installed and the batch is large
        enough to amortize the ndarray round-trip, pure Python
        otherwise.  ``False`` forces the pure-Python path; ``True``
        requires NumPy (``ConfigurationError`` if missing) and engages
        it for every batch size.  Retained-set semantics are identical
        on all paths.
    metrics:
        Observability registry (see :mod:`repro.obs`): ``None`` uses
        the process default (disabled unless ``REPRO_METRICS=1``),
        ``False`` forces off, or pass a
        :class:`~repro.obs.MetricsRegistry`.  Maintenance events —
        drives, select/pivot completions, iteration boundaries,
        evictions, batch fast-path hits, Ψ — are counted at drive and
        batch granularity only; the per-item ``add`` path is never
        touched, and with metrics disabled no instrumentation branch
        exists on any hot path.
    trace:
        With an enabled ``metrics`` registry, additionally time every
        maintenance drive into the
        ``repro_qmax_maintenance_seconds{phase=select|pivot|boundary}``
        histograms (two ``perf_counter`` calls per drive) — the span
        data ``bench_sec3_profiling.py`` turns into the paper's §3
        time-breakdown table.  Ignored when metrics are disabled.
    """

    __slots__ = (
        "q",
        "gamma",
        "_g",
        "_n",
        "_vals",
        "_ids",
        "_psi",
        "_steps",
        "_sel_steps",
        "_orient_left",
        "_insert_base",
        "_maint",
        "_batch",
        "_select",
        "_select_factor",
        "_track_evictions",
        "_use_numpy",
        "_np_min_batch",
        "_instrument",
        "_evicted",
        "maintenance_ops",
        "max_step_ops",
        "admitted",
        "rejected",
        "_obs",
        "_obs_drives",
        "_obs_selects",
        "_obs_pivots",
        "_obs_iterations",
        "_obs_evictions",
        "_obs_batches",
        "_obs_batch_fastpath",
        "_obs_batch_numpy",
        "_obs_psi",
        "_trace",
        "_trace_hists",
        "_maint_phase",
        "_phase_mark",
        "kernel",
        "_kernel_requested",
        "_kernel_obj",
        "_array_store",
    )

    def __init__(
        self,
        q: int,
        gamma: float = 0.25,
        track_evictions: bool = False,
        step_batch: int = 8,
        instrument: bool = False,
        deterministic_select: bool = False,
        use_numpy: Optional[bool] = None,
        pivot_sample: int = 0,
        kernel=None,
        metrics=None,
        trace: bool = False,
    ) -> None:
        if q < 1:
            raise ConfigurationError(f"q must be >= 1, got {q}")
        if gamma <= 0:
            raise ConfigurationError(f"gamma must be > 0, got {gamma}")
        if step_batch < 1:
            raise ConfigurationError(
                f"step_batch must be >= 1, got {step_batch}"
            )
        if pivot_sample < 0:
            raise ConfigurationError(
                f"pivot_sample must be >= 0, got {pivot_sample}"
            )
        if pivot_sample and deterministic_select:
            raise ConfigurationError(
                "pivot_sample and deterministic_select are mutually "
                "exclusive"
            )
        self.q = q
        self.gamma = gamma
        if deterministic_select:
            self._select = stepwise_select_deterministic
            self._select_factor = _BFPRT_BUDGET_FACTOR
        elif pivot_sample:
            def _sampled(vals, ids, lo, hi, rank, ops, _k=pivot_sample):
                return stepwise_select_sampled(
                    vals, ids, lo, hi, rank, ops, sample_size=_k
                )

            self._select = _sampled
            self._select_factor = _SELECT_BUDGET_FACTOR
        else:
            self._select = stepwise_select
            self._select_factor = _SELECT_BUDGET_FACTOR
        if use_numpy and not HAVE_NUMPY:
            raise ConfigurationError(
                "use_numpy=True but numpy is not installed "
                "(pip install .[fast])"
            )
        self._use_numpy = HAVE_NUMPY if use_numpy is None else use_numpy
        self._np_min_batch = 1 if use_numpy else _NUMPY_MIN_BATCH
        self._g = max(1, int(q * gamma / 2))
        self._n = q + 2 * self._g
        self._batch = min(step_batch, self._g)
        self._track_evictions = track_evictions
        self._instrument = instrument
        self._evicted: List[Item] = []
        self._resolve_kernel(kernel, deterministic_select, pivot_sample)
        self._bind_obs(resolve_registry(metrics), trace)
        self.reset()

    def _resolve_kernel(
        self, kernel, deterministic_select: bool, pivot_sample: int
    ) -> None:
        """Resolve the maintenance kernel (cold path, __init__ only).

        Sets ``self._kernel_obj`` (``None`` = deamortized stepwise
        schedule; an instance = one-shot drives at iteration
        boundaries), ``self.kernel`` (the resolved name — what will
        actually run) and ``self._kernel_requested``.
        """
        if kernel is None:
            requested = os.environ.get(KERNEL_ENV) or DEFAULT_KERNEL
            from_env = requested != DEFAULT_KERNEL
        elif isinstance(kernel, str):
            requested, from_env = kernel, False
        else:
            requested = getattr(kernel, "name", type(kernel).__name__)
            from_env = False
        self._kernel_requested = requested
        if kernel is not None and not isinstance(kernel, str):
            # An explicit instance always drives one-shot — including a
            # StepwiseKernel, the differential suites' reference mode.
            self._kernel_obj = resolve_kernel(kernel)
        else:
            resolved = resolve_kernel(kernel)
            self._kernel_obj = (
                None if resolved.name == DEFAULT_KERNEL else resolved
            )
        if self._kernel_obj is not None and (
            deterministic_select or pivot_sample
        ):
            if from_env:
                # Step-budget Select strategies were requested in code;
                # an environment-level kernel preference must not break
                # their drive-schedule semantics.
                self._kernel_obj = None
            else:
                raise ConfigurationError(
                    "one-shot kernels are mutually exclusive with the "
                    "step-budget Select strategies "
                    "(deterministic_select / pivot_sample)"
                )
        if self._kernel_obj is None:
            self.kernel = DEFAULT_KERNEL
        else:
            self.kernel = getattr(
                self._kernel_obj, "name", type(self._kernel_obj).__name__
            )
            # One-shot mode: maintenance runs once per iteration, so
            # the only drive point is the boundary itself.
            self._batch = self._g
        self._array_store = (
            self._kernel_obj is not None
            and self._use_numpy
            and getattr(self._kernel_obj, "array_storage", False)
        )

    def _bind_obs(self, registry, trace: bool) -> None:
        """Bind observability instruments once (cold path).

        Instruments are registered by name, so several structures on
        one registry share cumulative counters (gauges: last writer
        wins); the sharded engine gives each worker process its own
        registry and merges snapshots instead.
        """
        if not registry.enabled:
            self._obs = None
            self._trace = False
            self._trace_hists = None
            return
        self._obs = registry
        self._obs_drives = registry.counter(
            "repro_qmax_maintenance_drives_total",
            "maintenance micro-batch drives",
        )
        self._obs_selects = registry.counter(
            "repro_qmax_select_completed_total",
            "resumable Select completions (one per iteration)",
        )
        self._obs_pivots = registry.counter(
            "repro_qmax_pivot_completed_total",
            "resumable pivot completions (one per iteration)",
        )
        self._obs_iterations = registry.counter(
            "repro_qmax_iterations_total",
            "iteration boundaries (orientation flips)",
        )
        self._obs_evictions = registry.counter(
            "repro_qmax_evictions_total",
            "items displaced at iteration boundaries",
        )
        self._obs_batches = registry.counter(
            "repro_qmax_batch_calls_total", "add_many invocations",
        )
        self._obs_batch_fastpath = registry.counter(
            "repro_qmax_batch_fastpath_total",
            "add_many bursts rejected whole by the common-discard max()",
        )
        self._obs_batch_numpy = registry.counter(
            "repro_qmax_batch_numpy_total",
            "add_many bursts through the vectorized NumPy filter",
        )
        self._obs_psi = registry.gauge(
            "repro_qmax_psi", "current admission threshold Ψ",
        )
        registry.gauge(
            "repro_qmax_gamma_configured", "requested γ",
        ).set(self.gamma)
        registry.gauge(
            "repro_qmax_gamma_actual",
            "realized γ = 2⌊qγ/2⌋/q after slot rounding",
        ).set(2 * self._g / self.q)
        registry.gauge(
            "repro_qmax_kernel",
            "active maintenance kernel (1 = the labelled kernel runs "
            "this structure's drives, post fallback)",
            kernel=self.kernel,
        ).set(1.0)
        self._trace = bool(trace)
        self._trace_hists = {
            phase: registry.histogram(
                "repro_qmax_maintenance_seconds",
                "wall-clock time of maintenance drives by phase",
                phase=phase,
                kernel=self.kernel,
            )
            for phase in ("select", "pivot", "boundary")
        } if trace else None

    # ------------------------------------------------------------------
    # Region geometry.
    #
    # Orientation "left": S1 = [0, q+g), S2 = [q+g, N); pivot moves the
    # top-q of S1 to the *right* of S1's region, so the slots [0, g)
    # are discarded at the boundary and become the next S2.
    # Orientation "right": S1 = [g, N), S2 = [0, g); pivot side "left".
    # ------------------------------------------------------------------

    def _s1_bounds(self) -> tuple:
        if self._orient_left:
            return 0, self.q + self._g
        return self._g, self._n

    def _pivot_side(self) -> str:
        return "right" if self._orient_left else "left"

    def _discard_bounds(self) -> tuple:
        """Slots evicted at the end of the current iteration."""
        if self._orient_left:
            return 0, self._g
        return self.q + self._g, self._n

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Clear all state (see :meth:`QMaxBase.reset`)."""
        neg_inf = float("-inf")
        if self._array_store:
            # Kernel mode on the NumPy stack: a float64 value column
            # (kernels drive it without touching Python objects) plus
            # an object id column.  Values coerce to float64 on
            # admission — the same contract as add_many_array.
            self._vals = np.full(self._n, neg_inf, dtype=np.float64)
            self._ids = np.full(self._n, _EMPTY, dtype=object)
        else:
            self._vals: List[Value] = [neg_inf] * self._n
            self._ids: List[ItemId] = [_EMPTY] * self._n
        self._psi: Value = neg_inf
        self._steps = 0
        self._sel_steps = max(1, self._g // 2)
        self._orient_left = True
        self._insert_base = self.q + self._g
        self._evicted = []
        self.maintenance_ops = 0
        self.max_step_ops = 0
        self.admitted = 0
        self.rejected = 0
        self._maint_phase = "select"
        self._phase_mark = 0.0
        self._maint: Optional[Generator[int, None, None]] = (
            None if self._kernel_obj is not None else self._maintenance_gen()
        )

    def _maintenance_gen(self) -> Generator[int, None, None]:
        """One iteration's maintenance: Select then pivot, step-wise.

        Sets ``self._psi`` as soon as the Select completes (the paper's
        line 10: the admission filter tightens mid-iteration).
        """
        lo, hi = self._s1_bounds()
        size = hi - lo
        batch = self._batch
        sel_drives = max(1, self._sel_steps // batch)
        piv_drives = max(1, (self._g - self._sel_steps) // batch)
        sel_ops = -(-self._select_factor * size // sel_drives)
        piv_ops = -(-_PIVOT_BUDGET_FACTOR * size // piv_drives)
        rank = size - self.q
        self._maint_phase = "select"
        psi = yield from self._select(
            self._vals, self._ids, lo, hi, rank, sel_ops
        )
        self._psi = psi
        obs = self._obs
        if obs is not None:
            self._obs_selects.inc()
            self._obs_psi.set(psi)
        if self._trace:
            # Mark the select→pivot transition so the drive that spans
            # it can split its span honestly (see _drive).
            self._phase_mark = perf_counter()
        self._maint_phase = "pivot"
        yield from stepwise_partition_top(
            self._vals, self._ids, lo, hi, psi, self._pivot_side(), piv_ops
        )
        if obs is not None:
            self._obs_pivots.inc()

    # ------------------------------------------------------------------
    # Hot path.
    # ------------------------------------------------------------------

    def add(self, item_id: ItemId, val: Value) -> None:
        """Process one stream item in O(1/γ) (expected, deamortized)."""
        if val <= self._psi:
            self.rejected += 1
            if self._track_evictions and item_id is not _EMPTY:
                self._evicted.append((item_id, val))
            return
        steps = self._steps
        pos = self._insert_base + steps
        self._vals[pos] = val
        self._ids[pos] = item_id
        steps += 1
        self._steps = steps
        self.admitted += 1
        if steps % self._batch == 0 or steps >= self._g:
            self._drive(steps)

    def add_many(self, ids: Sequence[ItemId], vals: Sequence[Value]) -> None:
        """Batch update with the same retained-set semantics as ``add``.

        The batch is filtered against Ψ in chunks bounded by the next
        maintenance drive point, so the drive schedule — and therefore
        the retained set — is *identical* to calling :meth:`add` once
        per item.  Whenever a drive tightens Ψ, the not-yet-consumed
        remainder of the batch is re-filtered against the new
        threshold, exactly as sequential processing would reject those
        items later.  The speedup comes from hoisting attribute lookups
        out of the loop (pure path) or vectorizing the common
        ``val <= Ψ`` discard (NumPy path), not from schedule changes.
        """
        n = len(ids)
        if n != len(vals):
            raise ConfigurationError(
                f"batch length mismatch: {n} ids vs {len(vals)} vals"
            )
        # Eviction tracking needs per-reject bookkeeping, which the
        # vectorized filter skips; route tracked structures through the
        # pure path (ordering is unspecified anyway, see QMaxBase).
        if self._obs is not None:
            self._obs_batches.inc()
        if (
            self._use_numpy
            and n >= self._np_min_batch
            and not self._track_evictions
        ):
            if self._obs is not None:
                self._obs_batch_numpy.inc()
            self._add_many_numpy(ids, vals)
        else:
            self._add_many_python(ids, vals)

    def _add_many_python(
        self, ids: Sequence[ItemId], vals: Sequence[Value]
    ) -> None:
        n = len(ids)
        track = self._track_evictions
        # Common-discard shortcut: one C-level max() rejects the whole
        # burst when nothing beats the admission threshold — the
        # line-rate case once Ψ has converged.  (Tracked structures
        # need per-item eviction records, so they take the loop.)
        if n and not track and max(vals) <= self._psi:
            self.rejected += n
            if self._obs is not None:
                self._obs_batch_fastpath.inc()
            return
        vals_a = self._vals
        ids_a = self._ids
        g = self._g
        batch = self._batch
        evicted = self._evicted
        admitted = 0
        i = 0
        while i < n:
            # Ψ, the write cursor, and the insert base are constant
            # between drives; re-read them per chunk only.
            psi = self._psi
            steps = self._steps
            base = self._insert_base
            room = batch - steps % batch
            if steps + room > g:
                room = g - steps
            while i < n:
                val = vals[i]
                if val <= psi:
                    if track:
                        item_id = ids[i]
                        if item_id is not _EMPTY:
                            evicted.append((item_id, val))
                    i += 1
                    continue
                pos = base + steps
                vals_a[pos] = val
                ids_a[pos] = ids[i]
                steps += 1
                admitted += 1
                i += 1
                room -= 1
                if not room:
                    break
            self._steps = steps
            if not room:
                self._drive(steps)
        self.admitted += admitted
        self.rejected += n - admitted

    def _add_many_numpy(
        self, ids: Sequence[ItemId], vals: Sequence[Value]
    ) -> None:
        varr = np.asarray(vals, dtype=np.float64)
        self._admit_numpy(ids, varr, None)

    def add_many_array(self, ids, vals) -> None:
        """Array-column batch ingest: the zero-copy shard hot path.

        ``ids``/``vals`` are NumPy columns (u64-compatible ids, float
        values) — typically structured-array fields sliced straight off
        a shared-memory ring view.  Unlike :meth:`add_many`, survivor
        ids are stored with vectorized fancy-index + slice assignment:
        no per-record Python call happens anywhere on the path.
        Retained-set semantics are identical to feeding the columns
        through :meth:`add` one record at a time (same drive schedule;
        pinned by the zero-copy differential suite).  Falls back to the
        list path when NumPy is off or eviction tracking needs
        per-record bookkeeping.
        """
        n = len(ids)
        if len(vals) != n:
            raise ConfigurationError(
                f"batch length mismatch: {n} ids vs {len(vals)} vals"
            )
        if n == 0:
            return
        if not self._use_numpy or self._track_evictions:
            QMaxBase.add_many_array(self, ids, vals)
            return
        if self._obs is not None:
            self._obs_batches.inc()
            self._obs_batch_numpy.inc()
        iarr = np.asarray(ids)
        varr = np.asarray(vals, dtype=np.float64)
        self._admit_numpy(None, varr, iarr)

    def _admit_numpy(self, ids, varr, iarr) -> None:
        """Shared vectorized admission loop.

        Survivor values always land via slice assignment; ids come from
        ``iarr`` (an ndarray — fancy-index + one ``tolist`` per chunk)
        when given, else record-by-record from the Python sequence
        ``ids``.
        """
        n = varr.shape[0]
        vals_a = self._vals
        ids_a = self._ids
        g = self._g
        batch = self._batch
        array_store = self._array_store
        admitted = 0
        # One vectorized pass rejects everything at-or-below the current
        # Ψ (the common case); survivors are admitted chunk by chunk.
        cand = np.flatnonzero(varr > self._psi)
        k = 0
        m = cand.shape[0]
        if n and not m and self._obs is not None:
            # Vectorized analogue of the common-discard shortcut.
            self._obs_batch_fastpath.inc()
        while k < m:
            steps = self._steps
            room = batch - steps % batch
            if steps + room > g:
                room = g - steps
            take = m - k
            if take > room:
                take = room
            sel = cand[k : k + take]
            pos = self._insert_base + steps
            if array_store:
                # Kernel-mode float64 column: ndarray→ndarray copy, no
                # Python float objects materialize.
                vals_a[pos : pos + take] = varr[sel]
            else:
                vals_a[pos : pos + take] = varr[sel].tolist()
            if iarr is not None:
                ids_a[pos : pos + take] = iarr[sel].tolist()
            else:
                off = pos
                for j in sel.tolist():
                    ids_a[off] = ids[j]
                    off += 1
            steps += take
            k += take
            admitted += take
            self._steps = steps
            if steps % batch == 0 or steps >= g:
                old_psi = self._psi
                self._drive(steps)
                if k < m and self._psi > old_psi:
                    # Ψ tightened: re-filter the unconsumed remainder,
                    # just as sequential adds would reject them now.
                    rest = cand[k:]
                    cand = rest[varr[rest] > self._psi]
                    k = 0
                    m = cand.shape[0]
        self.admitted += admitted
        self.rejected += n - admitted

    def _drive(self, steps: int) -> None:
        """Advance maintenance by one micro-batch; flip at the boundary."""
        step_ops = 0
        maint = self._maint
        trace = self._trace
        if maint is not None:
            if trace:
                phase0 = self._maint_phase
                self._phase_mark = 0.0
                t0 = perf_counter()
                try:
                    step_ops = next(maint)
                except StopIteration:
                    self._maint = None
                t1 = perf_counter()
                # A drive that finishes the Select mid-budget continues
                # into the pivot; the generator marks the transition
                # instant, so the span splits into an honest per-phase
                # pair instead of charging everything to one phase.
                mark = self._phase_mark
                hists = self._trace_hists
                if mark:
                    hists[phase0].observe(mark - t0)
                    hists["pivot"].observe(t1 - mark)
                else:
                    hists[phase0].observe(t1 - t0)
            else:
                try:
                    step_ops = next(maint)
                except StopIteration:
                    self._maint = None
        if steps >= self._g:
            step_ops += self._finish_iteration()
        if self._obs is not None:
            self._obs_drives.inc()
        if self._instrument:
            self.maintenance_ops += step_ops
            if step_ops > self.max_step_ops:
                self.max_step_ops = step_ops

    def _kernel_drive(self) -> None:
        """One-shot maintenance: a full select+pivot in one kernel call."""
        lo, hi = self._s1_bounds()
        psi = self._kernel_obj.drive(
            self._vals, self._ids, lo, hi, self.q, self._pivot_side(),
            observe=self._observe_phase if self._trace else None,
        )
        self._psi = psi
        if self._obs is not None:
            self._obs_selects.inc()
            self._obs_pivots.inc()
            self._obs_psi.set(psi)

    def _observe_phase(self, phase: str, seconds: float) -> None:
        """Trace callback handed to one-shot kernels."""
        self._trace_hists[phase].observe(seconds)

    def _finish_iteration(self) -> int:
        """Force-finish maintenance, evict, and flip orientation."""
        ops = 0
        trace = self._trace
        if self._kernel_obj is not None:
            self._kernel_drive()
        else:
            maint = self._maint
            if maint is not None:
                if trace:
                    phase0 = self._maint_phase
                    self._phase_mark = 0.0
                    t0 = perf_counter()
                try:
                    while True:
                        ops += next(maint)
                except StopIteration:
                    pass
                self._maint = None
                if trace:
                    t1 = perf_counter()
                    mark = self._phase_mark
                    hists = self._trace_hists
                    if mark:
                        hists[phase0].observe(mark - t0)
                        hists["pivot"].observe(t1 - mark)
                    else:
                        hists[phase0].observe(t1 - t0)
        if trace:
            tb = perf_counter()
        d_lo, d_hi = self._discard_bounds()
        if self._track_evictions:
            vals, ids = self._vals, self._ids
            for i in range(d_lo, d_hi):
                if ids[i] is not _EMPTY:
                    self._evicted.append((ids[i], vals[i]))
        if self._obs is not None:
            self._obs_iterations.inc()
            ids = self._ids
            self._obs_evictions.inc(
                sum(1 for i in range(d_lo, d_hi) if ids[i] is not _EMPTY)
            )
        # The discarded slots keep stale contents; they are overwritten
        # one per admitted item as the next iteration's S2.
        self._orient_left = not self._orient_left
        self._insert_base = d_lo
        self._steps = 0
        if self._kernel_obj is None:
            self._maint = self._maintenance_gen()
            self._maint_phase = "select"
        if trace:
            # Boundary span: eviction scan + flip bookkeeping only —
            # residual select/pivot work was attributed above.
            self._trace_hists["boundary"].observe(perf_counter() - tb)
        return ops

    # ------------------------------------------------------------------
    # Queries and introspection.
    # ------------------------------------------------------------------

    def items(self) -> Iterator[Item]:
        """Live items: all of S1 plus the filled prefix of S2."""
        vals, ids = self._vals, self._ids
        if self._array_store:
            # Yield plain Python floats, not np.float64 scalars — the
            # engine's result decoding and the tests compare by value
            # but serialize by type.
            vals = vals.tolist()
        lo, hi = self._s1_bounds()
        for i in range(lo, hi):
            if ids[i] is not _EMPTY:
                yield ids[i], vals[i]
        base = self._insert_base
        for i in range(base, base + self._steps):
            yield ids[i], vals[i]

    def query(self) -> TopItems:
        """Top-q via a one-shot partition of a live-set snapshot.

        Overrides the base class's heap scan: a single
        :func:`partition_top` over a copy of the live set (which
        engages the ``np.argpartition`` fast path on large regions)
        followed by sorting just ``q`` survivors beats the O(n log q)
        heap pass.  Ties at the threshold are broken arbitrarily, as
        the contract allows.
        """
        vals: List[Value] = []
        ids: List[ItemId] = []
        for item_id, val in self.items():
            ids.append(item_id)
            vals.append(val)
        n = len(vals)
        if n <= self.q:
            top = list(zip(ids, vals))
        else:
            partition_top(vals, ids, 0, n, self.q, side="right")
            top = list(zip(ids[n - self.q :], vals[n - self.q :]))
        top.sort(key=lambda item: item[1], reverse=True)
        return top

    def take_evicted(self) -> List[Item]:
        """Drain items discarded since the last call (needs tracking)."""
        evicted, self._evicted = self._evicted, []
        return evicted

    @property
    def space_slots(self) -> int:
        """Total array slots used, ``q + 2⌊qγ/2⌋`` (Theorem 1's bound)."""
        return self._n

    @property
    def name(self) -> str:
        if self._kernel_obj is not None:
            return f"qmax(gamma={self.gamma:g},kernel={self.kernel})"
        return f"qmax(gamma={self.gamma:g})"

    def stats(self) -> dict:
        """Configuration and counter snapshot.

        Every entry reports what the structure *actually runs*, after
        kernel fallback and NumPy availability are settled — never the
        requested configuration: ``kernel`` is the resolved kernel
        (``kernel_requested`` keeps the original ask so callers can
        detect a silent downgrade), ``select`` is the Select strategy
        driving maintenance (``one-shot`` in kernel mode, where the
        step-budget Select generators never run), and ``batch_numpy``
        is True only when the vectorized batch filter is really
        engaged.
        """
        if self._kernel_obj is not None:
            select = "one-shot"
        elif self._select is stepwise_select_deterministic:
            select = "bfprt"
        elif self._select is stepwise_select:
            select = "quickselect"
        else:
            select = "sampled"
        return {
            "backend": type(self).__name__,
            "q": self.q,
            "size": sum(1 for _ in self.items()),
            "gamma": self.gamma,
            "space_slots": self._n,
            "kernel": self.kernel,
            "kernel_requested": self._kernel_requested,
            "select": select,
            "step_batch": self._batch,
            "batch_numpy": self._use_numpy,
            "array_store": self._array_store,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "psi": self._psi,
        }

    def check_invariants(self) -> None:
        """Verify Ψ is a valid lower bound and regions are consistent."""
        live = list(self.items())
        if len(live) > self._n:
            raise InvariantError("live set exceeds the space bound")
        if self._psi != float("-inf"):
            at_least_psi = sum(1 for _, v in live if v >= self._psi)
            if at_least_psi < min(self.q, len(live)):
                raise InvariantError(
                    f"admission threshold too high: only {at_least_psi} live "
                    f"items >= psi with q={self.q}"
                )
        if not 0 <= self._steps <= self._g:
            raise InvariantError(f"steps counter out of range: {self._steps}")
        s2_base = self.q + self._g if self._orient_left else 0
        if self._insert_base != s2_base:
            raise InvariantError("insert base out of sync with orientation")
