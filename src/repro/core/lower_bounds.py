"""Executable lower-bound constructions (§4.2.2, §4.3.2).

The paper's lower bounds are proofs, but their adversarial inputs are
concrete and make excellent stress tests:

* **Theorem 4** (``slack_window_adversary``): the sequence forcing any
  ``(W, τ, q)``-max algorithm to store ``Ω(min{W, q·τ⁻¹})`` items —
  ``τ⁻¹/2`` phases, each ``2Wτ − q`` fillers followed by the next ``q``
  distinct values of a strictly decreasing chain.  Every chain value
  may become a top-q answer in some future admissible window, so a
  correct algorithm cannot drop any of them.  We *run* the construction
  against our sliding structures and verify (a) they answer correctly
  and (b) they really do hold the required items — i.e. the space the
  paper proves necessary is the space we spend.

* **Theorem 3's** constructive direction is
  :func:`repro.core.reduction.sort_via_qmax`; see that module.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import ConfigurationError
from repro.types import Item


def slack_window_adversary(
    q: int, window: int, tau: float
) -> Tuple[List[Item], List[float]]:
    """Build Theorem 4's adversarial stream.

    Returns ``(stream, chain)`` where ``stream`` is the item sequence
    (ids are sequential ints) and ``chain`` lists the distinct
    decreasing values ``x_1 > x_2 > ... > x_z`` that the proof shows
    must all be retained (the filler value ``x_z`` is ``0.0``).

    Requires ``2·W·τ >= q`` (otherwise a phase cannot host q chain
    values) and ``q·τ⁻¹ <= 2·W`` (the regime where the bound binds).
    """
    if q < 1:
        raise ConfigurationError(f"q must be >= 1, got {q}")
    if not 0.0 < tau <= 1.0:
        raise ConfigurationError(f"tau must be in (0, 1], got {tau}")
    phase_len = int(2 * window * tau)
    if phase_len < q:
        raise ConfigurationError(
            f"need 2*W*tau >= q (got {phase_len} < {q})"
        )
    n_phases = max(1, int(1.0 / (2 * tau)))
    z = n_phases * q
    # Chain values strictly decreasing, all above the filler 0.0.
    chain = [float(z - i) for i in range(z)]

    stream: List[Item] = []
    next_id = 0
    for phase in range(n_phases):
        for _ in range(phase_len - q):
            stream.append((next_id, 0.0))
            next_id += 1
        for j in range(q):
            stream.append((next_id, chain[phase * q + j]))
            next_id += 1
    return stream, chain


def required_live_values(
    chain: List[float], q: int, exposed_phases: int
) -> List[float]:
    """The chain values a correct algorithm must still retain after
    ``exposed_phases`` additional filler phases (the proof's "follow
    with ⌊i/q⌋·2Wτ occurrences of x_{z+1}" step): the chain values that
    can still appear in some future window's top q.

    After ``k`` filler phases, the newest ``k·q`` chain values have
    been pushed out of every admissible window; the rest must remain
    available.
    """
    z = len(chain)
    cutoff = max(0, z - exposed_phases * q)
    return chain[:cutoff]
