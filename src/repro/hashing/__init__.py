"""Hash-function substrate.

All applications in the paper derive item *values* from hashes (KMV and
network-wide heavy hitters hash packet identifiers; priority sampling
draws a per-key uniform).  Python's built-in ``hash`` is salted per
process and unsuitable for reproducible experiments, so this package
implements seedable hash families from scratch:

* :func:`repro.hashing.mix.splitmix64` — a strong 64-bit mixer, the
  workhorse primitive.
* :class:`repro.hashing.multiply_shift.MultiplyShiftHash` — classic
  2-universal multiply-shift hashing.
* :class:`repro.hashing.tabulation.TabulationHash` — 3-independent simple
  tabulation hashing.
* :class:`repro.hashing.uniform.UniformHasher` — hash → uniform ``[0,1)``
  values, the per-key "random" used by priority sampling and KMV.
"""

from repro.hashing.mix import splitmix64, mix64
from repro.hashing.multiply_shift import MultiplyShiftHash
from repro.hashing.tabulation import TabulationHash
from repro.hashing.uniform import UniformHasher

__all__ = [
    "splitmix64",
    "mix64",
    "MultiplyShiftHash",
    "TabulationHash",
    "UniformHasher",
]
