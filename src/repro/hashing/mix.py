"""64-bit mixing primitives (splitmix64 family).

These are the building blocks for every other hash in the package: a
fast, statistically strong bijective mixer on 64-bit words.  The
constants are the standard splitmix64 ones (Steele, Lea & Flood,
"Fast Splittable Pseudorandom Number Generators", OOPSLA 2014).
"""

from __future__ import annotations

from typing import Hashable

_MASK64 = (1 << 64) - 1

_GOLDEN_GAMMA = 0x9E3779B97F4A7C15
_MIX_A = 0xBF58476D1CE4E5B9
_MIX_B = 0x94D049BB133111EB


def mix64(z: int) -> int:
    """Finalize-mix a 64-bit integer (the splitmix64 output function).

    The function is a bijection on ``[0, 2**64)``; it has full avalanche
    (each input bit flips each output bit with probability ~1/2).
    """
    z &= _MASK64
    z = ((z ^ (z >> 30)) * _MIX_A) & _MASK64
    z = ((z ^ (z >> 27)) * _MIX_B) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def mix64_many(z: "object") -> "object":
    """Vectorized :func:`mix64` over a ``uint64`` ndarray.

    Requires NumPy (callers gate on ``repro._compat.HAVE_NUMPY``).
    Unsigned 64-bit arithmetic wraps exactly like the masked Python
    version, so each element is bit-identical to ``mix64``.
    """
    import numpy as np

    z = np.asarray(z).astype(np.uint64)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(_MIX_A)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(_MIX_B)
    return z ^ (z >> np.uint64(31))


def splitmix64(seed: int, index: int) -> int:
    """Return the ``index``-th output of a splitmix64 stream seeded by ``seed``.

    Unlike the sequential generator, this addressed form lets callers
    draw independent values for arbitrary integer keys in O(1) without
    materializing the stream.
    """
    return mix64((seed + (index + 1) * _GOLDEN_GAMMA) & _MASK64)


def key_to_u64(key: Hashable, seed: int = 0) -> int:
    """Map an arbitrary hashable key to a 64-bit integer deterministically.

    Integers map via their value; strings and bytes via a simple FNV-1a
    pass; everything else falls back to ``hash`` (stable only within a
    process — documented limitation, benchmarks use int/str keys).
    The result is finalize-mixed with ``seed`` so distinct seeds give
    independent-looking streams for the same key.
    """
    if isinstance(key, bool):  # bool is an int subclass; separate it
        base = 0xB001 + int(key)
    elif isinstance(key, int):
        base = key & _MASK64
    elif isinstance(key, (str, bytes)):
        data = key.encode("utf-8") if isinstance(key, str) else key
        base = 0xCBF29CE484222325
        for byte in data:
            base = ((base ^ byte) * 0x100000001B3) & _MASK64
    elif isinstance(key, tuple):
        base = 0x345678
        for part in key:
            base = (base * 0x100000001B3 + key_to_u64(part, seed)) & _MASK64
    else:
        base = hash(key) & _MASK64
    return mix64(base ^ mix64(seed))
