"""2-universal multiply-shift hashing (Dietzfelbinger et al.).

``h(x) = ((a * x + b) mod 2**64) >> (64 - out_bits)`` with odd ``a`` is
2-universal on 64-bit keys.  This is the cheapest family with provable
guarantees and is what sketches (Count Sketch / Count-Min rows) use.
"""

from __future__ import annotations

from typing import Hashable

from repro.errors import ConfigurationError
from repro.hashing.mix import key_to_u64, splitmix64

_MASK64 = (1 << 64) - 1


class MultiplyShiftHash:
    """A seeded multiply-shift hash mapping keys to ``[0, 2**out_bits)``.

    Parameters
    ----------
    out_bits:
        Number of output bits (1..64).
    seed:
        Seed from which the random odd multiplier and offset are drawn.
    """

    __slots__ = ("out_bits", "_a", "_b", "_shift", "_seed")

    def __init__(self, out_bits: int = 32, seed: int = 0) -> None:
        if not 1 <= out_bits <= 64:
            raise ConfigurationError(
                f"out_bits must be in [1, 64], got {out_bits}"
            )
        self.out_bits = out_bits
        self._seed = seed
        self._a = splitmix64(seed, 0) | 1  # multiplier must be odd
        self._b = splitmix64(seed, 1)
        self._shift = 64 - out_bits

    def hash_u64(self, x: int) -> int:
        """Hash a 64-bit integer key."""
        return ((self._a * x + self._b) & _MASK64) >> self._shift

    def __call__(self, key: Hashable) -> int:
        """Hash an arbitrary hashable key (via :func:`key_to_u64`)."""
        return self.hash_u64(key_to_u64(key))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MultiplyShiftHash(out_bits={self.out_bits}, seed={self._seed})"
        )
