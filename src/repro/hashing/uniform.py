"""Deterministic per-key uniform values in ``[0, 1)``.

Priority sampling assigns each key ``x`` a priority ``w_x / u_x`` where
``u_x`` is uniform in ``(0, 1]``; KMV / bottom-k map keys to uniform
hashes.  Both need the *same* key to always receive the same value, so
we derive the uniform from a seeded hash rather than an RNG.
"""

from __future__ import annotations

from typing import Hashable

from repro._compat import HAVE_NUMPY, np
from repro.hashing.mix import key_to_u64, mix64, mix64_many

#: 2**-64, for converting a 64-bit integer to [0, 1).
_U64_TO_UNIT = 2.0 ** -64


class UniformHasher:
    """Maps hashable keys to deterministic uniforms.

    ``unit(key)`` returns a value in ``[0, 1)``; ``unit_open(key)``
    returns a value in ``(0, 1]`` (never zero), which is what priority
    sampling needs to avoid division by zero.
    """

    __slots__ = ("_seed_mix",)

    def __init__(self, seed: int = 0) -> None:
        self._seed_mix = mix64(seed ^ 0xA5A5A5A5A5A5A5A5)

    def raw(self, key: Hashable) -> int:
        """64-bit hash of ``key`` under this hasher's seed."""
        return key_to_u64(key, self._seed_mix)

    def unit(self, key: Hashable) -> float:
        """Uniform value in ``[0, 1)`` for ``key``."""
        return self.raw(key) * _U64_TO_UNIT

    def unit_open(self, key: Hashable) -> float:
        """Uniform value in ``(0, 1]`` for ``key`` (never exactly zero)."""
        return (self.raw(key) + 1) * _U64_TO_UNIT

    # ------------------------------------------------------------------
    # Vectorized variants over integer-key arrays (burst processing).
    # Each is bit-identical to its scalar counterpart per element.
    # ------------------------------------------------------------------

    def raw_many(self, keys: "np.ndarray") -> "np.ndarray":
        """Vectorized :meth:`raw` over an integer-key ndarray."""
        if not HAVE_NUMPY:
            raise RuntimeError("raw_many requires numpy")
        base = np.asarray(keys).astype(np.uint64)
        return mix64_many(base ^ np.uint64(mix64(self._seed_mix)))

    def unit_many(self, keys: "np.ndarray") -> "np.ndarray":
        """Vectorized :meth:`unit` over an integer-key ndarray."""
        return self.raw_many(keys).astype(np.float64) * _U64_TO_UNIT

    def unit_open_many(self, keys: "np.ndarray") -> "np.ndarray":
        """Vectorized :meth:`unit_open` over an integer-key ndarray."""
        raw = self.raw_many(keys) + np.uint64(1)
        out = raw.astype(np.float64) * _U64_TO_UNIT
        if not raw.all():
            # raw wrapped to 0 where the 64-bit hash was all-ones; the
            # scalar path returns exactly 1.0 there.
            out[raw == 0] = 1.0
        return out
