"""Simple tabulation hashing (Zobrist / Patrascu-Thorup).

Splits a 64-bit key into 8 bytes and XORs together 8 random tables of
256 entries each.  Simple tabulation is 3-independent and behaves far
better than its independence suggests for many algorithms (Patrascu &
Thorup, "The Power of Simple Tabulation Hashing", J.ACM 2012) — it is
the recommended family for the min-hash sampling in the network-wide
heavy hitters application, where value collisions directly cost sample
quality.
"""

from __future__ import annotations

from typing import Hashable, List

from repro.hashing.mix import key_to_u64, splitmix64

_MASK64 = (1 << 64) - 1


class TabulationHash:
    """Seeded simple tabulation hash from 64-bit keys to 64-bit values."""

    __slots__ = ("_tables", "_seed")

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        tables: List[List[int]] = []
        for byte_index in range(8):
            offset = byte_index * 256
            tables.append(
                [splitmix64(seed, offset + v) for v in range(256)]
            )
        self._tables = tables

    def hash_u64(self, x: int) -> int:
        """Hash a 64-bit integer key to a 64-bit value."""
        x &= _MASK64
        t = self._tables
        return (
            t[0][x & 0xFF]
            ^ t[1][(x >> 8) & 0xFF]
            ^ t[2][(x >> 16) & 0xFF]
            ^ t[3][(x >> 24) & 0xFF]
            ^ t[4][(x >> 32) & 0xFF]
            ^ t[5][(x >> 40) & 0xFF]
            ^ t[6][(x >> 48) & 0xFF]
            ^ t[7][(x >> 56) & 0xFF]
        )

    def __call__(self, key: Hashable) -> int:
        """Hash an arbitrary hashable key (via :func:`key_to_u64`)."""
        return self.hash_u64(key_to_u64(key))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TabulationHash(seed={self._seed})"
