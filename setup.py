"""Legacy setup shim.

Allows ``pip install -e .`` to use the setuptools develop path in
offline environments where PEP-517 build isolation cannot download
build dependencies (metadata lives in pyproject.toml).
"""

from setuptools import setup

setup()
