"""Legacy setup shim + best-effort native kernel build.

Allows ``pip install -e .`` to use the setuptools develop path in
offline environments where PEP-517 build isolation cannot download
build dependencies (metadata lives in pyproject.toml).

Also declares the optional C maintenance kernel
(``repro.core.kernels._native``).  ``optional=True`` makes the build
best-effort: without a working compiler the extension is skipped with
a warning and the package installs pure — the kernel registry then
falls back ``native`` → ``numpy`` → ``stepwise`` at runtime (see
``repro/core/kernels/__init__.py``).  For an in-tree build (tests run
with ``PYTHONPATH=src``) use ``make build-native`` /
``python setup.py build_ext --inplace``.
"""

from setuptools import Extension, setup

setup(
    ext_modules=[
        Extension(
            "repro.core.kernels._native",
            sources=["src/repro/core/kernels/_native.c"],
            optional=True,
        ),
    ],
)
