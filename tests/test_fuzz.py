"""Failure-injection / fuzz tests: parsers must reject garbage cleanly.

A controller ingests reports from remote switches and pcap files from
arbitrary tooling; whatever the bytes, the decoders must either return
a valid object or raise ``ConfigurationError`` — never crash with an
unrelated exception or hang.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.netwide.wire import from_bytes, from_json
from repro.traffic.headers import packet_from_bytes
from repro.traffic.pcap import _iter_records


@settings(max_examples=300, deadline=None)
@given(data=st.binary(max_size=400))
def test_wire_decoder_survives_random_bytes(data):
    try:
        report = from_bytes(data)
    except ConfigurationError:
        return
    # If it parsed, it must be internally consistent.
    assert report.observed >= 0
    values = [v for _r, v in report.entries]
    assert values == sorted(values)


@settings(max_examples=200, deadline=None)
@given(text=st.text(max_size=300))
def test_json_decoder_survives_random_text(text):
    try:
        from_json(text)
    except ConfigurationError:
        pass


@settings(max_examples=200, deadline=None)
@given(data=st.binary(max_size=200))
def test_packet_parser_survives_random_bytes(data):
    try:
        packet_from_bytes(data)
    except (ConfigurationError, ValueError):
        # struct.error is a ValueError subclass: acceptable for raw
        # header parsing of truncated frames.
        pass


@settings(max_examples=200, deadline=None)
@given(data=st.binary(max_size=300))
def test_pcap_reader_survives_random_bytes(data):
    try:
        list(_iter_records(data))
    except ConfigurationError:
        pass


class TestBitFlips:
    """Single-bit corruptions of valid artifacts are caught or benign."""

    def test_wire_report_bit_flips(self):
        from repro.netwide.nmp import MeasurementPoint
        from repro.netwide.wire import from_measurement_point, to_bytes
        from repro.traffic.packet import Packet

        nmp = MeasurementPoint(8, seed=1)
        for pid in range(100):
            nmp.observe(Packet(1, 2, 3, 4, 6, 100, packet_id=pid))
        blob = bytearray(to_bytes(from_measurement_point(nmp)))
        for byte_index in range(0, len(blob), 7):
            corrupted = bytearray(blob)
            corrupted[byte_index] ^= 0x40
            try:
                report = from_bytes(bytes(corrupted))
            except (ConfigurationError, UnicodeDecodeError):
                continue
            # Accepted corruptions must still be structurally valid.
            assert report.observed >= 0

    def test_ipv4_checksum_catches_header_flips(self):
        from repro.traffic.headers import IPv4Header

        header = IPv4Header(0x0A000001, 0x0A000002, 500, 6).encode()
        caught = 0
        for byte_index in range(len(header)):
            corrupted = bytearray(header)
            corrupted[byte_index] ^= 0x01
            try:
                IPv4Header.decode(bytes(corrupted))
            except ConfigurationError:
                caught += 1
        # The internet checksum detects every single-bit flip.
        assert caught == len(header)
