"""Failure-injection / fuzz tests.

Two families live here:

* **Parser fuzz** — a controller ingests reports from remote switches
  and pcap files from arbitrary tooling; whatever the bytes, the
  decoders must either return a valid object or raise
  ``ConfigurationError`` — never crash with an unrelated exception or
  hang.
* **Differential batch fuzz** — the batch-first update path promises
  *exactly* the same retained-set semantics as item-at-a-time updates
  for every ``QMaxBase`` implementation.  Two identical structures are
  driven with the same random stream — one per-item, one through
  ``add_many`` with randomly sized batches — and must end with equal
  retained multisets, query results and (where tracked) eviction
  multisets.  Eviction *order* is deliberately unspecified under
  batching (see ``QMaxBase.take_evicted``), so evictions compare as
  multisets.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._compat import HAVE_NUMPY
from repro.baselines.heap import HeapQMax
from repro.baselines.skiplist import SkipListQMax
from repro.baselines.sortedlist import SortedListQMax
from repro.core.amortized import AmortizedQMax, VectorQMax
from repro.core.exponential_decay import ExponentialDecayQMax
from repro.core.hierarchical import (
    BufferedSlidingQMax,
    HierarchicalSlidingQMax,
)
from repro.core.qmax import QMax
from repro.core.qmin import QMin
from repro.core.sliding import SlidingQMax
from repro.errors import ConfigurationError
from repro.netwide.wire import from_bytes, from_json
from repro.traffic.headers import packet_from_bytes
from repro.traffic.pcap import _iter_records


@settings(max_examples=300, deadline=None)
@given(data=st.binary(max_size=400))
def test_wire_decoder_survives_random_bytes(data):
    try:
        report = from_bytes(data)
    except ConfigurationError:
        return
    # If it parsed, it must be internally consistent.
    assert report.observed >= 0
    values = [v for _r, v in report.entries]
    assert values == sorted(values)


@settings(max_examples=200, deadline=None)
@given(text=st.text(max_size=300))
def test_json_decoder_survives_random_text(text):
    try:
        from_json(text)
    except ConfigurationError:
        pass


@settings(max_examples=200, deadline=None)
@given(data=st.binary(max_size=200))
def test_packet_parser_survives_random_bytes(data):
    try:
        packet_from_bytes(data)
    except (ConfigurationError, ValueError):
        # struct.error is a ValueError subclass: acceptable for raw
        # header parsing of truncated frames.
        pass


@settings(max_examples=200, deadline=None)
@given(data=st.binary(max_size=300))
def test_pcap_reader_survives_random_bytes(data):
    try:
        list(_iter_records(data))
    except ConfigurationError:
        pass


class TestBitFlips:
    """Single-bit corruptions of valid artifacts are caught or benign."""

    def test_wire_report_bit_flips(self):
        from repro.netwide.nmp import MeasurementPoint
        from repro.netwide.wire import from_measurement_point, to_bytes
        from repro.traffic.packet import Packet

        nmp = MeasurementPoint(8, seed=1)
        for pid in range(100):
            nmp.observe(Packet(1, 2, 3, 4, 6, 100, packet_id=pid))
        blob = bytearray(to_bytes(from_measurement_point(nmp)))
        for byte_index in range(0, len(blob), 7):
            corrupted = bytearray(blob)
            corrupted[byte_index] ^= 0x40
            try:
                report = from_bytes(bytes(corrupted))
            except (ConfigurationError, UnicodeDecodeError):
                continue
            # Accepted corruptions must still be structurally valid.
            assert report.observed >= 0

    def test_ipv4_checksum_catches_header_flips(self):
        from repro.traffic.headers import IPv4Header

        header = IPv4Header(0x0A000001, 0x0A000002, 500, 6).encode()
        caught = 0
        for byte_index in range(len(header)):
            corrupted = bytearray(header)
            corrupted[byte_index] ^= 0x01
            try:
                IPv4Header.decode(bytes(corrupted))
            except ConfigurationError:
                caught += 1
        # The internet checksum detects every single-bit flip.
        assert caught == len(header)


# ----------------------------------------------------------------------
# Differential batch fuzz: add_many ≡ repeated add, for every QMaxBase.
# ----------------------------------------------------------------------

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="needs numpy")

#: Batch sizes drawn at random while replaying the batched copy; mixes
#: tiny, medium and large bursts so chunk boundaries land everywhere.
BATCH_CHOICES = (1, 2, 3, 5, 8, 13, 32, 64, 200)

TRIALS = 5

GAMMAS = (0.05, 0.25, 1.0)


def _factories():
    """pytest params of (tracked, factory(q, gamma)) per implementation."""
    entries = [
        ("qmax", False, lambda q, g: QMax(q, g)),
        ("qmax-pure", False, lambda q, g: QMax(q, g, use_numpy=False)),
        ("qmax-tracked", True,
         lambda q, g: QMax(q, g, track_evictions=True)),
        ("amortized", False, lambda q, g: AmortizedQMax(q, g)),
        ("amortized-tracked", True,
         lambda q, g: AmortizedQMax(q, g, track_evictions=True)),
        ("qmin", False,
         lambda q, g: QMin(q, backend=lambda n: QMax(n, g))),
        ("exp-decay", False,
         lambda q, g: ExponentialDecayQMax(
             q, 0.9, backend=lambda n: QMax(n, g))),
        ("sliding", False, lambda q, g: SlidingQMax(q, 100, 0.25)),
        ("hierarchical", False,
         lambda q, g: HierarchicalSlidingQMax(q, 100, 0.25)),
        ("buffered", False,
         lambda q, g: BufferedSlidingQMax(q, 100, 0.25)),
        ("heap", False, lambda q, g: HeapQMax(q)),
        ("heap-tracked", True,
         lambda q, g: HeapQMax(q, track_evictions=True)),
        ("skiplist", False, lambda q, g: SkipListQMax(q)),
        ("skiplist-tracked", True,
         lambda q, g: SkipListQMax(q, track_evictions=True)),
        ("sortedlist", False, lambda q, g: SortedListQMax(q)),
        ("sortedlist-tracked", True,
         lambda q, g: SortedListQMax(q, track_evictions=True)),
    ]
    params = [
        pytest.param(tracked, factory, id=name)
        for name, tracked, factory in entries
    ]
    params.append(pytest.param(
        False, lambda q, g: QMax(q, g, use_numpy=True),
        id="qmax-numpy", marks=needs_numpy,
    ))
    params.append(pytest.param(
        False, lambda q, g: VectorQMax(q, g),
        id="vector", marks=needs_numpy,
    ))
    return params


def _random_stream(rng: random.Random, n: int):
    """ids 0..n-1 with positive values mixing ties and a continuum."""
    vals = []
    for _ in range(n):
        if rng.random() < 0.3:
            vals.append(float(rng.randint(1, 20)))  # forced duplicates
        else:
            vals.append(rng.random() * 100.0 + 1e-9)
    return list(range(n)), vals


def _items_multiset(structure):
    return sorted(structure.items())


@pytest.mark.parametrize("tracked,factory", _factories())
def test_add_many_equals_repeated_add(tracked, factory):
    for trial in range(TRIALS):
        rng = random.Random(0xF0220 + trial)
        q = rng.randint(1, 80)
        gamma = rng.choice(GAMMAS)
        n = rng.randint(1, 700)
        ids, vals = _random_stream(rng, n)

        single = factory(q, gamma)
        batched = factory(q, gamma)

        evicted_single = []
        evicted_batched = []
        i = 0
        while i < n:
            take = min(rng.choice(BATCH_CHOICES), n - i)
            for j in range(i, i + take):
                single.add(ids[j], vals[j])
            batched.add_many(ids[i:i + take], vals[i:i + take])
            i += take
            if tracked and rng.random() < 0.25:
                # Drain mid-stream on both sides: draining must never
                # perturb subsequent behaviour.
                evicted_single.extend(single.take_evicted())
                evicted_batched.extend(batched.take_evicted())

        context = (trial, q, gamma, n)
        assert _items_multiset(batched) == _items_multiset(single), context
        assert sorted(batched.query()) == sorted(single.query()), context
        if tracked:
            evicted_single.extend(single.take_evicted())
            evicted_batched.extend(batched.take_evicted())
            assert sorted(evicted_batched) == sorted(evicted_single), context


@pytest.mark.parametrize("tracked,factory", _factories())
def test_add_many_empty_batch_is_noop(tracked, factory):
    s = factory(8, 0.25)
    s.add_many([], [])
    assert list(s.items()) == []
    s.add_many([1, 2], [5.0, 7.0])
    s.add_many([], [])
    # Values may be transformed internally (exp-decay, qmin); the
    # retained ids are what an empty batch must not disturb.
    assert [item_id for item_id, _ in _items_multiset(s)] == [1, 2]


@pytest.mark.parametrize("tracked,factory", _factories())
def test_add_many_rejects_length_mismatch(tracked, factory):
    s = factory(8, 0.25)
    with pytest.raises(ConfigurationError):
        s.add_many([1, 2, 3], [1.0, 2.0])
