"""Fuzz tests for the binary report wire format.

Round-trips over random valid reports, plus adversarial inputs: every
strict prefix of a valid blob, random bit flips, hostile length
prefixes, and reports built with non-int ids.  The invariant
throughout: ``to_bytes``/``from_bytes`` either succeed or raise a
typed :class:`ReproError` — never a bare ``struct.error``/
``UnicodeDecodeError``, and never an unbounded allocation or hang.
"""

from __future__ import annotations

import random
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, ReproError, WireFormatError
from repro.netwide.wire import Report, from_bytes, to_bytes

_names = st.text(
    alphabet=st.characters(codec="utf-8"), min_size=0, max_size=40
)


def _random_report(rng: random.Random, n: int, name: str) -> Report:
    entries = sorted(
        (
            ((rng.randrange(2**32), rng.randrange(2**64)),
             rng.random())
            for _ in range(n)
        ),
        key=lambda pair: pair[1],  # Report requires ascending hashes
    )
    return Report(name, rng.randrange(2**32), tuple(entries))


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(min_value=0, max_value=64),
    seed=st.integers(min_value=0, max_value=10_000),
    name=_names,
)
def test_roundtrip_random_reports(n, seed, name):
    report = _random_report(random.Random(seed), n, name)
    assert from_bytes(to_bytes(report)) == report


def test_roundtrip_empty_report():
    report = Report("sw-empty", 0, ())
    assert from_bytes(to_bytes(report)) == report


def test_every_strict_prefix_is_typed_error():
    report = _random_report(random.Random(1), 5, "sw0")
    blob = to_bytes(report)
    for cut in range(len(blob)):
        with pytest.raises(WireFormatError):
            from_bytes(blob[:cut])


@settings(max_examples=120, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    flips=st.lists(
        st.integers(min_value=0, max_value=10_000),
        min_size=1, max_size=8,
    ),
)
def test_bit_flips_never_escape_typed_errors(seed, flips):
    """A corrupted blob decodes, or raises a ReproError — nothing
    else propagates (no struct.error, no UnicodeDecodeError)."""
    blob = bytearray(to_bytes(_random_report(random.Random(seed), 8,
                                             "switch-五")))
    for f in flips:
        pos = f % len(blob)
        blob[pos] ^= 1 << (f % 8)
    try:
        decoded = from_bytes(bytes(blob))
    except ReproError:
        return
    assert isinstance(decoded, Report)


@settings(max_examples=120, deadline=None)
@given(data=st.binary(max_size=256))
def test_arbitrary_bytes_never_escape_typed_errors(data):
    try:
        from_bytes(data)
    except ReproError:
        pass


class TestAdversarialLengths:
    """Hostile length fields must be rejected by comparison against
    the actual buffer size — no allocation, no hang."""

    def test_huge_name_length(self):
        blob = struct.pack("!4sBH", b"QMRP", 1, 0xFFFF) + b"x" * 10
        with pytest.raises(WireFormatError):
            from_bytes(blob)

    def test_huge_record_count(self):
        blob = (struct.pack("!4sBH", b"QMRP", 1, 0)
                + struct.pack("!Q", 0)
                + struct.pack("!I", 0xFFFFFFFF))
        with pytest.raises(WireFormatError):
            from_bytes(blob)

    def test_bad_magic(self):
        good = to_bytes(Report("sw", 1, ()))
        with pytest.raises(WireFormatError):
            from_bytes(b"XXXX" + good[4:])

    def test_future_version(self):
        good = to_bytes(Report("sw", 1, ()))
        with pytest.raises(WireFormatError):
            from_bytes(good[:4] + b"\x09" + good[5:])

    def test_invalid_utf8_name(self):
        blob = (struct.pack("!4sBH", b"QMRP", 1, 2) + b"\xff\xfe"
                + struct.pack("!Q", 0) + struct.pack("!I", 0))
        with pytest.raises(WireFormatError):
            from_bytes(blob)


class TestEncodeValidation:
    def test_non_int_flow_id(self):
        report = Report("sw", 1, ((("flow-a", 1), 0.5),))
        with pytest.raises(ConfigurationError):
            to_bytes(report)

    def test_non_int_packet_id(self):
        report = Report("sw", 1, (((1, 2.5), 0.5),))
        with pytest.raises(ConfigurationError):
            to_bytes(report)

    def test_out_of_range_ids(self):
        report = Report("sw", 1, (((2**32, 1), 0.5),))
        with pytest.raises(ConfigurationError):
            to_bytes(report)
        report = Report("sw", 1, (((1, -1), 0.5),))
        with pytest.raises(ConfigurationError):
            to_bytes(report)

    def test_unpackable_value(self):
        report = Report("sw", 1, (((1, 1), "0.5"),))
        with pytest.raises(ConfigurationError):
            to_bytes(report)

    def test_oversized_name(self):
        with pytest.raises(ConfigurationError):
            to_bytes(Report("x" * 70_000, 0, ()))
