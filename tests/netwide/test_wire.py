"""Tests for the NMP report wire formats."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.netwide.controller import Controller
from repro.netwide.nmp import MeasurementPoint
from repro.netwide.wire import (
    Report,
    from_bytes,
    from_json,
    from_measurement_point,
    merge_reports,
    to_bytes,
    to_json,
)
from repro.traffic.packet import Packet


def _fill_nmp(name, pids, seed=3):
    nmp = MeasurementPoint(16, seed=seed, name=name)
    for pid in pids:
        nmp.observe(Packet(pid % 50, 0, 0, 0, 6, 100, packet_id=pid))
    return nmp


class TestReportModel:
    def test_snapshot(self):
        nmp = _fill_nmp("edge-1", range(200))
        report = from_measurement_point(nmp)
        assert report.nmp_name == "edge-1"
        assert report.observed == 200
        assert len(report.entries) == 16

    def test_rejects_unsorted_entries(self):
        with pytest.raises(ConfigurationError):
            Report("x", 2, (((1, 1), 0.9), ((2, 2), 0.1)))

    def test_rejects_negative_observed(self):
        with pytest.raises(ConfigurationError):
            Report("x", -1, ())


class TestJsonRoundTrip:
    def test_exact_roundtrip(self):
        report = from_measurement_point(_fill_nmp("a", range(500)))
        assert from_json(to_json(report)) == report

    def test_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            from_json("not json at all {")
        with pytest.raises(ConfigurationError):
            from_json('{"format": "something-else"}')
        with pytest.raises(ConfigurationError):
            from_json(
                '{"format": "qmax-report", "version": 99, "nmp": "x",'
                ' "observed": 0, "samples": []}'
            )

    def test_rejects_missing_fields(self):
        with pytest.raises(ConfigurationError):
            from_json(
                '{"format": "qmax-report", "version": 1,'
                ' "samples": [{"flow": 1}]}'
            )


class TestBinaryRoundTrip:
    def test_exact_roundtrip(self):
        report = from_measurement_point(_fill_nmp("switch-β", range(300)))
        assert from_bytes(to_bytes(report)) == report

    def test_binary_is_compact(self):
        report = from_measurement_point(_fill_nmp("s", range(1000)))
        assert len(to_bytes(report)) < len(to_json(report))

    def test_rejects_truncation_everywhere(self):
        data = to_bytes(from_measurement_point(_fill_nmp("s", range(99))))
        for cut in (0, 3, 8, len(data) // 2, len(data) - 1):
            with pytest.raises(ConfigurationError):
                from_bytes(data[:cut])

    def test_rejects_bad_magic_and_version(self):
        data = to_bytes(from_measurement_point(_fill_nmp("s", range(50))))
        with pytest.raises(ConfigurationError):
            from_bytes(b"XXXX" + data[4:])
        with pytest.raises(ConfigurationError):
            from_bytes(data[:4] + b"\x09" + data[5:])

    def test_rejects_out_of_range_records(self):
        with pytest.raises(ConfigurationError):
            to_bytes(Report("x", 1, (((2**33, 1), 0.5),)))


class TestWireMerging:
    def test_wire_merge_equals_in_process_merge(self):
        """Ship reports over both encodings: the controller's answer
        must be bit-identical to in-process merging."""
        nmps = [
            _fill_nmp(f"n{i}", range(i * 137, i * 137 + 400))
            for i in range(4)
        ]
        in_process = Controller(16).merge_reports(nmps)

        json_side = [
            from_json(to_json(from_measurement_point(n))) for n in nmps
        ]
        binary_side = [
            from_bytes(to_bytes(from_measurement_point(n))) for n in nmps
        ]
        assert merge_reports(json_side, 16) == in_process
        assert merge_reports(binary_side, 16) == in_process

    def test_merge_validates_q(self):
        with pytest.raises(ConfigurationError):
            merge_reports([], 0)


@settings(max_examples=60, deadline=None)
@given(
    flows=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2**32 - 1),
            st.integers(min_value=0, max_value=2**64 - 1),
        ),
        max_size=30,
        unique=True,
    ),
    observed=st.integers(min_value=0, max_value=2**40),
    name=st.text(max_size=20),
)
def test_wire_roundtrip_property(flows, observed, name):
    """Property: any well-formed report survives both encodings."""
    entries = tuple(
        (record, i / (len(flows) + 1.0))
        for i, record in enumerate(flows)
    )
    report = Report(name, observed, entries)
    assert from_bytes(to_bytes(report)) == report
    assert from_json(to_json(report)) == report
