"""Tests for the Theorem-8 sliding-window network-wide heavy hitters."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.netwide.sliding import SlidingController, SlidingMeasurementPoint
from repro.traffic.packet import Packet


def _mkpkt(src, pid, ts):
    return Packet(src_ip=src, dst_ip=1, src_port=1, dst_port=2, proto=6,
                  size=100, timestamp=ts, packet_id=pid)


class TestSlidingMeasurementPoint:
    def test_parameters_validated(self):
        with pytest.raises(ConfigurationError):
            SlidingMeasurementPoint(0, 1.0, 0.5)
        with pytest.raises(ConfigurationError):
            SlidingMeasurementPoint(4, 0.0, 0.5)
        with pytest.raises(ConfigurationError):
            SlidingMeasurementPoint(4, 1.0, 0.0)

    def test_window_expiry(self):
        """Samples from before the window must disappear."""
        nmp = SlidingMeasurementPoint(16, window_seconds=10.0, tau=0.25,
                                      seed=1)
        for pid in range(100):
            nmp.observe(_mkpkt(src=999, pid=pid, ts=0.5))
        # Much later: only fresh traffic inside the window.
        for pid in range(100, 200):
            nmp.observe(_mkpkt(src=111, pid=pid, ts=100.0))
        report = nmp.report(now=100.0)
        flows = {flow for (flow, _pid), _v in report}
        assert flows == {111}

    def test_recent_window_retained(self):
        nmp = SlidingMeasurementPoint(16, window_seconds=10.0, tau=0.25,
                                      seed=2)
        for pid in range(50):
            nmp.observe(_mkpkt(src=5, pid=pid, ts=pid * 0.1))
        report = nmp.report(now=5.0)
        assert len(report) == 16

    def test_slack_keeps_at_least_shrunk_window(self):
        """Packets within W(1-τ) of `now` are always covered."""
        nmp = SlidingMeasurementPoint(300, window_seconds=8.0, tau=0.25,
                                      seed=3)
        for pid in range(200):
            ts = pid * 0.05  # spans [0, 10)
            nmp.observe(_mkpkt(src=pid, pid=pid, ts=ts))
        now = 10.0
        report = nmp.report(now=now)
        covered_pids = {pid for (_f, pid), _v in report}
        for pid in range(200):
            ts = pid * 0.05
            if now - 8.0 * 0.75 <= ts:
                assert pid in covered_pids, (pid, ts)


class TestSlidingController:
    def test_parameters_validated(self):
        with pytest.raises(ConfigurationError):
            SlidingController(1)
        with pytest.raises(ConfigurationError):
            SlidingController(4, epsilon=0.0)
        ctrl = SlidingController(4)
        with pytest.raises(ConfigurationError):
            ctrl.heavy_hitters([], now=0.0, theta=2.0)

    def test_windowed_heavy_hitters(self):
        """A flow heavy only in the recent window must be reported; an
        old heavy flow must not."""
        nmps = [
            SlidingMeasurementPoint(400, window_seconds=5.0, tau=0.25,
                                    seed=4, name=f"n{i}")
            for i in range(2)
        ]
        pid = 0
        # Old phase: flow A dominates, ts in [0, 5).
        for _ in range(2000):
            for nmp in nmps:
                nmp.observe(_mkpkt(src=0xA, pid=pid, ts=pid * 0.0025))
            pid += 1
        # Recent phase: flow B dominates, ts in [20, 25).
        for j in range(2000):
            for nmp in nmps:
                nmp.observe(_mkpkt(src=0xB, pid=pid, ts=20 + j * 0.0025))
            pid += 1
        ctrl = SlidingController(400, epsilon=0.05)
        heavy = dict(ctrl.heavy_hitters(nmps, now=25.0, theta=0.5))
        assert 0xB in heavy
        assert 0xA not in heavy

    def test_dedup_across_nmps(self):
        nmps = [
            SlidingMeasurementPoint(64, window_seconds=10.0, tau=0.5,
                                    seed=5)
            for _ in range(3)
        ]
        for pid in range(500):
            pkt = _mkpkt(src=pid % 7, pid=pid, ts=1.0)
            for nmp in nmps:  # every NMP sees every packet
                nmp.observe(pkt)
        ctrl = SlidingController(64)
        sample = ctrl.merged_sample(nmps, now=1.0)
        pids = [pid for (_f, pid), _v in sample]
        assert len(pids) == len(set(pids)) == 64
