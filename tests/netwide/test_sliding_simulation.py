"""Tests for the end-to-end sliding network-wide simulation."""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.netwide.sliding_simulation import SlidingNetworkSimulation
from repro.netwide.topology import NetworkTopology
from repro.traffic.synthetic import CAIDA16, generate_packets


def _retimed(packets, start):
    """Shift a packet list so the first timestamp is ``start``."""
    base = packets[0].timestamp
    return [
        dataclasses.replace(p, timestamp=start + (p.timestamp - base))
        for p in packets
    ]


class TestSlidingNetworkSimulation:
    def test_requires_switches(self):
        import networkx as nx

        bare = NetworkTopology(nx.Graph([("h0", "h1")]), ["h0", "h1"])
        with pytest.raises(ConfigurationError):
            SlidingNetworkSimulation(bare, q=4, window_seconds=1.0)

    def test_windowed_heavy_hitters_track_regime_change(self):
        """Old-phase heavy flows must vanish from windowed queries."""
        topo = NetworkTopology.fat_tree_pod(edge_switches=2,
                                            hosts_per_edge=2)
        window = 0.02
        sim = SlidingNetworkSimulation(
            topo, q=800, window_seconds=window, tau=0.25, epsilon=0.05,
            seed=1,
        )
        phase1 = generate_packets(CAIDA16, 8000, seed=10, n_flows=500)
        phase2 = generate_packets(CAIDA16, 8000, seed=20, n_flows=500)
        # Make phase 2 start long after phase 1 ended.
        phase2 = _retimed(phase2, phase1[-1].timestamp + 10 * window)
        # Re-number packet ids so they stay distinct across phases.
        phase2 = [
            dataclasses.replace(p, packet_id=p.packet_id + 1_000_000)
            for p in phase2
        ]
        sim.run(phase1)
        sim.run(phase2)

        truth = {
            f
            for f, _ in sim.true_windowed_heavy_hitters(
                phase1 + phase2, theta=0.02
            )
        }
        reported = {f for f, _ in sim.heavy_hitters(theta=0.02)}
        # No false negatives among windowed truth...
        assert truth <= reported
        # ...and nothing exclusive to phase 1 is reported.
        phase1_only = {p.src_ip for p in phase1} - {
            p.src_ip for p in phase2
        }
        assert not (reported & phase1_only)

    def test_multi_hop_dedup_in_window(self):
        """Packets crossing several windowed NMPs count once."""
        topo = NetworkTopology.linear(4, hosts_per_switch=2)
        sim = SlidingNetworkSimulation(
            topo, q=500, window_seconds=1.0, tau=0.25, seed=2
        )
        pkts = generate_packets(CAIDA16, 4000, seed=3, n_flows=400)
        sim.run(pkts)
        sample = sim.controller.merged_sample(
            sim.nmps.values(), pkts[-1].timestamp
        )
        pids = [pid for (_f, pid), _v in sample]
        assert len(pids) == len(set(pids))

    def test_levels_give_same_answers(self):
        """Basic and hierarchical NMP layouts agree when all traffic is
        recent (every admissible window covers everything)."""
        topo = NetworkTopology.linear(2, hosts_per_switch=2)
        pkts = generate_packets(CAIDA16, 3000, seed=4, n_flows=300)
        # Compress the trace into a fraction of the window.
        pkts = _retimed(pkts, 0.0)
        hh = {}
        for levels in (1, 2):
            sim = SlidingNetworkSimulation(
                topo, q=400, window_seconds=1000.0, tau=0.1,
                levels=levels, seed=5,
            )
            sim.run(pkts)
            hh[levels] = sorted(sim.heavy_hitters(theta=0.02))
        assert hh[1] == hh[2]
