"""Tests for ECMP routing and routing obliviousness under ECMP."""

from __future__ import annotations

import pytest

from repro.netwide import NetworkSimulation, NetworkTopology
from repro.traffic.synthetic import CAIDA16, generate_packets


class TestEcmpRoutes:
    def test_fat_tree_has_two_equal_paths(self):
        """Cross-edge traffic in the pod can use either aggregator."""
        topo = NetworkTopology.fat_tree_pod(edge_switches=4,
                                            hosts_per_edge=2)
        routes = topo.ecmp_routes("h0_0", "h3_0")
        assert len(routes) == 2
        middles = {route[1] for route in routes}
        assert middles == {"s_agg0", "s_agg1"}

    def test_flow_sticky_selection(self):
        topo = NetworkTopology.fat_tree_pod(edge_switches=4,
                                            hosts_per_edge=2)
        a = topo.ecmp_route("h0_0", "h3_0", flow_hash=7)
        b = topo.ecmp_route("h0_0", "h3_0", flow_hash=7)
        assert a == b
        other = topo.ecmp_route("h0_0", "h3_0", flow_hash=8)
        assert other in topo.ecmp_routes("h0_0", "h3_0")

    def test_intra_host_single_route(self):
        topo = NetworkTopology.linear(3)
        assert topo.ecmp_routes("h1_0", "h1_0") == [["s1"]]


class TestRoutingObliviousness:
    def test_ecmp_and_single_path_same_heavy_hitters(self):
        """The paper's core claim: results depend only on the traffic,
        not on the routing.  Run the identical trace with and without
        ECMP; the merged samples must coincide exactly (sampling is by
        packet-id hash, and every packet is observed either way)."""
        topo = NetworkTopology.fat_tree_pod(edge_switches=4,
                                            hosts_per_edge=2)
        pkts = generate_packets(CAIDA16, 8000, seed=12, n_flows=800)
        samples = []
        for ecmp in (False, True):
            sim = NetworkSimulation(topo, q=600, backend="qmax", seed=3,
                                    ecmp=ecmp)
            sim.run(pkts)
            samples.append(
                sim.controller.merge_reports(sim.nmps.values())
            )
        assert samples[0] == samples[1]

    def test_ecmp_spreads_load(self):
        """With ECMP both aggregators observe packets."""
        topo = NetworkTopology.fat_tree_pod(edge_switches=4,
                                            hosts_per_edge=2)
        pkts = generate_packets(CAIDA16, 5000, seed=13, n_flows=2000)
        sim = NetworkSimulation(topo, q=100, backend="qmax", seed=4,
                                ecmp=True)
        sim.run(pkts)
        agg_loads = [
            sim.nmps["s_agg0"].observed, sim.nmps["s_agg1"].observed
        ]
        assert min(agg_loads) > 0.2 * max(agg_loads)
