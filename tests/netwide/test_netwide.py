"""Tests for the network-wide heavy hitters subsystem."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.netwide import (
    Controller,
    MeasurementPoint,
    NetworkSimulation,
    NetworkTopology,
)
from repro.traffic.packet import Packet
from repro.traffic.synthetic import CAIDA16, generate_packets


def _mkpkt(src, pid):
    return Packet(src_ip=src, dst_ip=1, src_port=1, dst_port=2,
                  proto=6, size=100, packet_id=pid)


class TestMeasurementPoint:
    def test_parameters_validated(self):
        with pytest.raises(ConfigurationError):
            MeasurementPoint(0)

    def test_keeps_minimal_hashes(self):
        nmp = MeasurementPoint(8, seed=1)
        for pid in range(1000):
            nmp.observe(_mkpkt(src=pid % 10, pid=pid))
        report = nmp.report()
        assert len(report) == 8
        values = [v for _, v in report]
        assert values == sorted(values)
        assert nmp.observed == 1000

    def test_same_packet_same_value(self):
        """Two NMPs observing the same packet store identical values —
        the dedup property."""
        a = MeasurementPoint(4, seed=7)
        b = MeasurementPoint(4, seed=7)
        pkt = _mkpkt(src=5, pid=42)
        a.observe(pkt)
        b.observe(pkt)
        assert a.report() == b.report()

    def test_reset(self):
        nmp = MeasurementPoint(4, seed=1)
        nmp.observe(_mkpkt(1, 1))
        nmp.reset()
        assert nmp.report() == []
        assert nmp.observed == 0


class TestController:
    def test_parameters_validated(self):
        with pytest.raises(ConfigurationError):
            Controller(1)
        ctrl = Controller(4)
        with pytest.raises(ConfigurationError):
            ctrl.heavy_hitters([], theta=0.0)

    def test_merge_deduplicates(self):
        """A packet seen by every NMP occupies one merged slot."""
        nmps = [MeasurementPoint(16, seed=3) for _ in range(4)]
        for pid in range(100):
            pkt = _mkpkt(src=pid, pid=pid)
            for nmp in nmps:
                nmp.observe(pkt)
        ctrl = Controller(16)
        merged = ctrl.merge_reports(nmps)
        pids = [pid for (_flow, pid), _v in merged]
        assert len(pids) == len(set(pids)) == 16

    def test_merge_equals_single_point_view(self):
        """Merging partial views must equal one NMP that saw everything
        (same q, same seed) — the routing-obliviousness property."""
        whole = MeasurementPoint(32, seed=5)
        parts = [MeasurementPoint(32, seed=5) for _ in range(3)]
        for pid in range(3000):
            pkt = _mkpkt(src=pid % 50, pid=pid)
            whole.observe(pkt)
            parts[pid % 3].observe(pkt)
            if pid % 2 == 0:  # duplicate observations on another NMP
                parts[(pid + 1) % 3].observe(pkt)
        ctrl = Controller(32)
        merged = ctrl.merge_reports(parts)
        assert merged == whole.report()

    def test_total_estimate(self):
        nmp = MeasurementPoint(64, seed=2)
        for pid in range(5000):
            nmp.observe(_mkpkt(src=0, pid=pid))
        ctrl = Controller(64)
        est = ctrl.estimate_total(ctrl.merge_reports([nmp]))
        assert est == pytest.approx(5000, rel=0.4)

    def test_flow_estimates_proportional(self):
        nmp = MeasurementPoint(500, seed=4)
        # Flow 1: 75% of traffic; flow 2: 25%.
        for pid in range(8000):
            nmp.observe(_mkpkt(src=1 if pid % 4 else 2, pid=pid))
        ctrl = Controller(500)
        est = ctrl.flow_estimates([nmp])
        assert est[1] / (est[1] + est[2]) == pytest.approx(0.75, abs=0.07)


class TestTopology:
    def test_linear(self):
        topo = NetworkTopology.linear(5, hosts_per_switch=2)
        assert len(topo.switches) == 5
        assert len(topo.hosts) == 10
        route = topo.route("h0_0", "h4_0")
        assert route == [f"s{i}" for i in range(5)]

    def test_intra_host_traffic_still_observed(self):
        topo = NetworkTopology.linear(3)
        assert topo.route("h1_0", "h1_0") == ["s1"]

    def test_fat_tree_pod(self):
        topo = NetworkTopology.fat_tree_pod(edge_switches=4,
                                            hosts_per_edge=2)
        assert len(topo.switches) == 6  # 4 edge + 2 agg
        route = topo.route("h0_0", "h3_1")
        assert len(route) == 3  # edge, agg, edge

    def test_random_wan_connected(self):
        topo = NetworkTopology.random_wan(n_switches=10, seed=3)
        # Any host pair must be routable.
        assert topo.route(topo.hosts[0], topo.hosts[-1])

    def test_rejects_degenerate(self):
        with pytest.raises(ConfigurationError):
            NetworkTopology.linear(0)
        with pytest.raises(ConfigurationError):
            NetworkTopology.random_wan(2)


class TestSimulation:
    @pytest.fixture(scope="class")
    def sim_and_pkts(self):
        topo = NetworkTopology.fat_tree_pod(edge_switches=4,
                                            hosts_per_edge=2)
        sim = NetworkSimulation(topo, q=1000, backend="qmax", seed=1)
        pkts = generate_packets(CAIDA16, 15000, seed=3, n_flows=1500)
        sim.run(pkts)
        return sim, pkts

    def test_packets_cross_multiple_nmps(self, sim_and_pkts):
        sim, _ = sim_and_pkts
        assert sim.mean_path_length > 1.2

    def test_no_false_negatives_with_margin(self, sim_and_pkts):
        sim, pkts = sim_and_pkts
        truth = {f for f, _ in sim.true_heavy_hitters(pkts, theta=0.02)}
        found = {f for f, _ in sim.heavy_hitters(theta=0.02,
                                                 epsilon=0.015)}
        assert truth <= found

    def test_estimates_near_truth(self, sim_and_pkts):
        sim, pkts = sim_and_pkts
        truth = dict(sim.true_heavy_hitters(pkts, theta=0.03))
        reported = dict(sim.heavy_hitters(theta=0.03, epsilon=0.01))
        for flow, count in truth.items():
            assert reported[flow] == pytest.approx(count, rel=0.5)

    def test_backend_equivalence(self):
        """q-MAX and heap NMPs produce the same merged sample."""
        topo = NetworkTopology.linear(3, hosts_per_switch=2)
        pkts = generate_packets(CAIDA16, 4000, seed=9, n_flows=400)
        samples = []
        for backend in ("qmax", "heap"):
            sim = NetworkSimulation(topo, q=200, backend=backend, seed=2)
            sim.run(pkts)
            samples.append(
                sim.controller.merge_reports(sim.nmps.values())
            )
        assert samples[0] == samples[1]
