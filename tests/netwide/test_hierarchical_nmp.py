"""Tests for the hierarchical (Algorithm-4) sliding NMP option."""

from __future__ import annotations

import pytest

from repro.netwide.sliding import SlidingController, SlidingMeasurementPoint
from repro.traffic.packet import Packet


def _mkpkt(src, pid, ts):
    return Packet(src_ip=src, dst_ip=1, src_port=1, dst_port=2, proto=6,
                  size=100, timestamp=ts, packet_id=pid)


class TestHierarchicalNMP:
    def test_report_matches_basic_layout(self):
        """With the top hashes well inside the window, both layouts
        must report the identical sample."""
        kwargs = dict(q=64, window_seconds=5.0, tau=0.04, seed=3)
        basic = SlidingMeasurementPoint(levels=1, **kwargs)
        hier = SlidingMeasurementPoint(levels=2, **kwargs)
        for pid in range(4000):
            # All traffic within one second: every admissible window
            # covers everything, so the reports must coincide.
            pkt = _mkpkt(src=pid % 20, pid=pid, ts=0.5 + pid * 1e-4)
            basic.observe(pkt)
            hier.observe(pkt)
        now = 0.95
        assert hier.report(now) == basic.report(now)

    def test_window_expiry(self):
        nmp = SlidingMeasurementPoint(16, window_seconds=10.0, tau=0.1,
                                      seed=4, levels=2)
        for pid in range(100):
            nmp.observe(_mkpkt(src=111, pid=pid, ts=0.1))
        for pid in range(100, 150):
            nmp.observe(_mkpkt(src=222, pid=pid, ts=60.0))
        flows = {f for (f, _p), _v in nmp.report(now=60.0)}
        assert flows == {222}

    def test_controller_integration(self):
        nmps = [
            SlidingMeasurementPoint(200, window_seconds=5.0, tau=0.1,
                                    seed=5, levels=2, name=f"n{i}")
            for i in range(2)
        ]
        for pid in range(3000):
            pkt = _mkpkt(src=pid % 5, pid=pid, ts=pid * 0.001)
            for nmp in nmps:
                nmp.observe(pkt)
        ctrl = SlidingController(200, epsilon=0.05)
        heavy = ctrl.heavy_hitters(nmps, now=3.0, theta=0.15)
        assert {f for f, _ in heavy} == {0, 1, 2, 3, 4}
