"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.traffic import generate_packets, write_pcap
from repro.traffic.synthetic import CAIDA16


@pytest.fixture
def sample_pcap(tmp_path):
    path = tmp_path / "sample.pcap"
    write_pcap(path, generate_packets(CAIDA16, 2000, seed=4,
                                      n_flows=200))
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_profile(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["gen-trace", "x.pcap", "--profile", "mystery"]
            )

    def test_serve_subcommand_parses(self):
        args = build_parser().parse_args(
            ["serve", "-q", "128", "--backend", "sliding",
             "--udp-port", "0", "--snapshot-dir", "/tmp/snaps"]
        )
        assert args.q == 128
        assert args.backend == "sliding"
        assert args.snapshot_dir == "/tmp/snaps"

    def test_query_subcommand_parses(self):
        args = build_parser().parse_args(
            ["query", "top", "--port", "9997", "-q", "5"]
        )
        assert args.op == "top"
        assert args.port == 9997

    def test_query_rejects_unknown_op(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "mystery", "--port", "1"])


class TestVersion:
    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_matches_pyproject(self):
        import os
        import re

        import repro

        pyproject = os.path.join(
            os.path.dirname(__file__), os.pardir, "pyproject.toml"
        )
        with open(pyproject, encoding="utf-8") as fh:
            match = re.search(
                r'^version\s*=\s*"([^"]+)"', fh.read(), re.MULTILINE
            )
        assert match is not None
        assert repro.__version__ == match.group(1)


class TestGenTrace:
    def test_writes_pcap(self, tmp_path, capsys):
        out = tmp_path / "t.pcap"
        assert main(["gen-trace", str(out), "--packets", "500"]) == 0
        assert out.exists()
        assert "500" in capsys.readouterr().out

    def test_unwritable_path_fails_cleanly(self, tmp_path, capsys):
        assert main(
            ["gen-trace", str(tmp_path / "no" / "dir" / "t.pcap")]
        ) == 1
        assert "error:" in capsys.readouterr().err


class TestTopFlows:
    def test_prints_top_sources(self, sample_pcap, capsys):
        assert main(["top-flows", sample_pcap, "-q", "5"]) == 0
        out = capsys.readouterr().out
        assert "source" in out
        assert out.count("\n") >= 3

    def test_backends_agree_on_heaviest(self, sample_pcap, capsys):
        tops = []
        for backend in ("qmax", "heap"):
            main(["top-flows", sample_pcap, "-q", "3",
                  "--backend", backend])
            out = capsys.readouterr().out
            # Heaviest flow's source ip (estimates may differ slightly
            # because the discard threshold depends on eviction timing).
            tops.append(out.splitlines()[1].split()[0])
        assert tops[0] == tops[1]

    def test_missing_file(self, capsys):
        assert main(["top-flows", "/does/not/exist.pcap"]) == 1


class TestHeavyHitters:
    def test_merges_multiple_pcaps(self, tmp_path, capsys):
        pkts = generate_packets(CAIDA16, 3000, seed=5, n_flows=300)
        a, b = tmp_path / "a.pcap", tmp_path / "b.pcap"
        write_pcap(a, pkts[:1500])
        write_pcap(b, pkts[1500:])
        assert main(
            ["heavy-hitters", str(a), str(b), "-q", "500",
             "--theta", "0.02"]
        ) == 0
        out = capsys.readouterr().out
        assert "2 NMP(s)" in out


class TestDistinct:
    def test_estimates(self, sample_pcap, capsys):
        assert main(["distinct", sample_pcap, "-q", "64"]) == 0
        out = capsys.readouterr().out
        assert "distinct" in out


class TestCacheSim:
    def test_reports_all_backends(self, capsys):
        assert main(
            ["cache-sim", "--requests", "3000", "--keys", "1000",
             "--capacity", "100", "--backends", "qmax", "indexedheap"]
        ) == 0
        out = capsys.readouterr().out
        assert "qmax" in out and "indexedheap" in out
        assert out.count("%") == 2


class TestBench:
    def test_quick_sweep(self, capsys):
        assert main(
            ["bench", "-q", "64", "--items", "5000", "--repeats", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "qmax" in out and "heap" in out and "skiplist" in out
