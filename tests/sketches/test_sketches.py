"""Tests for the Count Sketch and Count-Min substrate."""

from __future__ import annotations

import collections

import pytest

from repro.errors import ConfigurationError
from repro.sketches import CountMinSketch, CountSketch


def _zipfish_stream(rng, n, keys):
    stream = []
    for _ in range(n):
        if rng.random() < 0.7:
            stream.append(rng.randint(0, keys // 20))
        else:
            stream.append(rng.randint(0, keys - 1))
    return stream


class TestCountSketch:
    def test_rejects_bad_dims(self):
        with pytest.raises(ConfigurationError):
            CountSketch(width=0)
        with pytest.raises(ConfigurationError):
            CountSketch(depth=0)

    def test_exact_for_single_key(self):
        cs = CountSketch(width=256, depth=5, seed=1)
        for _ in range(100):
            cs.update("only-key")
        assert cs.estimate("only-key") == 100

    def test_estimates_heavy_keys_on_skewed_stream(self, rng):
        cs = CountSketch(width=4096, depth=5, seed=2)
        stream = _zipfish_stream(rng, 20000, 5000)
        truth = collections.Counter(stream)
        for key in stream:
            cs.update(key)
        # Per-row error is ~ ||f||2/sqrt(width); allow several sigma on
        # each heavy key and require the *typical* error to be small.
        l2 = sum(c * c for c in truth.values()) ** 0.5
        sigma = l2 / (cs.width ** 0.5)
        errors = []
        for key, count in truth.most_common(20):
            err = abs(cs.estimate(key) - count)
            errors.append(err)
            assert err <= 8 * sigma, (key, count, err, sigma)
        errors.sort()
        assert errors[len(errors) // 2] <= 3 * sigma

    def test_negative_updates(self):
        cs = CountSketch(width=256, depth=5, seed=3)
        cs.update("x", 10)
        cs.update("x", -10)
        assert cs.estimate("x") == 0

    def test_l2_estimate(self, rng):
        cs = CountSketch(width=4096, depth=5, seed=4)
        truth = collections.Counter(_zipfish_stream(rng, 30000, 2000))
        for key, count in truth.items():
            cs.update(key, count)
        true_l2 = sum(c * c for c in truth.values()) ** 0.5
        assert cs.l2_estimate() == pytest.approx(true_l2, rel=0.15)

    def test_merge(self, rng):
        a = CountSketch(width=512, depth=5, seed=5)
        b = CountSketch(width=512, depth=5, seed=5)
        whole = CountSketch(width=512, depth=5, seed=5)
        for i in range(1000):
            key = rng.randint(0, 50)
            (a if i % 2 else b).update(key)
            whole.update(key)
        a.merge(b)
        for key in range(50):
            assert a.estimate(key) == whole.estimate(key)

    def test_merge_rejects_mismatched(self):
        with pytest.raises(ConfigurationError):
            CountSketch(width=128).merge(CountSketch(width=256))

    def test_reset(self):
        cs = CountSketch(width=64, depth=3)
        cs.update("k", 5)
        cs.reset()
        assert cs.estimate("k") == 0

    def test_counters_property(self):
        assert CountSketch(width=128, depth=4).counters == 512


class TestCountMin:
    def test_rejects_bad_dims(self):
        with pytest.raises(ConfigurationError):
            CountMinSketch(width=0)

    def test_never_underestimates(self, rng):
        cm = CountMinSketch(width=512, depth=4, seed=1)
        truth = collections.Counter(_zipfish_stream(rng, 10000, 2000))
        for key, count in truth.items():
            cm.update(key, count)
        for key, count in truth.items():
            assert cm.estimate(key) >= count

    def test_error_bound(self, rng):
        epsilon, delta = 0.01, 0.05
        cm = CountMinSketch.from_error(epsilon, delta, seed=2)
        stream = _zipfish_stream(rng, 20000, 3000)
        truth = collections.Counter(stream)
        for key in stream:
            cm.update(key)
        n = len(stream)
        violations = sum(
            1
            for key, count in truth.items()
            if cm.estimate(key) > count + epsilon * n
        )
        assert violations <= delta * len(truth) + 3

    def test_from_error_validates(self):
        with pytest.raises(ConfigurationError):
            CountMinSketch.from_error(0.0, 0.5)
        with pytest.raises(ConfigurationError):
            CountMinSketch.from_error(0.1, 1.5)

    def test_merge_and_total(self, rng):
        a = CountMinSketch(width=256, depth=4, seed=3)
        b = CountMinSketch(width=256, depth=4, seed=3)
        for i in range(500):
            (a if i % 2 else b).update(i % 20)
        a.merge(b)
        assert a.total == 500
        assert a.estimate(0) >= 25

    def test_reset(self):
        cm = CountMinSketch(width=64, depth=2)
        cm.update("k")
        cm.reset()
        assert cm.estimate("k") == 0
        assert cm.total == 0
