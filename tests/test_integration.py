"""Cross-module integration tests: full pipelines end to end."""

from __future__ import annotations

import pytest

from repro import QMax
from repro.apps import CountDistinct, PrioritySampler
from repro.netwide import Controller, NetworkSimulation, NetworkTopology
from repro.switch import Datapath, NetworkWideMonitor, make_monitor
from repro.traffic import (
    CAIDA16,
    UNIV1,
    generate_packets,
    read_pcap,
    write_pcap,
)


class TestPcapToMeasurement:
    """Trace generation → pcap file → re-parse → measurement."""

    def test_pcap_roundtrip_preserves_measurements(self, tmp_path):
        pkts = generate_packets(CAIDA16, 3000, seed=5, n_flows=300)
        path = tmp_path / "trace.pcap"
        write_pcap(path, pkts)
        reloaded = read_pcap(path)

        def heavy_sources(packets):
            sampler = PrioritySampler(500, seed=1)
            for i, p in enumerate(packets):
                sampler.update(i, p.size)
            return round(sampler.estimate_total())

        # Sizes survive the round trip, so estimates are identical.
        assert heavy_sources(pkts) == heavy_sources(reloaded)

    def test_distinct_sources_survive_roundtrip(self, tmp_path):
        pkts = generate_packets(UNIV1, 2000, seed=6, n_flows=500)
        path = tmp_path / "u.pcap"
        write_pcap(path, pkts)
        reloaded = read_pcap(path)
        cd_a, cd_b = CountDistinct(64, seed=2), CountDistinct(64, seed=2)
        for p in pkts:
            cd_a.update(p.src_ip)
        for p in reloaded:
            cd_b.update(p.src_ip)
        assert cd_a.estimate() == cd_b.estimate()


class TestSwitchToController:
    """Datapath monitors feeding the network-wide controller."""

    def test_two_switches_one_controller(self):
        pkts = generate_packets(CAIDA16, 8000, seed=7, n_flows=800)
        monitors = [
            NetworkWideMonitor(500, backend="qmax", seed=3)
            for _ in range(2)
        ]
        datapaths = [Datapath(monitor=m) for m in monitors]
        # Split traffic across switches with 30% overlap (shared links).
        for i, pkt in enumerate(pkts):
            datapaths[i % 2].process(pkt)
            if i % 10 < 3:
                datapaths[(i + 1) % 2].process(pkt)

        controller = Controller(500)
        estimates = controller.flow_estimates(
            m.nmp for m in monitors
        )
        # Total estimated packets ~ distinct packets (not observations).
        assert sum(estimates.values()) == pytest.approx(
            len(pkts), rel=0.3
        )

    def test_monitored_datapath_agrees_with_direct_nmp(self):
        """Running packets through the switch must not change what the
        NMP samples (the monitor is a pass-through)."""
        pkts = generate_packets(CAIDA16, 3000, seed=8, n_flows=300)
        monitor = NetworkWideMonitor(200, backend="qmax", seed=4)
        dp = Datapath(monitor=monitor)
        dp.run(pkts)

        from repro.netwide.nmp import MeasurementPoint

        direct = MeasurementPoint(200, backend="qmax", seed=4)
        for p in pkts:
            if dp.flow_table.lookup(p) != "drop":
                direct.observe(p)
        assert monitor.nmp.report() == direct.report()


class TestTopologySimulationBackends:
    def test_sliding_and_interval_agree_on_short_stream(self):
        """For a stream shorter than the window, sliding == interval."""
        topo = NetworkTopology.linear(3, hosts_per_switch=2)
        pkts = generate_packets(CAIDA16, 1500, seed=9, n_flows=200)
        sim = NetworkSimulation(topo, q=300, backend="qmax", seed=5)
        sim.run(pkts)
        hh_interval = dict(sim.heavy_hitters(theta=0.05, epsilon=0.02))
        truth = dict(sim.true_heavy_hitters(pkts, theta=0.05))
        assert set(truth) <= set(hh_interval)


class TestQMaxAsLibraryPrimitives:
    """The public API used the way a downstream user would."""

    def test_extend_and_query(self):
        qmax = QMax(5, 0.5)
        qmax.extend((i, float(i % 17)) for i in range(1000))
        values = [v for _, v in qmax.query()]
        assert values == [16.0] * 5

    def test_monitor_factory_backends_consistent(self):
        pkts = generate_packets(CAIDA16, 2000, seed=10, n_flows=200)
        tops = []
        for backend in ("qmax", "heap", "skiplist", "sortedlist"):
            monitor = make_monitor("reservoir", 50, backend, seed=6)
            dp = Datapath(monitor=monitor)
            dp.run(pkts)
            tops.append(
                sorted(v for _, v in monitor.reservoir.query())
            )
        assert tops[0] == tops[1] == tops[2] == tops[3]
