"""Tests for the hashing substrate: determinism, range, and uniformity."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.hashing import (
    MultiplyShiftHash,
    TabulationHash,
    UniformHasher,
    mix64,
    splitmix64,
)
from repro.hashing.mix import key_to_u64


class TestMix64:
    def test_deterministic(self):
        assert mix64(12345) == mix64(12345)

    def test_range(self):
        for x in [0, 1, 2**63, 2**64 - 1, -5]:
            assert 0 <= mix64(x) < 2**64

    def test_bijective_on_sample(self):
        outputs = {mix64(x) for x in range(10000)}
        assert len(outputs) == 10000

    def test_avalanche(self):
        """Flipping one input bit flips roughly half the output bits."""
        base = mix64(0xDEADBEEF)
        flips = []
        for bit in range(64):
            diff = base ^ mix64(0xDEADBEEF ^ (1 << bit))
            flips.append(bin(diff).count("1"))
        mean = sum(flips) / len(flips)
        assert 24 < mean < 40


class TestSplitmix64:
    def test_independent_streams(self):
        a = [splitmix64(1, i) for i in range(100)]
        b = [splitmix64(2, i) for i in range(100)]
        assert a != b
        assert len(set(a)) == 100

    def test_addressable(self):
        assert splitmix64(7, 42) == splitmix64(7, 42)


class TestKeyToU64:
    @pytest.mark.parametrize(
        "key",
        [0, 1, -1, 2**70, "flow-1", b"\x00\x01", ("10.0.0.1", 80), True,
         False, 3.14],
    )
    def test_accepts_common_key_types(self, key):
        assert 0 <= key_to_u64(key) < 2**64

    def test_seed_changes_output(self):
        assert key_to_u64("x", 1) != key_to_u64("x", 2)

    def test_bool_differs_from_int(self):
        assert key_to_u64(True) != key_to_u64(1)

    def test_strings_spread(self):
        outs = {key_to_u64(f"flow-{i}") for i in range(5000)}
        assert len(outs) == 5000


class TestMultiplyShift:
    def test_range(self):
        h = MultiplyShiftHash(out_bits=10, seed=3)
        for key in range(1000):
            assert 0 <= h(key) < 1024

    def test_rejects_bad_bits(self):
        with pytest.raises(ConfigurationError):
            MultiplyShiftHash(out_bits=0)
        with pytest.raises(ConfigurationError):
            MultiplyShiftHash(out_bits=65)

    def test_roughly_uniform(self):
        h = MultiplyShiftHash(out_bits=4, seed=9)
        counts = [0] * 16
        for key in range(16000):
            counts[h(key)] += 1
        assert min(counts) > 600  # expected 1000 each

    def test_seeds_differ(self):
        h1, h2 = MultiplyShiftHash(seed=1), MultiplyShiftHash(seed=2)
        assert any(h1(k) != h2(k) for k in range(16))


class TestTabulation:
    def test_deterministic_and_spread(self):
        h = TabulationHash(seed=5)
        outs = [h(k) for k in range(4000)]
        assert outs == [h(k) for k in range(4000)]
        assert len(set(outs)) == 4000

    def test_xor_structure(self):
        """Tabulation of a single-byte key uses exactly one table entry
        XORed with the zero-byte entries — sanity-check internals."""
        h = TabulationHash(seed=1)
        zero = h.hash_u64(0)
        one = h.hash_u64(1)
        expected = zero ^ h._tables[0][0] ^ h._tables[0][1]
        assert one == expected


class TestUniformHasher:
    def test_unit_range(self):
        u = UniformHasher(seed=2)
        for key in range(2000):
            x = u.unit(key)
            assert 0.0 <= x < 1.0
            y = u.unit_open(key)
            assert 0.0 < y <= 1.0

    def test_mean_is_half(self):
        u = UniformHasher(seed=4)
        xs = [u.unit(k) for k in range(20000)]
        assert abs(sum(xs) / len(xs) - 0.5) < 0.01

    def test_deterministic_per_key(self):
        u = UniformHasher(seed=8)
        assert u.unit("flow") == u.unit("flow")


@settings(max_examples=200, deadline=None)
@given(key=st.one_of(st.integers(), st.text(), st.binary()))
def test_key_to_u64_property(key):
    """Property: any int/str/bytes key maps into [0, 2^64) stably."""
    first = key_to_u64(key, seed=13)
    assert 0 <= first < 2**64
    assert first == key_to_u64(key, seed=13)
