"""Unit tests for the ingest layer: feeder semantics, record
conversion, and malformed-input accounting on both listeners."""

from __future__ import annotations

import asyncio
import socket
import struct
import time

import pytest

from repro.core.qmax import QMax
from repro.netwide.wire import Report, to_bytes
from repro.service.config import ServiceConfig
from repro.service.daemon import DaemonThread
from repro.service.ingest import (
    FRAME_HEADER,
    BatchFeeder,
    items_from_flow_records,
    items_from_report,
)
from repro.service.rpc import rpc_call
from repro.traffic.netflow import FlowRecord, encode_packets


def _flow(i: int, octets: int) -> FlowRecord:
    return FlowRecord(src_ip=i, dst_ip=0, src_port=0, dst_port=0,
                      proto=6, packets=1, octets=octets)


class TestConversions:
    def test_flow_records(self):
        ids, vals = items_from_flow_records(
            [_flow(10, 500), _flow(11, 900)]
        )
        assert ids == [10, 11]
        assert vals == [500.0, 900.0]

    def test_report_entries(self):
        report = Report("sw0", 3, (((7, 100), 0.25), ((9, 101), 0.75)))
        ids, vals = items_from_report(report)
        assert ids == [(7, 100), (9, 101)]
        assert vals == [0.25, 0.75]


class TestBatchFeeder:
    def test_coalesces_into_one_add_many(self):
        async def run():
            engine = QMax(8, 0.25)
            feeder = BatchFeeder(engine, batch_max=100,
                                 flush_interval=0.01)
            feeder.start()
            for i in range(10):
                feeder.put([i], [float(i) + 1.0])
            await asyncio.sleep(0.05)
            await feeder.stop()
            return feeder, engine

        feeder, engine = asyncio.run(run())
        assert feeder.records_in == feeder.records_out == 10
        # top-8 of ids 0..9 with values 1..10
        assert {i for i, _ in engine.query()} == set(range(2, 10))

    def test_flush_now_is_a_barrier(self):
        async def run():
            engine = QMax(8, 0.25)
            feeder = BatchFeeder(engine, batch_max=1000,
                                 flush_interval=60.0)
            feeder.start()
            feeder.put([1, 2], [5.0, 6.0])
            assert feeder.pending == 2
            feeder.flush_now()
            assert feeder.pending == 0
            assert dict(engine.items()) == {1: 5.0, 2: 6.0}
            await feeder.stop()

        asyncio.run(run())

    def test_capacity_stalls_and_resumes(self):
        async def run():
            engine = QMax(8, 0.25)
            feeder = BatchFeeder(engine, batch_max=4,
                                 flush_interval=0.01, capacity=4)
            resumed = []
            feeder.on_room(lambda: resumed.append(True))
            feeder.start()
            assert feeder.put([1, 2, 3], [1.0, 2.0, 3.0]) is True
            assert feeder.put([4], [4.0]) is False  # at capacity
            assert feeder.stalls == 1
            await asyncio.sleep(0.05)  # flush loop drains
            assert resumed == [True]
            assert feeder.put([5], [5.0]) is True
            await feeder.stop()
            return feeder

        feeder = asyncio.run(run())
        assert feeder.records_out == 5

    def test_put_async_waits_for_room(self):
        async def run():
            engine = QMax(8, 0.25)
            feeder = BatchFeeder(engine, batch_max=2,
                                 flush_interval=0.01, capacity=2)
            feeder.start()
            feeder.put([1, 2], [1.0, 2.0])  # fills to capacity
            start = time.perf_counter()
            await feeder.put_async([3], [3.0])  # must wait for a flush
            waited = time.perf_counter() - start
            await feeder.stop()
            return feeder, waited

        feeder, _waited = asyncio.run(run())
        assert feeder.records_in == 3
        assert feeder.records_out == 3

    def test_stop_drains_pending(self):
        async def run():
            engine = QMax(8, 0.25)
            feeder = BatchFeeder(engine, batch_max=1000,
                                 flush_interval=60.0)
            feeder.start()
            feeder.put([1], [9.0])
            await feeder.stop()
            return engine

        engine = asyncio.run(run())
        assert dict(engine.items()) == {1: 9.0}


@pytest.mark.service
class TestMalformedInputAccounting:
    """Drops happen only on malformed input, and every drop is counted."""

    def test_udp_garbage_counted_not_fatal(self):
        cfg = ServiceConfig(q=8, udp_port=0, tcp_port=0, rpc_port=0,
                            flush_interval=0.02)
        with DaemonThread(cfg) as d:
            sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            addr = (d.host, d.udp_port)
            sock.sendto(b"", addr)                      # empty
            sock.sendto(b"\x00\x05", addr)              # short header
            sock.sendto(b"\x00\x09" + b"\x00" * 30, addr)  # bad version
            (good,) = encode_packets([_flow(1, 100)])
            sock.sendto(good, addr)
            sock.sendto(good[:-10], addr)               # short records
            sock.close()
            deadline = time.time() + 10
            while time.time() < deadline:
                stats = rpc_call(d.host, d.rpc_port, "stats")
                if stats["udp"]["datagrams"] >= 5:
                    break
                time.sleep(0.02)
            assert stats["udp"]["malformed"] == 4
            assert stats["udp"]["records"] == 1
            assert stats["dropped_malformed"] == 4
            # The good record made it through despite the garbage.
            top = rpc_call(d.host, d.rpc_port, "top", q=1)
            assert top == [[1, 100.0]]

    def test_tcp_bad_frame_counted_and_connection_dropped(self):
        cfg = ServiceConfig(q=8, udp_port=0, tcp_port=0, rpc_port=0,
                            flush_interval=0.02)
        with DaemonThread(cfg) as d:
            # Oversized length prefix: rejected before allocation.
            with socket.create_connection((d.host, d.tcp_port)) as s:
                s.sendall(FRAME_HEADER.pack(1 << 30))
                assert s.recv(1) == b""  # daemon closed on us
            # Valid length, garbage payload.
            with socket.create_connection((d.host, d.tcp_port)) as s:
                s.sendall(FRAME_HEADER.pack(8) + b"NOTQMRP!")
                assert s.recv(1) == b""
            # Truncated frame: claim 100 bytes, send 10, close.
            with socket.create_connection((d.host, d.tcp_port)) as s:
                s.sendall(FRAME_HEADER.pack(100) + b"x" * 10)
            # A good frame on a fresh connection still works.
            report = Report("sw0", 1, (((5, 50), 0.5),))
            blob = to_bytes(report)
            with socket.create_connection((d.host, d.tcp_port)) as s:
                s.sendall(FRAME_HEADER.pack(len(blob)) + blob)
            deadline = time.time() + 10
            while time.time() < deadline:
                stats = rpc_call(d.host, d.rpc_port, "stats")
                if (stats["tcp"]["malformed"] >= 3
                        and stats["tcp"]["frames"] >= 1):
                    break
                time.sleep(0.02)
            assert stats["tcp"]["malformed"] == 3
            assert stats["tcp"]["frames"] == 1
            assert stats["tcp"]["records"] == 1
