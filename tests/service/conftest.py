"""Fixtures for the measurement-daemon tests.

Daemon tests run real sockets and a background event-loop thread; a
wedged daemon (a feeder that never drains, an RPC server that never
answers) must fail loudly instead of hanging the suite.  Same scheme
as ``tests/parallel/conftest.py``: CI runs this directory under
``pytest-timeout``; locally an autouse SIGALRM watchdog arms around
every ``@pytest.mark.service`` test (no-op where SIGALRM is missing).
"""

from __future__ import annotations

import signal

import pytest

#: Per-test watchdog for daemon tests (seconds).
_TEST_TIMEOUT = 120


@pytest.fixture(autouse=True)
def _hung_daemon_guard(request):
    """SIGALRM per-test timeout for tests marked ``service``."""
    if request.node.get_closest_marker("service") is None or not hasattr(
        signal, "SIGALRM"
    ):
        yield
        return

    def _on_timeout(signum, frame):
        raise TimeoutError(
            f"service test exceeded {_TEST_TIMEOUT}s (wedged daemon?)"
        )

    previous = signal.signal(signal.SIGALRM, _on_timeout)
    signal.alarm(_TEST_TIMEOUT)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)
