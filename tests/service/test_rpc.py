"""The query RPC: protocol behavior, op coverage, error paths."""

from __future__ import annotations

import json
import socket

import pytest

from repro.errors import ServiceError
from repro.service.config import ServiceConfig
from repro.service.daemon import DaemonThread
from repro.service.rpc import rpc_call


@pytest.fixture
def daemon():
    cfg = ServiceConfig(q=8, udp_port=0, tcp_port=0, rpc_port=0,
                        flush_interval=0.02)
    with DaemonThread(cfg) as d:
        yield d


@pytest.mark.service
class TestOps:
    def test_health(self, daemon):
        health = rpc_call(daemon.host, daemon.rpc_port, "health")
        assert health["status"] == "ok"
        assert health["q"] == 8
        assert health["recovered"] is False

    def test_stats_shape(self, daemon):
        stats = rpc_call(daemon.host, daemon.rpc_port, "stats")
        for section in ("udp", "tcp", "feeder", "snapshot"):
            assert section in stats
        assert stats["feeder"]["records_in"] == 0

    def test_top_empty_engine(self, daemon):
        assert rpc_call(daemon.host, daemon.rpc_port, "top") == []

    def test_top_rejects_bad_q(self, daemon):
        with pytest.raises(ServiceError):
            rpc_call(daemon.host, daemon.rpc_port, "top", q=0)
        with pytest.raises(ServiceError):
            rpc_call(daemon.host, daemon.rpc_port, "top", q="ten")

    def test_unknown_op_is_error_response(self, daemon):
        with pytest.raises(ServiceError, match="unknown op"):
            rpc_call(daemon.host, daemon.rpc_port, "mystery")

    def test_snapshot_without_dir_is_error(self, daemon):
        with pytest.raises(ServiceError, match="snapshot_dir"):
            rpc_call(daemon.host, daemon.rpc_port, "snapshot")

    def test_reset(self, daemon):
        assert rpc_call(daemon.host, daemon.rpc_port, "reset") == {
            "reset": True
        }


@pytest.mark.service
class TestProtocol:
    def test_multiple_requests_per_connection(self, daemon):
        with socket.create_connection(
            (daemon.host, daemon.rpc_port), timeout=10
        ) as sock:
            fh = sock.makefile("rwb")
            for _ in range(3):
                fh.write(json.dumps({"op": "health"}).encode() + b"\n")
                fh.flush()
                doc = json.loads(fh.readline())
                assert doc["ok"] is True

    def test_malformed_json_gets_error_response(self, daemon):
        with socket.create_connection(
            (daemon.host, daemon.rpc_port), timeout=10
        ) as sock:
            sock.sendall(b"{not json\n")
            doc = json.loads(sock.makefile("rb").readline())
            assert doc["ok"] is False
            assert "malformed" in doc["error"]

    def test_non_object_request_gets_error_response(self, daemon):
        with socket.create_connection(
            (daemon.host, daemon.rpc_port), timeout=10
        ) as sock:
            sock.sendall(b"[1, 2, 3]\n")
            doc = json.loads(sock.makefile("rb").readline())
            assert doc["ok"] is False

    def test_rpc_call_to_dead_port_is_typed_error(self):
        # Grab a port that is certainly closed.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(ServiceError):
            rpc_call("127.0.0.1", port, "health", timeout=2.0)
