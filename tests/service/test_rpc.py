"""The query RPC: protocol behavior, op coverage, error paths."""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.errors import ServiceError
from repro.service.config import ServiceConfig
from repro.service.daemon import DaemonThread
from repro.service.rpc import retry_delays, rpc_call


@pytest.fixture
def daemon():
    cfg = ServiceConfig(q=8, udp_port=0, tcp_port=0, rpc_port=0,
                        flush_interval=0.02)
    with DaemonThread(cfg) as d:
        yield d


@pytest.mark.service
class TestOps:
    def test_health(self, daemon):
        health = rpc_call(daemon.host, daemon.rpc_port, "health")
        assert health["status"] == "ok"
        assert health["q"] == 8
        assert health["recovered"] is False

    def test_stats_shape(self, daemon):
        stats = rpc_call(daemon.host, daemon.rpc_port, "stats")
        for section in ("udp", "tcp", "feeder", "snapshot"):
            assert section in stats
        assert stats["feeder"]["records_in"] == 0

    def test_top_empty_engine(self, daemon):
        assert rpc_call(daemon.host, daemon.rpc_port, "top") == []

    def test_top_rejects_bad_q(self, daemon):
        with pytest.raises(ServiceError):
            rpc_call(daemon.host, daemon.rpc_port, "top", q=0)
        with pytest.raises(ServiceError):
            rpc_call(daemon.host, daemon.rpc_port, "top", q="ten")

    def test_unknown_op_is_error_response(self, daemon):
        with pytest.raises(ServiceError, match="unknown op"):
            rpc_call(daemon.host, daemon.rpc_port, "mystery")

    def test_snapshot_without_dir_is_error(self, daemon):
        with pytest.raises(ServiceError, match="snapshot_dir"):
            rpc_call(daemon.host, daemon.rpc_port, "snapshot")

    def test_reset(self, daemon):
        assert rpc_call(daemon.host, daemon.rpc_port, "reset") == {
            "reset": True
        }

    def test_stats_identity_section(self, daemon):
        identity = rpc_call(daemon.host, daemon.rpc_port,
                            "stats")["identity"]
        assert identity["daemon_id"] == (
            f"{daemon.host}:{daemon.rpc_port}"
        )
        assert identity["listen"] == {
            "udp": daemon.udp_port,
            "tcp": daemon.tcp_port,
            "rpc": daemon.rpc_port,
        }
        assert identity["started_at"] <= time.time()
        assert identity["pid"] > 0
        # No snapshot dir, no fleet: both advertised as absent.
        assert identity["snapshot_path"] is None
        assert identity["fleet"] is None

    def test_epoch_begin_collect_advance(self, daemon):
        daemon.feed([1, 2], [20.0, 10.0])
        ack = rpc_call(daemon.host, daemon.rpc_port, "epoch",
                       action="begin", epoch=1)
        assert ack["epoch"] == 1
        report = rpc_call(daemon.host, daemon.rpc_port, "epoch",
                          action="collect", q=5)
        assert report["epoch"] == 1
        assert report["observed"] == 2
        assert report["volume"] == 30.0
        assert [v for _i, v in report["top"]] == [20.0, 10.0]
        ack = rpc_call(daemon.host, daemon.rpc_port, "epoch",
                       action="advance", epoch=2, reset=True)
        assert ack["epoch"] == 2
        assert rpc_call(daemon.host, daemon.rpc_port, "top") == []

    def test_epoch_rejects_bad_requests(self, daemon):
        with pytest.raises(ServiceError, match="action"):
            rpc_call(daemon.host, daemon.rpc_port, "epoch",
                     action="rewind")
        with pytest.raises(ServiceError, match="epoch"):
            rpc_call(daemon.host, daemon.rpc_port, "epoch",
                     action="begin", epoch=-1)
        with pytest.raises(ServiceError, match="q"):
            rpc_call(daemon.host, daemon.rpc_port, "epoch",
                     action="collect", q=0)


@pytest.mark.service
class TestProtocol:
    def test_multiple_requests_per_connection(self, daemon):
        with socket.create_connection(
            (daemon.host, daemon.rpc_port), timeout=10
        ) as sock:
            fh = sock.makefile("rwb")
            for _ in range(3):
                fh.write(json.dumps({"op": "health"}).encode() + b"\n")
                fh.flush()
                doc = json.loads(fh.readline())
                assert doc["ok"] is True

    def test_malformed_json_gets_error_response(self, daemon):
        with socket.create_connection(
            (daemon.host, daemon.rpc_port), timeout=10
        ) as sock:
            sock.sendall(b"{not json\n")
            doc = json.loads(sock.makefile("rb").readline())
            assert doc["ok"] is False
            assert "malformed" in doc["error"]

    def test_non_object_request_gets_error_response(self, daemon):
        with socket.create_connection(
            (daemon.host, daemon.rpc_port), timeout=10
        ) as sock:
            sock.sendall(b"[1, 2, 3]\n")
            doc = json.loads(sock.makefile("rb").readline())
            assert doc["ok"] is False

    def test_rpc_call_to_dead_port_is_typed_error(self):
        # Grab a port that is certainly closed.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(ServiceError):
            rpc_call("127.0.0.1", port, "health", timeout=2.0)


def _closed_port():
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


@pytest.mark.service
class TestConnectRetry:
    def test_retry_schedule_is_exponential(self):
        assert retry_delays(0, 0.25) == ()
        assert retry_delays(3, 0.25) == (0.25, 0.5, 1.0)

    def test_retries_bridge_a_late_listener(self):
        """A server that starts *after* the first connect attempt is
        reached by a later one — the daemon-not-up-yet race the CLI
        ``--retries`` flag exists for."""
        port = _closed_port()
        listener = socket.socket()

        def _start_late():
            time.sleep(0.3)
            listener.setsockopt(
                socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
            )
            listener.bind(("127.0.0.1", port))
            listener.listen(1)
            conn, _addr = listener.accept()
            conn.makefile("rb").readline()
            conn.sendall(
                json.dumps({"ok": True, "result": "late"}).encode()
                + b"\n"
            )
            conn.close()

        thread = threading.Thread(target=_start_late, daemon=True)
        thread.start()
        try:
            result = rpc_call(
                "127.0.0.1", port, "health", timeout=5.0,
                retries=5, retry_backoff=0.1,
            )
            assert result == "late"
        finally:
            thread.join(10)
            listener.close()

    def test_without_retries_a_dead_port_fails_immediately(self):
        port = _closed_port()
        start = time.perf_counter()
        with pytest.raises(ServiceError, match="1 connect attempt"):
            rpc_call("127.0.0.1", port, "health", timeout=2.0)
        assert time.perf_counter() - start < 1.0

    def test_retry_error_counts_attempts(self):
        port = _closed_port()
        with pytest.raises(ServiceError, match="3 connect attempt"):
            rpc_call("127.0.0.1", port, "health", timeout=2.0,
                     retries=2, retry_backoff=0.01)
