"""End-to-end observability: ``repro query metrics`` contract.

A live daemon must expose the full metric catalog — core q-MAX
counters, feeder coalescing histograms, ingest listeners, and per-op
RPC latency — over the ``metrics`` RPC op in both JSON and Prometheus
text, and a sharded daemon must fold worker/ring series into the same
snapshot.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.service.config import ServiceConfig
from repro.service.daemon import DaemonThread
from repro.service.rpc import rpc_call
from repro.traffic.netflow import FlowRecord

from tests.service.test_daemon_e2e import _send_udp_records, _wait_ingested


def _records(n, seed):
    rng = random.Random(seed)
    values = rng.sample(range(1, 2**32), n)
    return [
        FlowRecord(src_ip=i, dst_ip=0, src_port=0, dst_port=0,
                   proto=17, packets=1, octets=v)
        for i, v in enumerate(values)
    ]


def _metrics(d, **kwargs):
    return rpc_call(d.host, d.rpc_port, "metrics", **kwargs)


def _names(snapshot):
    return {m["name"] for m in snapshot["metrics"]}


@pytest.mark.service
class TestMetricsRPC:
    def test_full_catalog_in_json_and_prometheus(self):
        cfg = ServiceConfig(q=32, udp_port=0, tcp_port=0, rpc_port=0,
                            flush_interval=0.01)
        n = 3_000
        with DaemonThread(cfg) as d:
            _send_udp_records(d.host, d.udp_port, _records(n, seed=0xAB))
            _wait_ingested(d, n)
            rpc_call(d.host, d.rpc_port, "top", q=8)  # time one 'top'
            snap = _metrics(d)
            text = _metrics(d, format="prometheus")

        assert snap["schema"] == 1
        names = _names(snap)
        # One representative per instrumented layer.
        assert "repro_qmax_evictions_total" in names       # core
        assert "repro_qmax_psi" in names                   # core gauge
        assert "repro_feeder_batch_records" in names       # feeder hist
        assert "repro_feeder_records_in" in names          # feeder gauge
        assert "repro_ingest_udp_records" in names         # ingest
        assert "repro_rpc_seconds" in names                # RPC latency
        assert "repro_service_uptime_seconds" in names     # lifecycle

        by_name = {}
        for m in snap["metrics"]:
            by_name.setdefault(m["name"], []).append(m)
        assert by_name["repro_ingest_udp_records"][0]["value"] == float(n)
        feeder = by_name["repro_feeder_batch_records"][0]
        assert feeder["count"] >= 1
        assert feeder["sum"] >= n  # every record coalesced through
        timed_ops = {m["labels"]["op"]
                     for m in by_name["repro_rpc_seconds"]}
        assert {"top", "metrics"} <= timed_ops

        # Prometheus text is the same snapshot, rendered.
        assert isinstance(text, str)
        assert "# TYPE repro_qmax_evictions_total counter" in text
        assert "# TYPE repro_rpc_seconds histogram" in text
        assert 'repro_rpc_seconds_bucket{op="top",le="+Inf"}' in text
        assert f"repro_ingest_udp_records {n}" in text

    def test_bad_format_is_rejected(self):
        cfg = ServiceConfig(q=8, udp_port=0, tcp_port=0, rpc_port=0,
                            flush_interval=0.01)
        with DaemonThread(cfg) as d:
            with pytest.raises(Exception) as err:
                _metrics(d, format="xml")
            assert "prometheus" in str(err.value)

    def test_sharded_daemon_merges_worker_series(self):
        cfg = ServiceConfig(q=32, shards=2, shard_mode="auto",
                            udp_port=0, tcp_port=0, rpc_port=0,
                            flush_interval=0.01)
        n = 4_000
        with DaemonThread(cfg) as d:
            _send_udp_records(d.host, d.udp_port, _records(n, seed=0xC))
            _wait_ingested(d, n)
            snap = _metrics(d)
            mode = rpc_call(d.host, d.rpc_port, "stats")["engine"]["mode"]

        names = _names(snap)
        assert "repro_shard_consumed" in names
        assert "repro_shard_pushed" in names
        consumed = next(m["value"] for m in snap["metrics"]
                        if m["name"] == "repro_shard_consumed")
        assert consumed == float(n)
        if mode == "process":
            # Worker-side series crossed the control pipe.
            assert "repro_worker_bursts_total" in names
            assert "repro_ring_occupancy" in names
            assert "repro_ring_stalls" in names

    def test_disabled_metrics_yield_empty_snapshot(self):
        cfg = ServiceConfig(q=8, udp_port=0, tcp_port=0, rpc_port=0,
                            flush_interval=0.01, metrics=False)
        with DaemonThread(cfg) as d:
            _send_udp_records(d.host, d.udp_port, _records(100, seed=1))
            _wait_ingested(d, 100)
            assert _metrics(d) == {"schema": 1, "metrics": []}
            text = _metrics(d, format="prometheus")
        assert text.strip() == ""


@pytest.mark.service
class TestStatsFallback:
    def test_plain_backend_reports_identity_not_empty_dict(self):
        # Regression: stats() used to return {"engine": {}} for
        # backends without a stats() method.
        cfg = ServiceConfig(q=16, udp_port=0, tcp_port=0, rpc_port=0,
                            flush_interval=0.01)
        n = 500
        with DaemonThread(cfg) as d:
            _send_udp_records(d.host, d.udp_port, _records(n, seed=2))
            _wait_ingested(d, n)
            engine_info = rpc_call(d.host, d.rpc_port, "stats")["engine"]
        assert engine_info["backend"] == "QMax"
        assert engine_info["q"] == 16
        assert engine_info["size"] >= 16

    def test_sliding_backend_reports_identity(self):
        cfg = ServiceConfig(q=8, backend="sliding", window=1_000,
                            tau=0.5, udp_port=0, tcp_port=0, rpc_port=0,
                            flush_interval=0.01)
        with DaemonThread(cfg) as d:
            _send_udp_records(d.host, d.udp_port, _records(200, seed=3))
            _wait_ingested(d, 200)
            engine_info = rpc_call(d.host, d.rpc_port, "stats")["engine"]
        assert engine_info["backend"] == "SlidingQMax"
        assert engine_info["q"] == 8
        assert engine_info["size"] > 0
