"""Snapshot codec, atomic write, and validation."""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import ServiceError
from repro.service.snapshot import (
    SNAPSHOT_FILE,
    build_state,
    decode_id,
    encode_id,
    load_snapshot,
    restore_items,
    write_snapshot,
)


class TestIdCodec:
    @pytest.mark.parametrize(
        "item_id",
        [
            0,
            2**63,
            -5,
            "flow-a",
            "五",
            3.25,
            True,
            (7, 100),
            ("nested", (1, 2), "五"),
            (),
        ],
    )
    def test_roundtrip(self, item_id):
        back = decode_id(json.loads(json.dumps(encode_id(item_id))))
        assert back == item_id
        assert type(back) is type(item_id)

    def test_unsupported_type_is_typed_error(self):
        with pytest.raises(ServiceError):
            encode_id(object())

    def test_undecodable_blob_is_typed_error(self):
        with pytest.raises(ServiceError):
            decode_id({"mystery": 1})
        with pytest.raises(ServiceError):
            decode_id([1, 2])


class TestWriteLoad:
    def _state(self, retained, evicted=()):
        return build_state(
            backend_name="qmax", q=4, seq=3,
            retained=list(retained), evicted=list(evicted),
            evicted_dropped=0, counters={"records": len(retained)},
        )

    def test_roundtrip(self, tmp_path):
        retained = [(1, 10.0), ("f", 5.5), ((2, 3), 7.0)]
        evicted = [(9, 1.0)]
        write_snapshot(str(tmp_path), self._state(retained, evicted))
        doc = load_snapshot(str(tmp_path))
        got_retained, got_evicted, dropped, seq = restore_items(doc)
        assert got_retained == retained
        assert got_evicted == evicted
        assert (dropped, seq) == (0, 3)

    def test_atomic_no_tmp_left_behind(self, tmp_path):
        write_snapshot(str(tmp_path), self._state([(1, 1.0)]))
        write_snapshot(str(tmp_path), self._state([(2, 2.0)]))
        assert os.listdir(tmp_path) == [SNAPSHOT_FILE]
        (retained, _e, _d, _s) = restore_items(
            load_snapshot(str(tmp_path))
        )
        assert retained == [(2, 2.0)]

    def test_missing_snapshot_is_none(self, tmp_path):
        assert load_snapshot(str(tmp_path / "nowhere")) is None

    def test_corrupt_snapshot_is_typed_error(self, tmp_path):
        (tmp_path / SNAPSHOT_FILE).write_text("{not json")
        with pytest.raises(ServiceError):
            load_snapshot(str(tmp_path))

    def test_wrong_format_is_typed_error(self, tmp_path):
        (tmp_path / SNAPSHOT_FILE).write_text(
            json.dumps({"format": "something-else", "version": 1})
        )
        with pytest.raises(ServiceError):
            load_snapshot(str(tmp_path))

    def test_future_version_is_typed_error(self, tmp_path):
        state = self._state([(1, 1.0)])
        state["version"] = 999
        write_snapshot(str(tmp_path), state)
        with pytest.raises(ServiceError):
            load_snapshot(str(tmp_path))
