"""End-to-end acceptance tests for the measurement daemon.

The contracts proven here are the ones docs/SERVICE.md advertises:

* **Differential**: stream ≥10k NetFlow records over UDP plus a wire
  report over TCP at a live daemon; the RPC ``top`` equals a reference
  :class:`~repro.core.qmax.QMax` fed the same records — value-multiset
  contract, as in ``tests/parallel/test_differential.py`` (ids also
  compared here because the test values are unique by construction).
* **Recovery**: kill the daemon mid-stream; a restart recovers from
  the latest snapshot and no retained item predating the snapshot is
  lost.
"""

from __future__ import annotations

import random
import socket
import struct
import time

import pytest

from repro.core.qmax import QMax
from repro.netwide.wire import Report, to_bytes
from repro.parallel.merge import merge_top_items
from repro.service.config import ServiceConfig
from repro.service.daemon import DaemonThread
from repro.service.rpc import rpc_call
from repro.service.snapshot import decode_id
from repro.traffic.netflow import FlowRecord, encode_packets

from tests.conftest import value_multiset

_POLL_DEADLINE = 60.0


def _send_udp_records(host, port, records, pace_every=32, pace_s=0.002):
    """Blast NetFlow packets at the daemon, lightly paced so localhost
    UDP never outruns the (enlarged) kernel receive buffer."""
    packets = encode_packets(records)
    sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    try:
        for i, packet in enumerate(packets):
            sock.sendto(packet, (host, port))
            if pace_every and (i + 1) % pace_every == 0:
                time.sleep(pace_s)
    finally:
        sock.close()


def _send_report(host, port, report):
    blob = to_bytes(report)
    with socket.create_connection((host, port), timeout=10) as sock:
        sock.sendall(struct.pack("!I", len(blob)) + blob)


def _wait_ingested(d, expected):
    deadline = time.time() + _POLL_DEADLINE
    while time.time() < deadline:
        stats = rpc_call(d.host, d.rpc_port, "stats")
        if stats["feeder"]["records_in"] >= expected:
            return stats
        time.sleep(0.02)
    raise AssertionError(
        f"daemon ingested {stats['feeder']['records_in']} of "
        f"{expected} records within {_POLL_DEADLINE:g}s "
        f"(udp={stats['udp']}, tcp={stats['tcp']})"
    )


def _decoded_top(d, k):
    return [
        (decode_id(item_id), val)
        for item_id, val in rpc_call(d.host, d.rpc_port, "top", q=k)
    ]


def _unique_flow_records(n, seed):
    """n flow records with distinct src_ips AND distinct octet values,
    so the differential can compare ids, not just value multisets."""
    rng = random.Random(seed)
    values = rng.sample(range(1, 2**32), n)
    return [
        FlowRecord(src_ip=i, dst_ip=0, src_port=0, dst_port=0,
                   proto=17, packets=1, octets=v)
        for i, v in enumerate(values)
    ]


def _reference_top(items, q, k):
    ref = QMax(q, 0.25)
    ref.add_many([i for i, _ in items], [v for _, v in items])
    return merge_top_items([ref.query()], k)


@pytest.mark.service
class TestDifferential:
    def test_udp_netflow_plus_tcp_report_matches_reference(self):
        q = 64
        n_udp = 10_000
        cfg = ServiceConfig(q=q, udp_port=0, tcp_port=0, rpc_port=0,
                            flush_interval=0.01)
        records = _unique_flow_records(n_udp, seed=0xF10)
        report = Report(
            "sw0", 64,
            tuple(((flow, flow * 7), flow / 1000.0)
                  for flow in range(64)),
        )
        with DaemonThread(cfg) as d:
            _send_udp_records(d.host, d.udp_port, records)
            _send_report(d.host, d.tcp_port, report)
            _wait_ingested(d, n_udp + len(report.entries))
            got = _decoded_top(d, q)

        items = [(r.src_ip, float(r.octets)) for r in records]
        items += [((flow, pid), float(v))
                  for (flow, pid), v in report.entries]
        ref = _reference_top(items, q, q)
        assert value_multiset(got) == value_multiset(ref)
        # Values are unique by construction, so ids must agree too.
        assert {i for i, _ in got} == {i for i, _ in ref}

    @pytest.mark.parametrize("n_shards", [2, 4])
    def test_sharded_engine_matches_reference(self, n_shards):
        q = 48
        n = 6_000
        cfg = ServiceConfig(q=q, shards=n_shards, shard_mode="inline",
                            udp_port=0, tcp_port=0, rpc_port=0,
                            flush_interval=0.01)
        records = _unique_flow_records(n, seed=0x5A4D + n_shards)
        with DaemonThread(cfg) as d:
            assert f"sharded-{n_shards}x" in rpc_call(
                d.host, d.rpc_port, "health"
            )["backend"]
            _send_udp_records(d.host, d.udp_port, records)
            _wait_ingested(d, n)
            got = _decoded_top(d, q)

        items = [(r.src_ip, float(r.octets)) for r in records]
        ref = _reference_top(items, q, q)
        assert value_multiset(got) == value_multiset(ref)
        assert {i for i, _ in got} == {i for i, _ in ref}

    def test_sliding_backend_tracks_recent_window(self):
        # Old heavy flows must age out of a sliding daemon's answer.
        q = 8
        window = 2_000
        cfg = ServiceConfig(q=q, backend="sliding", window=window,
                            tau=0.5, udp_port=0, tcp_port=0, rpc_port=0,
                            flush_interval=0.01)
        heavy = [FlowRecord(src_ip=1, dst_ip=0, src_port=0, dst_port=0,
                            proto=17, packets=1, octets=10**9)
                 for _ in range(30)]
        light = [FlowRecord(src_ip=2 + i, dst_ip=0, src_port=0,
                            dst_port=0, proto=17, packets=1,
                            octets=100 + i)
                 for i in range(3 * window)]
        with DaemonThread(cfg) as d:
            _send_udp_records(d.host, d.udp_port, heavy)
            _wait_ingested(d, len(heavy))
            _send_udp_records(d.host, d.udp_port, light)
            _wait_ingested(d, len(heavy) + len(light))
            got = _decoded_top(d, q)
        assert got  # window is non-empty
        assert all(item_id != 1 for item_id, _ in got)


@pytest.mark.service
class TestCrashRecovery:
    def test_restart_from_snapshot_loses_nothing_pre_snapshot(
        self, tmp_path
    ):
        q = 32
        cfg = ServiceConfig(q=q, udp_port=0, tcp_port=0, rpc_port=0,
                            flush_interval=0.01,
                            snapshot_dir=str(tmp_path),
                            snapshot_interval=3600.0,
                            track_evictions=True)
        records = _unique_flow_records(2_000, seed=0xDEAD)
        d = DaemonThread(cfg)
        try:
            _send_udp_records(d.host, d.udp_port, records)
            _wait_ingested(d, len(records))
            info = rpc_call(d.host, d.rpc_port, "snapshot")
            assert info["seq"] == 1
            assert info["retained"] >= q
            top_at_snapshot = set(_decoded_top(d, q))
            # Keep streaming past the snapshot, then crash mid-stream:
            # everything after the checkpoint is legitimately lost.
            post = _unique_flow_records(500, seed=0xBEEF)
            post = [
                FlowRecord(src_ip=10**6 + i, dst_ip=0, src_port=0,
                           dst_port=0, proto=17, packets=1,
                           octets=r.octets)
                for i, r in enumerate(post)
            ]
            _send_udp_records(d.host, d.udp_port, post, pace_every=0)
        finally:
            d.abort()  # simulated crash: no drain, no final snapshot

        d2 = DaemonThread(cfg)
        try:
            health = rpc_call(d2.host, d2.rpc_port, "health")
            assert health["recovered"] is True
            top_after = set(_decoded_top(d2, q))
            # No retained item predating the snapshot is lost: nothing
            # new arrived since recovery, so the recovered top-q is
            # exactly the snapshot-time top-q.
            assert top_after == top_at_snapshot
            stats = rpc_call(d2.host, d2.rpc_port, "stats")
            assert stats["snapshot"]["seq"] == 1
        finally:
            d2.stop()

    def test_graceful_stop_writes_final_snapshot(self, tmp_path):
        cfg = ServiceConfig(q=8, udp_port=0, tcp_port=0, rpc_port=0,
                            flush_interval=0.01,
                            snapshot_dir=str(tmp_path),
                            snapshot_interval=3600.0)
        records = _unique_flow_records(200, seed=7)
        d = DaemonThread(cfg)
        _send_udp_records(d.host, d.udp_port, records)
        _wait_ingested(d, len(records))
        top_before = set(_decoded_top(d, 8))
        d.stop()  # SIGTERM path: drain + final snapshot + close

        d2 = DaemonThread(cfg)
        try:
            assert rpc_call(d2.host, d2.rpc_port, "health")["recovered"]
            assert set(_decoded_top(d2, 8)) == top_before
        finally:
            d2.stop()

    def test_no_recover_flag_starts_fresh(self, tmp_path):
        cfg = ServiceConfig(q=8, udp_port=0, tcp_port=0, rpc_port=0,
                            flush_interval=0.01,
                            snapshot_dir=str(tmp_path),
                            snapshot_interval=3600.0)
        d = DaemonThread(cfg)
        _send_udp_records(d.host, d.udp_port,
                          _unique_flow_records(100, seed=9))
        _wait_ingested(d, 100)
        d.stop()

        fresh_cfg = ServiceConfig(q=8, udp_port=0, tcp_port=0,
                                  rpc_port=0, flush_interval=0.01,
                                  snapshot_dir=str(tmp_path),
                                  snapshot_interval=3600.0,
                                  recover=False)
        d2 = DaemonThread(fresh_cfg)
        try:
            assert not rpc_call(d2.host, d2.rpc_port, "health")[
                "recovered"
            ]
            assert rpc_call(d2.host, d2.rpc_port, "top") == []
        finally:
            d2.stop()


@pytest.mark.service
class TestReset:
    def test_reset_clears_state_but_keeps_serving(self):
        cfg = ServiceConfig(q=8, udp_port=0, tcp_port=0, rpc_port=0,
                            flush_interval=0.01)
        with DaemonThread(cfg) as d:
            _send_udp_records(d.host, d.udp_port,
                              _unique_flow_records(100, seed=3))
            _wait_ingested(d, 100)
            assert _decoded_top(d, 8)
            rpc_call(d.host, d.rpc_port, "reset")
            assert rpc_call(d.host, d.rpc_port, "top") == []
            # Still ingesting after the reset.
            _send_udp_records(d.host, d.udp_port,
                              _unique_flow_records(50, seed=4))
            deadline = time.time() + _POLL_DEADLINE
            while time.time() < deadline:
                if len(_decoded_top(d, 8)) == 8:
                    break
                time.sleep(0.02)
            assert len(_decoded_top(d, 8)) == 8
