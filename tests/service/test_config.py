"""ServiceConfig validation and the backend factory."""

from __future__ import annotations

import pytest

from repro.core.qmax import QMax
from repro.core.sliding import SlidingQMax
from repro.errors import ConfigurationError
from repro.parallel.engine import ShardedQMaxEngine
from repro.service.config import ServiceConfig


class TestValidation:
    def test_defaults_are_valid(self):
        ServiceConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"q": 0},
            {"backend": "mystery"},
            {"shards": -1},
            {"backend": "sliding", "shards": 4},
            {"batch_max": 0},
            {"flush_interval": 0.0},
            {"queue_capacity": 10, "batch_max": 100},
            {"snapshot_interval": 0.0},
            {"evicted_cap": -1},
            {"udp_port": 70000},
            {"rpc_port": -1},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            ServiceConfig(**kwargs)


class TestBuildEngine:
    def test_default_is_plain_qmax(self):
        engine = ServiceConfig(q=32).build_engine()
        assert isinstance(engine, QMax)
        assert engine.q == 32

    def test_sliding_backend(self):
        engine = ServiceConfig(
            q=8, backend="sliding", window=1000, tau=0.5
        ).build_engine()
        assert isinstance(engine, SlidingQMax)
        assert engine.window == 1000

    def test_sharded_backend(self):
        engine = ServiceConfig(
            q=16, shards=3, shard_mode="inline"
        ).build_engine()
        try:
            assert isinstance(engine, ShardedQMaxEngine)
            assert engine.n_shards == 3
        finally:
            engine.close()

    def test_track_evictions_plumbed(self):
        engine = ServiceConfig(
            q=8, track_evictions=True
        ).build_engine()
        engine.add_many(list(range(100)), [float(i) for i in range(100)])
        assert engine.take_evicted()
