"""Shared pytest fixtures and helpers for the repro test suite."""

from __future__ import annotations

import random

import pytest


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG; tests must not use the global random state."""
    return random.Random(0xC0FFEE)


def top_values(values, q):
    """Reference top-q: the q largest values, sorted descending."""
    return sorted(values, reverse=True)[:q]


def value_multiset(items):
    """Values of (id, value) pairs, sorted descending (tie-insensitive)."""
    return sorted((v for _, v in items), reverse=True)
