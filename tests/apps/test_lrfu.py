"""Tests for the LRFU cache implementations (§2.7, §5.1)."""

from __future__ import annotations

import pytest

from repro.apps.lrfu import (
    ClassicLRFU,
    QMaxLRFU,
    SkipListLRFU,
    StdHeapLRFU,
    make_lrfu,
)
from repro.errors import ConfigurationError
from repro.traffic.cache_trace import generate_cache_trace

EXACT_IMPLS = [
    pytest.param(ClassicLRFU, id="indexedheap"),
    pytest.param(StdHeapLRFU, id="stdheap"),
    pytest.param(SkipListLRFU, id="skiplist"),
]
ALL_IMPLS = EXACT_IMPLS + [
    pytest.param(lambda cap, decay: QMaxLRFU(cap, decay, gamma=0.25),
                 id="qmax"),
]


@pytest.mark.parametrize("impl", ALL_IMPLS)
class TestLRFUBehaviour:
    def test_miss_then_hit(self, impl):
        cache = impl(4, 0.75)
        assert cache.access("a") is False
        assert cache.access("a") is True
        assert cache.hits == 1 and cache.misses == 1

    def test_capacity_bound(self, impl, rng):
        cache = impl(8, 0.75)
        for _ in range(500):
            cache.access(rng.randint(0, 100))
        # q-MAX LRFU floats up to q(1+γ); exact ones are capped at q.
        assert len(cache) <= int(8 * 1.25) + 1

    def test_frequent_item_survives(self, impl, rng):
        """A very frequently accessed item must not be evicted by a
        stream of one-hit wonders (the F in LRFU)."""
        cache = impl(16, 0.9)
        for i in range(2000):
            cache.access("popular")
            cache.access(("scan", i))
        assert "popular" in cache

    def test_hit_ratio_properties(self, impl):
        cache = impl(4, 0.75)
        assert cache.hit_ratio == 0.0
        cache.access("a")
        cache.access("a")
        assert cache.hit_ratio == 0.5
        assert cache.requests == 2


class TestLRFUConfig:
    def test_parameters_validated(self):
        with pytest.raises(ConfigurationError):
            ClassicLRFU(0)
        with pytest.raises(ConfigurationError):
            ClassicLRFU(4, decay=1.0)
        with pytest.raises(ConfigurationError):
            ClassicLRFU(4, decay=0.0)

    def test_factory(self):
        for backend in ("qmax", "indexedheap", "heap", "skiplist"):
            cache = make_lrfu(backend, 8)
            assert cache.capacity == 8
        with pytest.raises(ConfigurationError):
            make_lrfu("lru", 8)


class TestLRFUEquivalence:
    """The three exact implementations realize the same policy."""

    def test_identical_hit_sequences(self, rng):
        trace = [rng.randint(0, 120) for _ in range(4000)]
        caches = [ClassicLRFU(32, 0.8), StdHeapLRFU(32, 0.8),
                  SkipListLRFU(32, 0.8)]
        for key in trace:
            results = [c.access(key) for c in caches]
            assert results[0] == results[1] == results[2]

    def test_qmax_close_to_exact_on_real_trace(self):
        trace = generate_cache_trace(15000, n_keys=4000, seed=11)
        exact = ClassicLRFU(300, 0.75)
        qmax = QMaxLRFU(300, 0.75, gamma=0.1)
        for key in trace:
            exact.access(key)
            qmax.access(key)
        # Table 2's property: the q-MAX cache (holding >= q items) is at
        # least as good as the q-sized cache, and not wildly better
        # than a q(1+γ)-sized one.
        bigger = ClassicLRFU(330, 0.75)
        for key in trace:
            bigger.access(key)
        assert qmax.hit_ratio >= exact.hit_ratio - 0.01
        assert qmax.hit_ratio <= bigger.hit_ratio + 0.02

    def test_table2_ordering(self):
        """Table 2: q-LRFU <= qmax-LRFU <= q(1+γ)-LRFU (hit ratio),
        for growing γ."""
        trace = generate_cache_trace(12000, n_keys=4000, seed=13)

        def ratio_of(cache):
            for key in trace:
                cache.access(key)
            return cache.hit_ratio

        base = ratio_of(ClassicLRFU(200, 0.75))
        for gamma in (0.1, 0.5, 1.0):
            qm = ratio_of(QMaxLRFU(200, 0.75, gamma=gamma))
            big = ratio_of(ClassicLRFU(int(200 * (1 + gamma)), 0.75))
            assert qm >= base - 0.015, (gamma, qm, base)
            assert qm <= big + 0.015, (gamma, qm, big)


class TestLRFUDecaySemantics:
    def test_small_decay_behaves_like_lru(self, rng):
        """c→0 weights recency almost exclusively: after filling the
        cache, the least recently used key is the next eviction."""
        cache = ClassicLRFU(3, 0.01)
        for key in ("a", "b", "c"):
            cache.access(key)
        cache.access("a")  # refresh a; b is now least recent
        cache.access("d")  # evicts b
        assert "b" not in cache
        assert "a" in cache and "c" in cache and "d" in cache

    def test_high_decay_keeps_frequent(self):
        """c→1 approximates LFU: frequency dominates recency."""
        cache = ClassicLRFU(2, 0.999)
        for _ in range(50):
            cache.access("freq")
        cache.access("once1")
        cache.access("once2")  # evicts once1, never freq
        assert "freq" in cache
        assert "once1" not in cache
