"""Tests for slack-window priority sampling."""

from __future__ import annotations

import pytest

from repro.apps.sliding_sampling import SlidingPrioritySampler
from repro.errors import ConfigurationError


class TestSlidingPrioritySampler:
    def test_parameters_validated(self):
        with pytest.raises(ConfigurationError):
            SlidingPrioritySampler(0, 100, 0.5)
        with pytest.raises(ConfigurationError):
            SlidingPrioritySampler(4, 0, 0.5)
        with pytest.raises(ConfigurationError):
            SlidingPrioritySampler(4, 100, 0.0)
        sampler = SlidingPrioritySampler(4, 100, 0.5)
        with pytest.raises(ConfigurationError):
            sampler.update("k", 0.0)

    def test_underfull_window_exact(self):
        sampler = SlidingPrioritySampler(10, window=1000, tau=0.5,
                                         seed=1)
        weights = {f"k{i}": float(i + 1) for i in range(5)}
        for key, w in weights.items():
            sampler.update(key, w)
        entries, threshold = sampler.sample()
        assert threshold == 0.0
        assert {k: est for k, _w, est in entries} == weights

    def test_estimates_window_total_not_stream_total(self, rng):
        """After a heavy past, the estimate tracks only the window."""
        window = 4000
        sampler = SlidingPrioritySampler(400, window, tau=0.25, seed=2)
        # Phase 1: huge weights (should be forgotten).
        for i in range(10_000):
            sampler.update(("old", i), 1000.0)
        # Phase 2: exactly one window of weight-1 items.
        for i in range(window):
            sampler.update(("new", i), 1.0)
        est = sampler.estimate_total()
        assert est < 3 * window  # nowhere near the 1e7 of phase 1
        assert est > window * 0.5

    def test_subset_sum_in_window(self, rng):
        window = 6000
        sampler = SlidingPrioritySampler(600, window, tau=0.25, seed=3)
        truth = 0.0
        for i in range(window):  # single window, no expiry
            w = rng.uniform(1, 10)
            if i % 2 == 0:
                truth += w
            sampler.update(i, w)
        est = sampler.estimate_subset_sum(
            lambda key: isinstance(key, int) and key % 2 == 0
        )
        assert est == pytest.approx(truth, rel=0.35)

    def test_recent_heavy_key_sampled(self, rng):
        sampler = SlidingPrioritySampler(20, window=1000, tau=0.25,
                                         seed=4)
        for i in range(5000):
            sampler.update(i, rng.uniform(0.5, 2.0))
        sampler.update("whale", 1e8)
        entries, _ = sampler.sample()
        assert "whale" in {k for k, _w, _e in entries}

    def test_sample_bounded_by_k(self, rng):
        sampler = SlidingPrioritySampler(16, window=500, tau=0.5, seed=5)
        for i in range(3000):
            sampler.update(i, rng.uniform(1, 5))
        entries, _ = sampler.sample()
        assert len(entries) <= 16

    def test_recurring_key_not_duplicated(self):
        """A key recurring across blocks merges to one sample entry."""
        sampler = SlidingPrioritySampler(8, window=100, tau=0.25, seed=6)
        for _ in range(150):  # spans two blocks
            sampler.update("same", 5.0)
        entries, _ = sampler.sample()
        assert [k for k, _w, _e in entries].count("same") == 1
