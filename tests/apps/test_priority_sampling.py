"""Tests for Priority Sampling (§2.1)."""

from __future__ import annotations

import statistics

import pytest

from repro.apps.priority_sampling import PrioritySampler
from repro.apps.reservoirs import BACKENDS
from repro.errors import ConfigurationError


class TestPrioritySampler:
    def test_parameters_validated(self):
        with pytest.raises(ConfigurationError):
            PrioritySampler(0)
        ps = PrioritySampler(4)
        with pytest.raises(ConfigurationError):
            ps.update("k", 0.0)
        with pytest.raises(ConfigurationError):
            ps.update("k", -1.0)

    def test_underfull_sample_is_exact(self):
        ps = PrioritySampler(10)
        weights = {"a": 5.0, "b": 2.0, "c": 9.0}
        for key, w in weights.items():
            ps.update(key, w)
        entries, tau = ps.sample()
        assert tau == 0.0
        assert {k: est for k, _w, est in entries} == weights
        assert ps.estimate_total() == pytest.approx(16.0)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_backends_agree_exactly(self, backend, rng):
        """The sample is a deterministic function of keys and weights,
        so every backend must produce the identical sample."""
        reference = PrioritySampler(50, backend="heap", seed=11)
        other = PrioritySampler(50, backend=backend, seed=11)
        for i in range(3000):
            w = rng.uniform(1.0, 100.0)
            reference.update(i, w)
            other.update(i, w)
        ref_entries, ref_tau = reference.sample()
        got_entries, got_tau = other.sample()
        assert got_tau == pytest.approx(ref_tau)
        assert sorted(k for k, _, _ in got_entries) == sorted(
            k for k, _, _ in ref_entries
        )

    def test_total_estimate_is_accurate(self, rng):
        ps = PrioritySampler(400, seed=7)
        total = 0.0
        for i in range(10000):
            w = rng.uniform(1.0, 50.0)
            total += w
            ps.update(i, w)
        assert ps.estimate_total() == pytest.approx(total, rel=0.15)

    def test_subset_estimate_unbiased_over_seeds(self, rng):
        """Average the subset estimator over independent seeds; the mean
        must approach the truth (unbiasedness)."""
        weights = [rng.uniform(1.0, 20.0) for _ in range(800)]
        truth = sum(w for i, w in enumerate(weights) if i % 3 == 0)
        estimates = []
        for seed in range(20):
            ps = PrioritySampler(60, seed=seed)
            for i, w in enumerate(weights):
                ps.update(i, w)
            estimates.append(
                ps.estimate_subset_sum(lambda k: k % 3 == 0)
            )
        assert statistics.mean(estimates) == pytest.approx(truth, rel=0.15)

    def test_heavy_keys_almost_surely_sampled(self, rng):
        """A key holding half the total weight must be in the sample."""
        ps = PrioritySampler(30, seed=3)
        ps.update("whale", 1e6)
        for i in range(2000):
            ps.update(i, rng.uniform(0.1, 2.0))
        entries, _ = ps.sample()
        assert "whale" in {k for k, _, _ in entries}

    def test_deterministic_given_seed(self, rng):
        stream = [(i, rng.uniform(1, 10)) for i in range(500)]
        a, b = PrioritySampler(20, seed=5), PrioritySampler(20, seed=5)
        for key, w in stream:
            a.update(key, w)
            b.update(key, w)
        assert a.sample() == b.sample()

    def test_processed_counter(self):
        ps = PrioritySampler(5)
        for i in range(17):
            ps.update(i, 1.0)
        assert ps.processed == 17
