"""Tests for the super-spreader / port-scan detector."""

from __future__ import annotations

import pytest

from repro.apps.superspreader import SuperSpreaderDetector, _MiniKMV
from repro.errors import ConfigurationError


class TestMiniKMV:
    def test_exact_while_underfull(self):
        kmv = _MiniKMV(8)
        for v in (0.5, 0.2, 0.9):
            kmv.add(v)
        assert kmv.estimate() == 3.0

    def test_duplicates_ignored(self):
        kmv = _MiniKMV(4)
        assert kmv.add(0.5) is True
        assert kmv.add(0.5) is False
        assert kmv.estimate() == 1.0

    def test_keeps_minima(self):
        kmv = _MiniKMV(2)
        for v in (0.9, 0.5, 0.3, 0.7):
            kmv.add(v)
        assert kmv.values == [0.3, 0.5]

    def test_estimate_formula(self):
        kmv = _MiniKMV(3)
        for v in (0.1, 0.2, 0.3):
            kmv.add(v)
        assert kmv.estimate() == pytest.approx((3 - 1) / 0.3)


class TestSuperSpreaderDetector:
    def test_parameters_validated(self):
        with pytest.raises(ConfigurationError):
            SuperSpreaderDetector(0)
        with pytest.raises(ConfigurationError):
            SuperSpreaderDetector(4, kmv_size=1)
        det = SuperSpreaderDetector(4)
        with pytest.raises(ConfigurationError):
            det.scanners(0.0)

    @pytest.mark.parametrize("backend", ["qmax", "heap", "skiplist"])
    def test_detects_the_scanner(self, backend, rng):
        """One source contacting 500 distinct ports among normal
        traffic must top the spreader list."""
        det = SuperSpreaderDetector(10, kmv_size=32, backend=backend,
                                    seed=1)
        for i in range(500):
            det.update("scanner", ("victim", i))
        for i in range(5000):
            det.update(f"normal-{rng.randint(0, 500)}",
                       ("web", rng.randint(0, 3)))
        top = det.top_spreaders()
        assert top[0][0] == "scanner"
        assert top[0][1] == pytest.approx(500, rel=0.5)

    def test_fanout_estimates_reasonable(self, rng):
        det = SuperSpreaderDetector(20, kmv_size=64, seed=2)
        for source, fanout in (("a", 300), ("b", 60), ("c", 5)):
            for d in range(fanout):
                det.update(source, (source, d))
        assert det.fanout_of("a") == pytest.approx(300, rel=0.4)
        assert det.fanout_of("b") == pytest.approx(60, rel=0.4)
        assert det.fanout_of("c") == 5.0
        # Ordering is what detection needs.
        ranked = [s for s, _ in det.top_spreaders()]
        assert ranked.index("a") < ranked.index("b") < ranked.index("c")

    def test_repeat_contacts_do_not_inflate(self):
        det = SuperSpreaderDetector(4, kmv_size=16, seed=3)
        for _ in range(1000):
            det.update("chatty", ("same-dest", 80))
        assert det.fanout_of("chatty") == 1.0

    def test_memory_bounded_by_reservoir(self, rng):
        det = SuperSpreaderDetector(8, kmv_size=8, seed=4)
        for i in range(5000):
            det.update(f"src-{i}", ("d", i % 3))
        # KMV state only for (about) the reservoir population.
        assert det.tracked_sources <= 8 * 2 + 1

    def test_scanners_threshold(self, rng):
        det = SuperSpreaderDetector(10, kmv_size=32, seed=5)
        for d in range(200):
            det.update("loud", ("x", d))
        for d in range(3):
            det.update("quiet", ("x", d))
        alarms = dict(det.scanners(threshold=50))
        assert "loud" in alarms
        assert "quiet" not in alarms

    def test_processed_counter(self):
        det = SuperSpreaderDetector(2)
        for i in range(42):
            det.update("s", i)
        assert det.processed == 42
