"""Tests for DBM's query-time-granularity queries."""

from __future__ import annotations

import pytest

from repro.apps.dbm import DynamicBucketMerge
from repro.errors import ConfigurationError


class TestBusiestInterval:
    def test_finds_the_burst(self):
        """A 10x traffic burst between t=30 and t=32 must be found."""
        dbm = DynamicBucketMerge(200, bucket_seconds=1.0)
        for sec in range(60):
            rate = 1000.0 if 30 <= sec < 32 else 100.0
            dbm.add(float(sec), rate)
        start, end, volume = dbm.busiest_interval(span=2.0)
        assert 28.0 <= start <= 31.0
        assert volume >= 1100.0  # covers at least one burst second + more

    def test_after_merging(self):
        """Bucket merging coarsens, but the burst region still wins."""
        dbm = DynamicBucketMerge(8, bucket_seconds=1.0)
        for sec in range(100):
            rate = 5000.0 if 70 <= sec < 75 else 50.0
            dbm.add(float(sec), rate)
        start, _end, volume = dbm.busiest_interval(span=5.0)
        assert 60.0 <= start <= 76.0
        assert volume > 5 * 50.0

    def test_empty(self):
        dbm = DynamicBucketMerge(4)
        assert dbm.busiest_interval(1.0) == (0.0, 1.0, 0.0)

    def test_rejects_bad_span(self):
        with pytest.raises(ConfigurationError):
            DynamicBucketMerge(4).busiest_interval(0.0)


class TestRateTimeseries:
    def test_conserves_volume(self, rng):
        dbm = DynamicBucketMerge(16, bucket_seconds=1.0)
        total = 0.0
        t = 0.0
        for _ in range(2000):
            t += rng.expovariate(20.0)
            b = rng.uniform(100, 1000)
            total += b
            dbm.add(t, b)
        series = dbm.rate_timeseries(resolution=2.0)
        assert sum(v for _t, v in series) == pytest.approx(total,
                                                           rel=1e-6)

    def test_resolution_controls_length(self):
        dbm = DynamicBucketMerge(100, bucket_seconds=1.0)
        for sec in range(20):
            dbm.add(float(sec), 10.0)
        coarse = dbm.rate_timeseries(resolution=5.0)
        fine = dbm.rate_timeseries(resolution=1.0)
        assert len(fine) > len(coarse)

    def test_empty(self):
        assert DynamicBucketMerge(4).rate_timeseries(1.0) == []

    def test_rejects_bad_resolution(self):
        with pytest.raises(ConfigurationError):
            DynamicBucketMerge(4).rate_timeseries(-1.0)


class TestCsvExport:
    def test_simple(self):
        from repro.bench.reporting import to_csv

        csv = to_csv(["a", "b"], [[1, 2.5], ["x,y", 'he said "hi"']])
        lines = csv.strip().split("\n")
        assert lines[0] == "a,b"
        assert lines[1] == "1,2.5"
        assert lines[2] == '"x,y","he said ""hi"""'

    def test_float_formatting(self):
        from repro.bench.reporting import to_csv

        assert "0.333333" in to_csv(["v"], [[1 / 3]])
