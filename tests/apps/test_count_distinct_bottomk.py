"""Tests for the KMV distinct counter and bottom-k sketches."""

from __future__ import annotations

import math
import statistics

import pytest

from repro.apps.bottom_k import BottomKSketch
from repro.apps.count_distinct import CountDistinct, SlidingCountDistinct
from repro.apps.reservoirs import BACKENDS
from repro.errors import ConfigurationError


class TestCountDistinct:
    def test_parameters_validated(self):
        with pytest.raises(ConfigurationError):
            CountDistinct(1)

    def test_exact_while_underfull(self):
        cd = CountDistinct(100, seed=1)
        for key in ["a", "b", "c", "a", "b"]:
            cd.update(key)
        assert cd.estimate() == 3.0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_estimate_within_kmv_error(self, backend):
        q, distinct = 256, 10_000
        cd = CountDistinct(q, backend=backend, seed=2)
        for i in range(3 * distinct):  # heavy repetition
            cd.update(i % distinct)
        # KMV standard error ~ 1/sqrt(q-2) ≈ 6.3%; allow 4 sigma.
        assert cd.estimate() == pytest.approx(distinct, rel=0.25)

    def test_duplicates_do_not_inflate(self):
        """A million repeats of one key must still estimate ~1."""
        cd = CountDistinct(16, seed=3)
        for _ in range(10000):
            cd.update("same")
        assert cd.estimate() == 1.0

    def test_unbiased_over_seeds(self):
        distinct = 2000
        estimates = []
        for seed in range(15):
            cd = CountDistinct(128, seed=seed)
            for i in range(distinct):
                cd.update(i)
            estimates.append(cd.estimate())
        assert statistics.mean(estimates) == pytest.approx(
            distinct, rel=0.1
        )

    def test_candidate_set_stays_bounded(self):
        cd = CountDistinct(64, seed=4)
        for i in range(50_000):
            cd.update(i)
        assert len(cd._candidates) < 4 * 64 + 1

    def test_processed_counts_all_updates(self):
        cd = CountDistinct(8, seed=5)
        for _ in range(100):
            cd.update("x")
        assert cd.processed == 100


class TestSlidingCountDistinct:
    def test_parameters_validated(self):
        with pytest.raises(ConfigurationError):
            SlidingCountDistinct(1, 100, 0.5)
        with pytest.raises(ConfigurationError):
            SlidingCountDistinct(8, 0, 0.5)
        with pytest.raises(ConfigurationError):
            SlidingCountDistinct(8, 100, 2.0)

    def test_tracks_window_not_stream(self):
        """All-distinct stream: the estimate must track W, not n."""
        q, window = 128, 4000
        scd = SlidingCountDistinct(q, window, tau=0.25, seed=1)
        for i in range(5 * window):
            scd.update(i)
        est = scd.estimate()
        assert window * 0.6 < est < window * 1.35, est

    def test_constant_key_set(self):
        scd = SlidingCountDistinct(64, 1000, tau=0.5, seed=2)
        for i in range(10_000):
            scd.update(i % 40)
        assert scd.estimate() == pytest.approx(40, abs=1)

    def test_empty(self):
        scd = SlidingCountDistinct(8, 100, tau=0.5)
        assert scd.estimate() == 0.0

    def test_recent_distinct_burst_detected(self):
        scd = SlidingCountDistinct(64, 2000, tau=0.25, seed=3)
        for i in range(5000):
            scd.update("background")
        low = scd.estimate()
        for i in range(1500):
            scd.update(f"burst-{i}")
        assert scd.estimate() > 20 * max(low, 1.0)


class TestBottomK:
    def test_parameters_validated(self):
        with pytest.raises(ConfigurationError):
            BottomKSketch(0)
        bk = BottomKSketch(4)
        with pytest.raises(ConfigurationError):
            bk.update("k", -1.0)

    def test_underfull_sketch_exact(self):
        bk = BottomKSketch(10, seed=1)
        bk.update("a", 5.0)
        bk.update("b", 3.0)
        entries, tau = bk.sketch()
        assert math.isinf(tau)
        assert {k for k, _, _ in entries} == {"a", "b"}
        assert bk.estimate_subset_sum(lambda k: True) == pytest.approx(8.0)

    def test_ranks_ascending(self, rng):
        bk = BottomKSketch(32, seed=2)
        for i in range(1000):
            bk.update(i, rng.uniform(1, 10))
        entries, tau = bk.sketch()
        ranks = [r for _, _, r in entries]
        assert ranks == sorted(ranks)
        assert all(r < tau for r in ranks)

    def test_subset_sum_accuracy(self, rng):
        bk = BottomKSketch(400, seed=3)
        truth = 0.0
        for i in range(5000):
            w = rng.uniform(1, 30)
            if i % 4 == 0:
                truth += w
            bk.update(i, w)
        est = bk.estimate_subset_sum(lambda k: k % 4 == 0)
        assert est == pytest.approx(truth, rel=0.25)

    def test_heavy_key_always_included(self, rng):
        bk = BottomKSketch(20, seed=4)
        bk.update("whale", 1e7)
        for i in range(2000):
            bk.update(i, 1.0)
        entries, _ = bk.sketch()
        assert "whale" in {k for k, _, _ in entries}

    def test_subset_count_estimate(self, rng):
        bk = BottomKSketch(300, seed=5)
        for i in range(3000):
            bk.update(i, 1.0)  # uniform weights -> plain sampling
        est = bk.estimate_subset_count(lambda k: k < 1500)
        assert est == pytest.approx(1500, rel=0.3)

    def test_merge_collapses_duplicates(self, rng):
        a = BottomKSketch(100, seed=6)
        b = BottomKSketch(100, seed=6)
        total = 0.0
        for i in range(1500):
            w = rng.uniform(1, 10)
            total += w
            a.update(i, w)
            b.update(i, w)  # both NMPs see every key
        merged = a.merge(b)
        est = merged.estimate_subset_sum(lambda k: True)
        assert est == pytest.approx(total, rel=0.3)

    def test_merge_disjoint_parts(self, rng):
        a = BottomKSketch(150, seed=7)
        b = BottomKSketch(150, seed=7)
        total = 0.0
        for i in range(2000):
            w = rng.uniform(1, 10)
            total += w
            (a if i % 2 else b).update(i, w)
        est = a.merge(b).estimate_subset_sum(lambda k: True)
        assert est == pytest.approx(total, rel=0.3)

    def test_merge_rejects_mismatched(self):
        with pytest.raises(ConfigurationError):
            BottomKSketch(4, seed=1).merge(BottomKSketch(4, seed=2))
        with pytest.raises(ConfigurationError):
            BottomKSketch(4, seed=1).merge(BottomKSketch(5, seed=1))
