"""Tests for UnivMon (§2.4) and Dynamic Bucket Merge (§2.5)."""

from __future__ import annotations

import collections
import math

import pytest

from repro.apps.dbm import DynamicBucketMerge
from repro.apps.univmon import UnivMon
from repro.errors import ConfigurationError


def _skewed_stream(rng, n):
    stream = []
    for _ in range(n):
        if rng.random() < 0.8:
            stream.append(rng.randint(0, 200))
        else:
            stream.append(rng.randint(0, 20000))
    return stream


class TestUnivMon:
    def test_parameters_validated(self):
        with pytest.raises(ConfigurationError):
            UnivMon(levels=0)
        with pytest.raises(ConfigurationError):
            UnivMon(q=0)

    def test_level_assignment_halves(self):
        um = UnivMon(levels=10, seed=1)
        counts = collections.Counter(
            um._level_of(i) for i in range(50000)
        )
        # Level ℓ should hold ~ 2^-(ℓ+1) of the keys.
        assert counts[0] == pytest.approx(25000, rel=0.05)
        assert counts[1] == pytest.approx(12500, rel=0.1)
        assert counts[2] == pytest.approx(6250, rel=0.15)

    @pytest.mark.parametrize("backend", ["qmax", "heap", "skiplist"])
    def test_heavy_hitters_tracked(self, backend, rng):
        um = UnivMon(levels=5, q=32, width=1024, depth=5,
                     backend=backend, seed=2)
        stream = ["hh"] * 3000 + [
            rng.randint(0, 10000) for _ in range(3000)
        ]
        rng.shuffle(stream)
        for key in stream:
            um.update(key)
        top = um.heavy_hitters(level=0)
        assert top and top[0][0] == "hh"
        assert top[0][1] == pytest.approx(3000, rel=0.1)

    def test_f2_estimate(self, rng):
        um = UnivMon(levels=7, q=64, width=2048, depth=5, seed=3)
        stream = _skewed_stream(rng, 30000)
        truth = collections.Counter(stream)
        for key in stream:
            um.update(key)
        true_f2 = sum(c * c for c in truth.values())
        assert 0.25 * true_f2 < um.estimate_f2() < 4 * true_f2

    def test_entropy_estimate(self, rng):
        um = UnivMon(levels=7, q=64, width=2048, depth=5, seed=4)
        stream = _skewed_stream(rng, 30000)
        truth = collections.Counter(stream)
        for key in stream:
            um.update(key)
        n = len(stream)
        true_entropy = -sum(
            (c / n) * math.log2(c / n) for c in truth.values()
        )
        est = um.estimate_entropy()
        assert est == pytest.approx(true_entropy, rel=0.4)

    def test_empty(self):
        um = UnivMon(levels=3)
        assert um.estimate_entropy() == 0.0
        assert um.estimate_f2() == 0.0

    def test_total_counter(self):
        um = UnivMon(levels=3, seed=5)
        for i in range(50):
            um.update(i)
        assert um.total == 50


@pytest.mark.parametrize("backend", ["heap", "qmax"])
class TestDBM:
    def test_bucket_budget_respected(self, backend, rng):
        dbm = DynamicBucketMerge(16, bucket_seconds=0.5, backend=backend)
        t = 0.0
        for _ in range(2000):
            t += rng.expovariate(20.0)
            dbm.add(t, rng.uniform(64, 1500))
            assert dbm.n_buckets <= 16
        assert dbm.merges > 0

    def test_total_bytes_conserved(self, backend, rng):
        """Merging buckets must never lose or invent bytes."""
        dbm = DynamicBucketMerge(8, bucket_seconds=1.0, backend=backend)
        t, total = 0.0, 0.0
        for _ in range(1500):
            t += rng.expovariate(5.0)
            b = rng.uniform(100, 1000)
            total += b
            dbm.add(t, b)
        accounted = sum(nbytes for _s, _e, nbytes in dbm.buckets())
        assert accounted == pytest.approx(total)

    def test_buckets_contiguous_and_ordered(self, backend, rng):
        dbm = DynamicBucketMerge(10, bucket_seconds=1.0, backend=backend)
        t = 0.0
        for _ in range(800):
            t += rng.expovariate(3.0)
            dbm.add(t, 100.0)
        buckets = dbm.buckets()
        for (s1, e1, _), (s2, _e2, _b2) in zip(buckets, buckets[1:]):
            assert e1 <= s2 or e1 == pytest.approx(s2)
            assert s1 < s2

    def test_bandwidth_query(self, backend):
        dbm = DynamicBucketMerge(100, bucket_seconds=1.0, backend=backend)
        # 10 bytes at each second 0..9.
        for sec in range(10):
            dbm.add(float(sec), 10.0)
        assert dbm.bandwidth(0.0, 10.0) == pytest.approx(100.0)
        assert dbm.bandwidth(0.0, 5.0) == pytest.approx(50.0)

    def test_bandwidth_rejects_bad_range(self, backend):
        dbm = DynamicBucketMerge(4, backend=backend)
        with pytest.raises(ConfigurationError):
            dbm.bandwidth(5.0, 5.0)


class TestDBMConfig:
    def test_parameters_validated(self):
        with pytest.raises(ConfigurationError):
            DynamicBucketMerge(1)
        with pytest.raises(ConfigurationError):
            DynamicBucketMerge(4, bucket_seconds=0)
        with pytest.raises(ConfigurationError):
            DynamicBucketMerge(4, backend="btree")

    def test_backends_merge_similarly(self, rng):
        """Both trackers must pick small-cost merges: the resulting
        bucket byte distributions should be comparable."""
        results = {}
        for backend in ("heap", "qmax"):
            dbm = DynamicBucketMerge(12, bucket_seconds=1.0,
                                     backend=backend)
            t = 0.0
            rng2 = __import__("random").Random(42)
            for _ in range(2000):
                t += rng2.expovariate(10.0)
                dbm.add(t, rng2.uniform(64, 1500))
            sizes = sorted(b for _s, _e, b in dbm.buckets())
            results[backend] = max(sizes)
        ratio = results["qmax"] / results["heap"]
        assert 0.3 < ratio < 3.0
