"""Additional UnivMon coverage: distinct-count G-sum and level scaling."""

from __future__ import annotations

import collections

import pytest

from repro.apps.univmon import UnivMon


class TestUnivMonDistinct:
    def test_distinct_estimate_tracks_truth(self, rng):
        um = UnivMon(levels=8, q=128, width=2048, depth=5, seed=6)
        keys = set()
        for _ in range(20000):
            key = rng.randint(0, 3000)
            keys.add(key)
            um.update(key)
        est = um.estimate_distinct()
        assert 0.3 * len(keys) < est < 3 * len(keys)

    def test_f1_gsum_matches_stream_length(self, rng):
        """g(x) = x makes the G-sum the (exactly known) stream length —
        the cheapest sanity check of the recursive estimator."""
        um = UnivMon(levels=8, q=128, width=2048, depth=5, seed=7)
        n = 15000
        for _ in range(n):
            um.update(rng.randint(0, 800))
        est = um.estimate_gsum(lambda x: x)
        assert est == pytest.approx(n, rel=0.5)

    def test_one_level_degenerates_to_plain_tracking(self, rng):
        """With levels=1 the G-sum is just the HH sum — exact when the
        key set fits in the tracker."""
        um = UnivMon(levels=1, q=64, width=2048, depth=5, seed=8)
        truth = collections.Counter()
        for _ in range(5000):
            key = rng.randint(0, 30)
            truth[key] += 1
            um.update(key)
        est = um.estimate_gsum(lambda x: x)
        assert est == pytest.approx(5000, rel=0.1)

    def test_entropy_of_uniform_near_log_n(self, rng):
        """A near-uniform stream over 256 keys has entropy ≈ 8 bits."""
        um = UnivMon(levels=9, q=256, width=4096, depth=5, seed=9)
        for i in range(20000):
            um.update(i % 256)
        assert um.estimate_entropy() == pytest.approx(8.0, abs=1.5)

    def test_skewed_entropy_below_uniform(self, rng):
        """Heavy skew must reduce the estimated entropy."""
        uniform = UnivMon(levels=8, q=128, width=2048, depth=5, seed=10)
        skewed = UnivMon(levels=8, q=128, width=2048, depth=5, seed=10)
        for i in range(15000):
            uniform.update(i % 512)
            skewed.update(0 if i % 10 else i % 512)
        assert skewed.estimate_entropy() < uniform.estimate_entropy()
