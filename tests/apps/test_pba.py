"""Tests for Priority-Based Aggregation (§2.1)."""

from __future__ import annotations

import pytest

from repro.apps.pba import PriorityBasedAggregation
from repro.apps.reservoirs import UPDATABLE_BACKENDS
from repro.errors import ConfigurationError


class TestPBA:
    def test_parameters_validated(self):
        with pytest.raises(ConfigurationError):
            PriorityBasedAggregation(0)
        pba = PriorityBasedAggregation(4)
        with pytest.raises(ConfigurationError):
            pba.update("k", 0.0)

    @pytest.mark.parametrize("backend", UPDATABLE_BACKENDS)
    def test_aggregates_repeated_keys(self, backend):
        pba = PriorityBasedAggregation(10, backend=backend)
        for _ in range(7):
            pba.update("flow", 3.0)
        ((key, weight, _est),) = pba.sample()
        assert key == "flow"
        assert weight == pytest.approx(21.0)

    @pytest.mark.parametrize("backend", UPDATABLE_BACKENDS)
    def test_sample_bounded_by_k(self, backend, rng):
        pba = PriorityBasedAggregation(16, backend=backend, seed=1)
        for i in range(3000):
            pba.update(rng.randint(0, 500), rng.uniform(1, 5))
        assert len(pba.sample()) <= 16

    @pytest.mark.parametrize("backend", UPDATABLE_BACKENDS)
    def test_heavy_aggregates_dominate_sample(self, backend, rng):
        """Keys with 100x the byte volume must essentially always be
        sampled — the aggregation property PBA exists for."""
        pba = PriorityBasedAggregation(40, backend=backend, seed=2)
        for round_i in range(400):
            for heavy in range(10):
                pba.update(("heavy", heavy), 100.0)
            pba.update(("light", rng.randint(0, 4000)), 1.0)
        sampled = {k for k, _, _ in pba.sample()}
        heavy_in = sum(1 for h in range(10) if ("heavy", h) in sampled)
        assert heavy_in >= 9, heavy_in

    def test_threshold_grows_monotonically(self, rng):
        pba = PriorityBasedAggregation(8, backend="qmax", seed=3)
        last = 0.0
        for i in range(2000):
            pba.update(rng.randint(0, 300), rng.uniform(1, 10))
            assert pba.threshold >= last
            last = pba.threshold

    def test_estimates_at_least_weight(self, rng):
        pba = PriorityBasedAggregation(16, backend="heap", seed=4)
        for i in range(1000):
            pba.update(rng.randint(0, 100), rng.uniform(1, 5))
        for _k, weight, est in pba.sample():
            assert est >= weight

    def test_subset_sum_reasonable(self, rng):
        """With few enough keys that nothing is evicted, the estimate is
        exact (every key sampled, estimate == weight)."""
        pba = PriorityBasedAggregation(64, backend="qmax", seed=5)
        truth = {}
        for i in range(2000):
            key = rng.randint(0, 30)
            w = rng.uniform(1, 4)
            truth[key] = truth.get(key, 0.0) + w
            pba.update(key, w)
        est = pba.estimate_subset_sum(lambda k: k < 10)
        true_subset = sum(w for k, w in truth.items() if k < 10)
        assert est == pytest.approx(true_subset, rel=1e-9)

    def test_backend_names(self):
        for backend in UPDATABLE_BACKENDS:
            pba = PriorityBasedAggregation(4, backend=backend)
            assert pba.backend_name == backend
