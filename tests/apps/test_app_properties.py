"""Cross-cutting property tests at the application level."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.lrfu import ClassicLRFU, SkipListLRFU, StdHeapLRFU
from repro.apps.pba import PriorityBasedAggregation
from repro.apps.priority_sampling import PrioritySampler

_WEIGHTS = st.floats(min_value=0.01, max_value=1000.0, allow_nan=False)


@settings(max_examples=60, deadline=None)
@given(
    weights=st.lists(_WEIGHTS, min_size=1, max_size=150),
    k=st.integers(min_value=1, max_value=20),
    seed=st.integers(min_value=0, max_value=100),
)
def test_priority_sample_is_deterministic_function_of_stream(
    weights, k, seed
):
    """Property: the priority sample depends only on (keys, weights,
    seed) — never on backend or insertion batching."""
    samples = []
    for backend in ("qmax", "heap"):
        ps = PrioritySampler(k, backend=backend, seed=seed)
        for i, w in enumerate(weights):
            ps.update(i, w)
        entries, tau = ps.sample()
        samples.append((sorted(key for key, _w, _e in entries), tau))
    assert samples[0][0] == samples[1][0]
    assert samples[0][1] == pytest.approx(samples[1][1])


@settings(max_examples=60, deadline=None)
@given(
    weights=st.lists(_WEIGHTS, min_size=1, max_size=100),
    k=st.integers(min_value=1, max_value=15),
)
def test_priority_estimates_dominate_weights(weights, k):
    """Property: every sampled key's estimate is >= its true weight
    (max(w, tau) never shrinks), and the total estimate is finite."""
    ps = PrioritySampler(k, seed=3)
    for i, w in enumerate(weights):
        ps.update(i, w)
    entries, _tau = ps.sample()
    for _key, weight, estimate in entries:
        assert estimate >= weight


@settings(max_examples=50, deadline=None)
@given(
    arrivals=st.lists(
        st.tuples(st.integers(min_value=0, max_value=8), _WEIGHTS),
        min_size=1,
        max_size=200,
    ),
    k=st.integers(min_value=9, max_value=16),
)
def test_pba_exact_when_sample_fits(arrivals, k):
    """Property: with at most 9 distinct keys and k >= 9, PBA never
    evicts, so aggregates are exact for every backend."""
    expected = {}
    for key, w in arrivals:
        expected[key] = expected.get(key, 0.0) + w
    for backend in ("qmax", "heap", "skiplist"):
        pba = PriorityBasedAggregation(k, backend=backend, seed=1)
        for key, w in arrivals:
            pba.update(key, w)
        got = {key: w for key, w, _e in pba.sample()}
        assert set(got) == set(expected)
        for key, total in expected.items():
            assert got[key] == pytest.approx(total)


@settings(max_examples=40, deadline=None)
@given(
    trace=st.lists(st.integers(min_value=0, max_value=30), min_size=1,
                   max_size=300),
    capacity=st.integers(min_value=1, max_value=12),
    decay=st.sampled_from([0.3, 0.75, 0.95]),
)
def test_lrfu_exact_implementations_equivalent(trace, capacity, decay):
    """Property: the three exact LRFU implementations produce identical
    hit/miss sequences on any trace."""
    caches = [
        ClassicLRFU(capacity, decay),
        StdHeapLRFU(capacity, decay),
        SkipListLRFU(capacity, decay),
    ]
    for key in trace:
        results = {cache.access(key) for cache in caches}
        assert len(results) == 1


@settings(max_examples=40, deadline=None)
@given(
    trace=st.lists(st.integers(min_value=0, max_value=50), min_size=1,
                   max_size=300),
    capacity=st.integers(min_value=2, max_value=10),
)
def test_lrfu_hits_only_for_present_keys(trace, capacity):
    """Property: access() returns True iff the key was cached, and the
    population never exceeds capacity."""
    cache = ClassicLRFU(capacity, 0.75)
    for key in trace:
        was_present = key in cache
        assert cache.access(key) == was_present
        assert len(cache) <= capacity
