"""Tests for the worst-case constant-time LRFU (§5.1 / Figure 3)."""

from __future__ import annotations

import pytest

from repro.apps.lrfu import ClassicLRFU, make_lrfu
from repro.apps.lrfu_deamortized import DeamortizedLRFU
from repro.errors import ConfigurationError
from repro.traffic.cache_trace import generate_cache_trace


class TestDeamortizedLRFU:
    def test_parameters_validated(self):
        with pytest.raises(ConfigurationError):
            DeamortizedLRFU(0)
        with pytest.raises(ConfigurationError):
            DeamortizedLRFU(4, decay=1.0)
        with pytest.raises(ConfigurationError):
            DeamortizedLRFU(4, gamma=0.0)

    def test_miss_then_hit(self):
        cache = DeamortizedLRFU(8, 0.75)
        assert cache.access("a") is False
        assert cache.access("a") is True
        assert cache.hits == 1 and cache.misses == 1

    def test_factory_registration(self):
        cache = make_lrfu("qmax-deamortized", 16)
        assert isinstance(cache, DeamortizedLRFU)

    def test_distinct_keys_bounded_by_array(self, rng):
        cache = DeamortizedLRFU(32, 0.75, gamma=0.5)
        for _ in range(5000):
            cache.access(rng.randint(0, 10_000))
        assert len(cache) <= cache._n

    def test_frequent_item_survives_scans(self, rng):
        cache = DeamortizedLRFU(16, 0.9, gamma=0.5)
        for i in range(3000):
            cache.access("popular")
            cache.access(("scan", i))
        assert "popular" in cache

    def test_invariants_random_workload(self, rng):
        cache = DeamortizedLRFU(24, 0.8, gamma=0.4)
        for step in range(5000):
            cache.access(rng.randint(0, 200))
            if step % 503 == 0:
                cache.check_invariants()
        cache.check_invariants()

    def test_invariants_adversarial_small_gamma(self, rng):
        cache = DeamortizedLRFU(5, 0.5, gamma=0.1)
        for _ in range(2000):
            cache.access(rng.randint(0, 30))
        cache.check_invariants()

    def test_hit_ratio_close_to_classic(self):
        trace = generate_cache_trace(30_000, n_keys=8_000, seed=21)
        classic = ClassicLRFU(500, 0.75)
        deam = DeamortizedLRFU(500, 0.75, gamma=0.25)
        for key in trace:
            classic.access(key)
            deam.access(key)
        assert deam.hit_ratio == pytest.approx(
            classic.hit_ratio, abs=0.03
        )

    def test_eviction_counter(self, rng):
        cache = DeamortizedLRFU(8, 0.75, gamma=0.5)
        for i in range(1000):
            cache.access(i)  # all distinct: constant churn
        assert cache.evictions > 800

    def test_repeated_key_only_one_logical_entry(self):
        """Heavy re-referencing must not inflate len(cache)."""
        cache = DeamortizedLRFU(8, 0.75, gamma=0.5)
        for _ in range(500):
            cache.access("only")
        assert len(cache) == 1
        cache.check_invariants()
