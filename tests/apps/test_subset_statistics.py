"""Tests for the extended subset statistics (§2.2) and mergeable KMV."""

from __future__ import annotations

import statistics

import pytest

from repro.apps.bottom_k import BottomKSketch
from repro.apps.count_distinct import CountDistinct
from repro.errors import ConfigurationError


class TestSubsetStatistics:
    @pytest.fixture
    def populated(self, rng):
        """A sketch over 3000 keys; evens have weights ~U(10,20), odds
        ~U(100,110) — separable statistics per subset."""
        bk = BottomKSketch(500, seed=9)
        weights = {}
        for i in range(3000):
            w = (rng.uniform(10, 20) if i % 2 == 0
                 else rng.uniform(100, 110))
            weights[i] = w
            bk.update(i, w)
        return bk, weights

    def test_subset_mean(self, populated):
        bk, weights = populated
        true_mean = statistics.mean(
            w for k, w in weights.items() if k % 2 == 0
        )
        est = bk.estimate_subset_mean(lambda k: k % 2 == 0)
        assert est == pytest.approx(true_mean, rel=0.15)

    def test_subset_variance(self, populated):
        bk, weights = populated
        evens = [w for k, w in weights.items() if k % 2 == 0]
        true_var = statistics.pvariance(evens)
        est = bk.estimate_subset_variance(lambda k: k % 2 == 0)
        # Variance estimates are noisy; require the right magnitude
        # (U(10,20) has variance ~8.3, far from the odd subset's).
        assert 0.2 * true_var < est < 5 * true_var

    def test_subset_percentile_median(self, populated):
        bk, weights = populated
        odds = sorted(w for k, w in weights.items() if k % 2 == 1)
        true_median = odds[len(odds) // 2]
        est = bk.estimate_subset_percentile(lambda k: k % 2 == 1, 0.5)
        assert est == pytest.approx(true_median, rel=0.05)

    def test_percentile_extremes(self, populated):
        bk, _ = populated
        p01 = bk.estimate_subset_percentile(lambda k: True, 0.01)
        p99 = bk.estimate_subset_percentile(lambda k: True, 0.99)
        assert p01 < p99

    def test_percentile_validates_fraction(self):
        bk = BottomKSketch(4)
        with pytest.raises(ConfigurationError):
            bk.estimate_subset_percentile(lambda k: True, 1.5)

    def test_empty_subset(self, populated):
        bk, _ = populated
        assert bk.estimate_subset_mean(lambda k: False) == 0.0
        assert bk.estimate_subset_variance(lambda k: False) == 0.0
        assert bk.estimate_subset_percentile(lambda k: False, 0.5) == 0.0

    def test_underfull_exact(self):
        bk = BottomKSketch(100, seed=1)
        for i, w in enumerate([10.0, 20.0, 30.0]):
            bk.update(i, w)
        assert bk.estimate_subset_mean(lambda k: True) == pytest.approx(
            20.0
        )
        assert bk.estimate_subset_variance(
            lambda k: True
        ) == pytest.approx(statistics.pvariance([10.0, 20.0, 30.0]))


class TestMergeableKMV:
    def test_union_estimate(self):
        a = CountDistinct(256, seed=7)
        b = CountDistinct(256, seed=7)
        for i in range(4000):
            a.update(f"a-{i}")
        for i in range(2000):
            b.update(f"b-{i}")
        union = a.merge_estimate(b)
        assert union == pytest.approx(6000, rel=0.25)

    def test_union_with_overlap_not_double_counted(self):
        a = CountDistinct(256, seed=8)
        b = CountDistinct(256, seed=8)
        for i in range(3000):
            a.update(i)
            b.update(i)  # identical streams
        assert a.merge_estimate(b) == pytest.approx(3000, rel=0.25)

    def test_intersection_estimate(self):
        a = CountDistinct(512, seed=9)
        b = CountDistinct(512, seed=9)
        for i in range(4000):
            a.update(i)
        for i in range(2000, 6000):
            b.update(i)
        inter = a.intersection_estimate(b)
        assert inter == pytest.approx(2000, rel=0.45)

    def test_disjoint_intersection_near_zero(self):
        a = CountDistinct(128, seed=10)
        b = CountDistinct(128, seed=10)
        for i in range(2000):
            a.update(f"x{i}")
            b.update(f"y{i}")
        assert a.intersection_estimate(b) < 200

    def test_merge_requires_equal_q(self):
        with pytest.raises(ConfigurationError):
            CountDistinct(64).merge_estimate(CountDistinct(32))
        with pytest.raises(ConfigurationError):
            CountDistinct(64).intersection_estimate(CountDistinct(32))

    def test_empty_counters(self):
        a, b = CountDistinct(16, seed=1), CountDistinct(16, seed=1)
        assert a.merge_estimate(b) == 0.0
        assert a.intersection_estimate(b) == 0.0
