"""Tests for the benchmark substrate (runner, stats, workloads, report)."""

from __future__ import annotations

import math

import pytest

from repro.bench.reporting import print_series, print_table
from repro.bench.runner import Measurement, measure_callable, measure_throughput, mpps
from repro.bench.stats import confidence_interval, summarize
from repro.bench.workloads import cache_stream, packet_trace, trace_streams, value_stream
from repro.errors import ConfigurationError


class TestStats:
    def test_t_interval_matches_scipy(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        samples = [1.0, 1.2, 0.9, 1.1, 1.05]
        mean, half = confidence_interval(samples, 0.99)
        low, high = scipy_stats.t.interval(
            0.99,
            df=len(samples) - 1,
            loc=mean,
            scale=scipy_stats.sem(samples),
        )
        assert mean - half == pytest.approx(low)
        assert mean + half == pytest.approx(high)

    def test_pure_t_quantile_matches_table(self, monkeypatch):
        """The scipy-free fallback must agree with the t table."""
        import repro.bench.stats as stats_mod

        monkeypatch.setattr(stats_mod, "HAVE_SCIPY", False)
        samples = [1.0, 1.2, 0.9, 1.1, 1.05]
        n = len(samples)
        mean, half = confidence_interval(samples, 0.95)
        variance = sum((x - mean) ** 2 for x in samples) / (n - 1)
        sem = math.sqrt(variance / n)
        # t_{0.975, df=4} from the standard table.
        assert half == pytest.approx(2.7764451052 * sem, rel=1e-6)

    def test_wider_confidence_wider_interval(self):
        samples = [0.8, 1.0, 1.2]
        _, half95 = confidence_interval(samples, 0.95)
        _, half99 = confidence_interval(samples, 0.99)
        assert half99 > half95

    def test_summarize_format(self):
        text = summarize([2.0, 2.0])
        assert text.startswith("2.000 ±")


class TestRunner:
    def test_mpps_helper(self):
        assert mpps(2_000_000, 1.0) == 2.0

    def test_measurement_properties(self):
        m = Measurement("x", n_items=1_000_000,
                        seconds_per_run=(1.0, 1.0))
        assert m.mpps == pytest.approx(1.0)
        mean, half = m.mpps_ci
        assert mean == pytest.approx(1.0)
        assert half == 0.0

    def test_mpps_is_mean_of_per_run_rates(self):
        """Regression: mpps must be the arithmetic mean of per-run
        rates — the same number mpps_ci centers on — not the harmonic
        mean n_items / mean(seconds) it once was."""
        m = Measurement("x", n_items=3_000_000,
                        seconds_per_run=(1.0, 3.0))
        # Per-run rates are 3.0 and 1.0 MPPS: mean = 2.0.  The old
        # definition gave 3 / mean(1, 3) = 1.5 and disagreed with the
        # CI midpoint reported right next to it.
        assert m.mpps == pytest.approx(2.0)
        assert m.mpps == pytest.approx(m.mpps_ci[0])

    def test_measure_throughput_counts_each_run_freshly(self):
        built = []

        def make_consumer():
            state = []
            built.append(state)
            return lambda i, v: state.append(i)

        stream = [(i, 0.0) for i in range(100)]
        measure_throughput("t", make_consumer, stream, repeats=3)
        assert len(built) == 3
        assert all(len(s) == 100 for s in built)

    def test_measure_throughput_validates(self):
        with pytest.raises(ConfigurationError):
            measure_throughput("t", lambda: None, [], repeats=1)
        with pytest.raises(ConfigurationError):
            measure_throughput("t", lambda: None, [(1, 1.0)], repeats=0)

    def test_measure_callable(self):
        m = measure_callable("t", lambda: (lambda: 1000), repeats=2)
        assert m.n_items == 1000
        assert m.mpps > 0

    def test_measure_callable_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            measure_callable("t", lambda: (lambda: 0), repeats=1)


class TestWorkloads:
    def test_value_stream_cached_and_deterministic(self):
        a = value_stream(1000, seed=1)
        b = value_stream(1000, seed=1)
        assert a is b  # lru_cache
        assert a[0] == b[0]

    def test_trace_streams_have_all_profiles(self):
        streams = trace_streams(500)
        assert set(streams) == {"caida16", "caida18", "univ1"}
        for stream in streams.values():
            assert len(stream) == 500
            key, weight = stream[0]
            assert isinstance(key, int) and weight > 0

    def test_cache_stream(self):
        trace = cache_stream(1000)
        assert len(trace) == 1000

    def test_packet_trace_profiles(self):
        pkts = packet_trace(200, profile="univ1")
        assert len(pkts) == 200


class TestReporting:
    def test_print_table_alignment(self, capsys):
        text = print_table("Title", ["a", "bb"], [[1, 2.5], [10, 0.25]])
        assert "Title" in text
        assert "2.500" in text
        out = capsys.readouterr().out
        assert "Title" in out

    def test_print_table_empty_rows(self):
        text = print_table("Empty", ["col"], [])
        assert "Empty" in text

    def test_print_series_column_per_line(self):
        text = print_series("S", "x", [1], {"a": [2.0], "b": [3.0]})
        assert "a" in text and "b" in text and "2.000" in text
