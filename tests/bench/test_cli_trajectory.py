"""CLI-level tests for `repro bench report / gate / import-legacy`."""

from __future__ import annotations

import json

import pytest

from repro.bench.trajectory import (
    MetricPoint,
    TrajectoryRow,
    TrajectoryStore,
    machine_fingerprint,
)
from repro.cli import main

SHA_A = "a" * 40
SHA_B = "b" * 40
MACHINE = machine_fingerprint()


def record(store, sha, value, recorded_at):
    store.append(TrajectoryRow(
        benchmark="fig04_gamma", git_sha=sha, recorded_at=recorded_at,
        machine=MACHINE,
        metrics=(MetricPoint("qmax@gamma=0.25", value, "mpps"),),
    ))


@pytest.fixture
def store(tmp_path):
    return TrajectoryStore(tmp_path)


class TestBenchReportCli:
    def test_report_renders_trajectory(self, store, capsys):
        record(store, SHA_A, 2.0, 100.0)
        record(store, SHA_B, 2.2, 200.0)
        assert main(["bench", "report", "--store", str(store.root)]) == 0
        out = capsys.readouterr().out
        assert SHA_A[:10] in out and SHA_B[:10] in out
        assert "fig04_gamma" in out
        assert "+10.0%" in out

    def test_report_single_benchmark(self, store, capsys):
        record(store, SHA_A, 2.0, 100.0)
        assert main(["bench", "report", "--store", str(store.root),
                     "--benchmark", "fig04_gamma"]) == 0
        assert "qmax@gamma=0.25" in capsys.readouterr().out

    def test_report_empty_store_errors(self, tmp_path, capsys):
        assert main(["bench", "report",
                     "--store", str(tmp_path / "x")]) == 1
        assert "empty" in capsys.readouterr().err


class TestBenchGateCli:
    def test_gate_passes(self, store, capsys):
        record(store, SHA_A, 2.0, 100.0)
        record(store, SHA_B, 1.95, 200.0)
        assert main(["bench", "gate", "--store", str(store.root),
                     "--baseline", SHA_A]) == 0
        assert "gate passed" in capsys.readouterr().out

    def test_gate_fails_on_regression(self, store, capsys):
        record(store, SHA_A, 2.0, 100.0)
        record(store, SHA_B, 1.0, 200.0)
        assert main(["bench", "gate", "--store", str(store.root),
                     "--baseline", SHA_A, "--candidate", SHA_B]) == 1
        assert "gate FAILED" in capsys.readouterr().out

    def test_gate_uses_baseline_file(self, store, capsys):
        record(store, SHA_A, 2.0, 100.0)
        record(store, SHA_B, 1.0, 200.0)
        (store.root / "BASELINE").write_text(SHA_A + "\n")
        assert main(["bench", "gate",
                     "--store", str(store.root)]) == 1

    def test_gate_without_baseline_errors(self, store, capsys):
        record(store, SHA_A, 2.0, 100.0)
        assert main(["bench", "gate", "--store", str(store.root)]) == 1
        assert "no --baseline" in capsys.readouterr().err

    def test_gate_allow_missing_baseline(self, store, capsys):
        """CI bootstrap: base commit predates the trajectory code."""
        record(store, SHA_B, 1.0, 200.0)
        assert main(["bench", "gate", "--store", str(store.root),
                     "--baseline", SHA_A,
                     "--allow-missing-baseline"]) == 0
        assert "skipped" in capsys.readouterr().out

    def test_gate_require_baseline(self, store, capsys):
        record(store, SHA_A, 2.0, 100.0)
        store.append(TrajectoryRow(
            benchmark="other", git_sha=SHA_B, recorded_at=200.0,
            machine=machine_fingerprint(extra={"note": "other"}),
            metrics=(MetricPoint("m", 1.0, "mpps"),),
        ))
        assert main(["bench", "gate", "--store", str(store.root),
                     "--baseline", SHA_A,
                     "--require-baseline"]) == 1
        assert "no metric" in capsys.readouterr().err

    def test_gate_custom_threshold(self, store):
        record(store, SHA_A, 2.0, 100.0)
        record(store, SHA_B, 1.9, 200.0)  # -5%
        assert main(["bench", "gate", "--store", str(store.root),
                     "--baseline", SHA_A, "--max-regress", "2%"]) == 1


class TestBenchImportCli:
    def test_import_then_report(self, store, tmp_path, capsys):
        artifact = tmp_path / "BENCH_shard_scaling.json"
        artifact.write_text(json.dumps({
            "benchmark": "shard_scaling",
            "config": {"q": 512},
            "rows": [
                {"regime": "admission-heavy", "shards": 1,
                 "mode": "per-shard-core", "aggregate_mpps": 1.0},
            ],
        }))
        assert main(["bench", "import-legacy", str(artifact),
                     "--sha", SHA_A, "--store", str(store.root)]) == 0
        assert "imported 1 metric" in capsys.readouterr().out
        (row,) = store.rows()
        assert row.benchmark == "abl_shard_scaling"
        assert main(["bench", "report",
                     "--store", str(store.root)]) == 0
        assert "abl_shard_scaling" in capsys.readouterr().out
